// E8 — §5.5 full/empty bits: the closure of the six operations (composition
// table regenerated from semantics), the queueing claim that i loads and j
// stores combine into |i−j|+1 operations, and a producer/consumer hot cell
// driven through the simulated machine with and without combining.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/full_empty.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FEOp;
using core::FEWord;

namespace {

void closure_table() {
  std::printf("== E8a: §5.5 closure of the six full/empty operations ==\n");
  const FEOp ops[6] = {FEOp::load(),
                       FEOp::load_and_clear(),
                       FEOp::store_and_set(1),
                       FEOp::store_if_clear_and_set(1),
                       FEOp::store_and_clear(1),
                       FEOp::store_if_clear_and_clear(1)};
  const char* names[6] = {"L", "LC", "SS", "SCS", "SC", "SCC"};
  std::printf("%5s |", "");
  for (const auto* n : names) std::printf(" %-4s", n);
  std::printf("\n------+------------------------------\n");
  for (int i = 0; i < 6; ++i) {
    std::printf("%5s |", names[i]);
    for (int j = 0; j < 6; ++j) {
      const auto k = compose(ops[i], ops[j]).kind();
      std::printf(" %-4s", names[static_cast<int>(k)]);
    }
    std::printf("\n");
  }
  std::printf("(every entry is one of the six forms: the set is closed, "
              "as §5.5 claims)\n\n");
}

void queueing_claim() {
  std::printf("== E8b: §5.5 queueing — i loads + j stores combine into "
              "|i-j|+1 operations ==\n");
  std::printf("%4s %4s | %18s | %s\n", "i", "j", "combined messages",
              "|i-j|+1");
  const std::vector<std::pair<int, int>> cases = {
      {1, 1}, {2, 2}, {4, 4}, {3, 1}, {1, 3}, {8, 2}, {2, 8}, {5, 5}};
  for (const auto& [i, j] : cases) {
    // Pair store k with load k (producer/consumer handoff); each pair
    // composes to store-if-clear-and-clear, all pairs compose into ONE
    // operation (closure); the |i-j| excess stay uncombined.
    const int pairs = std::min(i, j);
    FEOp block = FEOp::identity();
    for (int k = 0; k < pairs; ++k) {
      block = compose(block, compose(FEOp::store_if_clear_and_set(100 + k),
                                     FEOp::load_and_clear()));
    }
    const int combined = (pairs > 0 ? 1 : 0) + std::abs(i - j);
    // Semantics check: the block applied to an empty cell leaves it empty
    // (every handoff completed) — and each consumer's decombined reply is
    // its producer's value (checked exhaustively in tests/test_full_empty).
    const FEWord after = block.apply({0, false});
    std::printf("%4d %4d | %18d | %7d   %s\n", i, j, combined,
                std::abs(i - j) + 1,
                (!after.full && combined == std::abs(i - j) + 1)
                    ? "ok"
                    : "MISMATCH");
  }
  std::printf("\n");
}

struct PcResult {
  std::uint64_t cycles;
  std::uint64_t combines;
  std::uint64_t handoffs;
};

PcResult producer_consumer(net::CombinePolicy policy) {
  // Half the processors produce (store-if-clear-and-set), half consume
  // (load-and-clear); busy-waiting retries are issued by the sources.
  sim::MachineConfig<FEOp> cfg;
  cfg.log2_procs = 4;
  cfg.switch_cfg.policy = policy;
  cfg.initial_value = FEWord{0, false};
  const std::uint32_t n = 1u << cfg.log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<FEOp>>> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    const bool producer = p % 2 == 0;
    src.push_back(std::make_unique<workload::SingleAddressSource<FEOp>>(
        9, 128,
        [producer](util::Xoshiro256& r) {
          return producer ? FEOp::store_if_clear_and_set(r.below(1000))
                          : FEOp::load_and_clear();
        },
        p));
  }
  sim::Machine<FEOp> m(cfg, std::move(src));
  m.run(10'000'000);
  const auto check = verify::check_machine(m, FEWord{0, false});
  if (!check.ok) std::printf("  CHECKER FAILED: %s\n", check.error.c_str());
  std::uint64_t handoffs = 0;
  for (const auto& op : m.completed()) {
    if (op.f.kind() == core::FEKind::kLoadClear && op.f.succeeded(op.reply)) {
      ++handoffs;
    }
  }
  return {m.stats().cycles, m.stats().combines, handoffs};
}

void producer_consumer_report() {
  std::printf("== E8c: producer/consumer hot cell through the machine ==\n");
  const auto base = producer_consumer(net::CombinePolicy::kNone);
  const auto comb = producer_consumer(net::CombinePolicy::kUnlimited);
  std::printf("%-14s %10s %10s %10s\n", "policy", "cycles", "combines",
              "handoffs");
  std::printf("%-14s %10llu %10llu %10llu\n", "none",
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(base.combines),
              static_cast<unsigned long long>(base.handoffs));
  std::printf("%-14s %10llu %10llu %10llu\n", "combining",
              static_cast<unsigned long long>(comb.cycles),
              static_cast<unsigned long long>(comb.combines),
              static_cast<unsigned long long>(comb.handoffs));
  std::printf("\n");
}

// §5.5's two disciplines compared end to end: busy-waiting (nack + retry)
// vs queueing at memory (park until executable).
void disciplines_report() {
  std::printf("== E8d: busy-waiting vs queueing at memory (§5.5) ==\n");
  std::printf("%-12s | %10s %12s %12s %12s\n", "discipline", "cycles",
              "issued ops", "logical ops", "mean lat");
  for (const bool queueing : {false, true}) {
    sim::MachineConfig<FEOp> cfg;
    cfg.log2_procs = 4;
    cfg.initial_value = FEWord{0, false};
    cfg.window = 1;
    cfg.switch_cfg.policy = net::CombinePolicy::kNone;
    cfg.mem_cfg.queue_failed_conditionals = queueing;
    // One producer feeding n−1 consumers: consumers mostly find the cell
    // empty, which is where the two disciplines diverge (busy-waiting
    // retries vs parking at the module).
    const std::uint32_t n = 1u << cfg.log2_procs;
    constexpr std::uint64_t kPerConsumer = 16;
    std::vector<std::unique_ptr<proc::TrafficSource<FEOp>>> src;
    std::vector<workload::RetryingSource<FEOp>*> handles;
    for (std::uint32_t p = 0; p < n; ++p) {
      std::deque<workload::RetryingSource<FEOp>::Item> items;
      if (p == 0) {
        for (std::uint64_t r = 0; r < (n - 1) * kPerConsumer; ++r) {
          items.push_back({9, FEOp::store_if_clear_and_set(r)});
        }
      } else {
        for (std::uint64_t r = 0; r < kPerConsumer; ++r) {
          items.push_back({9, FEOp::load_and_clear()});
        }
      }
      auto s = std::make_unique<workload::RetryingSource<FEOp>>(
          std::move(items), 6);
      handles.push_back(s.get());
      src.push_back(std::move(s));
    }
    sim::Machine<FEOp> m(cfg, std::move(src));
    if (!m.run(20'000'000)) {
      std::printf("  %s: DID NOT DRAIN\n", queueing ? "queueing" : "busy-wait");
      continue;
    }
    const auto check = verify::check_machine(m, FEWord{0, false});
    if (!check.ok) std::printf("  CHECKER FAILED: %s\n", check.error.c_str());
    std::uint64_t attempts = 0;
    for (auto* h : handles) attempts += h->attempts();
    const std::uint64_t logical = 2 * (n - 1) * kPerConsumer;
    std::printf("%-12s | %10llu %12llu %12llu %12.1f\n",
                queueing ? "queueing" : "busy-wait",
                static_cast<unsigned long long>(m.stats().cycles),
                static_cast<unsigned long long>(attempts),
                static_cast<unsigned long long>(logical),
                m.stats().latency.mean());
  }
  std::printf("(queueing issues each operation exactly once — \"this "
              "decreases the network traffic\" — at the cost of the "
              "deadlock caveat the paper notes)\n\n");
}

void BM_FeCompose(benchmark::State& state) {
  const FEOp f = FEOp::store_if_clear_and_set(5);
  const FEOp g = FEOp::load_and_clear();
  for (auto _ : state) benchmark::DoNotOptimize(compose(f, g));
}
BENCHMARK(BM_FeCompose);

void BM_FeApply(benchmark::State& state) {
  const FEOp f = FEOp::store_if_clear_and_set(5);
  FEWord w{0, false};
  for (auto _ : state) benchmark::DoNotOptimize(w = f.apply(w));
}
BENCHMARK(BM_FeApply);

}  // namespace

int main(int argc, char** argv) {
  closure_table();
  queueing_claim();
  producer_consumer_report();
  disciplines_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
