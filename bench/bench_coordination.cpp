// E14 — the fetch-and-add coordination repertoire ([10]) on real threads:
// barrier, readers-writers, counting semaphore, and the parallel FIFO
// queue, each against a mutex/condition-variable baseline. The paper's
// point: these algorithms have no serial critical section, so they scale
// with the memory system rather than with lock hand-offs.
#include <benchmark/benchmark.h>

#include <barrier>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>

#include "runtime/combining_backend.hpp"
#include "runtime/coordination.hpp"
#include "runtime/parallel_queue.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/ticket_lock.hpp"

using namespace krs::runtime;

namespace {

// --- the backend dimension ---------------------------------------------------
//
// The same hotspot fetch-and-add and the same barrier, once per RmwBackend:
// "atomic" is the hardware fetch-and-θ instruction, "combining" funnels the
// hot cell through the software combining tree. The normalized output pairs
// BM_<X>/atomic against BM_<X>/combining per thread count into the
// `combining_vs_atomic_ops_ratio` series — the §4.2 crossover curve on this
// host. (On a single-core runner combining mostly measures its constant
// factor; the series exists so multi-core runs track the crossover.)

AtomicBackend g_atomic_backend;
CombiningBackend g_combining_backend(8);

AtomicBackend::Cell g_atomic_counter(g_atomic_backend, 0);
CombiningBackend::Cell g_combining_counter(g_combining_backend, 0);

template <typename B>
void backend_counter_loop(benchmark::State& state, B& backend,
                          typename B::Cell& cell) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BackendCounter_Atomic(benchmark::State& state) {
  backend_counter_loop(state, g_atomic_backend, g_atomic_counter);
}
BENCHMARK(BM_BackendCounter_Atomic)
    ->Name("BM_BackendCounter/atomic")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_BackendCounter_Combining(benchmark::State& state) {
  backend_counter_loop(state, g_combining_backend, g_combining_counter);
}
BENCHMARK(BM_BackendCounter_Combining)
    ->Name("BM_BackendCounter/combining")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

BasicBarrier<AtomicBackend> g_atomic_backend_barrier(4, g_atomic_backend);
BasicBarrier<CombiningBackend> g_combining_backend_barrier(
    4, g_combining_backend);

void BM_BackendBarrier_Atomic(benchmark::State& state) {
  for (auto _ : state) {
    g_atomic_backend_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendBarrier_Atomic)
    ->Name("BM_BackendBarrier/atomic")
    ->Threads(4)->UseRealTime();

void BM_BackendBarrier_Combining(benchmark::State& state) {
  for (auto _ : state) {
    g_combining_backend_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendBarrier_Combining)
    ->Name("BM_BackendBarrier/combining")
    ->Threads(4)->UseRealTime();

// --- barriers ---------------------------------------------------------------

FaaBarrier g_faa_barrier(4);

void BM_FaaBarrier(benchmark::State& state) {
  for (auto _ : state) {
    g_faa_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaBarrier)->Threads(4)->UseRealTime();

std::barrier<> g_std_barrier(4);

void BM_StdBarrier(benchmark::State& state) {
  for (auto _ : state) {
    g_std_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdBarrier)->Threads(4)->UseRealTime();

// --- readers-writers ----------------------------------------------------------

FaaRwLock g_faa_rw;
long g_rw_value = 0;

void BM_FaaRwLockReadMostly(benchmark::State& state) {
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      g_faa_rw.write_lock();
      ++g_rw_value;
      g_faa_rw.write_unlock();
    } else {
      g_faa_rw.read_lock();
      benchmark::DoNotOptimize(g_rw_value);
      g_faa_rw.read_unlock();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaRwLockReadMostly)->Threads(4)->UseRealTime();

std::shared_mutex g_shared_mutex;

void BM_SharedMutexReadMostly(benchmark::State& state) {
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      std::unique_lock lk(g_shared_mutex);
      ++g_rw_value;
    } else {
      std::shared_lock lk(g_shared_mutex);
      benchmark::DoNotOptimize(g_rw_value);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexReadMostly)->Threads(4)->UseRealTime();

// --- semaphore ----------------------------------------------------------------

FaaSemaphore g_sem(2);

void BM_FaaSemaphore(benchmark::State& state) {
  for (auto _ : state) {
    g_sem.p();
    benchmark::ClobberMemory();
    g_sem.v();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaSemaphore)->Threads(4)->UseRealTime();

// --- locks ---------------------------------------------------------------------

TicketLock g_ticket;
long g_locked_counter = 0;

void BM_TicketLock(benchmark::State& state) {
  for (auto _ : state) {
    g_ticket.lock();
    benchmark::DoNotOptimize(++g_locked_counter);
    g_ticket.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TicketLock)
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

std::mutex g_plain_mutex;

void BM_StdMutexLock(benchmark::State& state) {
  for (auto _ : state) {
    std::scoped_lock lk(g_plain_mutex);
    benchmark::DoNotOptimize(++g_locked_counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMutexLock)
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// --- queues --------------------------------------------------------------------

ParallelQueue<std::uint64_t> g_pqueue(1024);

void BM_ParallelQueue(benchmark::State& state) {
  // Even threads produce, odd threads consume.
  const bool producer = state.thread_index() % 2 == 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (producer) {
      g_pqueue.enqueue(++v);
    } else {
      benchmark::DoNotOptimize(g_pqueue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParallelQueue)->Threads(2)->Threads(4)->UseRealTime();

class MutexQueue {
 public:
  void enqueue(std::uint64_t v) {
    std::unique_lock lk(m_);
    not_full_.wait(lk, [&] { return q_.size() < 1024; });
    q_.push_back(v);
    not_empty_.notify_one();
  }
  std::uint64_t dequeue() {
    std::unique_lock lk(m_);
    not_empty_.wait(lk, [&] { return !q_.empty(); });
    const auto v = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_, not_empty_;
  std::deque<std::uint64_t> q_;
};

MutexQueue g_mqueue;

void BM_MutexQueue(benchmark::State& state) {
  const bool producer = state.thread_index() % 2 == 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (producer) {
      g_mqueue.enqueue(++v);
    } else {
      benchmark::DoNotOptimize(g_mqueue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexQueue)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
