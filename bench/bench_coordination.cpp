// E14 — the fetch-and-add coordination repertoire ([10]) on real threads:
// barrier, readers-writers, counting semaphore, and the parallel FIFO
// queue, each against a mutex/condition-variable baseline. The paper's
// point: these algorithms have no serial critical section, so they scale
// with the memory system rather than with lock hand-offs.
//
// E17 — the same repertoire's hot-path RMW patterns on the simulated
// Omega machine (BM_SimCoordination/*): costs in NETWORK CYCLES PER
// OPERATION rather than host wall-clock. One benchmark iteration = one
// round of the primitive's §6 traffic pattern injected as simultaneous
// waves via SimBackend::run_wave, so the reported cycles_per_op is a pure
// function of the pattern — bit-identical at every --workers count and on
// every host, comparable against the paper's analytic O(lg n) formulas.
#include <benchmark/benchmark.h>

#include <barrier>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "net/switch.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/coordination.hpp"
#include "runtime/parallel_queue.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/sim_backend.hpp"
#include "runtime/ticket_lock.hpp"
#include "util/stats.hpp"
#include "workload/workloads.hpp"

using namespace krs::runtime;

namespace {

// --- the backend dimension ---------------------------------------------------
//
// The same hotspot fetch-and-add and the same barrier, once per RmwBackend:
// "atomic" is the hardware fetch-and-θ instruction, "combining" funnels the
// hot cell through the software combining tree. The normalized output pairs
// BM_<X>/atomic against BM_<X>/combining per thread count into the
// `combining_vs_atomic_ops_ratio` series — the §4.2 crossover curve on this
// host. (On a single-core runner combining mostly measures its constant
// factor; the series exists so multi-core runs track the crossover.)

AtomicBackend g_atomic_backend;
CombiningBackend g_combining_backend(8);

AtomicBackend::Cell g_atomic_counter(g_atomic_backend, 0);
CombiningBackend::Cell g_combining_counter(g_combining_backend, 0);

template <typename B>
void backend_counter_loop(benchmark::State& state, B& backend,
                          typename B::Cell& cell) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BackendCounter_Atomic(benchmark::State& state) {
  backend_counter_loop(state, g_atomic_backend, g_atomic_counter);
}
BENCHMARK(BM_BackendCounter_Atomic)
    ->Name("BM_BackendCounter/atomic")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_BackendCounter_Combining(benchmark::State& state) {
  backend_counter_loop(state, g_combining_backend, g_combining_counter);
  if (state.thread_index() == 0) {
    // Partial-combining telemetry (§7) for the hot cell, cumulative over
    // the run: how much traffic folded below the root vs. serialized at
    // it. A mixed-family regression shows up as served_at_root → 1.0 long
    // before the wall-clock numbers move on a small host.
    const CombiningTreeStats ts =
        g_combining_backend.cell_stats(g_combining_counter);
    state.counters["combine_rate"] = ts.combine_rate();
    state.counters["served_at_root_fraction"] = ts.served_at_root_fraction();
  }
}
BENCHMARK(BM_BackendCounter_Combining)
    ->Name("BM_BackendCounter/combining")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

BasicBarrier<AtomicBackend> g_atomic_backend_barrier(4, g_atomic_backend);
BasicBarrier<CombiningBackend> g_combining_backend_barrier(
    4, g_combining_backend);

void BM_BackendBarrier_Atomic(benchmark::State& state) {
  for (auto _ : state) {
    g_atomic_backend_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendBarrier_Atomic)
    ->Name("BM_BackendBarrier/atomic")
    ->Threads(4)->UseRealTime();

void BM_BackendBarrier_Combining(benchmark::State& state) {
  for (auto _ : state) {
    g_combining_backend_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendBarrier_Combining)
    ->Name("BM_BackendBarrier/combining")
    ->Threads(4)->UseRealTime();

// The rest of the §6 repertoire as backend twins: the same read-mostly
// rw-lock, P/V semaphore, and producer/consumer queue traffic once per
// RmwBackend, completing the bench matrix beyond counter + barrier.

BasicRwLock<AtomicBackend> g_atomic_rwlock(g_atomic_backend);
BasicRwLock<CombiningBackend> g_combining_rwlock(g_combining_backend);
long g_backend_rw_value = 0;

template <typename B>
void backend_rwlock_loop(benchmark::State& state, BasicRwLock<B>& lock) {
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      lock.write_lock();
      ++g_backend_rw_value;
      lock.write_unlock();
    } else {
      lock.read_lock();
      benchmark::DoNotOptimize(g_backend_rw_value);
      lock.read_unlock();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BackendRwLock_Atomic(benchmark::State& state) {
  backend_rwlock_loop(state, g_atomic_rwlock);
}
BENCHMARK(BM_BackendRwLock_Atomic)
    ->Name("BM_BackendRwLock/atomic")
    ->Threads(4)->UseRealTime();

void BM_BackendRwLock_Combining(benchmark::State& state) {
  backend_rwlock_loop(state, g_combining_rwlock);
}
BENCHMARK(BM_BackendRwLock_Combining)
    ->Name("BM_BackendRwLock/combining")
    ->Threads(4)->UseRealTime();

BasicSemaphore<AtomicBackend> g_atomic_sem(2, g_atomic_backend);
BasicSemaphore<CombiningBackend> g_combining_sem(2, g_combining_backend);

template <typename B>
void backend_semaphore_loop(benchmark::State& state, BasicSemaphore<B>& sem) {
  for (auto _ : state) {
    sem.p();
    benchmark::ClobberMemory();
    sem.v();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BackendSemaphore_Atomic(benchmark::State& state) {
  backend_semaphore_loop(state, g_atomic_sem);
}
BENCHMARK(BM_BackendSemaphore_Atomic)
    ->Name("BM_BackendSemaphore/atomic")
    ->Threads(4)->UseRealTime();

void BM_BackendSemaphore_Combining(benchmark::State& state) {
  backend_semaphore_loop(state, g_combining_sem);
}
BENCHMARK(BM_BackendSemaphore_Combining)
    ->Name("BM_BackendSemaphore/combining")
    ->Threads(4)->UseRealTime();

ParallelQueue<std::uint64_t, krs::analysis::DefaultInstrument, AtomicBackend>
    g_atomic_queue(1024, g_atomic_backend);
ParallelQueue<std::uint64_t, krs::analysis::DefaultInstrument,
              CombiningBackend>
    g_combining_queue(1024, g_combining_backend);

template <typename Q>
void backend_queue_loop(benchmark::State& state, Q& q) {
  // Even threads produce, odd threads consume (as BM_ParallelQueue).
  const bool producer = state.thread_index() % 2 == 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (producer) {
      q.enqueue(++v);
    } else {
      benchmark::DoNotOptimize(q.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BackendQueue_Atomic(benchmark::State& state) {
  backend_queue_loop(state, g_atomic_queue);
}
BENCHMARK(BM_BackendQueue_Atomic)
    ->Name("BM_BackendQueue/atomic")
    ->Threads(4)->UseRealTime();

void BM_BackendQueue_Combining(benchmark::State& state) {
  backend_queue_loop(state, g_combining_queue);
}
BENCHMARK(BM_BackendQueue_Combining)
    ->Name("BM_BackendQueue/combining")
    ->Threads(4)->UseRealTime();

// --- the sim dimension (E17) -------------------------------------------------
//
// Each primitive's hot-path RMW pattern on the simulated Omega machine
// (n = 8 processors), injected as full waves so the cost is deterministic.
// Reported counters are PAPER UNITS:
//   cycles_per_op       — network cycles per completed RMW (cf. the §6
//                         O(lg n) claims; one uncontended round trip on
//                         this machine is 2·lg n + 1 + memory latency)
//   combine_rate        — switch combine events per network op (§4.2)
//   mean_latency_cycles — mean issue→reply latency
//   sim_cycles          — total simulated cycles (scales with iterations)
// The `workers` arg is the ENGINE worker count: it must not change any
// counter (the parallel engine is bit-identical) — pinned by
// test_sim_backend.cpp and visible in the JSON as identical rows.

using krs::core::AnyRmw;
using krs::core::FetchAdd;
using krs::core::LssOp;

constexpr unsigned kSimLogProcs = 3;  // n = 8

SimBackend make_sim_backend(benchmark::State& state) {
  return SimBackend(SimBackendConfig{
      .log2_procs = kSimLogProcs,
      .engine_workers = static_cast<unsigned>(state.range(0))});
}

std::vector<SimBackend::WaveOp> full_wave(const SimBackend& b,
                                          const SimBackend::Cell& cell,
                                          const AnyRmw& op) {
  return std::vector<SimBackend::WaveOp>(b.processors(),
                                         SimBackend::WaveOp{&cell, op});
}

void report_sim_counters(benchmark::State& state, const SimBackend& b) {
  const SimBackendStats st = b.stats();
  state.counters["cycles_per_op"] = st.cycles_per_op();
  state.counters["combine_rate"] = st.combine_rate();
  state.counters["mean_latency_cycles"] = st.mean_latency();
  state.counters["sim_cycles"] = static_cast<double>(st.cycles);
  state.SetItemsProcessed(static_cast<std::int64_t>(st.ops()));
}

void BM_SimCounter(benchmark::State& state) {
  // The hotspot counter: every processor fetch-adds the same cell at once.
  SimBackend b = make_sim_backend(state);
  SimBackend::Cell cell(b, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.run_wave(full_wave(b, cell, AnyRmw(FetchAdd(1)))));
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimCounter)
    ->Name("BM_SimCoordination/counter")
    ->ArgNames({"workers"})->Arg(1)->Arg(2);

void BM_SimBarrier(benchmark::State& state) {
  // One barrier episode: all n increment the arrival count, all n read the
  // phase word while waiting, the last arriver advances the phase.
  SimBackend b = make_sim_backend(state);
  SimBackend::Cell count(b, 0);
  SimBackend::Cell phase(b, 0);
  for (auto _ : state) {
    (void)b.run_wave(full_wave(b, count, AnyRmw(FetchAdd(1))));
    (void)b.run_wave(full_wave(b, phase, AnyRmw(LssOp::load())));
    (void)b.run_wave({{&phase, AnyRmw(FetchAdd(1))}});
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimBarrier)
    ->Name("BM_SimCoordination/barrier")
    ->ArgNames({"workers"})->Arg(1)->Arg(2);

void BM_SimRwLock(benchmark::State& state) {
  // Read-mostly acquire/release: all n join the reader count, all n leave.
  // (The writer path is the same fetch-add traffic on the same word with a
  // writer-weight operand, so the reader wave is the cost-carrying shape.)
  SimBackend b = make_sim_backend(state);
  SimBackend::Cell word(b, 0);
  for (auto _ : state) {
    (void)b.run_wave(full_wave(b, word, AnyRmw(FetchAdd(1))));
    (void)b.run_wave(full_wave(b, word, AnyRmw(FetchAdd(Word(0) - 1))));
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimRwLock)
    ->Name("BM_SimCoordination/rwlock")
    ->ArgNames({"workers"})->Arg(1)->Arg(2);

void BM_SimSemaphore(benchmark::State& state) {
  // P then V from every processor: decrement wave, increment wave.
  SimBackend b = make_sim_backend(state);
  SimBackend::Cell sem(b, 8);
  for (auto _ : state) {
    (void)b.run_wave(full_wave(b, sem, AnyRmw(FetchAdd(Word(0) - 1))));
    (void)b.run_wave(full_wave(b, sem, AnyRmw(FetchAdd(1))));
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimSemaphore)
    ->Name("BM_SimCoordination/semaphore")
    ->ArgNames({"workers"})->Arg(1)->Arg(2);

void BM_SimQueue(benchmark::State& state) {
  // The parallel FIFO's traffic: a tail-ticket wave (hot), one swap per
  // processor into its own slot (conflict-free), then a head-ticket wave.
  SimBackend b = make_sim_backend(state);
  SimBackend::Cell tail(b, 0);
  SimBackend::Cell head(b, 0);
  std::vector<std::unique_ptr<SimBackend::Cell>> slots;  // cells don't move
  for (std::uint32_t p = 0; p < b.processors(); ++p) {
    slots.push_back(std::make_unique<SimBackend::Cell>(b, 0));
  }
  for (auto _ : state) {
    (void)b.run_wave(full_wave(b, tail, AnyRmw(FetchAdd(1))));
    std::vector<SimBackend::WaveOp> deposit;
    for (std::uint32_t p = 0; p < b.processors(); ++p) {
      deposit.push_back({slots[p].get(), AnyRmw(LssOp::swap(p + 1))});
    }
    (void)b.run_wave(deposit);
    (void)b.run_wave(full_wave(b, head, AnyRmw(FetchAdd(1))));
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimQueue)
    ->Name("BM_SimCoordination/queue")
    ->ArgNames({"workers"})->Arg(1)->Arg(2);

// --- stochastic arrival scenarios (the workload dimension) ------------------
//
// The wave rows above cost the primitives under SIMULTANEOUS arrivals —
// the §4.2 best case. These rows cost the same machine under the paper's
// stochastic arrival models instead, via SimBackend::run_traffic: each
// simulated processor is fed by a src/workload generator (hot-spot
// mixture, on/off bursty, closed-loop with think times), so cycles_per_op
// gains a `scenario` dimension and the per-op latency distribution comes
// out in machine cycles (latency_p50/p99_cycles). Deterministic like the
// waves: fixed seeds, fixed poll order, engine-independent.

template <typename MakeSource>
void sim_scenario_loop(benchmark::State& state, MakeSource make_source) {
  SimBackend b = make_sim_backend(state);
  std::vector<std::unique_ptr<SimBackend::Cell>> cells;  // cells don't move
  for (unsigned i = 0; i < 8; ++i) {
    cells.push_back(std::make_unique<SimBackend::Cell>(b, 0));
  }
  std::uint64_t ops = 0;
  std::uint64_t cycles = 0;
  krs::util::LogHistogram lat;
  for (auto _ : state) {
    std::vector<std::unique_ptr<krs::proc::TrafficSource<AnyRmw>>> sources;
    std::vector<krs::proc::TrafficSource<AnyRmw>*> generators;
    for (std::uint32_t p = 0; p < b.processors(); ++p) {
      sources.push_back(make_source(p));
      generators.push_back(sources.back().get());
    }
    const SimBackend::TrafficResult res = b.run_traffic(generators, 1 << 20);
    ops += res.ops;
    cycles += res.cycles;
    lat.merge(res.latency);
  }
  state.counters["cycles_per_op"] =
      ops > 0 ? static_cast<double>(cycles) / static_cast<double>(ops) : 0.0;
  state.counters["latency_p50_cycles"] = lat.percentile(0.50);
  state.counters["latency_p99_cycles"] = lat.percentile(0.99);
  state.counters["combine_rate"] = b.stats().combine_rate();
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

constexpr std::uint64_t kScenarioOpsPerProc = 256;

AnyRmw make_add(krs::util::Xoshiro256&) { return AnyRmw(FetchAdd(1)); }

void BM_SimScenarioHotspot(benchmark::State& state) {
  // 90% of arrivals hit cell 0, full rate: the Pfister–Norton mixture.
  sim_scenario_loop(state, [](std::uint32_t p) {
    return std::make_unique<krs::workload::HotSpotSource<AnyRmw>>(
        krs::workload::HotSpotSource<AnyRmw>::Params{
            .total = kScenarioOpsPerProc, .hot_fraction = 0.9,
            .hot_addr = 0, .addr_space = 8},
        make_add, 0x5eed0000u + p);
  });
}
BENCHMARK(BM_SimScenarioHotspot)
    ->Name("BM_SimCoordination/scenario_hotspot")
    ->ArgNames({"workers"})->Arg(1);

void BM_SimScenarioUniform(benchmark::State& state) {
  // h = 0: uniform traffic across all eight cells, the contention floor.
  sim_scenario_loop(state, [](std::uint32_t p) {
    return std::make_unique<krs::workload::HotSpotSource<AnyRmw>>(
        krs::workload::HotSpotSource<AnyRmw>::Params{
            .total = kScenarioOpsPerProc, .hot_fraction = 0.0,
            .hot_addr = 0, .addr_space = 8},
        make_add, 0x5eed1000u + p);
  });
}
BENCHMARK(BM_SimScenarioUniform)
    ->Name("BM_SimCoordination/scenario_uniform")
    ->ArgNames({"workers"})->Arg(1);

void BM_SimScenarioBursty(benchmark::State& state) {
  // On/off arrivals, thinned to half rate inside a burst: mean load is
  // modest but the ON-period spikes queue at the hot module — the shape
  // that separates the latency tail from the throughput mean.
  sim_scenario_loop(state, [](std::uint32_t p) {
    return std::make_unique<krs::workload::BurstySource<AnyRmw>>(
        krs::workload::BurstySource<AnyRmw>::Params{
            .total = kScenarioOpsPerProc, .hot_fraction = 0.9,
            .hot_addr = 0, .addr_space = 8, .rate = 0.5,
            .mean_on = 64.0, .mean_off = 64.0},
        make_add, 0x5eed2000u + p);
  });
}
BENCHMARK(BM_SimScenarioBursty)
    ->Name("BM_SimCoordination/scenario_bursty")
    ->ArgNames({"workers"})->Arg(1);

void BM_SimScenarioClosed(benchmark::State& state) {
  // Four logical clients per processor, exponential think times: offered
  // load self-limits with the machine's service time.
  sim_scenario_loop(state, [](std::uint32_t p) {
    return std::make_unique<krs::workload::ClosedLoopSource<AnyRmw>>(
        krs::workload::ClosedLoopSource<AnyRmw>::Params{
            .total = kScenarioOpsPerProc, .clients = 4, .think_mean = 16.0,
            .hot_fraction = 0.9, .hot_addr = 0, .addr_space = 8},
        make_add, 0x5eed3000u + p);
  });
}
BENCHMARK(BM_SimScenarioClosed)
    ->Name("BM_SimCoordination/scenario_closed")
    ->ArgNames({"workers"})->Arg(1);

void BM_SimCounterScale(benchmark::State& state) {
  // The counter hotspot swept over machine size k ∈ {6, 8, 10}
  // (n = 64 … 1024 processors) × combine policy on/off. With combining
  // disabled the switches forward every request unmerged and the hot
  // module serializes all n, so a processor's issue→reply latency grows
  // LINEARLY in n (mean_latency_cycles ≈ n/2 + network transit — the §1
  // hot-spot cost); with it on, requests merge in lg n stages and the
  // latency stays at the 2·lg n + O(1) pipe while cycles_per_op drops by
  // the absorbed fraction. The normalized series rows
  // "counter_scale/k=K/combine={0,1}" pin both curves; §4.2's claim is
  // their widening gap as k grows.
  const auto k = static_cast<unsigned>(state.range(0));
  const bool combine = state.range(1) != 0;
  krs::net::SwitchConfig sw;
  sw.policy = combine ? krs::net::CombinePolicy::kUnlimited
                      : krs::net::CombinePolicy::kNone;
  SimBackend b(SimBackendConfig{
      .log2_procs = k, .engine_workers = 1, .switch_cfg = sw});
  SimBackend::Cell cell(b, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.run_wave(full_wave(b, cell, AnyRmw(FetchAdd(1)))));
  }
  report_sim_counters(state, b);
}
BENCHMARK(BM_SimCounterScale)
    ->Name("BM_SimCoordination/counter_scale")
    ->ArgNames({"k", "combine"})
    ->Args({6, 0})->Args({6, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({10, 0})->Args({10, 1});

// --- barriers ---------------------------------------------------------------

FaaBarrier g_faa_barrier(4);

void BM_FaaBarrier(benchmark::State& state) {
  for (auto _ : state) {
    g_faa_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaBarrier)->Threads(4)->UseRealTime();

std::barrier<> g_std_barrier(4);

void BM_StdBarrier(benchmark::State& state) {
  for (auto _ : state) {
    g_std_barrier.arrive_and_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdBarrier)->Threads(4)->UseRealTime();

// --- readers-writers ----------------------------------------------------------

FaaRwLock g_faa_rw;
long g_rw_value = 0;

void BM_FaaRwLockReadMostly(benchmark::State& state) {
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      g_faa_rw.write_lock();
      ++g_rw_value;
      g_faa_rw.write_unlock();
    } else {
      g_faa_rw.read_lock();
      benchmark::DoNotOptimize(g_rw_value);
      g_faa_rw.read_unlock();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaRwLockReadMostly)->Threads(4)->UseRealTime();

std::shared_mutex g_shared_mutex;

void BM_SharedMutexReadMostly(benchmark::State& state) {
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      std::unique_lock lk(g_shared_mutex);
      ++g_rw_value;
    } else {
      std::shared_lock lk(g_shared_mutex);
      benchmark::DoNotOptimize(g_rw_value);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexReadMostly)->Threads(4)->UseRealTime();

// --- semaphore ----------------------------------------------------------------

FaaSemaphore g_sem(2);

void BM_FaaSemaphore(benchmark::State& state) {
  for (auto _ : state) {
    g_sem.p();
    benchmark::ClobberMemory();
    g_sem.v();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaaSemaphore)->Threads(4)->UseRealTime();

// --- locks ---------------------------------------------------------------------

TicketLock g_ticket;
long g_locked_counter = 0;

void BM_TicketLock(benchmark::State& state) {
  for (auto _ : state) {
    g_ticket.lock();
    benchmark::DoNotOptimize(++g_locked_counter);
    g_ticket.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TicketLock)
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

std::mutex g_plain_mutex;

void BM_StdMutexLock(benchmark::State& state) {
  for (auto _ : state) {
    std::scoped_lock lk(g_plain_mutex);
    benchmark::DoNotOptimize(++g_locked_counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMutexLock)
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// --- queues --------------------------------------------------------------------

ParallelQueue<std::uint64_t> g_pqueue(1024);

void BM_ParallelQueue(benchmark::State& state) {
  // Even threads produce, odd threads consume.
  const bool producer = state.thread_index() % 2 == 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (producer) {
      g_pqueue.enqueue(++v);
    } else {
      benchmark::DoNotOptimize(g_pqueue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParallelQueue)->Threads(2)->Threads(4)->UseRealTime();

class MutexQueue {
 public:
  void enqueue(std::uint64_t v) {
    std::unique_lock lk(m_);
    not_full_.wait(lk, [&] { return q_.size() < 1024; });
    q_.push_back(v);
    not_empty_.notify_one();
  }
  std::uint64_t dequeue() {
    std::unique_lock lk(m_);
    not_empty_.wait(lk, [&] { return !q_.empty(); });
    const auto v = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_, not_empty_;
  std::deque<std::uint64_t> q_;
};

MutexQueue g_mqueue;

void BM_MutexQueue(benchmark::State& state) {
  const bool producer = state.thread_index() % 2 == 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (producer) {
      g_mqueue.enqueue(++v);
    } else {
      benchmark::DoNotOptimize(g_mqueue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexQueue)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
