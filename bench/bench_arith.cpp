// E7 — §5.4 arithmetic combining: affine (2 muls + 1 add per compose) and
// Möbius (2×2 matrix product) throughput, the combined-vs-serial exactness
// of wrapping arithmetic, the guard-bit overflow experiment, and the rate
// at which exact Möbius composition declines (overflow) as chains grow.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/affine.hpp"
#include "core/moebius.hpp"
#include "util/rng.hpp"

using namespace krs::core;

namespace {

void guard_bit_report() {
  std::printf("== E7a: §5.4 guard bits — 16-bit values, 32-bit guarded "
              "intermediates ==\n");
  std::printf("%6s | %10s | %12s | %10s\n", "chain", "trials", "in-range ok",
              "overflow detected");
  krs::util::Xoshiro256 rng(99);
  for (const int n : {2, 4, 8, 16}) {
    int in_range = 0, detected = 0, missed = 0, wrong = 0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
      std::uint32_t exact = rng.below(1 << 12);
      const auto x0 = static_cast<std::uint16_t>(exact);
      AffineMap<std::uint32_t> wide;
      bool serial_overflow = false;
      for (int i = 0; i < n; ++i) {
        const auto a = static_cast<std::uint16_t>(rng.below(1 << 12));
        wide = compose(wide, AffineMap<std::uint32_t>::fetch_add(a));
        exact += a;
        serial_overflow |= exact > 0xffffu;
      }
      const std::uint32_t w = wide.apply(x0);
      if (w <= 0xffffu) {
        (serial_overflow ? wrong : in_range)++;
      } else {
        (serial_overflow ? detected : missed)++;
      }
    }
    std::printf("%6d | %10d | %12d | %10d   (false-clear: %d, "
                "false-alarm: %d)\n",
                n, kTrials, in_range, detected, wrong, missed);
  }
  std::printf("(false-clear must be 0: if the guarded result is in range, "
              "serial execution did not overflow)\n\n");
}

void moebius_decline_report() {
  std::printf("== E7b: exact Möbius combining — how long before 64-bit "
              "coefficients overflow and the switch declines ==\n");
  std::printf("%18s | %14s | %12s\n", "operand magnitude", "median chain",
              "min..max");
  krs::util::Xoshiro256 rng(7);
  for (const std::int64_t mag : {4LL, 64LL, 1024LL, 1LL << 20}) {
    std::vector<int> lens;
    for (int t = 0; t < 200; ++t) {
      Moebius acc = Moebius::identity();
      int len = 0;
      while (len < 10000) {
        const auto k = static_cast<std::int64_t>(1 + rng.below(mag));
        Moebius f = Moebius::identity();
        switch (rng.below(4)) {
          case 0: f = Moebius::fetch_add(k); break;
          case 1: f = Moebius::fetch_mul(k); break;
          case 2: f = Moebius::fetch_div(k); break;
          default: f = Moebius::fetch_rsub(k); break;
        }
        const auto c = try_compose(acc, f);
        if (!c) break;
        acc = *c;
        ++len;
      }
      lens.push_back(len);
    }
    std::sort(lens.begin(), lens.end());
    std::printf("%18lld | %14d | %6d..%d\n", static_cast<long long>(mag),
                lens[lens.size() / 2], lens.front(), lens.back());
  }
  std::printf("(partial combining is always correct — a decline just "
              "forwards the requests uncombined, §7)\n\n");
}

void BM_AffineCompose(benchmark::State& state) {
  krs::util::Xoshiro256 rng(1);
  Affine f(rng.next(), rng.next());
  const Affine g(rng.next(), rng.next());
  for (auto _ : state) benchmark::DoNotOptimize(f = compose(f, g));
}
BENCHMARK(BM_AffineCompose);

void BM_AffineApply(benchmark::State& state) {
  const Affine f(6364136223846793005ULL, 1442695040888963407ULL);
  Word x = 1;
  for (auto _ : state) benchmark::DoNotOptimize(x = f.apply(x));
}
BENCHMARK(BM_AffineApply);

void BM_MoebiusCompose(benchmark::State& state) {
  const Moebius f(3, 1, 0, 2), g(1, 4, 2, 1);
  for (auto _ : state) {
    auto r = try_compose(f, g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MoebiusCompose);

void BM_MoebiusApply(benchmark::State& state) {
  const Moebius f(3, 1, 2, 5);
  const krs::util::Rational x(7, 3);
  for (auto _ : state) benchmark::DoNotOptimize(f.apply(x));
}
BENCHMARK(BM_MoebiusApply);

void BM_AffineChainVsSerial(benchmark::State& state) {
  // Cost of combining a chain of k updates vs applying them serially —
  // the network does the former once per tree edge, memory does one apply.
  const auto k = static_cast<std::size_t>(state.range(0));
  krs::util::Xoshiro256 rng(5);
  std::vector<Affine> ops;
  for (std::size_t i = 0; i < k; ++i) ops.emplace_back(rng.next(), rng.next());
  for (auto _ : state) {
    Affine acc;
    for (const auto& f : ops) acc = compose(acc, f);
    benchmark::DoNotOptimize(acc.apply(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_AffineChainVsSerial)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  guard_bit_report();
  moebius_decline_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
