// E13 — the software combining tree on real threads: shared-counter
// throughput of (a) bare hardware fetch_add, (b) a mutex-protected counter,
// and (c) the software combining tree, across thread counts.
//
// Expected shape (and the honest caveat the Ultracomputer literature
// itself reports): on a machine with a handful of cores, the hardware
// fetch_add wins outright — combining pays off when the interconnect, not
// the cache line, is the bottleneck (thousands of processors, §1). The
// tree's value here is (1) the crossover against the MUTEX baseline under
// contention and (2) demonstrating the §4.2 combining algebra running on
// threads, verified by the distinct-ticket invariant.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>

#include "runtime/combining_tree.hpp"
#include "runtime/fetch_and_op.hpp"
#include "util/bits.hpp"

using namespace krs::runtime;

namespace {

std::atomic<Word> g_atomic{0};

void BM_HardwareFetchAdd(benchmark::State& state) {
  if (state.thread_index() == 0) g_atomic = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_atomic.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareFetchAdd)->Threads(1)->Threads(2)->Threads(4);

std::mutex g_mutex;
Word g_counter = 0;

void BM_MutexCounter(benchmark::State& state) {
  if (state.thread_index() == 0) g_counter = 0;
  for (auto _ : state) {
    std::scoped_lock lk(g_mutex);
    benchmark::DoNotOptimize(++g_counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexCounter)->Threads(1)->Threads(2)->Threads(4);

// One fixed-width tree shared by all thread configurations (allocating it
// inside the benchmark would race with the other worker threads).
CombiningTree<long> g_tree(8, 0);

void BM_CombiningTree(benchmark::State& state) {
  const auto slot = static_cast<unsigned>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tree.fetch_and_op(slot, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombiningTree)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
