// E13 — the software combining trees on real threads: shared-counter
// throughput of (a) bare hardware fetch_add, (b) a mutex-protected
// counter, (c) the blocking mutex/condvar combining tree, and (d) the
// lock-free status-word combining tree, across thread counts.
//
// Expected shape (and the honest caveat the Ultracomputer literature
// itself reports): on a machine with a handful of cores, the hardware
// fetch_add wins outright — combining pays off when the interconnect, not
// the cache line, is the bottleneck (thousands of processors, §1). The
// trees' value here is the crossover against the MUTEX baseline under
// contention, and the lock-free tree's margin over the blocking tree —
// the same four-phase protocol with kernel sleep/wake replaced by local
// spinning (docs/PERFORMANCE.md records the measured trajectory in
// BENCH_combining.json via tools/run_bench.sh).
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>

#include "runtime/combining_tree.hpp"
#include "runtime/fetch_and_op.hpp"
#include "runtime/lock_free_combining_tree.hpp"
#include "util/bits.hpp"

using namespace krs::runtime;

namespace {

constexpr unsigned kTreeWidth = 16;  // supports up to 16 benchmark threads

std::atomic<Word> g_atomic{0};

void BM_HardwareFetchAdd(benchmark::State& state) {
  if (state.thread_index() == 0) g_atomic = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_atomic.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareFetchAdd)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();

std::mutex g_mutex;
Word g_counter = 0;

void BM_MutexCounter(benchmark::State& state) {
  if (state.thread_index() == 0) g_counter = 0;
  for (auto _ : state) {
    std::scoped_lock lk(g_mutex);
    benchmark::DoNotOptimize(++g_counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexCounter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();

// One fixed-width tree per implementation, shared by all thread
// configurations (allocating inside the benchmark would race with the
// other worker threads). Both satisfy CombiningCounter, so one templated
// body measures either.
BlockingCombiningTree<long> g_blocking_tree(kTreeWidth, 0);
LockFreeCombiningTree<long> g_lockfree_tree(kTreeWidth, 0);

template <typename Tree>
void BM_CombiningTree(benchmark::State& state, Tree& tree) {
  const auto slot = static_cast<unsigned>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.fetch_and_op(slot, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CombiningTree, blocking, g_blocking_tree)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_CombiningTree, lockfree, g_lockfree_tree)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
