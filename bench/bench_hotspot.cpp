// E11 — the hot-spot experiment (Pfister & Norton [20], Lee–Kruskal–Kuck
// [16]) that motivates combining (§1): sweep the fraction h of references
// aimed at one shared cell, for combining and non-combining networks, at
// several machine sizes; report mean latency, p99-ish latency bound,
// throughput, and combining counts. Every run is verified serializable.
//
// The paper's qualitative claims to look for in the output:
//  * without combining, even a few percent of hot references degrades the
//    WHOLE machine (uniform traffic suffers too — tree saturation);
//  * with combining, latency stays near the uniform baseline all the way
//    to a 100% hot spot;
//  * the gap widens with machine size.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;

namespace {

struct Row {
  double mean_latency;
  std::uint64_t p99;
  double throughput;
  std::uint64_t combines;
  std::uint64_t cycles;
  std::uint64_t messages;
  std::uint64_t bytes;
};

Row run(unsigned log2_procs, double hot, net::CombinePolicy policy,
        std::uint64_t per_proc, bool module_combining = false) {
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = log2_procs;
  cfg.switch_cfg.policy = policy;
  cfg.mem_cfg.combine_in_queue = module_combining;
  cfg.window = 4;
  const std::uint32_t n = 1u << log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = per_proc;
    params.hot_fraction = hot;
    params.hot_addr = 3;
    params.addr_space = 1u << 16;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256& r) { return FetchAdd(r.below(100)); },
        0xBEEF + p));
  }
  sim::Machine<FetchAdd> m(cfg, std::move(src));
  if (!m.run(50'000'000)) {
    std::fprintf(stderr, "machine did not drain\n");
    std::exit(1);
  }
  const auto check = verify::check_machine(m, 0);
  if (!check.ok) {
    std::fprintf(stderr, "CHECKER FAILED: %s\n", check.error.c_str());
    std::exit(1);
  }
  const auto s = m.stats();
  return {s.latency.mean(),
          s.latency.quantile_bound(0.99),
          s.throughput_ops_per_cycle,
          s.combines,
          s.cycles,
          s.request_messages,
          s.request_bytes};
}

void sweep(unsigned log2_procs, std::uint64_t per_proc) {
  const std::uint32_t n = 1u << log2_procs;
  std::printf("---- %u processors, %u modules, %u stages, %llu refs/proc "
              "----\n",
              n, n, log2_procs, static_cast<unsigned long long>(per_proc));
  std::printf("%7s | %30s | %30s\n", "", "no combining", "combining");
  std::printf("%7s | %9s %8s %10s | %9s %8s %10s %9s\n", "hot %", "lat",
              "p99<=", "ops/cyc", "lat", "p99<=", "ops/cyc", "combines");
  for (const double hot : {0.0, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64,
                           1.0}) {
    const Row a = run(log2_procs, hot, net::CombinePolicy::kNone, per_proc);
    const Row b =
        run(log2_procs, hot, net::CombinePolicy::kUnlimited, per_proc);
    std::printf("%6.1f%% | %9.1f %8llu %10.3f | %9.1f %8llu %10.3f %9llu\n",
                hot * 100, a.mean_latency,
                static_cast<unsigned long long>(a.p99), a.throughput,
                b.mean_latency, static_cast<unsigned long long>(b.p99),
                b.throughput, static_cast<unsigned long long>(b.combines));
  }
  std::printf("\n");
}

void pairwise_ablation(unsigned log2_procs) {
  std::printf("---- ablation: combining degree (pure hot spot, %u procs) "
              "----\n",
              1u << log2_procs);
  std::printf("%-22s %9s %10s %10s %12s %12s\n", "policy", "lat", "ops/cyc",
              "combines", "link msgs", "link bytes");
  const struct {
    const char* name;
    net::CombinePolicy policy;
  } policies[] = {
      {"none", net::CombinePolicy::kNone},
      {"pairwise (NYU switch)", net::CombinePolicy::kPairwise},
      {"unlimited fan-in", net::CombinePolicy::kUnlimited},
  };
  for (const auto& p : policies) {
    const Row r = run(log2_procs, 1.0, p.policy, 128);
    std::printf("%-22s %9.1f %10.3f %10llu %12llu %12llu\n", p.name,
                r.mean_latency, r.throughput,
                static_cast<unsigned long long>(r.combines),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes));
  }
  // §7's bus variant: no combining in the network, only in the module's
  // input FIFO — cheaper hardware, intermediate benefit.
  const Row mq = run(log2_procs, 1.0, net::CombinePolicy::kNone, 128, true);
  std::printf("%-22s %9.1f %10.3f %10s %12llu %12llu\n",
              "module FIFO only (§7)", mq.mean_latency, mq.throughput, "-",
              static_cast<unsigned long long>(mq.messages),
              static_cast<unsigned long long>(mq.bytes));
  std::printf("(combining also REDUCES total network traffic: merged "
              "requests traverse the remaining stages once)\n\n");
}

}  // namespace

// Tree-saturation profile (Pfister–Norton's mechanism made visible): the
// per-stage stall counts under a pure hot spot, with and without combining.
void saturation_profile(unsigned log2_procs) {
  std::printf("---- tree saturation profile (pure hot spot, %u procs) "
              "----\n",
              1u << log2_procs);
  for (const auto policy :
       {net::CombinePolicy::kNone, net::CombinePolicy::kUnlimited}) {
    sim::MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = log2_procs;
    cfg.switch_cfg.policy = policy;
    cfg.window = 4;
    const std::uint32_t n = 1u << log2_procs;
    std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
    for (std::uint32_t p = 0; p < n; ++p) {
      src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
          3, 128, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
    }
    sim::Machine<FetchAdd> m(cfg, std::move(src));
    m.run(50'000'000);
    std::printf("%-12s stalls/stage:",
                policy == net::CombinePolicy::kNone ? "none" : "combining");
    for (unsigned s = 0; s < log2_procs; ++s) {
      std::uint64_t stalls = 0;
      for (std::uint32_t row = 0; row < n / 2; ++row) {
        stalls += m.switch_stats(s, row).stalls;
      }
      std::printf(" %8llu", static_cast<unsigned long long>(stalls));
    }
    std::printf("\n");
  }
  std::printf("(without combining, back-pressure from the hot module fills "
              "queues all the way back to stage 0 — the whole machine "
              "suffers; with combining the tree never saturates)\n\n");
}

int main() {
  std::printf("== E11: hot-spot contention and combining ==\n\n");
  sweep(3, 256);
  sweep(4, 256);
  sweep(5, 192);
  sweep(6, 128);
  pairwise_ablation(5);
  saturation_profile(5);
  return 0;
}
