// E16 (extension of §7) — combining on a direct-connection machine: the
// cosmic-cube-style hypercube where each node is processor + memory +
// router. Hot-spot sweep with combining on/off; link-hop counts show the
// traffic reduction; every run checked serializable.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/hypercube_machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;

namespace {

struct Row {
  double latency;
  double throughput;
  std::uint64_t combines;
  std::uint64_t hops;
};

Row run(unsigned dims, double hot, net::CombinePolicy policy) {
  sim::HypercubeConfig<FetchAdd> cfg;
  cfg.dimensions = dims;
  cfg.policy = policy;
  const std::uint32_t n = 1u << dims;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t u = 0; u < n; ++u) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = 192;
    params.hot_fraction = hot;
    params.hot_addr = 3;
    params.addr_space = 1u << 16;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256& r) { return FetchAdd(r.below(100)); },
        0xD1CE + u));
  }
  sim::HypercubeMachine<FetchAdd> m(cfg, std::move(src));
  if (!m.run(50'000'000)) {
    std::fprintf(stderr, "hypercube did not drain\n");
    std::exit(1);
  }
  const auto check = verify::check_machine(m, 0);
  if (!check.ok) {
    std::fprintf(stderr, "CHECKER FAILED: %s\n", check.error.c_str());
    std::exit(1);
  }
  const auto s = m.stats();
  return {s.latency.mean(), s.throughput_ops_per_cycle, s.combines, s.hops};
}

}  // namespace

int main() {
  std::printf("== E16: §7 — combining on a cosmic-cube-style hypercube ==\n");
  std::printf("(processors act as switches; node memories form the "
              "distributed shared memory)\n\n");
  for (const unsigned dims : {3u, 4u, 5u}) {
    std::printf("---- %u-cube (%u nodes) ----\n", dims, 1u << dims);
    std::printf("%7s | %24s | %24s\n", "", "no combining", "combining");
    std::printf("%7s | %9s %9s %9s | %9s %9s %9s\n", "hot %", "lat",
                "ops/cyc", "hops", "lat", "ops/cyc", "hops");
    for (const double hot : {0.0, 0.05, 0.2, 0.5, 1.0}) {
      const Row a = run(dims, hot, net::CombinePolicy::kNone);
      const Row b = run(dims, hot, net::CombinePolicy::kUnlimited);
      std::printf("%6.0f%% | %9.1f %9.3f %9llu | %9.1f %9.3f %9llu\n",
                  hot * 100, a.latency, a.throughput,
                  static_cast<unsigned long long>(a.hops), b.latency,
                  b.throughput, static_cast<unsigned long long>(b.hops));
    }
    std::printf("\n");
  }
  std::printf("(same shape as the Omega machine: combining flattens the "
              "hot-spot latency curve AND cuts link traffic — the §7 claim "
              "that the mechanism carries over to direct networks)\n");
  return 0;
}
