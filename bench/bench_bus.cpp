// E15 (extension of §7) — combining in the memory FIFO of a bus-based
// multiprocessor: "Combining in this queue will improve the memory
// throughput by reducing conflicting accesses to the same memory bank."
// Sweep bank count, bank speed, and hot-spot fraction with queue combining
// on and off; every run checked serializable.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/bus_machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;

namespace {

struct Row {
  std::uint64_t cycles;
  double throughput;
  double latency;
  std::uint64_t combines;
};

Row run(std::uint32_t banks, core::Tick service_interval, double hot,
        bool combining) {
  sim::BusMachineConfig<FetchAdd> cfg;
  cfg.processors = 16;
  cfg.banks = banks;
  cfg.bank_cfg.service_interval = service_interval;
  cfg.bank_cfg.combine_in_queue = combining;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < cfg.processors; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = 256;
    params.hot_fraction = hot;
    params.hot_addr = 1;
    params.addr_space = 4096;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256& r) { return FetchAdd(r.below(10)); },
        0xBEE + p));
  }
  sim::BusMachine<FetchAdd> m(cfg, std::move(src));
  if (!m.run(50'000'000)) {
    std::fprintf(stderr, "bus machine did not drain\n");
    std::exit(1);
  }
  const auto check = verify::check_machine(m, 0);
  if (!check.ok) {
    std::fprintf(stderr, "CHECKER FAILED: %s\n", check.error.c_str());
    std::exit(1);
  }
  const auto s = m.stats();
  return {s.cycles, s.throughput_ops_per_cycle, s.latency.mean(),
          s.queue_combines};
}

}  // namespace

int main() {
  std::printf("== E15: §7 — combining in the bus-side memory FIFO ==\n");
  std::printf("16 processors on one bus, 256 refs each; banks are %s\n\n",
              "interleaved and slower than the bus");

  for (const core::Tick svc : {2, 4, 8}) {
    std::printf("---- bank service time = %llu bus cycles ----\n",
                static_cast<unsigned long long>(svc));
    std::printf("%6s %7s | %22s | %22s\n", "banks", "hot %", "FIFO combining off",
                "FIFO combining on");
    std::printf("%6s %7s | %10s %11s | %10s %11s %9s\n", "", "", "ops/cyc",
                "lat", "ops/cyc", "lat", "combines");
    for (const std::uint32_t banks : {2u, 4u, 8u}) {
      for (const double hot : {0.0, 0.5, 1.0}) {
        const Row off = run(banks, svc, hot, false);
        const Row on = run(banks, svc, hot, true);
        std::printf("%6u %6.0f%% | %10.3f %11.1f | %10.3f %11.1f %9llu\n",
                    banks, hot * 100, off.throughput, off.latency,
                    on.throughput, on.latency,
                    static_cast<unsigned long long>(on.combines));
      }
    }
    std::printf("\n");
  }
  std::printf("(queue combining recovers throughput exactly where §7 says: "
              "slow banks + conflicting accesses; at hot=0%% with many fast "
              "banks it is neutral)\n");
  return 0;
}
