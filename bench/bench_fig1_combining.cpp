// E1 — Figure 1 regenerated: two fetch-and-add requests combine at a
// switch; the trace below prints the exact messages of the figure, then the
// same scenario is driven through the full simulated machine and verified.
// The google-benchmark section times the switch's combine+decombine cycle.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/combining.hpp"
#include "core/fetch_theta.hpp"
#include "net/switch.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;
using core::Word;

namespace {

void figure1_trace() {
  std::printf("== E1: Figure 1 — combining two RMW requests ==\n\n");
  const Word at_addr = 1000;
  core::Request<FetchAdd> first{{1, 0}, 0x7, FetchAdd(5)};
  core::Request<FetchAdd> second{{2, 0}, 0x7, FetchAdd(7)};
  std::printf("P1 sends  <id1, addr, f>  =  <P1#0, 0x7, %s>\n",
              first.f.to_string().c_str());
  std::printf("P2 sends  <id2, addr, g>  =  <P2#0, 0x7, %s>\n",
              second.f.to_string().c_str());
  const auto rec = core::try_combine(first, second);
  std::printf("switch forwards <id1, addr, f∘g> = <P1#0, 0x7, %s>, saves "
              "(id1, id2, f)\n",
              first.f.to_string().c_str());
  std::printf("memory: @addr = %llu, becomes g(f(@addr)) = %llu, replies "
              "<id1, %llu>\n",
              static_cast<unsigned long long>(at_addr),
              static_cast<unsigned long long>(first.f.apply(at_addr)),
              static_cast<unsigned long long>(at_addr));
  std::printf("switch decombines: <id1, %llu> to P1, <id2, f(%llu)> = "
              "<id2, %llu> to P2\n\n",
              static_cast<unsigned long long>(at_addr),
              static_cast<unsigned long long>(at_addr),
              static_cast<unsigned long long>(core::decombine(*rec, at_addr)));
}

void machine_scenario() {
  std::printf("== the same scenario through the cycle-level machine ==\n");
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 2;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::deque<workload::ScriptedSource<FetchAdd>::Item> items;
    if (p == 1) items.push_back({0, 0x7, FetchAdd(5)});
    if (p == 2) items.push_back({0, 0x7, FetchAdd(7)});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchAdd>>(std::move(items)));
  }
  cfg.initial_value = 1000;
  sim::Machine<FetchAdd> m(cfg, std::move(src));
  m.run(1000);
  for (const auto& op : m.completed()) {
    std::printf("  P%u got reply %llu (issued %s)\n", op.id.proc,
                static_cast<unsigned long long>(op.reply),
                op.f.to_string().c_str());
  }
  std::printf("  memory ends at %llu; combines in network: %llu; "
              "checker: %s\n\n",
              static_cast<unsigned long long>(m.value_at(0x7)),
              static_cast<unsigned long long>(m.stats().combines),
              verify::check_machine(m, 1000).ok ? "PASS" : "FAIL");
}

void BM_SwitchCombineDecombine(benchmark::State& state) {
  net::CombiningSwitch<FetchAdd> sw;
  std::vector<net::CombineEvent> ev;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    net::FwdPacket<FetchAdd> a, b;
    a.req = core::Request<FetchAdd>{{1, seq}, 7, FetchAdd(5)};
    b.req = core::Request<FetchAdd>{{2, seq}, 7, FetchAdd(7)};
    sw.offer_request(std::move(a), 0, 0, &ev);
    sw.offer_request(std::move(b), 1, 0, &ev);
    auto fwd = sw.pop_output(0);
    net::RevPacket<FetchAdd> rev;
    rev.reply = core::Reply<FetchAdd>{fwd.req.id, 1000, 0};
    rev.path = fwd.path;
    sw.accept_reply(std::move(rev));
    benchmark::DoNotOptimize(sw.pop_reply(0));
    benchmark::DoNotOptimize(sw.pop_reply(1));
    ev.clear();
    ++seq;
  }
}
BENCHMARK(BM_SwitchCombineDecombine);

}  // namespace

int main(int argc, char** argv) {
  figure1_trace();
  machine_scenario();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
