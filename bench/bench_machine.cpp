// E14 — whole-machine simulation throughput: the cycle-accurate Omega
// machine on the sequential engine vs the shard-parallel engine
// (sim/engine.hpp) at matched workloads. Parallel runs are bit-identical
// to sequential ones (the determinism suite enforces it), so this is a
// pure same-answer-faster measurement: simulated ops per wall second,
// with cycles/op and the combine rate carried as counters so the
// normalized BENCH_machine.json can track simulator-level behavior
// alongside wall-clock speedup (tools/run_bench.sh, harness/normalize.py).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/machine.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs;
using core::FetchAdd;

constexpr core::Tick kMaxCycles = 10000000;
constexpr std::uint64_t kOpsPerProc = 400;

sim::Machine<FetchAdd> make_machine(unsigned log2_procs) {
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = log2_procs;
  cfg.window = 8;
  const std::uint32_t n = 1u << log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  src.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = kOpsPerProc;
    params.hot_fraction = 0.2;
    params.hot_addr = 0;
    params.addr_space = 4096;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params,
        [](util::Xoshiro256& r) { return FetchAdd(r.below(16)); },
        12345u * 7919u + p));
  }
  return {cfg, std::move(src)};
}

void report(benchmark::State& state, std::uint64_t ops, std::uint64_t cycles,
            std::uint64_t combines) {
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["cycles_per_op"] = ops != 0
      ? static_cast<double>(cycles) / static_cast<double>(ops)
      : 0.0;
  state.counters["combine_rate"] = ops != 0
      ? static_cast<double>(combines) / static_cast<double>(ops)
      : 0.0;
}

void BM_MachineSeq(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  std::uint64_t ops = 0;
  std::uint64_t cycles = 0;
  std::uint64_t combines = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      auto m = make_machine(k);
      state.ResumeTiming();
      const bool drained = m.run(kMaxCycles);
      state.PauseTiming();
      benchmark::DoNotOptimize(drained);
      const auto st = m.stats();
      ops += st.ops_completed;
      cycles += st.cycles;
      combines += st.combines;
    }
    state.ResumeTiming();
  }
  report(state, ops, cycles, combines);
}
BENCHMARK(BM_MachineSeq)
    ->ArgNames({"k"})->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MachinePar(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const auto workers = static_cast<unsigned>(state.range(1));
  std::uint64_t ops = 0;
  std::uint64_t cycles = 0;
  std::uint64_t combines = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      auto m = make_machine(k);
      state.ResumeTiming();
      const bool drained = m.run_parallel(kMaxCycles, workers);
      state.PauseTiming();
      benchmark::DoNotOptimize(drained);
      const auto st = m.stats();
      ops += st.ops_completed;
      cycles += st.cycles;
      combines += st.combines;
    }
    state.ResumeTiming();
  }
  report(state, ops, cycles, combines);
}
BENCHMARK(BM_MachinePar)
    ->ArgNames({"k", "workers"})
    ->Args({6, 2})->Args({6, 4})->Args({6, 8})
    ->Args({8, 2})->Args({8, 4})->Args({8, 8})
    ->Args({10, 2})->Args({10, 4})->Args({10, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
