// The sharding payoff curve: the same counter hotspot through
// ShardedBackend<Inner> at S ∈ {1, 4, 8} shards, per inner substrate
// (hardware atomic, combining tree, flat combiner) and thread count
// ∈ {1, 2, 4, 8}. All variants run through the sharded wrapper — the
// S = 1 row ("single") pays identical routing overhead, so the
// s:S / single quotient isolates the SHARDING effect, not the wrapper.
//
// The normalized output pairs BM_Sharded/<inner>/s:S against
// BM_Sharded/<inner>/single per thread count into the
// `sharded_vs_single_ops_ratio` series (> 1.0: spreading the hot spot
// wins). Read it against `host_cpus`. On a single-core runner only the
// atomic inner clears 1.0 (it has no contention management of its own,
// so splitting the hot word pays even under timeslicing); the tree and
// flat inners ALREADY absorb the hot spot by combining, so sharding
// them is roughly a wash there — combining and interleaving are the
// paper's two alternative remedies for the same congestion, and this
// quotient measures one against a substrate that applies the other.
// The cache-line-spread payoff for the combining inners needs a
// genuinely multi-core host (see ROADMAP: multicore numbers remain).
//
// Tail accounting: every 16th operation is individually timed and fed a
// thread-local util::LogHistogram; each thread reports its reservoir's
// p50/p99/p999 as kAvgThreads counters (the cross-thread average of
// per-thread tails), which normalize.py lifts into the
// `tail_latency_p99` series. Sampling (rather than timing every op)
// keeps the clock out of 15/16ths of the measured loop.
#include <benchmark/benchmark.h>

#include <chrono>

#include "runtime/combining_backend.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/sharded_backend.hpp"
#include "util/stats.hpp"

using namespace krs::runtime;

namespace {

using Clock = std::chrono::steady_clock;

template <typename B>
void sharded_loop(benchmark::State& state, B& backend,
                  typename B::Cell& cell) {
  krs::util::LogHistogram lat;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if ((i++ & 15u) == 0) {
      const auto t0 = Clock::now();
      benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
      const auto t1 = Clock::now();
      lat.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    } else {
      benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
    }
  }
  state.SetItemsProcessed(state.iterations());
  using benchmark::Counter;
  state.counters["latency_p50_ns"] =
      Counter(lat.percentile(0.50), Counter::kAvgThreads);
  state.counters["latency_p99_ns"] =
      Counter(lat.percentile(0.99), Counter::kAvgThreads);
  state.counters["latency_p999_ns"] =
      Counter(lat.percentile(0.999), Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    state.counters["shard_max_share"] =
        Counter(backend.cell_stats(cell).max_share());
  }
}

// One backend + cell per (inner, shards) rig, shared across thread counts
// like the other cross-substrate benches. Inner widths are sized to the
// largest thread count (8) so the combining structures never alias more
// threads than they were built for.
ShardedBackend<AtomicBackend> g_atomic_s1{AtomicBackend{}, 1};
ShardedBackend<AtomicBackend> g_atomic_s4{AtomicBackend{}, 4};
ShardedBackend<AtomicBackend> g_atomic_s8{AtomicBackend{}, 8};
ShardedBackend<CombiningBackend> g_tree_s1{CombiningBackend{8}, 1};
ShardedBackend<CombiningBackend> g_tree_s4{CombiningBackend{8}, 4};
ShardedBackend<CombiningBackend> g_tree_s8{CombiningBackend{8}, 8};
ShardedBackend<FlatCombiningBackend> g_flat_s1{FlatCombiningBackend{8}, 1};
ShardedBackend<FlatCombiningBackend> g_flat_s4{FlatCombiningBackend{8}, 4};
ShardedBackend<FlatCombiningBackend> g_flat_s8{FlatCombiningBackend{8}, 8};

ShardedBackend<AtomicBackend>::Cell g_atomic_s1_cell(g_atomic_s1, 0);
ShardedBackend<AtomicBackend>::Cell g_atomic_s4_cell(g_atomic_s4, 0);
ShardedBackend<AtomicBackend>::Cell g_atomic_s8_cell(g_atomic_s8, 0);
ShardedBackend<CombiningBackend>::Cell g_tree_s1_cell(g_tree_s1, 0);
ShardedBackend<CombiningBackend>::Cell g_tree_s4_cell(g_tree_s4, 0);
ShardedBackend<CombiningBackend>::Cell g_tree_s8_cell(g_tree_s8, 0);
ShardedBackend<FlatCombiningBackend>::Cell g_flat_s1_cell(g_flat_s1, 0);
ShardedBackend<FlatCombiningBackend>::Cell g_flat_s4_cell(g_flat_s4, 0);
ShardedBackend<FlatCombiningBackend>::Cell g_flat_s8_cell(g_flat_s8, 0);

#define KRS_SHARDED_BENCH(fn, rig, cell, bench_name)            \
  void fn(benchmark::State& state) {                            \
    sharded_loop(state, rig, cell);                             \
  }                                                             \
  BENCHMARK(fn)                                                 \
      ->Name(bench_name)                                        \
      ->Threads(1)->Threads(2)->Threads(4)->Threads(8)          \
      ->UseRealTime()

KRS_SHARDED_BENCH(BM_ShardedAtomicS1, g_atomic_s1, g_atomic_s1_cell,
                  "BM_Sharded/atomic/single");
KRS_SHARDED_BENCH(BM_ShardedAtomicS4, g_atomic_s4, g_atomic_s4_cell,
                  "BM_Sharded/atomic/s:4");
KRS_SHARDED_BENCH(BM_ShardedAtomicS8, g_atomic_s8, g_atomic_s8_cell,
                  "BM_Sharded/atomic/s:8");
KRS_SHARDED_BENCH(BM_ShardedTreeS1, g_tree_s1, g_tree_s1_cell,
                  "BM_Sharded/tree/single");
KRS_SHARDED_BENCH(BM_ShardedTreeS4, g_tree_s4, g_tree_s4_cell,
                  "BM_Sharded/tree/s:4");
KRS_SHARDED_BENCH(BM_ShardedTreeS8, g_tree_s8, g_tree_s8_cell,
                  "BM_Sharded/tree/s:8");
KRS_SHARDED_BENCH(BM_ShardedFlatS1, g_flat_s1, g_flat_s1_cell,
                  "BM_Sharded/flat/single");
KRS_SHARDED_BENCH(BM_ShardedFlatS4, g_flat_s4, g_flat_s4_cell,
                  "BM_Sharded/flat/s:4");
KRS_SHARDED_BENCH(BM_ShardedFlatS8, g_flat_s8, g_flat_s8_cell,
                  "BM_Sharded/flat/s:8");

#undef KRS_SHARDED_BENCH

}  // namespace

BENCHMARK_MAIN();
