// E12 — §2: memory-side vs processor-side RMW implementation.
//
// Memory-side: two messages per operation, the module busy one cycle,
// requests combinable in the network. Processor-side: a read-lock / local
// update / write-unlock extended cycle — three messages, the module locked
// (refusing other lock requests) for the whole round trip, nothing
// combinable. The paper: "The second implementation method seems
// preferable in large shared-memory multiprocessors." This bench measures
// how much, as contention and machine size grow.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;

namespace {

struct Row {
  std::uint64_t cycles;
  double latency;
  double throughput;
  bool atomic_ok;
};

Row run(unsigned log2_procs, bool processor_side, double hot,
        net::CombinePolicy policy, std::uint64_t per_proc) {
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = log2_procs;
  cfg.processor_side_rmw = processor_side;
  cfg.switch_cfg.policy = policy;
  const std::uint32_t n = 1u << log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = per_proc;
    params.hot_fraction = hot;
    params.hot_addr = 3;
    params.addr_space = 1u << 14;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256&) { return FetchAdd(1); }, 7777 + p));
  }
  sim::Machine<FetchAdd> m(cfg, std::move(src));
  if (!m.run(100'000'000)) {
    std::fprintf(stderr, "machine did not drain\n");
    std::exit(1);
  }
  // Atomicity check: replies to hot-cell increments must be distinct.
  std::set<core::Word> hot_replies;
  std::uint64_t hot_ops = 0;
  for (const auto& op : m.completed()) {
    if (op.addr == 3) {
      hot_replies.insert(op.reply);
      ++hot_ops;
    }
  }
  bool ok = hot_replies.size() == hot_ops && m.value_at(3) == hot_ops;
  if (!processor_side) ok = ok && verify::check_machine(m, 0).ok;
  const auto s = m.stats();
  return {s.cycles, s.latency.mean(), s.throughput_ops_per_cycle, ok};
}

}  // namespace

int main() {
  std::printf("== E12: memory-side vs processor-side RMW (§2) ==\n\n");
  for (const unsigned k : {3u, 4u, 5u}) {
    std::printf("---- %u processors ----\n", 1u << k);
    std::printf("%7s | %-26s | %-26s | %-26s\n", "",
                "proc-side (3 msgs + lock)", "mem-side, no combining",
                "mem-side + combining");
    std::printf("%7s | %10s %13s | %10s %13s | %10s %13s\n", "hot %", "lat",
                "ops/cyc", "lat", "ops/cyc", "lat", "ops/cyc");
    for (const double hot : {0.0, 0.25, 1.0}) {
      const Row ps = run(k, true, hot, net::CombinePolicy::kNone, 64);
      const Row msn = run(k, false, hot, net::CombinePolicy::kNone, 64);
      const Row msc = run(k, false, hot, net::CombinePolicy::kUnlimited, 64);
      std::printf("%6.0f%% | %10.1f %13.3f | %10.1f %13.3f | %10.1f %13.3f"
                  "   %s\n",
                  hot * 100, ps.latency, ps.throughput, msn.latency,
                  msn.throughput, msc.latency, msc.throughput,
                  (ps.atomic_ok && msn.atomic_ok && msc.atomic_ok)
                      ? "[atomicity ok]"
                      : "[ATOMICITY VIOLATED]");
    }
    std::printf("\n");
  }
  std::printf("(the paper's message-count argument: 2 vs 3 messages shows "
              "up at hot=0; the module-locking serial bottleneck dominates "
              "as the hot fraction grows; combining only exists on the "
              "memory-side path)\n");
  return 0;
}
