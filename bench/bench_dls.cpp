// E9 — §5.6 data-level synchronization: the |S| bound on store values
// carried by combined requests (attained by the store-if-state=s family),
// encoding sizes across state-set sizes, and composition throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/dls.hpp"
#include "util/rng.hpp"

using namespace krs::core;

namespace {

template <unsigned N>
DlsOp<N> random_op(krs::util::Xoshiro256& rng) {
  const auto guard = static_cast<std::uint16_t>(rng.below(1u << N));
  std::array<std::uint8_t, N> next{};
  for (auto& s : next) s = static_cast<std::uint8_t>(rng.below(N));
  if (rng.chance(0.5)) {
    return DlsOp<N>::guarded_store(rng.below(1000), guard, next);
  }
  return DlsOp<N>::guarded_load(guard, next);
}

template <unsigned N>
void bound_sweep() {
  krs::util::Xoshiro256 rng(N);
  unsigned max_vals = 0;
  double sum_vals = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    DlsOp<N> acc = DlsOp<N>::identity();
    const int chain = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < chain; ++i) acc = compose(acc, random_op<N>(rng));
    max_vals = std::max(max_vals, acc.distinct_store_values());
    sum_vals += acc.distinct_store_values();
  }
  // The worst case: store-if-state=s of distinct values for every state.
  DlsOp<N> worst = DlsOp<N>::identity();
  for (unsigned s = 0; s < N; ++s) {
    std::array<std::uint8_t, N> stay{};
    for (unsigned i = 0; i < N; ++i) stay[i] = static_cast<std::uint8_t>(i);
    worst = compose(worst, DlsOp<N>::guarded_store(
                               1000 + s, static_cast<std::uint16_t>(1u << s),
                               stay));
  }
  std::printf("%8u | %10u | %10.2f | %14u | %10zu\n", N, max_vals,
              sum_vals / kTrials, worst.distinct_store_values(),
              worst.encoded_size_bytes());
}

void report() {
  std::printf("== E9: §5.6 — combined requests carry at most |S| store "
              "values ==\n");
  std::printf("%8s | %10s | %10s | %14s | %10s\n", "|S|", "max seen",
              "mean seen", "worst attained", "enc bytes");
  bound_sweep<2>();
  bound_sweep<4>();
  bound_sweep<8>();
  bound_sweep<16>();
  std::printf("(\"2^m is the best possible uniform bound\": the worst case "
              "is attained by store-if-state=s ops, and the encoding grows "
              "with |S| — tractable only for small state sets)\n\n");
}

void BM_DlsCompose4(benchmark::State& state) {
  krs::util::Xoshiro256 rng(4);
  const auto f = random_op<4>(rng), g = random_op<4>(rng);
  for (auto _ : state) benchmark::DoNotOptimize(compose(f, g));
}
BENCHMARK(BM_DlsCompose4);

void BM_DlsCompose16(benchmark::State& state) {
  krs::util::Xoshiro256 rng(16);
  const auto f = random_op<16>(rng), g = random_op<16>(rng);
  for (auto _ : state) benchmark::DoNotOptimize(compose(f, g));
}
BENCHMARK(BM_DlsCompose16);

void BM_DlsApply4(benchmark::State& state) {
  krs::util::Xoshiro256 rng(8);
  const auto f = random_op<4>(rng);
  DlsCell c{5, 1};
  for (auto _ : state) benchmark::DoNotOptimize(c = f.apply(c));
}
BENCHMARK(BM_DlsApply4);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
