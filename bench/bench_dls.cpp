// E9 — §5.6 data-level synchronization: the |S| bound on store values
// carried by combined requests (attained by the store-if-state=s family),
// encoding sizes across state-set sizes, composition throughput — and the
// automaton SERVED: BM_DlsProtocol drives the producer/consumer path
// expression through real RMW substrates (guarded ops ack/nack like any
// other AnyRmw member), BM_DlsWave pins the §5.6 wire-budget decline as a
// deterministic partial-combining rate through the tree.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/any_rmw.hpp"
#include "core/dls.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/dls_service.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/rmw_backend.hpp"
#include "util/rng.hpp"
#include "workload/path_scenarios.hpp"

using namespace krs::core;
namespace rt = krs::runtime;

namespace {

template <unsigned N>
DlsOp<N> random_op(krs::util::Xoshiro256& rng) {
  const auto guard = static_cast<std::uint16_t>(rng.below(1u << N));
  std::array<std::uint8_t, N> next{};
  for (auto& s : next) s = static_cast<std::uint8_t>(rng.below(N));
  if (rng.chance(0.5)) {
    return DlsOp<N>::guarded_store(rng.below(1000), guard, next);
  }
  return DlsOp<N>::guarded_load(guard, next);
}

template <unsigned N>
void bound_sweep() {
  krs::util::Xoshiro256 rng(N);
  unsigned max_vals = 0;
  double sum_vals = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    DlsOp<N> acc = DlsOp<N>::identity();
    const int chain = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < chain; ++i) acc = compose(acc, random_op<N>(rng));
    max_vals = std::max(max_vals, acc.distinct_store_values());
    sum_vals += acc.distinct_store_values();
  }
  // The worst case: store-if-state=s of distinct values for every state.
  DlsOp<N> worst = DlsOp<N>::identity();
  for (unsigned s = 0; s < N; ++s) {
    std::array<std::uint8_t, N> stay{};
    for (unsigned i = 0; i < N; ++i) stay[i] = static_cast<std::uint8_t>(i);
    worst = compose(worst, DlsOp<N>::guarded_store(
                               1000 + s, static_cast<std::uint16_t>(1u << s),
                               stay));
  }
  std::fprintf(stderr, "%8u | %10u | %10.2f | %14u | %10zu\n", N, max_vals,
              sum_vals / kTrials, worst.distinct_store_values(),
              worst.encoded_size_bytes());
}

void report() {
  std::fprintf(stderr, "== E9: §5.6 — combined requests carry at most |S| store "
              "values ==\n");
  std::fprintf(stderr, "%8s | %10s | %10s | %14s | %10s\n", "|S|", "max seen",
              "mean seen", "worst attained", "enc bytes");
  bound_sweep<2>();
  bound_sweep<4>();
  bound_sweep<8>();
  bound_sweep<16>();
  std::fprintf(stderr, "(\"2^m is the best possible uniform bound\": the worst case "
              "is attained by store-if-state=s ops, and the encoding grows "
              "with |S| — tractable only for small state sets)\n\n");
}

void BM_DlsCompose4(benchmark::State& state) {
  krs::util::Xoshiro256 rng(4);
  const auto f = random_op<4>(rng), g = random_op<4>(rng);
  for (auto _ : state) benchmark::DoNotOptimize(compose(f, g));
}
BENCHMARK(BM_DlsCompose4);

void BM_DlsCompose16(benchmark::State& state) {
  krs::util::Xoshiro256 rng(16);
  const auto f = random_op<16>(rng), g = random_op<16>(rng);
  for (auto _ : state) benchmark::DoNotOptimize(compose(f, g));
}
BENCHMARK(BM_DlsCompose16);

void BM_DlsApply4(benchmark::State& state) {
  krs::util::Xoshiro256 rng(8);
  const auto f = random_op<4>(rng);
  DlsCell c{5, 1};
  for (auto _ : state) benchmark::DoNotOptimize(c = f.apply(c));
}
BENCHMARK(BM_DlsApply4);

// --- the automaton served: BM_DlsProtocol/<substrate> ------------------------
//
// Every thread fires producer/consumer guarded ops (put admitted below
// occupancy 2, get above 0) at ONE shared cell. Unlike fetch-and-add,
// an op can legally fail — the nack_rate counter is the share of issues
// the automaton declined, cumulative over the run like the combine-rate
// counters in bench_flat_vs_tree. The combining/flat rigs additionally
// report their fold shares: §5.6 transitions combine like arithmetic.

const krs::workload::ProducerConsumerPath& protocol() {
  static const krs::workload::ProducerConsumerPath pc;
  return pc;
}

template <typename Host>
void protocol_loop(benchmark::State& state, Host& host) {
  const auto& pc = protocol();
  krs::util::Xoshiro256 rng(0x5eedu + state.thread_index());
  for (auto _ : state) {
    if (rng.chance(0.5)) {
      benchmark::DoNotOptimize(host.issue(pc.put(1 + rng.below(1000))));
    } else {
      benchmark::DoNotOptimize(host.issue(pc.get()));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const double acks = static_cast<double>(host.acks());
    const double nacks = static_cast<double>(host.nacks());
    state.counters["nack_rate"] =
        acks + nacks > 0 ? nacks / (acks + nacks) : 0.0;
  }
}

rt::AtomicBackend g_atomic;
rt::CombiningBackend g_tree(8);
rt::FlatCombiningBackend g_flat(8);
rt::DlsHost<rt::AtomicBackend> g_atomic_host(g_atomic, DlsCell{0, 0});
rt::DlsHost<rt::CombiningBackend> g_tree_host(g_tree, DlsCell{0, 0});
rt::DlsHost<rt::FlatCombiningBackend> g_flat_host(g_flat, DlsCell{0, 0});

void BM_DlsProtocolAtomic(benchmark::State& state) {
  protocol_loop(state, g_atomic_host);
}
BENCHMARK(BM_DlsProtocolAtomic)
    ->Name("BM_DlsProtocol/atomic")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_DlsProtocolCombining(benchmark::State& state) {
  protocol_loop(state, g_tree_host);
  if (state.thread_index() == 0) {
    state.counters["combine_rate"] =
        g_tree.cell_stats(g_tree_host.cell()).combine_rate();
  }
}
BENCHMARK(BM_DlsProtocolCombining)
    ->Name("BM_DlsProtocol/combining")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_DlsProtocolFlat(benchmark::State& state) {
  protocol_loop(state, g_flat_host);
  if (state.thread_index() == 0) {
    state.counters["combined_fraction"] =
        g_flat.cell_stats(g_flat_host.cell()).combined_fraction();
  }
}
BENCHMARK(BM_DlsProtocolFlat)
    ->Name("BM_DlsProtocol/flat")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// --- the §5.6 bound as a combining rate: BM_DlsWave --------------------------
//
// Deterministic waves through the tree's single-caller surface: two puts
// of DISTINCT values into leaf-sharing slots, then two gets. At the full
// §5.6 budget both waves fold (combine_rate 0.5). Narrowed to one value
// slot, every put fold DECLINES (two distinct store values exceed the
// wire format) and §7 partial combining serves the second put at the
// root — the get fold, which carries no store values, still fits. The
// counters are exact protocol constants, not timing artifacts:
//   full    combine_rate=0.50  declined_fold_rate=0.00
//   narrow  combine_rate=0.25  declined_fold_rate=0.50
void BM_DlsWave(benchmark::State& state, bool narrow) {
  const auto& pc = protocol();
  rt::CombiningBackend backend(4);
  rt::CombiningBackend::Cell cell(backend, dls_pack({0, 0}));
  using Wave = std::decay_t<decltype(cell.tree)>::WaveOp;
  const auto one_value = pc.put(1).encoded_size_bytes();
  const auto put = [&](Word v) {
    auto op = pc.put(v);
    return narrow ? op.with_size_budget(one_value) : op;
  };
  Word v = 0;
  for (auto _ : state) {
    ++v;
    const std::vector<Wave> puts = {{0, AnyRmw(put(v % 1000 + 1))},
                                    {1, AnyRmw(put(v % 1000 + 501))}};
    benchmark::DoNotOptimize(cell.tree.run_wave(puts));
    const std::vector<Wave> gets = {{0, AnyRmw(pc.get())},
                                    {1, AnyRmw(pc.get())}};
    benchmark::DoNotOptimize(cell.tree.run_wave(gets));
  }
  const auto st = cell.tree.stats();
  state.counters["combine_rate"] = st.combine_rate();
  const auto attempts = st.folds + st.declined_folds;
  state.counters["declined_fold_rate"] =
      attempts > 0 ? static_cast<double>(st.declined_folds) /
                         static_cast<double>(attempts)
                   : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(4 * state.iterations()));
}
BENCHMARK_CAPTURE(BM_DlsWave, full, false)->Name("BM_DlsWave/budget:full");
BENCHMARK_CAPTURE(BM_DlsWave, narrow, true)->Name("BM_DlsWave/budget:narrow");

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
