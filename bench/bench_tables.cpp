// E2/E3/E4 — regenerate the paper's combining tables from the algebra
// (§5.1's two 3×3 load/store/swap tables, §5.3's 4×4 Boolean table) and
// time the composition/application primitives every combining switch runs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bool_unary.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "util/rng.hpp"

using namespace krs::core;

namespace {

const char* lss_cell(const LssOp& op) {
  return to_cstring(op.kind());
}

void print_tables() {
  std::printf("== E2: §5.1 combining table (order preserved) ==\n");
  const LssOp ops[3] = {LssOp::load(), LssOp::store(1), LssOp::swap(2)};
  const char* names[3] = {"load", "store", "swap"};
  std::printf("%8s |", "");
  for (const auto* n : names) std::printf(" %-6s", n);
  std::printf("\n---------+---------------------\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%8s |", names[i]);
    for (int j = 0; j < 3; ++j) {
      std::printf(" %-6s", lss_cell(compose(ops[i], ops[j])));
    }
    std::printf("\n");
  }

  std::printf("\n== E3: §5.1 combining table (order may reverse; * = "
              "reversed) ==\n");
  std::printf("%8s |", "");
  for (const auto* n : names) std::printf(" %-7s", n);
  std::printf("\n---------+-----------------------\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%8s |", names[i]);
    for (int j = 0; j < 3; ++j) {
      const auto r = compose_reversible(ops[i], ops[j]);
      std::printf(" %-5s%-2s", lss_cell(r.forwarded), r.reversed ? "*" : "");
    }
    std::printf("\n");
  }

  std::printf("\n== E4: §5.3 Boolean composition table ==\n");
  const BoolFn fns[4] = {BoolFn::kLoad, BoolFn::kClear, BoolFn::kSet,
                         BoolFn::kComp};
  std::printf("%8s |", "");
  for (const auto f : fns) std::printf(" %-6s", to_cstring(f));
  std::printf("\n---------+----------------------------\n");
  for (const auto f : fns) {
    std::printf("%8s |", to_cstring(f));
    for (const auto g : fns) {
      std::printf(" %-6s", to_cstring(compose_bool_fn(f, g)));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// --- timings: the per-combine work a switch performs ------------------------

void BM_ComposeFetchAdd(benchmark::State& state) {
  krs::util::Xoshiro256 rng(1);
  FetchAdd f(rng.next()), g(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f = compose(f, g));
  }
}
BENCHMARK(BM_ComposeFetchAdd);

void BM_ComposeLss(benchmark::State& state) {
  LssOp f = LssOp::swap(3), g = LssOp::store(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose(f, g));
  }
}
BENCHMARK(BM_ComposeLss);

void BM_ComposeBoolVec(benchmark::State& state) {
  krs::util::Xoshiro256 rng(2);
  BoolVec f(rng.next(), rng.next()), g(rng.next(), rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f = compose(f, g));
  }
}
BENCHMARK(BM_ComposeBoolVec);

void BM_ApplyBoolVec(benchmark::State& state) {
  krs::util::Xoshiro256 rng(3);
  const BoolVec f(rng.next(), rng.next());
  Word x = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = f.apply(x));
  }
}
BENCHMARK(BM_ApplyBoolVec);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
