// E10 — §6: the prefix-tree operation counts (2n−2−⌈lg n⌉ nontrivial
// multiplications) and cycle counts (2⌈lg n⌉−2) regenerated from the tree,
// the Ladner–Fischer size/depth comparison, and wall-clock timings of the
// asynchronous CSP tree versus serial prefix evaluation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <vector>

#include "prefix/async_tree.hpp"
#include "prefix/circuits.hpp"
#include "prefix/schedule.hpp"
#include "util/bits.hpp"

using namespace krs::prefix;

namespace {

void formulas_report() {
  std::printf("== E10a: §6 operation/cycle counts (measured vs formula) "
              "==\n");
  std::printf("%8s | %12s %12s | %10s %10s | %8s %8s\n", "n", "nontrivial",
              "2n-2-lg n", "cycles", "2lg n-2", "trivial", "lg n");
  for (unsigned k = 1; k <= 12; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const auto rep = analyze_prefix_tree(n);
    std::printf("%8zu | %12llu %12llu | %10llu %10d | %8llu %8u\n", n,
                static_cast<unsigned long long>(rep.nontrivial_multiplications),
                static_cast<unsigned long long>(2 * n - 2 - k),
                static_cast<unsigned long long>(rep.leaf_critical_path),
                2 * static_cast<int>(k) - 2,
                static_cast<unsigned long long>(rep.trivial_multiplications),
                k);
  }
  std::printf("\n");
}

void circuits_report() {
  std::printf("== E10b: combining tree vs Ladner–Fischer/Sklansky prefix "
              "circuits ==\n");
  std::printf("%8s | %14s %10s | %14s %10s\n", "n", "tree gates", "depth",
              "sklansky gates", "depth");
  for (unsigned k = 2; k <= 12; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const auto tree = tree_prefix_circuit(n);
    const auto skl = sklansky_prefix_circuit(n);
    std::printf("%8zu | %14zu %10zu | %14zu %10zu\n", n, tree.size(),
                tree.output_depth(), skl.size(), skl.output_depth());
  }
  std::printf("(the tree — i.e. the combining network — is size-economical; "
              "Sklansky buys half the depth with O(n log n) gates)\n\n");
}

void BM_AsyncTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<long> vals(n);
  std::iota(vals.begin(), vals.end(), 1);
  for (auto _ : state) {
    auto r = async_prefix(vals, std::plus<long>{}, 0L);
    benchmark::DoNotOptimize(r.total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AsyncTree)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_SerialPrefix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<long> vals(n), out(n);
  std::iota(vals.begin(), vals.end(), 1);
  for (auto _ : state) {
    long acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += vals[i];
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialPrefix)->Arg(8)->Arg(32)->Arg(128);

void BM_TreeCircuitEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = tree_prefix_circuit(n);
  std::vector<long> vals(n);
  std::iota(vals.begin(), vals.end(), 1);
  for (auto _ : state) {
    auto out = c.evaluate(vals, std::plus<long>{}, 0L);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeCircuitEvaluate)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SklanskyCircuitEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = sklansky_prefix_circuit(n);
  std::vector<long> vals(n);
  std::iota(vals.begin(), vals.end(), 1);
  for (auto _ : state) {
    auto out = c.evaluate(vals, std::plus<long>{}, 0L);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SklanskyCircuitEvaluate)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  formulas_report();
  circuits_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
