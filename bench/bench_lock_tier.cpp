// The lock tier, measured honestly against combining: one hot counter
// driven through six RMW substrates —
//
//   spin      — BasicParkingLock<SpinWait> behind LockBackend: the same
//               3-state mutex as `futex`, busy-waiting. The BASELINE every
//               ratio divides by.
//   ticket    — the FIFO fetch-and-add ticket lock (proportional backoff).
//   mcs       — the MCS queue lock: each waiter spins on its own
//               stack-resident node, O(1) remote references per handoff.
//   clh       — the CLH implicit-queue lock: spin on the predecessor's
//               node, release is one local store.
//   futex     — BasicParkingLock<FutexWait>: the same algorithm as `spin`
//               with contended waiters PARKED in the kernel. The spin/futex
//               pair isolates the parking decision from everything else.
//   combining — the software combining tree (CombiningBackend), the
//               paper's substrate, for scale.
//
// Thread counts sweep threads < cores, = cores, and 4×cores — the
// oversubscribed regime is where parking pays: a spinning waiter burns
// the quantum the lock HOLDER needs to release, while a parked waiter
// hands it over. normalize.py folds the rows into the
// `lock_tier_ops_ratio` series (ops of each impl over ops of `spin`, per
// thread count; > 1.0 beats pure spinning) — read it against host_cpus.
//
// Wait-side telemetry rides along: every thread samples its
// thread_wait_stats() delta across the measured loop and reports
// wait_spins / wait_yields / wait_parks / wait_wakes counters (summed
// over threads), so the futex rows SHOW the spin→park transition that
// explains their throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "runtime/combining_backend.hpp"
#include "runtime/local_spin_locks.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/ticket_lock.hpp"
#include "runtime/wait_policy.hpp"

using namespace krs::runtime;

namespace {

template <typename B>
void lock_tier_loop(benchmark::State& state, B& backend,
                    typename B::Cell& cell) {
  const WaitStats before = thread_wait_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
  }
  const WaitStats delta = thread_wait_stats() - before;
  state.SetItemsProcessed(state.iterations());
  using benchmark::Counter;
  state.counters["wait_spins"] = Counter(static_cast<double>(delta.spins));
  state.counters["wait_yields"] = Counter(static_cast<double>(delta.yields));
  state.counters["wait_parks"] = Counter(static_cast<double>(delta.parks));
  state.counters["wait_wakes"] = Counter(static_cast<double>(delta.wakes));
}

// One rig per substrate, shared across thread counts like the other
// cross-substrate benches. The combining tree is sized to the largest
// thread count in the sweep.
LockBackend<BasicParkingLock<SpinWait>> g_spin;
LockBackend<TicketLock> g_ticket;
LockBackend<McsLock> g_mcs;
LockBackend<ClhLock> g_clh;
LockBackend<ParkingLock> g_futex;
CombiningBackend g_combining{16};

LockBackend<BasicParkingLock<SpinWait>>::Cell g_spin_cell(g_spin, 0);
LockBackend<TicketLock>::Cell g_ticket_cell(g_ticket, 0);
LockBackend<McsLock>::Cell g_mcs_cell(g_mcs, 0);
LockBackend<ClhLock>::Cell g_clh_cell(g_clh, 0);
LockBackend<ParkingLock>::Cell g_futex_cell(g_futex, 0);
CombiningBackend::Cell g_combining_cell(g_combining, 0);

/// threads < cores, = cores, ≫ cores (4×), deduplicated and sorted so a
/// 1-CPU host still sweeps {1, 2, 4} and an 8-CPU host {1, 2, 8, 32}.
void lock_tier_threads(benchmark::internal::Benchmark* b) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> counts{1u, 2u, cores, 4u * cores};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const unsigned t : counts) b->Threads(static_cast<int>(t));
  b->UseRealTime();
}

#define KRS_LOCK_TIER_BENCH(fn, rig, cell, bench_name)          \
  void fn(benchmark::State& state) {                            \
    lock_tier_loop(state, rig, cell);                           \
  }                                                             \
  BENCHMARK(fn)->Name(bench_name)->Apply(lock_tier_threads)

KRS_LOCK_TIER_BENCH(BM_LockTierSpin, g_spin, g_spin_cell,
                    "BM_LockTier/spin");
KRS_LOCK_TIER_BENCH(BM_LockTierTicket, g_ticket, g_ticket_cell,
                    "BM_LockTier/ticket");
KRS_LOCK_TIER_BENCH(BM_LockTierMcs, g_mcs, g_mcs_cell,
                    "BM_LockTier/mcs");
KRS_LOCK_TIER_BENCH(BM_LockTierClh, g_clh, g_clh_cell,
                    "BM_LockTier/clh");
KRS_LOCK_TIER_BENCH(BM_LockTierFutex, g_futex, g_futex_cell,
                    "BM_LockTier/futex");
KRS_LOCK_TIER_BENCH(BM_LockTierCombining, g_combining, g_combining_cell,
                    "BM_LockTier/combining");

#undef KRS_LOCK_TIER_BENCH

}  // namespace

BENCHMARK_MAIN();
