// The flat-vs-tree crossover: the same counter hotspot through
// FlatCombiningBackend (publication list + single combiner) and
// CombiningBackend (the §4.2 software combining tree), per width
// w ∈ {4, 8, 16} and thread count ∈ {1, 2, 4, 8}.
//
// The normalized output pairs BM_FlatVsTree/flat/w:W against
// BM_FlatVsTree/tree/w:W per thread count into the
// `flat_vs_tree_ops_ratio` series (> 1.0: the flat combiner wins). The
// paper's tree buys O(lg n) asymptotics at the price of lg n CAS-mediated
// handshakes per op; the flat combiner pays ~1 publication transfer plus
// a share of one combiner's scan. The series pins where the constant
// factors cross on this host — read it against `host_cpus` in the JSON
// config: on a single-core runner both substrates mostly measure their
// constant factor, so the ratio is the protocol-overhead quotient, not a
// scaling curve.
//
// Counters: the flat rigs report combined_fraction (share of ops a PEER
// combiner absorbed — the flat-combining win), the tree rigs
// combine_rate (share folded below the root, §4.2) — cumulative over the
// run, reported once per family.
#include <benchmark/benchmark.h>

#include "core/any_rmw.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/rmw_backend.hpp"

using namespace krs::runtime;

namespace {

template <typename B>
void counter_loop(benchmark::State& state, B& backend,
                  typename B::Cell& cell) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.fetch_add(cell, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename B>
void report_flat(benchmark::State& state, const B& backend,
                 const typename B::Cell& cell) {
  if (state.thread_index() == 0) {
    state.counters["combined_fraction"] =
        backend.cell_stats(cell).combined_fraction();
  }
}

template <typename B>
void report_tree(benchmark::State& state, const B& backend,
                 const typename B::Cell& cell) {
  if (state.thread_index() == 0) {
    state.counters["combine_rate"] = backend.cell_stats(cell).combine_rate();
  }
}

FlatCombiningBackend g_flat4(4);
FlatCombiningBackend g_flat8(8);
FlatCombiningBackend g_flat16(16);
CombiningBackend g_tree4(4);
CombiningBackend g_tree8(8);
CombiningBackend g_tree16(16);

FlatCombiningBackend::Cell g_flat4_cell(g_flat4, 0);
FlatCombiningBackend::Cell g_flat8_cell(g_flat8, 0);
FlatCombiningBackend::Cell g_flat16_cell(g_flat16, 0);
CombiningBackend::Cell g_tree4_cell(g_tree4, 0);
CombiningBackend::Cell g_tree8_cell(g_tree8, 0);
CombiningBackend::Cell g_tree16_cell(g_tree16, 0);

void BM_Flat_W4(benchmark::State& state) {
  counter_loop(state, g_flat4, g_flat4_cell);
  report_flat(state, g_flat4, g_flat4_cell);
}
BENCHMARK(BM_Flat_W4)
    ->Name("BM_FlatVsTree/flat/w:4")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Tree_W4(benchmark::State& state) {
  counter_loop(state, g_tree4, g_tree4_cell);
  report_tree(state, g_tree4, g_tree4_cell);
}
BENCHMARK(BM_Tree_W4)
    ->Name("BM_FlatVsTree/tree/w:4")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Flat_W8(benchmark::State& state) {
  counter_loop(state, g_flat8, g_flat8_cell);
  report_flat(state, g_flat8, g_flat8_cell);
}
BENCHMARK(BM_Flat_W8)
    ->Name("BM_FlatVsTree/flat/w:8")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Tree_W8(benchmark::State& state) {
  counter_loop(state, g_tree8, g_tree8_cell);
  report_tree(state, g_tree8, g_tree8_cell);
}
BENCHMARK(BM_Tree_W8)
    ->Name("BM_FlatVsTree/tree/w:8")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Flat_W16(benchmark::State& state) {
  counter_loop(state, g_flat16, g_flat16_cell);
  report_flat(state, g_flat16, g_flat16_cell);
}
BENCHMARK(BM_Flat_W16)
    ->Name("BM_FlatVsTree/flat/w:16")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Tree_W16(benchmark::State& state) {
  counter_loop(state, g_tree16, g_tree16_cell);
  report_tree(state, g_tree16, g_tree16_cell);
}
BENCHMARK(BM_Tree_W16)
    ->Name("BM_FlatVsTree/tree/w:16")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
