#!/usr/bin/env python3
"""Normalize google-benchmark JSON output into the repo's BENCH_*.json shape.

Input: one or more files produced with --benchmark_format=json (optionally
with --benchmark_repetitions=N). Output: a single deterministic JSON
document with one record per (benchmark family, thread count):

  ops_per_sec    — median items_per_second across repetitions
  ns_per_op_p50  — median per-op wall time (real_time, ns) across reps
  ns_per_op_p99  — nearest-rank p99 across reps (≈ max for small N)

plus a `comparisons` block with the acceptance series the perf trajectory
tracks (see docs/PERFORMANCE.md):

  lockfree_vs_blocking_ops_ratio — combining-tree throughput ratio per
      thread count (> 1.0 means the lock-free tree wins)
  combining_vs_atomic_ops_ratio — RmwBackend seam: throughput of each
      "BM_X/combining" family over its "BM_X/atomic" twin per thread
      count, keyed "X/threads" (> 1.0 means the software combining tree
      beats the hardware atomic on that workload)
  machine_parallel_speedup — whole-machine simulator throughput of
      BM_MachinePar over BM_MachineSeq at matched size k, per worker
      count. Parallel runs are bit-identical to sequential ones, so this
      is a pure same-answer-faster ratio. Only meaningful when host_cpus
      in `config` exceeds the worker count — on a single-core host the
      ratio hovers near 1.0 by construction.
  sim_cycles_per_op — the sim-backend dimension: network cycles per RMW
      for each BM_SimCoordination/<primitive> row, keyed by the family
      suffix with benchmark args folded in ("counter/workers=W",
      "counter_scale/k=K/combine=C"). Cycle-accounted on the simulated
      Omega machine, so the values are HOST-INDEPENDENT (and identical
      across workers=… rows — the parallel engine is bit-identical);
      these are the numbers to place against the paper's §6 formulas.
      The counter_scale rows sweep machine size k ∈ {6,8,10} × combine
      policy on/off — the §4.2 curve pair.
  flat_vs_tree_ops_ratio — fourth-substrate crossover: throughput of
      BM_FlatVsTree/flat/w:W over its /tree/w:W twin per thread count,
      keyed "w=W/threads" (> 1.0 means the flat combiner beats the
      combining tree at that width/concurrency).
  lock_tier_ops_ratio — the lock tier against pure spinning: throughput
      of each BM_LockTier/<impl> row (ticket, mcs, clh, futex, combining)
      over its BM_LockTier/spin twin per thread count, keyed
      "<impl>/threads". The spin baseline is the SAME 3-state mutex as
      the futex row, busy-waiting, so the futex/spin quotient isolates
      the parking decision. > 1.0 means the impl beats pure spinning;
      the reading that matters is at thread counts above host_cpus,
      where parked waiters donate their quantum to the lock holder.
      Each row also carries wait_spins/wait_yields/wait_parks/wait_wakes
      counters (summed over threads) from the wait-policy telemetry.
  sharded_vs_single_ops_ratio — fifth-substrate payoff: throughput of
      BM_Sharded/<inner>/s:S over its /single twin (the SAME wrapper at
      one shard, so the quotient isolates sharding, not routing
      overhead), keyed "<inner>/s=S/threads". > 1.0: spreading the hot
      word across S shard lines beats one line at that concurrency.
  tail_latency_p99 — per-op p99 latency in ns. Two sources fold in:
      BM_Sharded rows' sampled latency_p99_ns counter (keyed
      "<inner>/<variant>/threads"), and tools/krs_load traffic documents
      (schema "krs-load-v1", accepted alongside google-benchmark files),
      whose scenario percentiles land keyed "traffic/<scenario>". The
      krs_load scenarios come from millions of logical clients
      multiplexed M:N onto worker threads, so these are the numbers the
      §3 queueing model's tail predictions compare against.

Every comparisons series is wrapped as {"host_cpus": N, "values": {...}}
so a 1-CPU CI artifact cannot be misread as scaling data — the ratios
only mean what they appear to mean when host_cpus covers the thread
counts involved. This wrapper is what bumped the document schema from
krs-bench-v1 (flat {key: value} series) to krs-bench-v2; consumers keying
on the schema string must read series values through the "values" field.

  profiler_hot_lines — contention-profiler acceptance series: hot-line
      count per backend from a tools/krs_profile --json document (schema
      "krs-profile-v1", accepted alongside google-benchmark files).
      Backends with zero hot lines are dropped, so
      `--require profiler_hot_lines` fails when the profiler goes blind.

User counters emitted by a bench (e.g. bench_machine's cycles_per_op,
combine_rate, and the sim dimension's served_at_root_fraction,
sim_cycles, mean_latency_cycles) are carried into each record as medians
across repetitions.

Percentiles are taken over repetition-level means: google-benchmark does
not expose per-iteration samples, so with R repetitions p99 is the
nearest-rank statistic of R values. Use KRS_BENCH_REPETITIONS to widen.

Stdlib only; no third-party imports.
"""

import argparse
import json
import math
import os
import sys


def percentile(sorted_vals, p):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_vals:
        return None
    rank = max(1, math.ceil(p / 100.0 * len(sorted_vals)))
    return sorted_vals[rank - 1]


def parse_name(raw):
    """'BM_X/variant/real_time/threads:8' -> (family, threads)."""
    threads = 1
    parts = []
    for seg in raw.split("/"):
        if seg.startswith("threads:"):
            threads = int(seg.split(":", 1)[1])
        elif seg in ("real_time", "process_time"):
            continue
        else:
            parts.append(seg)
    return "/".join(parts), threads


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


# google-benchmark serializes user counters (state.counters[...]) as extra
# top-level numeric keys on each benchmark record. Carry the known ones
# through to the normalized output.
COUNTER_KEYS = ("cycles_per_op", "combine_rate", "served_at_root_fraction",
                "combined_fraction", "sim_cycles", "mean_latency_cycles",
                "latency_p50_ns", "latency_p99_ns", "latency_p999_ns",
                "latency_p50_cycles", "latency_p99_cycles",
                "shard_max_share",
                "nack_rate", "declined_fold_rate",
                "wait_spins", "wait_yields", "wait_parks", "wait_wakes")


def collect(files):
    """-> runs {(family, threads)}, context, profiles, traffic scenarios"""
    runs = {}
    context = {}
    profiles = []
    traffic = []
    for path in files:
        try:
            with open(path) as f:
                doc = json.load(f)
        except OSError as e:
            sys.exit(f"normalize.py: cannot read {path}: {e}")
        except json.JSONDecodeError as e:
            sys.exit(f"normalize.py: {path} is not valid JSON: {e}")
        if doc.get("schema") == "krs-profile-v1":
            # A krs_profile contention document, not a google-benchmark
            # run: fold each backend's report into the profiler series.
            for run in doc.get("runs", []):
                report = run.get("report", {})
                profiles.append({
                    "backend": run.get("backend", "?"),
                    "threads": doc.get("threads"),
                    "ops": doc.get("ops"),
                    "hot_lines": report.get("hot_lines", 0),
                    "lines_touched": report.get("lines_touched", 0),
                    "total_conflicts": report.get("total_conflicts", 0),
                })
            if not doc.get("runs"):
                sys.exit(f"normalize.py: {path} contains no profiler runs")
            continue
        if doc.get("schema") == "krs-load-v1":
            # A krs_load traffic document: per-scenario tail percentiles
            # from the M:N logical-client harness. Carried through whole
            # (the scenarios block is already normalized) and folded into
            # the tail_latency_p99 series.
            for sc in doc.get("scenarios", []):
                traffic.append({
                    "scenario": sc.get("name", "?"),
                    "shape": sc.get("shape"),
                    "clients": doc.get("clients"),
                    "workers": sc.get("workers", doc.get("workers")),
                    "shards": doc.get("shards"),
                    "inner": doc.get("inner"),
                    "ops": sc.get("ops"),
                    "offered": sc.get("offered"),
                    "throttled": sc.get("throttled"),
                    "p50_ns": sc.get("p50_ns"),
                    "p99_ns": sc.get("p99_ns"),
                    "p999_ns": sc.get("p999_ns"),
                    "conserved": sc.get("conserved"),
                    "wait": sc.get("wait"),
                })
            if not doc.get("scenarios"):
                sys.exit(f"normalize.py: {path} contains no traffic "
                         "scenarios")
            continue
        ctx = doc.get("context", {})
        context.setdefault("host_cpus", ctx.get("num_cpus"))
        context.setdefault("library_build_type", ctx.get("library_build_type"))
        rows = 0
        for b in doc.get("benchmarks", []):
            # With --benchmark_repetitions, keep the per-repetition runs and
            # skip the synthesized mean/median/stddev/cv aggregate rows.
            if b.get("run_type") == "aggregate":
                continue
            rows += 1
            family, threads = parse_name(b["name"])
            rec = runs.setdefault((family, threads), {"real_ns": [], "ops": []})
            rec["real_ns"].append(to_ns(b["real_time"], b["time_unit"]))
            if "items_per_second" in b:
                rec["ops"].append(b["items_per_second"])
            for key in COUNTER_KEYS:
                if key in b:
                    rec.setdefault(key, []).append(b[key])
        if rows == 0:
            # A bench that built but produced nothing (crashed mid-run,
            # filtered to zero) must not green-wash the pipeline.
            sys.exit(f"normalize.py: {path} contains no benchmark runs")
    return runs, context, profiles, traffic


def normalize(runs, context, config, profiles=(), traffic=()):
    benchmarks = []
    for (family, threads), rec in sorted(runs.items()):
        real = sorted(rec["real_ns"])
        ops = sorted(rec["ops"])
        entry = {
            "name": family,
            "threads": threads,
            "reps": len(real),
            "ops_per_sec": percentile(ops, 50),
            "ns_per_op_p50": percentile(real, 50),
            "ns_per_op_p99": percentile(real, 99),
        }
        for key in COUNTER_KEYS:
            if key in rec:
                entry[key] = percentile(sorted(rec[key]), 50)
        benchmarks.append(entry)

    # The acceptance series: lock-free tree throughput over blocking tree
    # throughput, per thread count. > 1.0 means the lock-free tree wins.
    by_variant = {}
    for b in benchmarks:
        if b["name"].startswith("BM_CombiningTree/") and b["ops_per_sec"]:
            variant = b["name"].split("/", 1)[1]
            by_variant.setdefault(variant, {})[b["threads"]] = b["ops_per_sec"]
    ratios = {}
    for threads in sorted(by_variant.get("lockfree", {})):
        blocking = by_variant.get("blocking", {}).get(threads)
        if blocking:
            ratios[str(threads)] = round(
                by_variant["lockfree"][threads] / blocking, 3)

    # The backend seam: any family published as both "BM_X/atomic" and
    # "BM_X/combining" yields a combining-over-atomic throughput ratio per
    # thread count, keyed "X/threads". > 1.0: the software combining tree
    # beats the hardware atomic on that workload.
    backend_pairs = {}
    for b in benchmarks:
        if not b["ops_per_sec"]:
            continue
        for variant in ("atomic", "combining"):
            suffix = "/" + variant
            if b["name"].endswith(suffix):
                base = b["name"][: -len(suffix)]
                backend_pairs.setdefault(
                    (base, b["threads"]), {})[variant] = b["ops_per_sec"]
    backend_ratios = {}
    for (base, threads) in sorted(backend_pairs):
        pair = backend_pairs[(base, threads)]
        if "atomic" in pair and "combining" in pair:
            backend_ratios[f"{base}/{threads}"] = round(
                pair["combining"] / pair["atomic"], 3)

    # Whole-machine simulator speedup: BM_MachinePar/k:K/workers:W over
    # BM_MachineSeq/k:K, keyed "k=K/workers=W". The parallel engine is
    # bit-identical to the sequential one, so > 1.0 is the same answer
    # computed faster (expect ≈ 1.0 on hosts with fewer CPUs than workers).
    seq_ops = {}
    par_ops = {}
    for b in benchmarks:
        if not b["ops_per_sec"]:
            continue
        if b["name"].startswith("BM_MachineSeq/k:"):
            seq_ops[b["name"].split("k:", 1)[1]] = b["ops_per_sec"]
        elif b["name"].startswith("BM_MachinePar/k:"):
            k, workers = b["name"].split("k:", 1)[1].split("/workers:")
            par_ops[(k, workers)] = b["ops_per_sec"]
    speedups = {}
    for (k, workers) in sorted(par_ops, key=lambda kw: (int(kw[0]),
                                                        int(kw[1]))):
        if k in seq_ops:
            speedups[f"k={k}/workers={workers}"] = round(
                par_ops[(k, workers)] / seq_ops[k], 3)

    # The sim-backend dimension: cycle-accounted cost per §6 primitive on
    # the simulated Omega machine, keyed by the family suffix with every
    # benchmark arg folded in ("counter/workers=W",
    # "counter_scale/k=K/combine=C"). These are paper units —
    # deterministic per pattern, identical across workers.
    sim_prefix = "BM_SimCoordination/"
    sim_cycles = {}
    for b in benchmarks:
        if b["name"].startswith(sim_prefix) and "cycles_per_op" in b:
            key = b["name"][len(sim_prefix):].replace(":", "=")
            sim_cycles[key] = round(b["cycles_per_op"], 3)

    # The fourth-substrate crossover: BM_FlatVsTree/flat/w:W throughput
    # over its /tree/w:W twin per thread count, keyed "w=W/threads".
    # > 1.0: the flat combiner beats the combining tree at that
    # width/concurrency (bench/bench_flat_vs_tree.cpp).
    fvt_prefix = "BM_FlatVsTree/"
    fvt_pairs = {}
    for b in benchmarks:
        if b["name"].startswith(fvt_prefix) and b["ops_per_sec"]:
            variant, _, warg = b["name"][len(fvt_prefix):].partition("/")
            fvt_pairs.setdefault(
                (warg.replace(":", "="), b["threads"]), {})[variant] = \
                b["ops_per_sec"]
    flat_vs_tree = {}
    for (warg, threads) in sorted(fvt_pairs):
        pair = fvt_pairs[(warg, threads)]
        if "flat" in pair and "tree" in pair:
            flat_vs_tree[f"{warg}/{threads}"] = round(
                pair["flat"] / pair["tree"], 3)

    # The fifth-substrate payoff: BM_Sharded/<inner>/s:S throughput over
    # its /single twin per thread count, keyed "<inner>/s=S/threads".
    # Both rows run through the sharded wrapper (single = one shard), so
    # > 1.0 is the sharding gain net of routing overhead
    # (bench/bench_sharded.cpp).
    sharded_prefix = "BM_Sharded/"
    sharded_rows = {}
    for b in benchmarks:
        if b["name"].startswith(sharded_prefix) and b["ops_per_sec"]:
            inner, _, variant = b["name"][len(sharded_prefix):].partition("/")
            sharded_rows[(inner, variant, b["threads"])] = b["ops_per_sec"]
    sharded_vs_single = {}
    for (inner, variant, threads) in sorted(sharded_rows):
        if variant == "single":
            continue
        single = sharded_rows.get((inner, "single", threads))
        if single:
            sharded_vs_single[
                f"{inner}/{variant.replace(':', '=')}/{threads}"] = round(
                sharded_rows[(inner, variant, threads)] / single, 3)

    # The lock tier: BM_LockTier/<impl> throughput over its /spin twin
    # per thread count, keyed "<impl>/threads". The spin row is the same
    # 3-state mutex as the futex row without parking, so futex/spin
    # isolates the park decision; read rows with threads > host_cpus for
    # the oversubscription verdict (bench/bench_lock_tier.cpp).
    lt_prefix = "BM_LockTier/"
    lt_rows = {}
    for b in benchmarks:
        if b["name"].startswith(lt_prefix) and b["ops_per_sec"]:
            impl = b["name"][len(lt_prefix):]
            lt_rows[(impl, b["threads"])] = b["ops_per_sec"]
    lock_tier = {}
    for (impl, threads) in sorted(lt_rows):
        if impl == "spin":
            continue
        spin = lt_rows.get(("spin", threads))
        if spin:
            lock_tier[f"{impl}/{threads}"] = round(
                lt_rows[(impl, threads)] / spin, 3)

    # §5.6 through the substrates: BM_DlsProtocol/<substrate> rows carry
    # the share of guarded issues the automaton legally declined
    # (nack_rate, keyed "<substrate>/threads") and, on the combining
    # substrates, the fold share; BM_DlsWave/budget:<v> rows pin the
    # wire-budget decline as exact protocol constants (the narrow budget
    # forces every two-value put fold to decline — §7 partial combining).
    # A 0.0 nack rate is data and is KEPT; a missing row means bench_dls
    # never produced protocol rows, which `--require dls_nack_rate` must
    # catch.
    dls_prefix = "BM_DlsProtocol/"
    wave_prefix = "BM_DlsWave/"
    dls_nack = {}
    dls_combine = {}
    for b in benchmarks:
        if b["name"].startswith(dls_prefix) and "nack_rate" in b:
            sub = b["name"][len(dls_prefix):]
            dls_nack[f"{sub}/{b['threads']}"] = round(b["nack_rate"], 4)
            rate = b.get("combine_rate", b.get("combined_fraction"))
            if rate is not None:
                dls_combine[f"{sub}/{b['threads']}"] = round(rate, 3)
        elif b["name"].startswith(wave_prefix) and "combine_rate" in b:
            key = b["name"][len(wave_prefix):].replace(":", "=")
            dls_combine[key] = round(b["combine_rate"], 3)
            if "declined_fold_rate" in b:
                dls_combine[f"{key}/declined"] = round(
                    b["declined_fold_rate"], 3)

    # Tail accounting: p99 per-op latency in ns, from the sharded bench's
    # sampled reservoirs and from krs_load traffic scenarios. Zero values
    # are dropped — an unpopulated reservoir must not green-wash
    # `--require tail_latency_p99`.
    tail_p99 = {}
    for b in benchmarks:
        if b["name"].startswith(sharded_prefix) and b.get("latency_p99_ns"):
            key = b["name"][len(sharded_prefix):].replace(":", "=")
            tail_p99[f"{key}/{b['threads']}"] = round(b["latency_p99_ns"], 1)
    for t in traffic:
        if t.get("p99_ns"):
            tail_p99[f"traffic/{t['scenario']}"] = t["p99_ns"]

    # The contention-profiler series: hot lines per profiled backend.
    # Zero-hot-line entries are DROPPED so `--require profiler_hot_lines`
    # fails when a profiler run finds nothing — a blind profiler must not
    # green-wash the pipeline.
    hot_lines = {}
    for prof in profiles:
        if prof["hot_lines"]:
            hot_lines[prof["backend"]] = prof["hot_lines"]

    # Every series carries host_cpus alongside its values: most ratios are
    # only scaling data when the host actually ran the threads in
    # parallel, and the annotation travels with the series even when the
    # document's config block is stripped by a downstream consumer.
    host_cpus = context.get("host_cpus") or os.cpu_count()

    def series(values):
        return {"host_cpus": host_cpus, "values": values}

    comparisons = {}
    if ratios:
        comparisons["lockfree_vs_blocking_ops_ratio"] = series(ratios)
    if backend_ratios:
        comparisons["combining_vs_atomic_ops_ratio"] = series(backend_ratios)
    if speedups:
        comparisons["machine_parallel_speedup"] = series(speedups)
    if sim_cycles:
        comparisons["sim_cycles_per_op"] = series(sim_cycles)
    if flat_vs_tree:
        comparisons["flat_vs_tree_ops_ratio"] = series(flat_vs_tree)
    if sharded_vs_single:
        comparisons["sharded_vs_single_ops_ratio"] = series(sharded_vs_single)
    if lock_tier:
        comparisons["lock_tier_ops_ratio"] = series(lock_tier)
    if dls_combine:
        comparisons["dls_combine_rate"] = series(dls_combine)
    if dls_nack:
        comparisons["dls_nack_rate"] = series(dls_nack)
    if tail_p99:
        comparisons["tail_latency_p99"] = series(tail_p99)
    if hot_lines:
        comparisons["profiler_hot_lines"] = series(hot_lines)

    cfg = dict(config, **context)
    cfg["host_cpus"] = host_cpus
    return {
        "schema": "krs-bench-v2",
        "generated_by": "tools/run_bench.sh",
        "config": cfg,
        "benchmarks": benchmarks,
        "profiles": list(profiles),
        "traffic": list(traffic),
        "comparisons": comparisons,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", help="google-benchmark JSON files")
    ap.add_argument("--out", required=True, help="normalized output path")
    ap.add_argument("--min-time", default=None)
    ap.add_argument("--repetitions", type=int, default=None)
    ap.add_argument("--require", action="append", default=[],
                    metavar="SERIES[:KEY]",
                    help="fail unless this comparisons series exists and is "
                         "non-empty (repeatable); with :KEY, additionally "
                         "require some series key to CONTAIN that substring "
                         "(e.g. sim_cycles_per_op:k=10). The CI bench-smoke "
                         "job pins its acceptance series with this")
    args = ap.parse_args()

    runs, context, profiles, traffic = collect(args.files)
    if not runs and not profiles and not traffic:
        sys.exit("normalize.py: no benchmark runs found in inputs")
    config = {}
    if args.min_time is not None:
        config["min_time"] = args.min_time
    if args.repetitions is not None:
        config["repetitions"] = args.repetitions
    doc = normalize(runs, context, config, profiles, traffic)
    missing = []
    for req in args.require:
        name, _, key = req.partition(":")
        values = doc["comparisons"].get(name, {}).get("values")
        if not values or (key and not any(key in k for k in values)):
            missing.append(req)
    if missing:
        sys.exit("normalize.py: required comparison series missing or empty: "
                 + ", ".join(missing))
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    summary = "; ".join(f"{name} {series['values']}"
                        for name, series in sorted(doc["comparisons"].items()))
    print(f"wrote {args.out}: {len(doc['benchmarks'])} series"
          + (f"; {summary}" if summary else ""))


if __name__ == "__main__":
    main()
