// §5.4 — The four arithmetic operations (and their reverses) via Möbius
// (linear-fractional) transformations.
//
// The semigroup spanned by {x → x ψ a : ψ ∈ {+, −, ×, ÷, reverse−,
// reverse÷}} consists of the Möbius functions x → (ax + b)/(cx + d) with
// (c, d) ≠ (0, 0). Representing such a function by its coefficient matrix
//
//        A = | a  b |
//            | c  d |
//
// composition is matrix multiplication: with the paper's convention
// f∘g(x) = g(f(x)), the matrix of f∘g is  M(g) · M(f).
//
// The reference implementation is exact (64-bit integer coefficients,
// gcd-normalized, overflow-checked; exact Rational cell values). When a
// composition would overflow, try_compose declines — a combining switch
// simply forwards the two requests uncombined, which is always correct
// ("partial combining", §7). Division by zero during apply yields an
// invalid Rational, modelling the numerical-stability caveat of §5.4.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "util/rational.hpp"

namespace krs::core {

class Moebius {
 public:
  using value_type = util::Rational;

  /// Identity: x → (1·x + 0)/(0·x + 1).
  constexpr Moebius() noexcept : a_(1), b_(0), c_(0), d_(1) {}

  /// General coefficients; normalized by gcd and sign. (c, d) must not both
  /// be zero.
  Moebius(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d);

  static Moebius identity() noexcept { return Moebius{}; }
  static Moebius fetch_add(std::int64_t k) { return {1, k, 0, 1}; }
  static Moebius fetch_sub(std::int64_t k) { return {1, -k, 0, 1}; }
  static Moebius fetch_mul(std::int64_t k) { return {k, 0, 0, 1}; }
  static Moebius fetch_div(std::int64_t k) { return {1, 0, 0, k}; }
  /// x → k − x.
  static Moebius fetch_rsub(std::int64_t k) { return {-1, k, 0, 1}; }
  /// x → k / x.
  static Moebius fetch_rdiv(std::int64_t k) { return {0, k, 1, 0}; }
  static Moebius store(std::int64_t v) { return {0, v, 0, 1}; }

  [[nodiscard]] std::int64_t a() const noexcept { return a_; }
  [[nodiscard]] std::int64_t b() const noexcept { return b_; }
  [[nodiscard]] std::int64_t c() const noexcept { return c_; }
  [[nodiscard]] std::int64_t d() const noexcept { return d_; }

  /// (a·x + b) / (c·x + d); invalid Rational if the denominator vanishes or
  /// intermediate arithmetic overflows.
  [[nodiscard]] util::Rational apply(const util::Rational& x) const noexcept;

  /// Four coefficient words.
  [[nodiscard]] std::size_t encoded_size_bytes() const noexcept {
    return 4 * sizeof(std::int64_t);
  }

  [[nodiscard]] std::string to_string() const;

  /// Equality of normalized coefficient matrices. Note: projectively, A and
  /// −A denote the same function; normalization fixes the sign, so this is
  /// also functional equality.
  friend bool operator==(const Moebius&, const Moebius&) = default;

  /// "f then g": coefficient matrix M(g)·M(f). Dies (KRS_ASSERT) on
  /// overflow — use try_compose in switch code.
  friend Moebius compose(const Moebius& f, const Moebius& g);

  /// Compose, or nullopt if 64-bit coefficients would overflow.
  friend std::optional<Moebius> try_compose(const Moebius& f,
                                            const Moebius& g) noexcept;

 private:
  // Coefficients are kept gcd-normalized with the first nonzero of (c, d)
  // positive, giving a canonical representative of the projective class.
  std::int64_t a_, b_, c_, d_;
};

static_assert(Rmw<Moebius>);

}  // namespace krs::core
