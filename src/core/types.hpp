// Fundamental vocabulary types shared by the RMW algebra, the network
// simulator, and the verification layer.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace krs::core {

/// A machine word as stored in a shared-memory cell. The paper assumes
/// fixed-size words of w bits; we use 64.
using Word = std::uint64_t;

/// Address of a shared-memory cell (global, module-interleaved addressing is
/// applied by the memory system).
using Addr = std::uint64_t;

/// Simulation time in network/memory cycles.
using Tick = std::uint64_t;

/// Globally unique identifier of an outstanding memory request:
/// (issuing processor, per-processor sequence number). The paper notes the
/// address may be folded into the identifier; keeping an explicit sequence
/// number lets a processor have many outstanding requests to one location.
struct ReqId {
  std::uint32_t proc = 0;
  std::uint32_t seq = 0;

  friend auto operator<=>(const ReqId&, const ReqId&) = default;
};

struct ReqIdHash {
  std::size_t operator()(const ReqId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.proc) << 32) | id.seq);
  }
};

inline std::string to_string(const ReqId& id) {
  return "P" + std::to_string(id.proc) + "#" + std::to_string(id.seq);
}

}  // namespace krs::core
