// §4.2 — The combining mechanism, family-agnostic.
//
// A request message is ⟨id, addr, f⟩. When request ⟨id2, addr, g⟩ arrives at
// a switch already holding ⟨id1, addr, f⟩ for the same address, the switch
//   1. forwards ⟨id1, addr, f∘g⟩   (compose(f, g) in our convention), and
//   2. saves the record (id1, id2, f).
// When the reply ⟨id1, val⟩ returns, the switch forwards ⟨id1, val⟩ toward
// the first requester and ⟨id2, f(val)⟩ toward the second.
//
// These helpers implement exactly that algebra for any Rmw family; the
// network switch (src/net) supplies queues, wait buffers, and routing.
// Because a queued request that has already combined can combine again
// (k-way combining, and combining of already-combined requests), a record's
// `first_map` is the queued request's mapping *at the moment of this
// combine* — the decombined reply for the later request applies it to the
// reply value, reproducing the inductive structure of Lemma 4.1.
#pragma once

#include <optional>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

template <Rmw M>
struct Request {
  ReqId id;
  Addr addr = 0;
  M f{};
  Tick issued = 0;
};

template <Rmw M>
struct Reply {
  ReqId id;
  typename M::value_type value{};
  Tick completed = 0;
};

/// Wait-buffer record created by one combine event.
template <Rmw M>
struct CombineRecord {
  ReqId representative;  ///< id of the forwarded (combined) request
  ReqId second;          ///< id of the request absorbed by this combine
  M first_map{};         ///< mapping of the representative at combine time
};

/// Attempt to combine `arriving` into the queued request `queued` (same
/// switch output queue, same address). On success `queued` carries the
/// composed mapping and the returned record must be kept for decombination.
/// Declining (address mismatch, or the family declines composition) is
/// always correct — partial combining, §7.
template <Rmw M>
std::optional<CombineRecord<M>> try_combine(Request<M>& queued,
                                            const Request<M>& arriving) {
  if (queued.addr != arriving.addr) return std::nullopt;
  auto composed = try_compose(queued.f, arriving.f);
  if (!composed) return std::nullopt;
  CombineRecord<M> rec{queued.id, arriving.id, queued.f};
  queued.f = *std::move(composed);
  return rec;
}

/// The decombined reply value for the absorbed request: f(val).
template <Rmw M>
typename M::value_type decombine(const CombineRecord<M>& rec,
                                 const typename M::value_type& val) {
  return rec.first_map.apply(val);
}

}  // namespace krs::core
