// §5.5 — Full/empty bits (HEP-style tagged memory).
//
// Each shared word carries a full/empty tag bit. The four basic operations
// (load, load-and-clear, store-and-set, store-if-clear-and-set) generate,
// under composition, exactly two more (store-and-clear and
// store-if-clear-and-clear); the resulting set of six mapping forms on
// (value, flag) pairs is closed — the closure is *checked* here by deriving
// composition symbolically rather than from a hand-written table.
//
// Conditional operations are modeled as total mappings (a failed
// conditional store leaves the pair unchanged); the issuing processor
// detects failure from the old flag value carried by the reply, exactly as
// the paper prescribes ("a processor can check the value of the full-empty
// bit returned by the load operation to determine if it was successful").
//
// A reply carries a data word only for loads (and combined stores that
// contain a load); stores need just an acknowledgment — the paper's traffic
// bound (never more data values than an uncombining network) is exercised
// in the benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

/// A tagged memory cell: data word plus full/empty bit.
struct FEWord {
  Word value = 0;
  bool full = false;

  friend constexpr bool operator==(const FEWord&, const FEWord&) = default;
};

inline std::string to_string(const FEWord& w) {
  return "(" + std::to_string(w.value) + (w.full ? ",full)" : ",empty)");
}

enum class FEKind : std::uint8_t {
  kLoad,              ///< (X, f) → (X, f)
  kLoadClear,         ///< (X, f) → (X, 0)
  kStoreSet,          ///< (X, f) → (v, 1)
  kStoreIfClearSet,   ///< (X, 0) → (v, 1); (X, 1) → (X, 1)
  kStoreClear,        ///< (X, f) → (v, 0)      [= store-and-set ∘ load-and-clear]
  kStoreIfClearClear  ///< (X, 0) → (v, 0); (X, 1) → (X, 0)
                      ///<                [= store-if-clear-and-set ∘ load-and-clear]
};

const char* to_cstring(FEKind k) noexcept;

class FEOp {
 public:
  using value_type = FEWord;

  constexpr FEOp() noexcept : kind_(FEKind::kLoad), value_(0) {}

  static constexpr FEOp load() noexcept { return FEOp{}; }
  static constexpr FEOp load_and_clear() noexcept {
    return FEOp(FEKind::kLoadClear, 0);
  }
  static constexpr FEOp store_and_set(Word v) noexcept {
    return FEOp(FEKind::kStoreSet, v);
  }
  static constexpr FEOp store_if_clear_and_set(Word v) noexcept {
    return FEOp(FEKind::kStoreIfClearSet, v);
  }
  static constexpr FEOp store_and_clear(Word v) noexcept {
    return FEOp(FEKind::kStoreClear, v);
  }
  static constexpr FEOp store_if_clear_and_clear(Word v) noexcept {
    return FEOp(FEKind::kStoreIfClearClear, v);
  }
  static constexpr FEOp identity() noexcept { return load(); }

  [[nodiscard]] constexpr FEKind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr Word value() const noexcept { return value_; }

  [[nodiscard]] constexpr FEWord apply(const FEWord& w) const noexcept {
    switch (kind_) {
      case FEKind::kLoad:
        return w;
      case FEKind::kLoadClear:
        return {w.value, false};
      case FEKind::kStoreSet:
        return {value_, true};
      case FEKind::kStoreIfClearSet:
        return w.full ? FEWord{w.value, true} : FEWord{value_, true};
      case FEKind::kStoreClear:
        return {value_, false};
      case FEKind::kStoreIfClearClear:
        return w.full ? FEWord{w.value, false} : FEWord{value_, false};
    }
    return w;
  }

  /// Did this operation's conditional part succeed, given the old cell
  /// state carried by the reply? (Unconditional ops always succeed; a plain
  /// load "succeeds" when the cell was full, the producer/consumer reading
  /// convention of the paper.)
  [[nodiscard]] constexpr bool succeeded(const FEWord& old) const noexcept {
    switch (kind_) {
      case FEKind::kLoad:
      case FEKind::kLoadClear:
        return old.full;
      case FEKind::kStoreIfClearSet:
      case FEKind::kStoreIfClearClear:
        return !old.full;
      case FEKind::kStoreSet:
      case FEKind::kStoreClear:
        return true;
    }
    return true;
  }

  [[nodiscard]] constexpr bool carries_value() const noexcept {
    return kind_ != FEKind::kLoad && kind_ != FEKind::kLoadClear;
  }

  /// Does the reply need the old data word (i.e. is a load embedded)?
  [[nodiscard]] constexpr bool reply_needs_data() const noexcept {
    return kind_ == FEKind::kLoad || kind_ == FEKind::kLoadClear;
  }

  /// Opcode byte (+ flag bit folded in) plus an optional data word.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return carries_value() ? 1 + sizeof(Word) : 1;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const FEOp&, const FEOp&) = default;

  /// "f then g", derived by symbolic evaluation on both flag branches and
  /// classified back into one of the six closed forms.
  friend constexpr FEOp compose(const FEOp& f, const FEOp& g) noexcept;

  friend constexpr std::optional<FEOp> try_compose(const FEOp& f,
                                                   const FEOp& g) noexcept {
    return compose(f, g);
  }

 private:
  constexpr FEOp(FEKind k, Word v) noexcept : kind_(k), value_(v) {}

  FEKind kind_;
  Word value_;
};

namespace detail {

/// Symbolic cell value: either "the original X" or a known constant.
struct SymVal {
  bool is_const = false;
  Word c = 0;

  friend constexpr bool operator==(const SymVal&, const SymVal&) = default;
};

struct SymState {
  SymVal val;
  bool flag = false;
};

constexpr SymState sym_apply(const FEOp& op, SymState s) noexcept {
  const SymVal stored{true, op.value()};
  switch (op.kind()) {
    case FEKind::kLoad:
      return s;
    case FEKind::kLoadClear:
      return {s.val, false};
    case FEKind::kStoreSet:
      return {stored, true};
    case FEKind::kStoreIfClearSet:
      return s.flag ? SymState{s.val, true} : SymState{stored, true};
    case FEKind::kStoreClear:
      return {stored, false};
    case FEKind::kStoreIfClearClear:
      return s.flag ? SymState{s.val, false} : SymState{stored, false};
  }
  return s;
}

}  // namespace detail

constexpr FEOp compose(const FEOp& f, const FEOp& g) noexcept {
  using detail::SymState;
  using detail::SymVal;
  const SymVal x{};  // symbolic original value
  // Branch on the initial flag.
  SymState s0 = detail::sym_apply(g, detail::sym_apply(f, {x, false}));
  SymState s1 = detail::sym_apply(g, detail::sym_apply(f, {x, true}));
  // Classify (s0, s1) into one of the six closed forms.
  if (s0.val == x && s1.val == x) {
    if (s0.flag == false && s1.flag == true) return FEOp::load();
    // (Both-branches-preserve with flag constant 0 is load-and-clear; the
    // flag pattern 0/0 is the only other reachable one.)
    return FEOp::load_and_clear();
  }
  if (s0.val.is_const && s1.val == s0.val) {
    // Unconditional store of s0.val.c.
    return s0.flag ? FEOp::store_and_set(s0.val.c)
                   : FEOp::store_and_clear(s0.val.c);
  }
  // Conditional: empty branch stores, full branch preserves.
  return s0.flag ? FEOp::store_if_clear_and_set(s0.val.c)
                 : FEOp::store_if_clear_and_clear(s0.val.c);
}

static_assert(Rmw<FEOp>);

}  // namespace krs::core
