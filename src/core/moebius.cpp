#include "core/moebius.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace krs::core {

using util::checked_add;
using util::checked_mul;
using util::Rational;

namespace {

// Normalize (a,b,c,d) by the gcd of all four and fix the sign so that the
// first nonzero coefficient of (c, d, a, b) is positive. Returns false if
// the matrix does not denote a Möbius function ((c,d) == (0,0)).
bool normalize(std::int64_t& a, std::int64_t& b, std::int64_t& c,
               std::int64_t& d) noexcept {
  if (c == 0 && d == 0) return false;
  std::int64_t g = std::gcd(std::gcd(a, b), std::gcd(c, d));
  if (g == 0) g = 1;
  a /= g;
  b /= g;
  c /= g;
  d /= g;
  const std::int64_t lead = c != 0 ? c : (d != 0 ? d : (a != 0 ? a : b));
  if (lead < 0) {
    // Negating after division by gcd cannot overflow (magnitudes shrank or
    // stayed, and INT64_MIN/g is safe unless g==1 and value==INT64_MIN —
    // which normalize callers exclude via checked construction).
    a = -a;
    b = -b;
    c = -c;
    d = -d;
  }
  return true;
}

}  // namespace

Moebius::Moebius(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d)
    : a_(a), b_(b), c_(c), d_(d) {
  // INT64_MIN cannot be sign-normalized without overflow; exclude it.
  KRS_EXPECTS(a != INT64_MIN && b != INT64_MIN && c != INT64_MIN &&
              d != INT64_MIN);
  const bool ok = normalize(a_, b_, c_, d_);
  KRS_EXPECTS(ok);
}

Rational Moebius::apply(const Rational& x) const noexcept {
  if (!x.ok()) return Rational::invalid();
  const Rational num = Rational(a_) * x + Rational(b_);
  const Rational den = Rational(c_) * x + Rational(d_);
  if (!num.ok() || !den.ok() || den.num() == 0) return Rational::invalid();
  return num / den;
}

std::string Moebius::to_string() const {
  return "(" + std::to_string(a_) + "x+" + std::to_string(b_) + ")/(" +
         std::to_string(c_) + "x+" + std::to_string(d_) + ")";
}

std::optional<Moebius> try_compose(const Moebius& f,
                                   const Moebius& g) noexcept {
  // M(g) · M(f):
  //   | g.a g.b |   | f.a f.b |
  //   | g.c g.d | · | f.c f.d |
  const auto mul2add = [](std::int64_t p, std::int64_t q, std::int64_t r,
                          std::int64_t s) -> std::optional<std::int64_t> {
    const auto t1 = checked_mul(p, q);
    const auto t2 = checked_mul(r, s);
    if (!t1 || !t2) return std::nullopt;
    return checked_add(*t1, *t2);
  };
  const auto a = mul2add(g.a_, f.a_, g.b_, f.c_);
  const auto b = mul2add(g.a_, f.b_, g.b_, f.d_);
  const auto c = mul2add(g.c_, f.a_, g.d_, f.c_);
  const auto d = mul2add(g.c_, f.b_, g.d_, f.d_);
  if (!a || !b || !c || !d) return std::nullopt;
  if (*c == 0 && *d == 0) return std::nullopt;  // degenerate product
  if (*a == INT64_MIN || *b == INT64_MIN || *c == INT64_MIN ||
      *d == INT64_MIN) {
    return std::nullopt;  // not sign-normalizable
  }
  return Moebius(*a, *b, *c, *d);
}

Moebius compose(const Moebius& f, const Moebius& g) {
  const auto r = try_compose(f, g);
  KRS_EXPECTS(r.has_value());
  return *r;
}

}  // namespace krs::core
