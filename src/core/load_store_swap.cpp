#include "core/load_store_swap.hpp"

#include "core/law_checks.hpp"  // static_asserts the §5.1 tables at build time

namespace krs::core {

const char* to_cstring(LssKind k) noexcept {
  switch (k) {
    case LssKind::kLoad:
      return "load";
    case LssKind::kStore:
      return "store";
    case LssKind::kSwap:
      return "swap";
  }
  return "?";
}

std::string LssOp::to_string() const {
  std::string s = to_cstring(kind_);
  if (is_constant()) s += "(" + std::to_string(value_) + ")";
  return s;
}

}  // namespace krs::core
