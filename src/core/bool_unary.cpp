#include "core/bool_unary.hpp"

namespace krs::core {

const char* to_cstring(BoolFn f) noexcept {
  switch (f) {
    case BoolFn::kLoad:
      return "load";
    case BoolFn::kClear:
      return "clear";
    case BoolFn::kSet:
      return "set";
    case BoolFn::kComp:
      return "comp";
  }
  return "?";
}

std::string BoolVec::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "boolvec(keep=%016llx,flip=%016llx)",
                static_cast<unsigned long long>(keep_),
                static_cast<unsigned long long>(flip_));
  return buf;
}

}  // namespace krs::core
