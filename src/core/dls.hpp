// §5.6 — General data-level synchronization.
//
// A data-level synchronization scheme is an automaton A = ⟨Φ, S, δ⟩: every
// shared variable is tagged with a state s ∈ S, and an operation is guarded
// by a set of states V ⊆ S in which it may execute; executing it also moves
// the tag through δ. A failed operation (s ∉ V) leaves the cell unchanged
// and is reported to the issuer as a negative acknowledgment — which the
// issuer detects from the old state carried by the reply.
//
// Modeled as *total* mappings on (value, state) cells: per state, the
// mapping either stores a value or keeps the old one, and names a successor
// state. Failure is the identity entry. Totality makes composition closed,
// and the per-state table realizes the paper's bound directly: a combined
// request carries at most |S| distinct store values (Section 5.6's best
// possible uniform bound, attained by the store-if-state=s family — see
// tests). `size_bound()` is that bound in wire bytes; a switch whose
// message format is narrower than the bound declines compositions that
// would overflow it (`try_compose` → nullopt), and §7 partial combining
// serves the declined request individually at the root.
//
// Two realizations live here:
//
//   * DlsOp<N>  — the compile-time-sized family over DlsCell (value word +
//     state tag), used by the algebra tests and the simulated machine.
//   * DlsWordOp — the runtime-sized family over a WORD-PACKED cell (state
//     in the low 4 bits, value in the upper 60): the encoding that lets
//     every RmwBackend substrate serve guarded operations through its
//     ordinary word-valued fetch_rmw path (core::AnyRmw holds it as an
//     alternative). Path expressions (Campbell–Habermann) compile to these
//     automata — see core/path_expr.hpp and examples/path_expression.cpp.
//
// The full/empty family of §5.5 is the |S| = 2 special case; tests exhibit
// the isomorphism.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"

namespace krs::core {

/// A tagged cell: data word plus automaton state.
struct DlsCell {
  Word value = 0;
  std::uint8_t state = 0;

  friend constexpr bool operator==(const DlsCell&, const DlsCell&) = default;
};

inline std::string to_string(const DlsCell& c) {
  return "(" + std::to_string(c.value) + ",s" + std::to_string(c.state) + ")";
}

// --- word packing -------------------------------------------------------------
//
// The runtime substrates own WORD cells, so the tagged cell rides in one
// machine word: state tag in the low kDlsStateBits bits, value in the rest.
// The §5.6 tractability cap (|S| ≤ 16) is exactly what makes the tag fit.

inline constexpr unsigned kDlsStateBits = 4;
inline constexpr Word kDlsStateMask = (Word{1} << kDlsStateBits) - 1;
/// Packable values are bounded: the tag costs kDlsStateBits of the word.
inline constexpr Word kDlsValueLimit = Word{1} << (64 - kDlsStateBits);

[[nodiscard]] constexpr Word dls_pack(const DlsCell& c) noexcept {
  return (c.value << kDlsStateBits) | (c.state & kDlsStateMask);
}

[[nodiscard]] constexpr DlsCell dls_unpack(Word w) noexcept {
  return DlsCell{w >> kDlsStateBits,
                 static_cast<std::uint8_t>(w & kDlsStateMask)};
}

namespace detail {

/// Bits needed to index n things (0 for n ≤ 1).
[[nodiscard]] constexpr unsigned dls_index_bits(unsigned n) noexcept {
  unsigned bits = 0;
  while ((1u << bits) < n) ++bits;
  return bits;
}

/// The wire size of an |S|-state table carrying `distinct` store values:
/// per state 1 store flag bit + a next-state index + a store-slot index
/// (both ⌈lg |S|⌉ bits), plus the guard bitmask (1 bit per state — the
/// success predicate now composes, so it travels with the mapping), plus
/// the distinct store values themselves, one word each.
[[nodiscard]] constexpr std::size_t dls_encoded_bytes(
    unsigned nstates, unsigned distinct) noexcept {
  const unsigned per_state = 1 + 2 * dls_index_bits(nstates);
  const unsigned table_bits = nstates * per_state + nstates /* guard */;
  return (table_bits + 7) / 8 + distinct * sizeof(Word);
}

/// §5.6's bound in bytes: the densest legal table stores a DISTINCT value
/// in every state ("2^m is the best possible uniform bound"). Composition
/// of within-bound mappings stays within it — the closure argument — so a
/// switch budgeted at the bound never declines.
[[nodiscard]] constexpr std::size_t dls_size_bound(unsigned nstates) noexcept {
  return dls_encoded_bytes(nstates, nstates);
}

}  // namespace detail

/// Guarded RMW operation over an automaton with NStates states.
template <unsigned NStates>
class DlsOp {
  static_assert(NStates >= 1 && NStates <= 16,
                "tractability requires a small state set (see §5.6)");

 public:
  using value_type = DlsCell;
  static constexpr unsigned kStates = NStates;
  /// The §5.6 size bound for this state count — the default try_compose
  /// budget, at which composition never declines.
  static constexpr std::size_t kSizeBound = detail::dls_size_bound(NStates);

  /// What the mapping does when the cell is in a given state.
  struct Entry {
    bool store = false;       ///< store `value` (else keep the old word)
    Word value = 0;           ///< stored word, if `store`
    std::uint8_t next = 0;    ///< successor state

    friend constexpr bool operator==(const Entry&, const Entry&) = default;
  };

  /// Identity mapping (every state: keep value, stay put). The identity is
  /// unguarded — it succeeds everywhere — so its guard is the full set and
  /// composing it in changes no success predicate.
  constexpr DlsOp() noexcept {
    for (unsigned s = 0; s < NStates; ++s) entries_[s] = Entry{false, 0, static_cast<std::uint8_t>(s)};
  }

  static constexpr DlsOp identity() noexcept { return DlsOp{}; }

  /// A guarded load: succeeds in the states of `guard` (bitmask), moving
  /// the tag through `next`; fails (identity) elsewhere.
  static constexpr DlsOp guarded_load(std::uint16_t guard,
                                      std::array<std::uint8_t, NStates> next) noexcept {
    DlsOp op;
    for (unsigned s = 0; s < NStates; ++s) {
      if (guard & (1u << s)) {
        KRS_ASSERT(next[s] < NStates);
        op.entries_[s] = Entry{false, 0, next[s]};
      }
    }
    op.guard_ = static_cast<std::uint16_t>(guard & kFullGuard);
    return op;
  }

  /// A guarded store of v.
  static constexpr DlsOp guarded_store(Word v, std::uint16_t guard,
                                       std::array<std::uint8_t, NStates> next) noexcept {
    DlsOp op;
    for (unsigned s = 0; s < NStates; ++s) {
      if (guard & (1u << s)) {
        KRS_ASSERT(next[s] < NStates);
        op.entries_[s] = Entry{true, v, next[s]};
      }
    }
    op.guard_ = static_cast<std::uint16_t>(guard & kFullGuard);
    return op;
  }

  /// Copy of this mapping with a NARROWER wire budget than the §5.6 bound,
  /// modeling a switch whose message format carries fewer value slots.
  /// Compositions whose table would exceed the budget decline (§7 partial
  /// combining serves them at the root instead).
  [[nodiscard]] constexpr DlsOp with_size_budget(std::size_t bytes) const noexcept {
    DlsOp op = *this;
    op.size_budget_ = static_cast<std::uint16_t>(bytes);
    return op;
  }

  [[nodiscard]] constexpr std::size_t size_budget() const noexcept {
    return size_budget_;
  }

  [[nodiscard]] constexpr const Entry& entry(unsigned s) const noexcept {
    KRS_EXPECTS(s < NStates);
    return entries_[s];
  }

  /// The success predicate, as a state bitmask. For an original guarded
  /// operation this is its guard set V; `compose` maintains it (the
  /// combined request succeeds from s iff every step of the chain finds
  /// its guard along the chased path), so `succeeded()` on a composed
  /// session is meaningful — the issuer of a combined request can read
  /// whole-session success off the one reply.
  [[nodiscard]] constexpr std::uint16_t guard() const noexcept { return guard_; }

  [[nodiscard]] constexpr bool succeeded(const DlsCell& old) const noexcept {
    return (guard_ & (1u << old.state)) != 0;
  }

  [[nodiscard]] constexpr DlsCell apply(const DlsCell& c) const noexcept {
    KRS_EXPECTS(c.state < NStates);
    const Entry& e = entries_[c.state];
    return DlsCell{e.store ? e.value : c.value, e.next};
  }

  /// Number of distinct store values the encoding must carry — the paper's
  /// §5.6 bound says this never exceeds |S|.
  [[nodiscard]] constexpr unsigned distinct_store_values() const noexcept {
    std::array<Word, NStates> vals{};
    unsigned n = 0;
    for (unsigned s = 0; s < NStates; ++s) {
      if (!entries_[s].store) continue;
      bool seen = false;
      for (unsigned i = 0; i < n; ++i) {
        if (vals[i] == entries_[s].value) {
          seen = true;
          break;
        }
      }
      if (!seen) vals[n++] = entries_[s].value;
    }
    return n;
  }

  /// Wire bytes: per state 1 store-flag bit + next-state index + store-slot
  /// index (⌈lg |S|⌉ bits each) + 1 guard bit, rounded up to bytes, plus
  /// one word per distinct store value (see detail::dls_encoded_bytes).
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return detail::dls_encoded_bytes(NStates, distinct_store_values());
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "dls{";
    for (unsigned i = 0; i < NStates; ++i) {
      if (i) s += ";";
      const Entry& e = entries_[i];
      s += "s" + std::to_string(i) + (e.store ? "->(" + std::to_string(e.value) + ",s" : "->(keep,s") +
           std::to_string(e.next) + ")";
    }
    return s + "}";
  }

  friend constexpr bool operator==(const DlsOp& a, const DlsOp& b) noexcept {
    return a.entries_ == b.entries_;  // guard/budget are issuer-side metadata
  }

  /// "f then g": chase each state through f, then through g. The success
  /// predicate composes along the same chase: the chain succeeds from s
  /// iff f admits s AND g admits the state f leaves behind.
  friend constexpr DlsOp compose(const DlsOp& f, const DlsOp& g) noexcept {
    DlsOp out;
    std::uint16_t guard = 0;
    for (unsigned s = 0; s < NStates; ++s) {
      const Entry& e1 = f.entries_[s];
      const Entry& e2 = g.entries_[e1.next];
      Entry& o = out.entries_[s];
      o.store = e1.store || e2.store;
      // Normalize value to 0 for keep-entries so equality is canonical.
      o.value = e2.store ? e2.value : (e1.store ? e1.value : 0);
      o.next = e2.next;
      if ((f.guard_ & (1u << s)) && (g.guard_ & (1u << e1.next))) {
        guard |= static_cast<std::uint16_t>(1u << s);
      }
    }
    out.guard_ = guard;
    out.size_budget_ = f.size_budget_ < g.size_budget_ ? f.size_budget_
                                                       : g.size_budget_;
    return out;
  }

  /// Composition under the wire budget: combine unless the composed table
  /// would exceed the narrower operand's byte budget — then decline, and
  /// the switch serves the second individually (§7 partial combining). At
  /// the default budget (the §5.6 bound) this never declines: the
  /// composed table has one row per state, so it carries at most |S|
  /// distinct store values — the closure the bound expresses.
  friend constexpr std::optional<DlsOp> try_compose(const DlsOp& f,
                                                    const DlsOp& g) noexcept {
    DlsOp out = compose(f, g);
    if (out.encoded_size_bytes() > out.size_budget_) return std::nullopt;
    return out;
  }

 private:
  static constexpr std::uint16_t kFullGuard =
      static_cast<std::uint16_t>((1u << NStates) - 1);

  std::array<Entry, NStates> entries_{};
  std::uint16_t guard_ = kFullGuard;
  std::uint16_t size_budget_ = static_cast<std::uint16_t>(kSizeBound);
};

static_assert(Rmw<DlsOp<2>>);
static_assert(Rmw<DlsOp<4>>);

// --- the word-level runtime family --------------------------------------------

/// A §5.6 guarded operation over a WORD-PACKED tagged cell, sized at
/// runtime (1..16 states). This is the encoding that makes data-level
/// synchronization a first-class citizen of the RmwBackend seam: the op is
/// an alternative of core::AnyRmw, so the atomic CAS loop, the combining
/// tree, the flat combiner, the sharded wrapper, the lock tier, and the
/// simulated machine all serve it through their ordinary fetch_rmw path.
/// Cells must be initialized with dls_pack(initial) and values must stay
/// below kDlsValueLimit (the tag owns the low bits).
///
/// Identity is the UNIVERSAL identity (state-count 0 sentinel): it applies
/// as a plain load on any cell and composes with any automaton — so
/// AnyRmw's identity-absorption and the Rmw identity laws hold without
/// knowing the state count. try_compose declines across distinct automata
/// (different state counts: the transition tables are not composable) and
/// past the wire budget, exactly like DlsOp.
class DlsWordOp {
 public:
  using value_type = Word;
  static constexpr unsigned kMaxStates = 16;

  /// Universal identity: plain load, composes with everything.
  constexpr DlsWordOp() noexcept = default;

  static constexpr DlsWordOp identity() noexcept { return DlsWordOp{}; }

  [[nodiscard]] constexpr bool is_identity() const noexcept {
    return nstates_ == 0;
  }

  [[nodiscard]] constexpr unsigned states() const noexcept { return nstates_; }

  static constexpr DlsWordOp guarded_load(
      unsigned nstates, std::uint16_t guard,
      const std::array<std::uint8_t, kMaxStates>& next) noexcept {
    return make(nstates, guard, next, /*store=*/false, 0);
  }

  static constexpr DlsWordOp guarded_store(
      unsigned nstates, Word v, std::uint16_t guard,
      const std::array<std::uint8_t, kMaxStates>& next) noexcept {
    KRS_EXPECTS(v < kDlsValueLimit);
    return make(nstates, guard, next, /*store=*/true, v);
  }

  /// The packed twin of a compile-time DlsOp (same table, same guard, same
  /// budget semantics) — the bridge the equivalence tests drive.
  template <unsigned N>
  static constexpr DlsWordOp from(const DlsOp<N>& op) noexcept {
    DlsWordOp out;
    out.nstates_ = N;
    out.guard_ = op.guard();
    out.size_budget_ = static_cast<std::uint16_t>(op.size_budget());
    for (unsigned s = 0; s < N; ++s) {
      const auto& e = op.entry(s);
      KRS_ASSERT(!e.store || e.value < kDlsValueLimit);
      out.values_[s] = e.store ? e.value : 0;
      out.ctrl_[s] = pack_ctrl(e.store, e.next);
    }
    return out;
  }

  /// Copy with a narrower wire budget (see DlsOp::with_size_budget).
  [[nodiscard]] constexpr DlsWordOp with_size_budget(
      std::size_t bytes) const noexcept {
    DlsWordOp op = *this;
    op.size_budget_ = static_cast<std::uint16_t>(bytes);
    return op;
  }

  [[nodiscard]] constexpr std::size_t size_budget() const noexcept {
    return size_budget_;
  }

  [[nodiscard]] constexpr std::uint16_t guard() const noexcept {
    return is_identity() ? std::uint16_t{0xFFFF} : guard_;
  }

  /// Success read off the packed PRIOR word of the reply, per the §5.6
  /// nack rule: the issuer decodes the old state and checks its guard.
  [[nodiscard]] constexpr bool succeeded(Word prior) const noexcept {
    return is_identity() ||
           (guard_ & (1u << (prior & kDlsStateMask))) != 0;
  }

  [[nodiscard]] constexpr bool stores_in(unsigned s) const noexcept {
    return (ctrl_[s] & kStoreBit) != 0;
  }
  [[nodiscard]] constexpr std::uint8_t next_of(unsigned s) const noexcept {
    return static_cast<std::uint8_t>(ctrl_[s] & kNextMask);
  }
  [[nodiscard]] constexpr Word value_of(unsigned s) const noexcept {
    return values_[s];
  }

  /// Total on words: a tag outside the automaton (s ≥ nstates, only
  /// reachable through a mis-initialized cell) behaves as failure —
  /// identity, like any un-guarded state.
  [[nodiscard]] constexpr Word apply(Word w) const noexcept {
    const unsigned s = static_cast<unsigned>(w & kDlsStateMask);
    if (is_identity() || s >= nstates_) return w;
    const Word value = stores_in(s) ? values_[s] : (w >> kDlsStateBits);
    return (value << kDlsStateBits) | next_of(s);
  }

  [[nodiscard]] constexpr unsigned distinct_store_values() const noexcept {
    std::array<Word, kMaxStates> vals{};
    unsigned n = 0;
    for (unsigned s = 0; s < nstates_; ++s) {
      if (!stores_in(s)) continue;
      bool seen = false;
      for (unsigned i = 0; i < n; ++i) {
        if (vals[i] == values_[s]) {
          seen = true;
          break;
        }
      }
      if (!seen) vals[n++] = values_[s];
    }
    return n;
  }

  /// Same wire format as DlsOp (detail::dls_encoded_bytes); the identity
  /// is a bare load — one byte of opcode, no table.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    if (is_identity()) return 1;
    return detail::dls_encoded_bytes(nstates_, distinct_store_values());
  }

  [[nodiscard]] std::string to_string() const {
    if (is_identity()) return "dlsw{id}";
    std::string s = "dlsw{";
    for (unsigned i = 0; i < nstates_; ++i) {
      if (i) s += ";";
      s += "s" + std::to_string(i) +
           (stores_in(i) ? "->(" + std::to_string(values_[i]) + ",s"
                         : "->(keep,s") +
           std::to_string(next_of(i)) + ")";
    }
    return s + "}";
  }

  /// Semantic equality: same automaton size and same per-state behavior.
  /// Guard and budget are issuer/switch metadata, kept out of equality
  /// like DlsOp does.
  friend constexpr bool operator==(const DlsWordOp& a,
                                   const DlsWordOp& b) noexcept {
    if (a.nstates_ != b.nstates_) return false;
    for (unsigned s = 0; s < a.nstates_; ++s) {
      if (a.ctrl_[s] != b.ctrl_[s]) return false;
      if (a.stores_in(s) && a.values_[s] != b.values_[s]) return false;
    }
    return true;
  }

  /// "f then g", defined when one side is the identity or the state
  /// counts match; the table chase, guard composition, and budget meet
  /// mirror DlsOp::compose.
  friend constexpr DlsWordOp compose(const DlsWordOp& f, const DlsWordOp& g) {
    if (f.is_identity()) return g;
    if (g.is_identity()) return f;
    KRS_EXPECTS(f.nstates_ == g.nstates_);
    DlsWordOp out;
    out.nstates_ = f.nstates_;
    std::uint16_t guard = 0;
    for (unsigned s = 0; s < f.nstates_; ++s) {
      const unsigned mid = f.next_of(s);
      const bool store = f.stores_in(s) || g.stores_in(mid);
      Word value = 0;
      if (g.stores_in(mid)) {
        value = g.values_[mid];
      } else if (f.stores_in(s)) {
        value = f.values_[s];
      }
      out.values_[s] = value;
      out.ctrl_[s] = pack_ctrl(store, g.next_of(mid));
      if ((f.guard_ & (1u << s)) && (g.guard_ & (1u << mid))) {
        guard |= static_cast<std::uint16_t>(1u << s);
      }
    }
    out.guard_ = guard;
    out.size_budget_ = f.size_budget_ < g.size_budget_ ? f.size_budget_
                                                       : g.size_budget_;
    return out;
  }

  /// Decline across distinct automata and past the wire budget; combine
  /// otherwise. §7 partial combining makes every decline correct — the
  /// switch serves the second individually at the root.
  friend constexpr std::optional<DlsWordOp> try_compose(
      const DlsWordOp& f, const DlsWordOp& g) noexcept {
    if (!f.is_identity() && !g.is_identity() && f.nstates_ != g.nstates_) {
      return std::nullopt;
    }
    DlsWordOp out = compose(f, g);
    if (out.encoded_size_bytes() > out.size_budget_) return std::nullopt;
    return out;
  }

 private:
  static constexpr std::uint8_t kStoreBit = 0x80;
  static constexpr std::uint8_t kNextMask = 0x0F;

  static constexpr std::uint8_t pack_ctrl(bool store,
                                          std::uint8_t next) noexcept {
    return static_cast<std::uint8_t>((store ? kStoreBit : 0) |
                                     (next & kNextMask));
  }

  static constexpr DlsWordOp make(
      unsigned nstates, std::uint16_t guard,
      const std::array<std::uint8_t, kMaxStates>& next, bool store,
      Word v) noexcept {
    KRS_EXPECTS(nstates >= 1 && nstates <= kMaxStates);
    DlsWordOp op;
    op.nstates_ = static_cast<std::uint8_t>(nstates);
    op.guard_ = static_cast<std::uint16_t>(guard & ((1u << nstates) - 1));
    op.size_budget_ =
        static_cast<std::uint16_t>(detail::dls_size_bound(nstates));
    for (unsigned s = 0; s < nstates; ++s) {
      if (op.guard_ & (1u << s)) {
        KRS_ASSERT(next[s] < nstates);
        op.values_[s] = store ? v : 0;
        op.ctrl_[s] = pack_ctrl(store, next[s]);
      } else {
        op.ctrl_[s] = pack_ctrl(false, static_cast<std::uint8_t>(s));
      }
    }
    return op;
  }

  std::array<Word, kMaxStates> values_{};
  std::array<std::uint8_t, kMaxStates> ctrl_{};
  std::uint8_t nstates_ = 0;       ///< 0 = universal identity
  std::uint16_t guard_ = 0;
  std::uint16_t size_budget_ = 1;  ///< identity encodes as one opcode byte
};

static_assert(Rmw<DlsWordOp>);

}  // namespace krs::core
