// §5.6 — General data-level synchronization.
//
// A data-level synchronization scheme is an automaton A = ⟨Φ, S, δ⟩: every
// shared variable is tagged with a state s ∈ S, and an operation is guarded
// by a set of states V ⊆ S in which it may execute; executing it also moves
// the tag through δ. A failed operation (s ∉ V) leaves the cell unchanged
// and is reported to the issuer as a negative acknowledgment — which the
// issuer detects from the old state carried by the reply.
//
// Modeled as *total* mappings on (value, state) cells: per state, the
// mapping either stores a value or keeps the old one, and names a successor
// state. Failure is the identity entry. Totality makes composition closed,
// and the per-state table realizes the paper's bound directly: a combined
// request carries at most |S| distinct store values (Section 5.6's best
// possible uniform bound, attained by the store-if-state=s family — see
// tests).
//
// The full/empty family of §5.5 is the |S| = 2 special case; tests exhibit
// the isomorphism. Path expressions (Campbell–Habermann) compile to such
// automata; see examples/path_expression.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"

namespace krs::core {

/// A tagged cell: data word plus automaton state.
struct DlsCell {
  Word value = 0;
  std::uint8_t state = 0;

  friend constexpr bool operator==(const DlsCell&, const DlsCell&) = default;
};

inline std::string to_string(const DlsCell& c) {
  return "(" + std::to_string(c.value) + ",s" + std::to_string(c.state) + ")";
}

/// Guarded RMW operation over an automaton with NStates states.
template <unsigned NStates>
class DlsOp {
  static_assert(NStates >= 1 && NStates <= 16,
                "tractability requires a small state set (see §5.6)");

 public:
  using value_type = DlsCell;
  static constexpr unsigned kStates = NStates;

  /// What the mapping does when the cell is in a given state.
  struct Entry {
    bool store = false;       ///< store `value` (else keep the old word)
    Word value = 0;           ///< stored word, if `store`
    std::uint8_t next = 0;    ///< successor state

    friend constexpr bool operator==(const Entry&, const Entry&) = default;
  };

  /// Identity mapping (every state: keep value, stay put).
  constexpr DlsOp() noexcept {
    for (unsigned s = 0; s < NStates; ++s) entries_[s] = Entry{false, 0, static_cast<std::uint8_t>(s)};
  }

  static constexpr DlsOp identity() noexcept { return DlsOp{}; }

  /// A guarded load: succeeds in the states of `guard` (bitmask), moving
  /// the tag through `next`; fails (identity) elsewhere.
  static constexpr DlsOp guarded_load(std::uint16_t guard,
                                      std::array<std::uint8_t, NStates> next) noexcept {
    DlsOp op;
    for (unsigned s = 0; s < NStates; ++s) {
      if (guard & (1u << s)) {
        KRS_ASSERT(next[s] < NStates);
        op.entries_[s] = Entry{false, 0, next[s]};
      }
    }
    op.guard_ = guard;
    return op;
  }

  /// A guarded store of v.
  static constexpr DlsOp guarded_store(Word v, std::uint16_t guard,
                                       std::array<std::uint8_t, NStates> next) noexcept {
    DlsOp op;
    for (unsigned s = 0; s < NStates; ++s) {
      if (guard & (1u << s)) {
        KRS_ASSERT(next[s] < NStates);
        op.entries_[s] = Entry{true, v, next[s]};
      }
    }
    op.guard_ = guard;
    return op;
  }

  [[nodiscard]] constexpr const Entry& entry(unsigned s) const noexcept {
    KRS_EXPECTS(s < NStates);
    return entries_[s];
  }

  /// The guard set of an *original* (uncombined) request; used by the
  /// issuer to interpret the reply. Combined mappings do not maintain it.
  [[nodiscard]] constexpr std::uint16_t guard() const noexcept { return guard_; }

  [[nodiscard]] constexpr bool succeeded(const DlsCell& old) const noexcept {
    return (guard_ & (1u << old.state)) != 0;
  }

  [[nodiscard]] constexpr DlsCell apply(const DlsCell& c) const noexcept {
    KRS_EXPECTS(c.state < NStates);
    const Entry& e = entries_[c.state];
    return DlsCell{e.store ? e.value : c.value, e.next};
  }

  /// Number of distinct store values the encoding must carry — the paper's
  /// §5.6 bound says this never exceeds |S|.
  [[nodiscard]] constexpr unsigned distinct_store_values() const noexcept {
    std::array<Word, NStates> vals{};
    unsigned n = 0;
    for (unsigned s = 0; s < NStates; ++s) {
      if (!entries_[s].store) continue;
      bool seen = false;
      for (unsigned i = 0; i < n; ++i) {
        if (vals[i] == entries_[s].value) {
          seen = true;
          break;
        }
      }
      if (!seen) vals[n++] = entries_[s].value;
    }
    return n;
  }

  /// Per state: 1 flag bit + state index + value slot reference; plus the
  /// distinct store values.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return NStates + distinct_store_values() * sizeof(Word);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "dls{";
    for (unsigned i = 0; i < NStates; ++i) {
      if (i) s += ";";
      const Entry& e = entries_[i];
      s += "s" + std::to_string(i) + (e.store ? "->(" + std::to_string(e.value) + ",s" : "->(keep,s") +
           std::to_string(e.next) + ")";
    }
    return s + "}";
  }

  friend constexpr bool operator==(const DlsOp& a, const DlsOp& b) noexcept {
    return a.entries_ == b.entries_;  // guard_ is issuer-side metadata
  }

  /// "f then g": chase each state through f, then through g.
  friend constexpr DlsOp compose(const DlsOp& f, const DlsOp& g) noexcept {
    DlsOp out;
    for (unsigned s = 0; s < NStates; ++s) {
      const Entry& e1 = f.entries_[s];
      const Entry& e2 = g.entries_[e1.next];
      Entry& o = out.entries_[s];
      o.store = e1.store || e2.store;
      // Normalize value to 0 for keep-entries so equality is canonical.
      o.value = e2.store ? e2.value : (e1.store ? e1.value : 0);
      o.next = e2.next;
    }
    out.guard_ = 0;
    return out;
  }

  friend constexpr std::optional<DlsOp> try_compose(const DlsOp& f,
                                                    const DlsOp& g) noexcept {
    return compose(f, g);
  }

 private:
  std::array<Entry, NStates> entries_{};
  std::uint16_t guard_ = 0;
};

static_assert(Rmw<DlsOp<2>>);
static_assert(Rmw<DlsOp<4>>);

}  // namespace krs::core
