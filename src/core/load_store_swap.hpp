// §5.1 — Loads, Stores, and Swaps.
//
// The mapping family is {id} ∪ {I_v}: a load is RMW(X, id); a store of v is
// RMW(X, I_v) with the returned value ignored; a swap is RMW(X, I_v) with
// the returned value used. Store and swap have the *same* update mapping —
// the kind distinction matters only for traffic (a store's reply is a bare
// acknowledgment) and for the order-reversal optimization.
//
// The paper gives two 3×3 combining tables. The first preserves request
// order (always correct):
//
//                second: load   store  swap
//   first: load          load   swap   swap
//          store         store  store  store
//          swap          swap   swap   swap
//
// The second may reverse the order of the two requests (marked *) so that a
// store executes before a load/swap and the load/swap can be answered
// locally, saving the reply's data word:
//
//                second: load   store   swap
//   first: load          load   store*  swap
//          store         store  store   store
//          swap          swap   store*  swap
//
// Reversal is only legal when the two requests come from different
// processors (reversing two requests of one processor violates M2.3); the
// switch code enforces that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

enum class LssKind : std::uint8_t { kLoad, kStore, kSwap };

const char* to_cstring(LssKind k) noexcept;

class LssOp {
 public:
  using value_type = Word;

  /// Default-constructed op is a load (the identity mapping).
  constexpr LssOp() noexcept : kind_(LssKind::kLoad), value_(0) {}

  static constexpr LssOp load() noexcept { return LssOp{}; }
  static constexpr LssOp store(Word v) noexcept {
    return LssOp(LssKind::kStore, v);
  }
  static constexpr LssOp swap(Word v) noexcept {
    return LssOp(LssKind::kSwap, v);
  }
  static constexpr LssOp identity() noexcept { return load(); }

  [[nodiscard]] constexpr LssKind kind() const noexcept { return kind_; }

  /// The stored value; meaningful only for store/swap.
  [[nodiscard]] constexpr Word value() const noexcept { return value_; }

  /// Evaluate the update mapping: id for a load, I_v for store/swap.
  [[nodiscard]] constexpr Word apply(Word x) const noexcept {
    return kind_ == LssKind::kLoad ? x : value_;
  }

  /// True iff the mapping is a constant mapping I_v.
  [[nodiscard]] constexpr bool is_constant() const noexcept {
    return kind_ != LssKind::kLoad;
  }

  /// Does the reply to this request carry a data word? (Stores only need an
  /// acknowledgment.)
  [[nodiscard]] constexpr bool reply_needs_data() const noexcept {
    return kind_ != LssKind::kStore;
  }

  /// Wire encoding: one opcode byte, plus a data word for store/swap.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return kind_ == LssKind::kLoad ? 1 : 1 + sizeof(Word);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const LssOp&, const LssOp&) = default;

  /// Order-preserving combination (first table). compose(f, g) is "f then
  /// g"; the result's kind is the forwarded request's kind.
  friend constexpr LssOp compose(const LssOp& first, const LssOp& second) noexcept {
    // Mapping: id∘g = g, f∘I_v = I_v; kind bookkeeping per the table.
    switch (first.kind_) {
      case LssKind::kLoad:
        // A load combined with a constant op must still fetch the old value
        // (to answer the load), so it is forwarded as a swap.
        return second.kind_ == LssKind::kLoad ? load() : swap(second.value_);
      case LssKind::kStore:
        // The store's constant answers any second request locally at
        // decombination time; no data need return from memory.
        return store(second.is_constant() ? second.value_ : first.value_);
      case LssKind::kSwap:
        return swap(second.is_constant() ? second.value_ : first.value_);
    }
    return load();  // unreachable
  }

  friend constexpr std::optional<LssOp> try_compose(const LssOp& f,
                                                    const LssOp& g) noexcept {
    return compose(f, g);
  }

 private:
  constexpr LssOp(LssKind k, Word v) noexcept : kind_(k), value_(v) {}

  LssKind kind_;
  Word value_;
};

static_assert(Rmw<LssOp>);

/// Result of the order-reversing combination (second table).
struct LssReversedCombine {
  LssOp forwarded;  ///< request sent toward memory
  bool reversed;    ///< true iff the second request's effect precedes the
                    ///< first's (starred entries in the table)
};

/// Combine with the order-reversal optimization: whenever the second request
/// is a store, execute it (logically) first so the first request's reply is
/// known locally and the forwarded request degenerates to a store.
/// Never apply to two requests of the same processor.
constexpr LssReversedCombine compose_reversible(const LssOp& first,
                                                const LssOp& second) noexcept {
  if (second.kind() == LssKind::kStore && first.kind() != LssKind::kStore) {
    // load+store → store*, swap+store → store*: memory ends with the FIRST
    // request's effect (a load leaves the stored value; a swap overwrites).
    const LssOp fwd = first.kind() == LssKind::kLoad
                          ? LssOp::store(second.value())
                          : LssOp::store(first.value());
    return {fwd, true};
  }
  return {compose(first, second), false};
}

}  // namespace krs::core
