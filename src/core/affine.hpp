// §5.4 (affine subcase) — combining fetch-and-add and fetch-and-multiply.
//
// If only addition and multiplication are supported, the spanned semigroup
// is the affine maps x → ax + b, encoded by two coefficients; composing two
// maps costs two multiplications and one addition (as the paper notes).
//
// Arithmetic is modulo 2^width (wrapping unsigned), i.e. the exact ring
// Z/2^w: composition is exact, so combined execution produces bit-identical
// results to serial execution — the overflow caveats of §5.4 concern
// *detecting* overflow relative to a narrower programmer-visible range,
// which the guard-bit technique (tested in tests/bench) addresses.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

template <std::unsigned_integral U>
class AffineMap {
 public:
  using value_type = U;

  /// Identity: x → 1·x + 0.
  constexpr AffineMap() noexcept : a_(1), b_(0) {}
  constexpr AffineMap(U a, U b) noexcept : a_(a), b_(b) {}

  static constexpr AffineMap identity() noexcept { return AffineMap{}; }
  static constexpr AffineMap fetch_add(U k) noexcept { return {U{1}, k}; }
  static constexpr AffineMap fetch_mul(U k) noexcept { return {k, U{0}}; }
  static constexpr AffineMap store(U v) noexcept { return {U{0}, v}; }

  [[nodiscard]] constexpr U a() const noexcept { return a_; }
  [[nodiscard]] constexpr U b() const noexcept { return b_; }

  [[nodiscard]] constexpr U apply(U x) const noexcept {
    return static_cast<U>(static_cast<U>(a_ * x) + b_);
  }

  /// Two coefficient words.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return 2 * sizeof(U);
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(a_) + "*x+" + std::to_string(b_);
  }

  friend constexpr bool operator==(const AffineMap&, const AffineMap&) =
      default;

  /// "f then g": g(f(x)) = g.a*(f.a*x + f.b) + g.b
  ///           = (g.a*f.a)*x + (g.a*f.b + g.b). Two muls, one add.
  friend constexpr AffineMap compose(const AffineMap& f,
                                     const AffineMap& g) noexcept {
    return AffineMap(static_cast<U>(g.a_ * f.a_),
                     static_cast<U>(static_cast<U>(g.a_ * f.b_) + g.b_));
  }

  friend constexpr std::optional<AffineMap> try_compose(
      const AffineMap& f, const AffineMap& g) noexcept {
    return compose(f, g);
  }

 private:
  U a_;
  U b_;
};

using Affine = AffineMap<Word>;
static_assert(Rmw<Affine>);

}  // namespace krs::core
