// §5.2 — Associative operations: fetch-and-θ.
//
// For an associative θ with identity element e, the family {θ_a : θ_a(x) =
// x θ a} is a tractable semigroup: θ_a ∘ θ_b = θ_{aθb}, the encoding is one
// word (the operand a), and θ_e is the identity mapping (a load).
//
// fetch-and-add is FetchTheta<PlusOp>; the paper also singles out
// fetch-and-OR (test-and-set is fetch-and-OR(X, 1)) and fetch-and-min
// (allocation with priorities). We additionally provide and, xor, and max —
// all standard combinable atomics on modern hardware.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

// Operation policies: an associative binary op on Word with its identity.
// Addition is modulo 2^64 (wrapping), matching fixed-point hardware
// arithmetic; see §5.4 for the guard-bit discussion.

struct PlusOp {
  static constexpr const char* name = "add";
  static constexpr Word identity_element = 0;
  static constexpr Word apply(Word x, Word a) noexcept { return x + a; }
};

struct BitOrOp {
  static constexpr const char* name = "or";
  static constexpr Word identity_element = 0;
  static constexpr Word apply(Word x, Word a) noexcept { return x | a; }
};

struct BitAndOp {
  static constexpr const char* name = "and";
  static constexpr Word identity_element = ~Word{0};
  static constexpr Word apply(Word x, Word a) noexcept { return x & a; }
};

struct BitXorOp {
  static constexpr const char* name = "xor";
  static constexpr Word identity_element = 0;
  static constexpr Word apply(Word x, Word a) noexcept { return x ^ a; }
};

struct MinOp {
  static constexpr const char* name = "min";
  static constexpr Word identity_element = std::numeric_limits<Word>::max();
  static constexpr Word apply(Word x, Word a) noexcept { return std::min(x, a); }
};

struct MaxOp {
  static constexpr const char* name = "max";
  static constexpr Word identity_element = 0;
  static constexpr Word apply(Word x, Word a) noexcept { return std::max(x, a); }
};

/// The mapping θ_a of a fetch-and-θ request.
template <typename Op>
class FetchTheta {
 public:
  using value_type = Word;
  using op_type = Op;

  constexpr FetchTheta() noexcept : operand_(Op::identity_element) {}
  explicit constexpr FetchTheta(Word a) noexcept : operand_(a) {}

  static constexpr FetchTheta identity() noexcept { return FetchTheta{}; }

  [[nodiscard]] constexpr Word operand() const noexcept { return operand_; }

  [[nodiscard]] constexpr Word apply(Word x) const noexcept {
    return Op::apply(x, operand_);
  }

  /// One operand word.
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return sizeof(Word);
  }

  [[nodiscard]] std::string to_string() const {
    return std::string("fetch-and-") + Op::name + "(" +
           std::to_string(operand_) + ")";
  }

  friend constexpr bool operator==(const FetchTheta&, const FetchTheta&) =
      default;

  /// θ_a ∘ θ_b = θ_{a θ b} — one θ evaluation per combine.
  friend constexpr FetchTheta compose(const FetchTheta& f,
                                      const FetchTheta& g) noexcept {
    return FetchTheta(Op::apply(f.operand_, g.operand_));
  }

  friend constexpr std::optional<FetchTheta> try_compose(
      const FetchTheta& f, const FetchTheta& g) noexcept {
    return compose(f, g);
  }

 private:
  Word operand_;
};

using FetchAdd = FetchTheta<PlusOp>;
using FetchOr = FetchTheta<BitOrOp>;
using FetchAnd = FetchTheta<BitAndOp>;
using FetchXor = FetchTheta<BitXorOp>;
using FetchMin = FetchTheta<MinOp>;
using FetchMax = FetchTheta<MaxOp>;

static_assert(Rmw<FetchAdd>);
static_assert(Rmw<FetchOr>);
static_assert(Rmw<FetchMin>);

/// test-and-set(X) ≡ fetch-and-OR(X, 1) (§5.2).
constexpr FetchOr test_and_set() noexcept { return FetchOr(1); }

}  // namespace krs::core
