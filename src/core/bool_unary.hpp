// §5.3 — Boolean operations.
//
// The four unary Boolean functions {0, 1, x, x̄} correspond to the RMW
// operations test-and-clear, test-and-set, load, and test-and-complement.
// They compose by the paper's 4×4 table:
//
//                second: load   clear  set  comp
//   first: load          load   clear  set  comp
//          clear         clear  clear  set  set
//          set           set    clear  set  clear
//          comp          comp   clear  set  load
//
// (Row = first executed, column = second; entry = composition "first then
// second". E.g. comp∘comp = load.)
//
// Every bitwise unary Boolean function on a w-bit word is of the form
//     f(x) = (x AND keep) XOR flip
// for word constants keep/flip (per-bit: keep=1,flip=0 load; keep=1,flip=1
// complement; keep=0,flip=0 clear; keep=0,flip=1 set). Composition stays in
// this form, so the encoding is two words — tractable. This is the
// bit-vector extension the paper suggests for multiple locking.
//
// All 16 *binary* Boolean operations fetch-and-θ(X, a) reduce to this
// family: with the operand a fixed, θ(·, a) is unary in each bit position
// (e.g. fetch-and-AND(X, a) is load where a has 1-bits and test-and-clear
// where it has 0-bits).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/rmw.hpp"
#include "core/types.hpp"

namespace krs::core {

/// The four single-bit unary Boolean RMW opcodes.
enum class BoolFn : std::uint8_t { kLoad = 0, kClear = 1, kSet = 2, kComp = 3 };

const char* to_cstring(BoolFn f) noexcept;

/// Evaluate a single-bit unary Boolean function.
constexpr bool apply_bool_fn(BoolFn f, bool x) noexcept {
  switch (f) {
    case BoolFn::kLoad:
      return x;
    case BoolFn::kClear:
      return false;
    case BoolFn::kSet:
      return true;
    case BoolFn::kComp:
      return !x;
  }
  return x;
}

/// Composition "f then g" of single-bit functions, computed from semantics
/// (tests check it against the paper's printed table).
constexpr BoolFn compose_bool_fn(BoolFn f, BoolFn g) noexcept {
  const bool r0 = apply_bool_fn(g, apply_bool_fn(f, false));
  const bool r1 = apply_bool_fn(g, apply_bool_fn(f, true));
  if (r0 == r1) return r0 ? BoolFn::kSet : BoolFn::kClear;
  return r0 ? BoolFn::kComp : BoolFn::kLoad;
}

/// A bitwise unary Boolean mapping on a word: f(x) = (x & keep) ^ flip.
class BoolVec {
 public:
  using value_type = Word;

  /// Identity (bitwise load).
  constexpr BoolVec() noexcept : keep_(~Word{0}), flip_(0) {}

  constexpr BoolVec(Word keep, Word flip) noexcept
      : keep_(keep), flip_(flip) {}

  static constexpr BoolVec identity() noexcept { return BoolVec{}; }

  /// The same single-bit function in every position.
  static constexpr BoolVec broadcast(BoolFn f) noexcept {
    switch (f) {
      case BoolFn::kLoad:
        return BoolVec(~Word{0}, 0);
      case BoolFn::kClear:
        return BoolVec(0, 0);
      case BoolFn::kSet:
        return BoolVec(0, ~Word{0});
      case BoolFn::kComp:
        return BoolVec(~Word{0}, ~Word{0});
    }
    return identity();
  }

  /// The mapping of fetch-and-θ(X, a) for a binary Boolean θ given by its
  /// truth table θ(x, y) = tt[2*x + y].
  static constexpr BoolVec fetch_and_binary(std::array<bool, 4> tt,
                                            Word a) noexcept {
    // Per bit position i (with operand bit b = a_i), the unary function is
    // u(x) = θ(x, b): keep bit = u(0) XOR u(1), flip bit = u(0).
    // Compute the keep/flip words for b=0 and b=1 and select by a.
    const bool u00 = tt[0], u10 = tt[2];  // b = 0: u(0), u(1)
    const bool u01 = tt[1], u11 = tt[3];  // b = 1: u(0), u(1)
    const Word keep0 = (u00 != u10) ? ~Word{0} : 0;
    const Word flip0 = u00 ? ~Word{0} : 0;
    const Word keep1 = (u01 != u11) ? ~Word{0} : 0;
    const Word flip1 = u01 ? ~Word{0} : 0;
    return BoolVec((keep0 & ~a) | (keep1 & a), (flip0 & ~a) | (flip1 & a));
  }

  /// §5.1's partial-word stores: "combination of store operations that
  /// affect only bytes or half-words will require introducing store
  /// operations that affect any subset of bytes in a word." A masked store
  /// writes v into the mask-selected bits and preserves the rest — it is
  /// the unary Boolean mapping keep = ~mask, flip = v & mask, so partial
  /// stores combine through this family for free.
  static constexpr BoolVec masked_store(Word v, Word mask) noexcept {
    return BoolVec(~mask, v & mask);
  }

  [[nodiscard]] constexpr Word keep() const noexcept { return keep_; }
  [[nodiscard]] constexpr Word flip() const noexcept { return flip_; }

  [[nodiscard]] constexpr Word apply(Word x) const noexcept {
    return (x & keep_) ^ flip_;
  }

  /// The single-bit function acting at bit position i.
  [[nodiscard]] constexpr BoolFn fn_at(unsigned i) const noexcept {
    const bool k = (keep_ >> i) & 1u;
    const bool b = (flip_ >> i) & 1u;
    if (k) return b ? BoolFn::kComp : BoolFn::kLoad;
    return b ? BoolFn::kSet : BoolFn::kClear;
  }

  /// Two words (the paper: mappings on n-bit vectors take 2n bits).
  [[nodiscard]] constexpr std::size_t encoded_size_bytes() const noexcept {
    return 2 * sizeof(Word);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const BoolVec&, const BoolVec&) = default;

  /// (x&k1 ^ b1)&k2 ^ b2  =  x&(k1&k2) ^ ((b1&k2)^b2): two ANDs and a XOR.
  friend constexpr BoolVec compose(const BoolVec& f, const BoolVec& g) noexcept {
    return BoolVec(f.keep_ & g.keep_, (f.flip_ & g.keep_) ^ g.flip_);
  }

  friend constexpr std::optional<BoolVec> try_compose(const BoolVec& f,
                                                      const BoolVec& g) noexcept {
    return compose(f, g);
  }

 private:
  Word keep_;
  Word flip_;
};

static_assert(Rmw<BoolVec>);

// Truth tables for the common binary Boolean operations (θ(x,y) = tt[2x+y]).
inline constexpr std::array<bool, 4> kTtAnd = {false, false, false, true};
inline constexpr std::array<bool, 4> kTtOr = {false, true, true, true};
inline constexpr std::array<bool, 4> kTtXor = {false, true, true, false};
inline constexpr std::array<bool, 4> kTtNand = {true, true, true, false};
inline constexpr std::array<bool, 4> kTtNor = {true, false, false, false};

}  // namespace krs::core
