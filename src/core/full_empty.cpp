#include "core/full_empty.hpp"

#include "core/law_checks.hpp"  // static_asserts the §5.5 closure at build time

namespace krs::core {

const char* to_cstring(FEKind k) noexcept {
  switch (k) {
    case FEKind::kLoad:
      return "load";
    case FEKind::kLoadClear:
      return "load-and-clear";
    case FEKind::kStoreSet:
      return "store-and-set";
    case FEKind::kStoreIfClearSet:
      return "store-if-clear-and-set";
    case FEKind::kStoreClear:
      return "store-and-clear";
    case FEKind::kStoreIfClearClear:
      return "store-if-clear-and-clear";
  }
  return "?";
}

std::string FEOp::to_string() const {
  std::string s = to_cstring(kind_);
  if (carries_value()) s += "(" + std::to_string(value_) + ")";
  return s;
}

}  // namespace krs::core
