// Wire encodings for the mapping families — the tractability requirement
// made concrete.
//
// §5 defines a family Φ as *tractable* when there is an encoding
// φ : Φ̄ → {0,1}* such that (1) |φ(f)| = O(w), (2) φ(f∘g) is cheaply
// computable from φ(f), φ(g), and (3) f(a) is cheaply computable from φ(f)
// and a. The in-memory classes satisfy (2) and (3); this header supplies
// (1) literally: every family serializes to a compact byte string and
// round-trips losslessly, so a hardware switch (or a network message)
// could carry exactly these bytes.
//
// Format: one opcode/tag byte (family-specific), followed by little-endian
// fixed-width operand words. Encodings are canonical: equal mappings
// produce identical bytes (tested).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "core/affine.hpp"
#include "core/bool_unary.hpp"
#include "core/fetch_theta.hpp"
#include "core/full_empty.hpp"
#include "core/load_store_swap.hpp"
#include "core/moebius.hpp"
#include "util/assert.hpp"

namespace krs::core {

using Bytes = std::vector<std::uint8_t>;

namespace detail {

inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::optional<std::uint64_t> get_u64(std::span<const std::uint8_t>& in) {
  if (in.size() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  in = in.subspan(8);
  return v;
}

inline std::optional<std::uint8_t> get_u8(std::span<const std::uint8_t>& in) {
  if (in.empty()) return std::nullopt;
  const std::uint8_t b = in[0];
  in = in.subspan(1);
  return b;
}

}  // namespace detail

// --- loads/stores/swaps -------------------------------------------------------

inline Bytes encode(const LssOp& op) {
  Bytes out{static_cast<std::uint8_t>(op.kind())};
  if (op.is_constant()) detail::put_u64(out, op.value());
  return out;
}

inline std::optional<LssOp> decode_lss(std::span<const std::uint8_t> in) {
  const auto tag = detail::get_u8(in);
  if (!tag) return std::nullopt;
  switch (static_cast<LssKind>(*tag)) {
    case LssKind::kLoad:
      return in.empty() ? std::optional<LssOp>(LssOp::load()) : std::nullopt;
    case LssKind::kStore: {
      const auto v = detail::get_u64(in);
      if (!v || !in.empty()) return std::nullopt;
      return LssOp::store(*v);
    }
    case LssKind::kSwap: {
      const auto v = detail::get_u64(in);
      if (!v || !in.empty()) return std::nullopt;
      return LssOp::swap(*v);
    }
  }
  return std::nullopt;
}

// --- fetch-and-θ ---------------------------------------------------------------

template <typename Op>
Bytes encode(const FetchTheta<Op>& op) {
  Bytes out;
  detail::put_u64(out, op.operand());
  return out;
}

template <typename Op>
std::optional<FetchTheta<Op>> decode_fetch_theta(
    std::span<const std::uint8_t> in) {
  const auto v = detail::get_u64(in);
  if (!v || !in.empty()) return std::nullopt;
  return FetchTheta<Op>(*v);
}

// --- Boolean bit-vector ---------------------------------------------------------

inline Bytes encode(const BoolVec& op) {
  Bytes out;
  detail::put_u64(out, op.keep());
  detail::put_u64(out, op.flip());
  return out;
}

inline std::optional<BoolVec> decode_boolvec(std::span<const std::uint8_t> in) {
  const auto k = detail::get_u64(in);
  const auto f = detail::get_u64(in);
  if (!k || !f || !in.empty()) return std::nullopt;
  return BoolVec(*k, *f);
}

// --- affine ---------------------------------------------------------------------

inline Bytes encode(const Affine& op) {
  Bytes out;
  detail::put_u64(out, op.a());
  detail::put_u64(out, op.b());
  return out;
}

inline std::optional<Affine> decode_affine(std::span<const std::uint8_t> in) {
  const auto a = detail::get_u64(in);
  const auto b = detail::get_u64(in);
  if (!a || !b || !in.empty()) return std::nullopt;
  return Affine(*a, *b);
}

// --- Möbius ---------------------------------------------------------------------

inline Bytes encode(const Moebius& op) {
  Bytes out;
  detail::put_u64(out, static_cast<std::uint64_t>(op.a()));
  detail::put_u64(out, static_cast<std::uint64_t>(op.b()));
  detail::put_u64(out, static_cast<std::uint64_t>(op.c()));
  detail::put_u64(out, static_cast<std::uint64_t>(op.d()));
  return out;
}

inline std::optional<Moebius> decode_moebius(std::span<const std::uint8_t> in) {
  const auto a = detail::get_u64(in);
  const auto b = detail::get_u64(in);
  const auto c = detail::get_u64(in);
  const auto d = detail::get_u64(in);
  if (!a || !b || !c || !d || !in.empty()) return std::nullopt;
  const auto sa = static_cast<std::int64_t>(*a);
  const auto sb = static_cast<std::int64_t>(*b);
  const auto sc = static_cast<std::int64_t>(*c);
  const auto sd = static_cast<std::int64_t>(*d);
  if (sc == 0 && sd == 0) return std::nullopt;  // not a Möbius function
  if (sa == INT64_MIN || sb == INT64_MIN || sc == INT64_MIN ||
      sd == INT64_MIN) {
    return std::nullopt;
  }
  return Moebius(sa, sb, sc, sd);
}

// --- full/empty ------------------------------------------------------------------

inline Bytes encode(const FEOp& op) {
  Bytes out{static_cast<std::uint8_t>(op.kind())};
  if (op.carries_value()) detail::put_u64(out, op.value());
  return out;
}

inline std::optional<FEOp> decode_fe(std::span<const std::uint8_t> in) {
  const auto tag = detail::get_u8(in);
  if (!tag || *tag > static_cast<std::uint8_t>(FEKind::kStoreIfClearClear)) {
    return std::nullopt;
  }
  const auto kind = static_cast<FEKind>(*tag);
  const bool carries = kind != FEKind::kLoad && kind != FEKind::kLoadClear;
  std::uint64_t v = 0;
  if (carries) {
    const auto w = detail::get_u64(in);
    if (!w) return std::nullopt;
    v = *w;
  }
  if (!in.empty()) return std::nullopt;
  switch (kind) {
    case FEKind::kLoad:
      return FEOp::load();
    case FEKind::kLoadClear:
      return FEOp::load_and_clear();
    case FEKind::kStoreSet:
      return FEOp::store_and_set(v);
    case FEKind::kStoreIfClearSet:
      return FEOp::store_if_clear_and_set(v);
    case FEKind::kStoreClear:
      return FEOp::store_and_clear(v);
    case FEKind::kStoreIfClearClear:
      return FEOp::store_if_clear_and_clear(v);
  }
  return std::nullopt;
}

}  // namespace krs::core
