// Path expressions → §5.6 data-level-sync automata.
//
// Campbell–Habermann path expressions declare the legal orderings of
// operations on a shared object: `open (read | append)* close` says every
// session opens, then reads/appends, then closes — and the path repeats.
// Operationally a path expression IS a cyclic finite automaton over
// operation names, which is exactly the ⟨Φ, S, δ⟩ shape of the paper's
// §5.6 data-level synchronization: tag the object with the automaton
// state, guard each operation by the states where the path admits it, and
// let failed operations NACK without touching the cell.
//
// This header compiles the expression language
//
//   expr   := seq ('|' seq)*            alternation
//   seq    := factor+                   concatenation (whitespace)
//   factor := atom '*' | atom '+' | atom
//   atom   := ident | '(' expr ')'
//
// through the classical pipeline — Thompson construction, an ε edge from
// accept back to start (paths repeat), subset construction, Moore
// partition refinement — into a minimal DFA. Acceptance is erased by the
// cyclic wrap, so minimization merges on transition behavior alone, which
// is sound for prefix-closed protocol traces. The result must respect the
// §5.6 tractability cap (≤ 16 states, DlsWordOp::kMaxStates): the guard
// masks and transition tables of every operation drop straight into
// DlsOp / DlsWordOp builders, and the automaton is served through any
// RmwBackend substrate as ordinary word RMWs (see runtime/dls_service.hpp
// and workload/path_scenarios.hpp).
#pragma once

#include <algorithm>
#include <array>
#include <bitset>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dls.hpp"
#include "util/assert.hpp"

namespace krs::core {

/// A compiled path expression: a minimal cyclic DFA over operation names,
/// start state 0, at most DlsWordOp::kMaxStates states. Operations missing
/// from a state are NACKs (the §5.6 failure/identity entry).
class PathAutomaton {
 public:
  [[nodiscard]] unsigned states() const noexcept { return nstates_; }

  /// Operation names in first-appearance order.
  [[nodiscard]] const std::vector<std::string>& alphabet() const noexcept {
    return names_;
  }

  [[nodiscard]] bool has_op(std::string_view name) const noexcept {
    return find(name) >= 0;
  }

  /// The guard set of an operation: the states in which the path admits it.
  [[nodiscard]] std::uint16_t guard_of(std::string_view name) const {
    const int a = find(name);
    KRS_EXPECTS(a >= 0);
    return guards_[static_cast<std::size_t>(a)];
  }

  /// δ(state, name); only meaningful where the guard admits the state.
  [[nodiscard]] std::uint8_t next_of(std::string_view name,
                                     unsigned state) const {
    const int a = find(name);
    KRS_EXPECTS(a >= 0 && state < nstates_);
    return nexts_[static_cast<std::size_t>(a)][state];
  }

  [[nodiscard]] bool admits(std::string_view name, unsigned state) const {
    return (guard_of(name) & (1u << state)) != 0;
  }

  /// The operation as a word-level guarded load (value untouched).
  [[nodiscard]] DlsWordOp load_op(std::string_view name) const {
    const int a = find(name);
    KRS_EXPECTS(a >= 0);
    return DlsWordOp::guarded_load(nstates_,
                                   guards_[static_cast<std::size_t>(a)],
                                   nexts_[static_cast<std::size_t>(a)]);
  }

  /// The operation as a word-level guarded store of v.
  [[nodiscard]] DlsWordOp store_op(std::string_view name, Word v) const {
    const int a = find(name);
    KRS_EXPECTS(a >= 0);
    return DlsWordOp::guarded_store(nstates_, v,
                                    guards_[static_cast<std::size_t>(a)],
                                    nexts_[static_cast<std::size_t>(a)]);
  }

  /// Compile-time-sized twins for the algebra layer / simulated machine.
  /// N must equal states().
  template <unsigned N>
  [[nodiscard]] DlsOp<N> typed_load_op(std::string_view name) const {
    KRS_EXPECTS(N == nstates_);
    const int a = find(name);
    KRS_EXPECTS(a >= 0);
    return DlsOp<N>::guarded_load(guards_[static_cast<std::size_t>(a)],
                                  trim<N>(nexts_[static_cast<std::size_t>(a)]));
  }

  template <unsigned N>
  [[nodiscard]] DlsOp<N> typed_store_op(std::string_view name, Word v) const {
    KRS_EXPECTS(N == nstates_);
    const int a = find(name);
    KRS_EXPECTS(a >= 0);
    return DlsOp<N>::guarded_store(
        v, guards_[static_cast<std::size_t>(a)],
        trim<N>(nexts_[static_cast<std::size_t>(a)]));
  }

  /// Walk a scripted trace from state 0; true iff every step is admitted.
  [[nodiscard]] bool accepts_trace(
      const std::vector<std::string>& trace) const {
    unsigned s = 0;
    for (const auto& op : trace) {
      if (!has_op(op) || !admits(op, s)) return false;
      s = next_of(op, s);
    }
    return true;
  }

 private:
  friend class PathCompiler;

  [[nodiscard]] int find(std::string_view name) const noexcept {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  template <unsigned N>
  static std::array<std::uint8_t, N> trim(
      const std::array<std::uint8_t, DlsWordOp::kMaxStates>& full) {
    std::array<std::uint8_t, N> out{};
    for (unsigned i = 0; i < N; ++i) out[i] = full[i];
    return out;
  }

  unsigned nstates_ = 1;
  std::vector<std::string> names_;
  std::vector<std::uint16_t> guards_;
  std::vector<std::array<std::uint8_t, DlsWordOp::kMaxStates>> nexts_;
};

/// Compiles path expressions. Stateless apart from error reporting:
///
///   PathCompiler pc;
///   auto a = pc.compile("open (read | append)* close");
///   if (!a) { ... pc.error() ... }
class PathCompiler {
  /// Thompson NFA cap; expressions are tiny, this is a sanity bound.
  static constexpr std::size_t kMaxNfa = 256;

 public:
  [[nodiscard]] std::optional<PathAutomaton> compile(std::string_view src) {
    error_.clear();
    nfa_.clear();
    names_.clear();
    src_ = src;
    pos_ = 0;

    const auto frag = parse_expr();
    if (!frag) return std::nullopt;
    skip_ws();
    if (pos_ != src_.size()) {
      return fail("unexpected '" + std::string(1, src_[pos_]) + "' at offset " +
                  std::to_string(pos_));
    }
    if (names_.empty()) return fail("empty path expression");

    // Paths repeat: wrap the accept back onto the start before
    // determinizing, which also erases acceptance (every trace prefix of
    // the repeated path is legal).
    nfa_[static_cast<std::size_t>(frag->accept)].eps.push_back(frag->start);
    return determinize(frag->start);
  }

  /// Why the last compile() returned nullopt.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  using NfaSet = std::bitset<kMaxNfa>;

  struct NfaState {
    std::vector<std::pair<int, int>> edges;  ///< (symbol, target)
    std::vector<int> eps;
  };
  struct Frag {
    int start;
    int accept;
  };

  // --- recursive-descent parser over Thompson fragments ---

  std::optional<Frag> parse_expr() {
    auto left = parse_seq();
    if (!left) return std::nullopt;
    while (peek() == '|') {
      ++pos_;
      auto right = parse_seq();
      if (!right) return std::nullopt;
      const int s = add_state();
      const int t = add_state();
      if (s < 0 || t < 0) return std::nullopt;
      nfa_[static_cast<std::size_t>(s)].eps = {left->start, right->start};
      nfa_[static_cast<std::size_t>(left->accept)].eps.push_back(t);
      nfa_[static_cast<std::size_t>(right->accept)].eps.push_back(t);
      left = Frag{s, t};
    }
    return left;
  }

  std::optional<Frag> parse_seq() {
    std::optional<Frag> acc;
    while (true) {
      const char c = peek();
      if (c != '(' && !is_ident_start(c)) break;
      auto f = parse_factor();
      if (!f) return std::nullopt;
      if (!acc) {
        acc = f;
      } else {
        nfa_[static_cast<std::size_t>(acc->accept)].eps.push_back(f->start);
        acc->accept = f->accept;
      }
    }
    if (!acc) return fail_frag("expected an operation name or '('");
    return acc;
  }

  std::optional<Frag> parse_factor() {
    auto inner = parse_atom();
    if (!inner) return std::nullopt;
    const char c = peek();
    if (c == '*' || c == '+') {
      ++pos_;
      const int s = add_state();
      const int t = add_state();
      if (s < 0 || t < 0) return std::nullopt;
      auto& start = nfa_[static_cast<std::size_t>(s)];
      start.eps.push_back(inner->start);
      if (c == '*') start.eps.push_back(t);  // zero iterations allowed
      auto& acc = nfa_[static_cast<std::size_t>(inner->accept)];
      acc.eps.push_back(inner->start);  // loop
      acc.eps.push_back(t);
      return Frag{s, t};
    }
    return inner;
  }

  std::optional<Frag> parse_atom() {
    skip_ws();
    if (peek() == '(') {
      ++pos_;
      auto inner = parse_expr();
      if (!inner) return std::nullopt;
      skip_ws();
      if (peek() != ')') return fail_frag("missing ')'");
      ++pos_;
      return inner;
    }
    if (!is_ident_start(peek())) {
      return fail_frag("expected an operation name or '('");
    }
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const int sym = intern(src_.substr(begin, pos_ - begin));
    const int s = add_state();
    const int t = add_state();
    if (s < 0 || t < 0) return std::nullopt;
    nfa_[static_cast<std::size_t>(s)].edges.emplace_back(sym, t);
    return Frag{s, t};
  }

  // --- subset construction + Moore minimization ---

  std::optional<PathAutomaton> determinize(int nfa_start) {
    const auto nsyms = static_cast<int>(names_.size());

    NfaSet start;
    start.set(static_cast<std::size_t>(nfa_start));
    close(start);

    std::map<NfaSet, int, SetLess> ids;
    std::vector<NfaSet> sets{start};
    ids.emplace(start, 0);
    // dfa[state][symbol] = target, -1 = not admitted (NACK).
    std::vector<std::vector<int>> dfa;

    for (std::size_t i = 0; i < sets.size(); ++i) {
      dfa.emplace_back(static_cast<std::size_t>(nsyms), -1);
      for (int a = 0; a < nsyms; ++a) {
        NfaSet next;
        for (std::size_t q = 0; q < nfa_.size(); ++q) {
          if (!sets[i].test(q)) continue;
          for (const auto& [sym, to] : nfa_[q].edges) {
            if (sym == a) next.set(static_cast<std::size_t>(to));
          }
        }
        if (next.none()) continue;
        close(next);
        auto [it, inserted] = ids.emplace(next, static_cast<int>(sets.size()));
        if (inserted) sets.push_back(next);
        dfa[i][static_cast<std::size_t>(a)] = it->second;
      }
      // The subset graph can exceed the state cap before minimization
      // shrinks it; bound the walk at something comfortably larger.
      if (sets.size() > 4 * DlsWordOp::kMaxStates) {
        fail("path expression explodes past " +
             std::to_string(4 * DlsWordOp::kMaxStates) +
             " subset states before minimization");
        return std::nullopt;
      }
    }

    // Moore refinement. No acceptance split (the cyclic wrap erased it):
    // start from one block, split on (symbol → block) signatures.
    const auto n = static_cast<int>(sets.size());
    std::vector<int> block(static_cast<std::size_t>(n), 0);
    int nblocks = 1;
    while (true) {
      std::map<std::vector<int>, int> sig_ids;
      std::vector<int> next_block(static_cast<std::size_t>(n));
      for (int q = 0; q < n; ++q) {
        std::vector<int> sig;
        sig.reserve(static_cast<std::size_t>(nsyms) + 1);
        sig.push_back(block[static_cast<std::size_t>(q)]);
        for (int a = 0; a < nsyms; ++a) {
          const int t = dfa[static_cast<std::size_t>(q)][static_cast<std::size_t>(a)];
          sig.push_back(t < 0 ? -1 : block[static_cast<std::size_t>(t)]);
        }
        auto [it, inserted] =
            sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
        next_block[static_cast<std::size_t>(q)] = it->second;
      }
      const auto count = static_cast<int>(sig_ids.size());
      block = std::move(next_block);
      if (count == nblocks) break;
      nblocks = count;
    }

    if (nblocks > static_cast<int>(DlsWordOp::kMaxStates)) {
      fail("path expression needs " + std::to_string(nblocks) +
           " states; the §5.6 tractability cap is " +
           std::to_string(DlsWordOp::kMaxStates));
      return std::nullopt;
    }

    // Renumber blocks BFS-from-start so state 0 is the initial state and
    // the numbering is deterministic.
    std::vector<int> renum(static_cast<std::size_t>(nblocks), -1);
    std::vector<int> rep;  // representative DFA state per renumbered block
    renum[static_cast<std::size_t>(block[0])] = 0;
    rep.push_back(0);
    for (std::size_t i = 0; i < rep.size(); ++i) {
      for (int a = 0; a < nsyms; ++a) {
        const int t = dfa[static_cast<std::size_t>(rep[i])][static_cast<std::size_t>(a)];
        if (t < 0) continue;
        const int b = block[static_cast<std::size_t>(t)];
        if (renum[static_cast<std::size_t>(b)] < 0) {
          renum[static_cast<std::size_t>(b)] = static_cast<int>(rep.size());
          rep.push_back(t);
        }
      }
    }
    // Every block is reachable from the start block by construction
    // (subset states are reachable, and blocks partition them).
    KRS_ASSERT(static_cast<int>(rep.size()) == nblocks);

    PathAutomaton out;
    out.nstates_ = static_cast<unsigned>(nblocks);
    out.names_ = names_;
    out.guards_.assign(static_cast<std::size_t>(nsyms), 0);
    out.nexts_.assign(static_cast<std::size_t>(nsyms), {});
    for (int a = 0; a < nsyms; ++a) {
      for (int b = 0; b < nblocks; ++b) {
        const int t = dfa[static_cast<std::size_t>(rep[static_cast<std::size_t>(b)])]
                         [static_cast<std::size_t>(a)];
        if (t < 0) continue;
        out.guards_[static_cast<std::size_t>(a)] |=
            static_cast<std::uint16_t>(1u << b);
        out.nexts_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(
                renum[static_cast<std::size_t>(block[static_cast<std::size_t>(t)])]);
      }
    }
    return out;
  }

  void close(NfaSet& set) const {
    std::vector<std::size_t> stack;
    for (std::size_t q = 0; q < nfa_.size(); ++q) {
      if (set.test(q)) stack.push_back(q);
    }
    while (!stack.empty()) {
      const std::size_t q = stack.back();
      stack.pop_back();
      for (const int to : nfa_[q].eps) {
        if (!set.test(static_cast<std::size_t>(to))) {
          set.set(static_cast<std::size_t>(to));
          stack.push_back(static_cast<std::size_t>(to));
        }
      }
    }
  }

  struct SetLess {
    bool operator()(const NfaSet& a, const NfaSet& b) const {
      for (std::size_t w = 0; w < kMaxNfa; ++w) {
        if (a.test(w) != b.test(w)) return b.test(w);
      }
      return false;
    }
  };

  // --- small helpers ---

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n')) {
      ++pos_;
    }
  }
  static bool is_ident_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  static bool is_ident_char(char c) {
    return is_ident_start(c) || (c >= '0' && c <= '9') || c == '.';
  }

  int intern(std::string_view name) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    names_.emplace_back(name);
    return static_cast<int>(names_.size() - 1);
  }

  int add_state() {
    if (nfa_.size() >= kMaxNfa) {
      fail("path expression too large (NFA cap " + std::to_string(kMaxNfa) +
           ")");
      return -1;
    }
    nfa_.emplace_back();
    return static_cast<int>(nfa_.size() - 1);
  }

  std::nullopt_t fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
    return std::nullopt;
  }
  std::optional<Frag> fail_frag(std::string msg) {
    fail(std::move(msg));
    return std::nullopt;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::vector<NfaState> nfa_;
  std::vector<std::string> names_;
  std::string error_;
};

}  // namespace krs::core
