// Compile-time re-derivation of the paper's tractable-semigroup laws.
//
// The §5 families ship hand-reasoned composition rules (the §5.1 combining
// tables, θ_a ∘ θ_b = θ_{aθb}, the Möbius matrix product, the full/empty
// six-form closure). The dynamic law suite (tests/test_family_laws.cpp)
// samples them at runtime; this header re-derives them in constexpr
// context and static_asserts the result, so a typo in a combining table or
// a composition rule is a *compile error* in any translation unit that
// includes this header — the core library's own .cpp files do, making the
// laws part of building libkrs_core at all.
//
// The checks are table-parametrized where the paper gives a literal table:
// lss_table_sound() takes the 3×3 table as an argument, so the negative
// compile test (tests/compile_fail/) can feed it a deliberately corrupted
// table and demonstrate the build failing. Witness checks evaluate on
// small sample sets — they are finite certificates, not proofs for all
// 2^64 operands; the operand sets are chosen to cover identities,
// absorbers, wraparound, and sign boundaries.
#pragma once

#include <array>
#include <cstdint>

#include "core/fetch_theta.hpp"
#include "core/full_empty.hpp"
#include "core/load_store_swap.hpp"
#include "core/types.hpp"

namespace krs::core::laws {

// ===========================================================================
// §5.1 — the load/store/swap 3×3 combining tables.
// ===========================================================================

/// One entry of a §5.1 combining table: the kind of the forwarded request
/// and whether the entry is starred (order-reversing) in the second table.
struct LssEntry {
  LssKind kind;
  bool reversed = false;
};

/// tbl[first][second], rows/columns indexed load=0, store=1, swap=2 — the
/// layout of the tables as printed in the paper.
using LssTable = std::array<std::array<LssEntry, 3>, 3>;

/// The paper's first (order-preserving) table.
inline constexpr LssTable kLssOrderPreservingTable = {{
    //            second: load                 store                  swap
    /* first: load  */ {{{LssKind::kLoad}, {LssKind::kSwap}, {LssKind::kSwap}}},
    /*        store */ {{{LssKind::kStore}, {LssKind::kStore}, {LssKind::kStore}}},
    /*        swap  */ {{{LssKind::kSwap}, {LssKind::kSwap}, {LssKind::kSwap}}},
}};

/// The paper's second table with the starred order-reversing entries
/// (load+store → store*, swap+store → store*).
inline constexpr LssTable kLssReversibleTable = {{
    /* first: load  */ {{{LssKind::kLoad},
                         {LssKind::kStore, true},
                         {LssKind::kSwap}}},
    /*        store */ {{{LssKind::kStore}, {LssKind::kStore}, {LssKind::kStore}}},
    /*        swap  */ {{{LssKind::kSwap},
                         {LssKind::kStore, true},
                         {LssKind::kSwap}}},
}};

namespace detail {

constexpr LssOp make_lss(LssKind k, Word v) {
  switch (k) {
    case LssKind::kLoad:
      return LssOp::load();
    case LssKind::kStore:
      return LssOp::store(v);
    case LssKind::kSwap:
      return LssOp::swap(v);
  }
  return LssOp::load();
}

inline constexpr Word kLssPoints[] = {0, 1, 7, 1234567, ~Word{0}};

}  // namespace detail

/// Re-derive a §5.1 table from the algebra and compare entry by entry:
/// (a) the forwarded kind matches the table;
/// (b) starred entries appear exactly where the table stars them
///     (only meaningful when `reversible`);
/// (c) the forwarded mapping leaves memory exactly as serial execution
///     would — second∘first for starred entries, first∘second otherwise —
///     for every sample cell value.
constexpr bool lss_table_sound(const LssTable& tbl, bool reversible) {
  constexpr LssKind kinds[] = {LssKind::kLoad, LssKind::kStore, LssKind::kSwap};
  constexpr Word kFirstVal = 11, kSecondVal = 22;
  for (unsigned i = 0; i < 3; ++i) {
    for (unsigned j = 0; j < 3; ++j) {
      const LssOp first = detail::make_lss(kinds[i], kFirstVal);
      const LssOp second = detail::make_lss(kinds[j], kSecondVal);
      LssOp fwd = LssOp::load();
      bool reversed = false;
      if (reversible) {
        const LssReversedCombine rc = compose_reversible(first, second);
        fwd = rc.forwarded;
        reversed = rc.reversed;
      } else {
        fwd = compose(first, second);
      }
      const LssEntry want = tbl[i][j];
      if (fwd.kind() != want.kind) return false;
      if (reversed != (reversible && want.reversed)) return false;
      for (const Word x : detail::kLssPoints) {
        const Word serial = reversed ? first.apply(second.apply(x))
                                     : second.apply(first.apply(x));
        if (fwd.apply(x) != serial) return false;
      }
    }
  }
  return true;
}

static_assert(lss_table_sound(kLssOrderPreservingTable, /*reversible=*/false),
              "§5.1 order-preserving combining table does not match the "
              "LssOp composition rule");
static_assert(lss_table_sound(kLssReversibleTable, /*reversible=*/true),
              "§5.1 order-reversing combining table does not match "
              "compose_reversible");

// The kind never loses the embedded load: a combination containing a load
// must forward something whose reply carries data.
static_assert([] {
  constexpr LssKind kinds[] = {LssKind::kLoad, LssKind::kStore, LssKind::kSwap};
  for (const LssKind k : kinds) {
    const LssOp fwd = compose(LssOp::load(), detail::make_lss(k, 5));
    if (!fwd.reply_needs_data()) return false;
  }
  return true;
}(), "a combined request containing a load must still fetch the old value");

// ===========================================================================
// §5.2 — fetch-and-θ: associativity and identity witnesses.
// ===========================================================================

namespace detail {

inline constexpr Word kThetaPoints[] = {
    0, 1, 2, 7, 63, 255, 0x8000000000000000ull, ~Word{0}, 0xDEADBEEFull};

}  // namespace detail

/// θ must be associative with two-sided identity e — the precondition for
/// {θ_a} to be a tractable semigroup — and the one-word composition rule
/// θ_a ∘ θ_b = θ_{aθb} must agree with sequential application.
template <typename Op>
constexpr bool theta_semigroup_witness() {
  for (const Word a : detail::kThetaPoints) {
    if (Op::apply(a, Op::identity_element) != a) return false;
    if (Op::apply(Op::identity_element, a) != a) return false;
    for (const Word b : detail::kThetaPoints) {
      for (const Word c : detail::kThetaPoints) {
        if (Op::apply(Op::apply(a, b), c) != Op::apply(a, Op::apply(b, c))) {
          return false;
        }
      }
      // Composition law on the mapping family.
      const FetchTheta<Op> fa(a), fb(b);
      const FetchTheta<Op> fab = compose(fa, fb);
      for (const Word x : detail::kThetaPoints) {
        if (fab.apply(x) != fb.apply(fa.apply(x))) return false;
      }
    }
  }
  return true;
}

static_assert(theta_semigroup_witness<PlusOp>(),
              "§5.2: wrapping addition must be associative with identity 0");
static_assert(theta_semigroup_witness<BitOrOp>(), "§5.2: OR semigroup broken");
static_assert(theta_semigroup_witness<BitAndOp>(), "§5.2: AND semigroup broken");
static_assert(theta_semigroup_witness<BitXorOp>(), "§5.2: XOR semigroup broken");
static_assert(theta_semigroup_witness<MinOp>(), "§5.2: MIN semigroup broken");
static_assert(theta_semigroup_witness<MaxOp>(), "§5.2: MAX semigroup broken");

// test-and-set is fetch-and-OR(·, 1), and is idempotent under combining.
static_assert(compose(test_and_set(), test_and_set()) == test_and_set(),
              "§5.2: combined test-and-sets must collapse to one");

// ===========================================================================
// §5.4 — Möbius (linear-fractional) closure as 2×2 integer matrices.
// ===========================================================================

namespace detail {

/// A constexpr mirror of the runtime Moebius coefficient matrix — kept
/// deliberately independent (no gcd normalization, no overflow guard) so
/// it *re-derives* the closure rather than restating core/moebius.cpp.
struct Mat2 {
  std::int64_t a, b, c, d;
};

/// compose(f, g) = "f then g" has matrix M(g)·M(f) (paper footnote 3).
constexpr Mat2 mat_compose(const Mat2& f, const Mat2& g) {
  return {g.a * f.a + g.b * f.c, g.a * f.b + g.b * f.d,
          g.c * f.a + g.d * f.c, g.c * f.b + g.d * f.d};
}

/// An exact rational, for evaluating (a·x + b)/(c·x + d) symbolically.
struct Frac {
  std::int64_t num;
  std::int64_t den;  ///< den == 0 encodes "undefined" (division by zero)
};

constexpr Frac mat_apply(const Mat2& m, const Frac& x) {
  if (x.den == 0) return {0, 0};
  const std::int64_t num = m.a * x.num + m.b * x.den;
  const std::int64_t den = m.c * x.num + m.d * x.den;
  return {num, den};
}

constexpr bool frac_eq(const Frac& p, const Frac& q) {
  if (p.den == 0 || q.den == 0) return p.den == 0 && q.den == 0;
  return p.num * q.den == q.num * p.den;
}

/// The six §5.4 generators (plus store) with operand k.
constexpr Mat2 gen_add(std::int64_t k) { return {1, k, 0, 1}; }
constexpr Mat2 gen_sub(std::int64_t k) { return {1, -k, 0, 1}; }
constexpr Mat2 gen_mul(std::int64_t k) { return {k, 0, 0, 1}; }
constexpr Mat2 gen_div(std::int64_t k) { return {1, 0, 0, k}; }
constexpr Mat2 gen_rsub(std::int64_t k) { return {-1, k, 0, 1}; }
constexpr Mat2 gen_rdiv(std::int64_t k) { return {0, k, 1, 0}; }
constexpr Mat2 gen_store(std::int64_t v) { return {0, v, 0, 1}; }

}  // namespace detail

/// Closure witness: products of generator matrices stay inside the Möbius
/// family ((c, d) ≠ (0, 0) — the denominator is not identically zero), and
/// matrix composition equals sequential application of the transforms on
/// sample points — i.e. the 2×2 representation really is a semigroup
/// homomorphism.
constexpr bool moebius_closure_witness() {
  using namespace detail;
  constexpr Mat2 gens[] = {gen_add(3),  gen_sub(2),  gen_mul(5), gen_div(7),
                           gen_rsub(9), gen_rdiv(4), gen_store(6),
                           {1, 0, 0, 1}};
  constexpr Frac points[] = {{0, 1}, {1, 1}, {-3, 2}, {10, 7}, {5, 3}};
  for (const Mat2& f : gens) {
    for (const Mat2& g : gens) {
      const Mat2 h = mat_compose(f, g);
      if (h.c == 0 && h.d == 0) return false;  // left the family
      for (const Frac& x : points) {
        const Frac fx = mat_apply(f, x);
        // These are PARTIAL functions: where the intermediate f(x) is a
        // division by zero, sequential application is undefined while the
        // matrix product may extend it (rdiv ∘ rdiv at 0). The semigroup
        // law is agreement on the common domain.
        if (fx.den == 0) continue;
        if (!frac_eq(mat_apply(h, x), mat_apply(g, fx))) {
          return false;
        }
      }
      // Third-level closure: composing further still stays inside.
      for (const Mat2& k : gens) {
        const Mat2 hk = mat_compose(h, k);
        if (hk.c == 0 && hk.d == 0) return false;
      }
    }
  }
  return true;
}

static_assert(moebius_closure_witness(),
              "§5.4: Möbius generator products must remain linear-fractional "
              "and represent composition");

// Associativity of the matrix product itself (the semigroup law the wire
// encoding relies on).
static_assert([] {
  using namespace detail;
  constexpr Mat2 a = gen_add(3), b = gen_rdiv(4), c = gen_mul(5);
  const Mat2 left = mat_compose(mat_compose(a, b), c);
  const Mat2 right = mat_compose(a, mat_compose(b, c));
  return left.a == right.a && left.b == right.b && left.c == right.c &&
         left.d == right.d;
}(), "§5.4: matrix composition must be associative");

// ===========================================================================
// §5.5 — full/empty: the six-mapping set is closed under composition.
// ===========================================================================

namespace detail {

constexpr FEOp fe_ops[] = {
    FEOp::load(),
    FEOp::load_and_clear(),
    FEOp::store_and_set(11),
    FEOp::store_if_clear_and_set(22),
    FEOp::store_and_clear(33),
    FEOp::store_if_clear_and_clear(44),
};

constexpr FEWord fe_points[] = {
    {0, false}, {0, true}, {5, false}, {5, true}, {~Word{0}, true}};

}  // namespace detail

/// Every pairwise composition of the six forms must (a) be expressible as
/// one of the six forms — which compose() asserts by construction — and
/// (b) behave exactly as sequential application on every sample cell state
/// and both tag values.
constexpr bool fe_closure_witness() {
  using namespace detail;
  for (const FEOp& f : fe_ops) {
    for (const FEOp& g : fe_ops) {
      const FEOp h = compose(f, g);
      for (const FEWord& w : fe_points) {
        const FEWord serial = g.apply(f.apply(w));
        if (!(h.apply(w) == serial)) return false;
      }
    }
  }
  return true;
}

static_assert(fe_closure_witness(),
              "§5.5: the six full/empty mapping forms are not closed under "
              "the implemented composition");

// The paper's derivation of the two extra forms from the four basic ones:
// store-and-clear = store-and-set then load-and-clear, and
// store-if-clear-and-clear = store-if-clear-and-set then load-and-clear.
static_assert(compose(FEOp::store_and_set(7), FEOp::load_and_clear()) ==
                  FEOp::store_and_clear(7),
              "§5.5: store-and-clear must be generated by the basic four");
static_assert(compose(FEOp::store_if_clear_and_set(7),
                      FEOp::load_and_clear()) ==
                  FEOp::store_if_clear_and_clear(7),
              "§5.5: store-if-clear-and-clear must be generated by the basic "
              "four");

// Composition is associative on the six forms (sampled exhaustively over
// the generator set and sample states).
static_assert([] {
  using namespace detail;
  for (const FEOp& a : fe_ops) {
    for (const FEOp& b : fe_ops) {
      for (const FEOp& c : fe_ops) {
        const FEOp left = compose(compose(a, b), c);
        const FEOp right = compose(a, compose(b, c));
        for (const FEWord& w : fe_points) {
          if (!(left.apply(w) == right.apply(w))) return false;
        }
      }
    }
  }
  return true;
}(), "§5.5: full/empty composition must be associative");

}  // namespace krs::core::laws
