// A heterogeneous RMW operation: a closed variant over the word-valued
// mapping families. Lets one simulated machine serve a mixed instruction
// stream (loads next to fetch-and-adds next to Boolean ops), the realistic
// setting of the Ultracomputer/RP3.
//
// Requests of different families do not combine with each other (the switch
// just declines — partial combining is always correct, §7). Requests of the
// same family combine through that family's composition. A load could in
// principle combine with anything (it is the identity of every family);
// exploiting that is left to the family-specific identity-absorption rules
// tested in tests/core.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "core/affine.hpp"
#include "core/bool_unary.hpp"
#include "core/dls.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "core/rmw.hpp"
#include "util/assert.hpp"

namespace krs::core {

class AnyRmw {
 public:
  using value_type = Word;
  using Alt = std::variant<LssOp, FetchAdd, FetchOr, FetchAnd, FetchXor,
                           FetchMin, FetchMax, BoolVec, Affine, DlsWordOp>;

  constexpr AnyRmw() noexcept : op_(LssOp::load()) {}

  template <typename M>
    requires std::constructible_from<Alt, M>
  constexpr AnyRmw(M m) noexcept : op_(std::move(m)) {}  // NOLINT(implicit)

  static constexpr AnyRmw identity() noexcept { return AnyRmw{}; }

  [[nodiscard]] constexpr Word apply(Word x) const {
    return std::visit([x](const auto& f) { return f.apply(x); }, op_);
  }

  [[nodiscard]] std::size_t encoded_size_bytes() const {
    // One tag byte plus the family encoding.
    return 1 + std::visit([](const auto& f) { return f.encoded_size_bytes(); },
                          op_);
  }

  template <typename M>
  [[nodiscard]] constexpr bool holds() const noexcept {
    return std::holds_alternative<M>(op_);
  }

  template <typename M>
  [[nodiscard]] constexpr const M& get() const {
    return std::get<M>(op_);
  }

  [[nodiscard]] std::string to_string() const {
    return std::visit([](const auto& f) { return f.to_string(); }, op_);
  }

  friend constexpr bool operator==(const AnyRmw&, const AnyRmw&) = default;

  /// Total composition; precondition: same family (try_compose succeeds).
  friend constexpr AnyRmw compose(const AnyRmw& f, const AnyRmw& g) {
    auto r = try_compose(f, g);
    KRS_EXPECTS(r.has_value());
    return *r;
  }

  friend constexpr std::optional<AnyRmw> try_compose(const AnyRmw& f,
                                                     const AnyRmw& g) {
    if (f.op_.index() != g.op_.index()) return std::nullopt;
    return std::visit(
        [&g](const auto& ff) -> std::optional<AnyRmw> {
          using M = std::decay_t<decltype(ff)>;
          auto r = try_compose(ff, std::get<M>(g.op_));
          if (!r) return std::nullopt;
          return AnyRmw(*r);
        },
        f.op_);
  }

 private:
  Alt op_;
};

static_assert(Rmw<AnyRmw>);

}  // namespace krs::core
