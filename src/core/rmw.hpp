// The RMW formalism of Section 2 and the tractability requirements of
// Section 5, expressed as a C++20 concept.
//
// An RMW operation is RMW(X, f): atomically return the old value of X and
// store f(X). A *family* of update mappings is modeled as a value type M
// (one object = one mapping) providing:
//
//   - M::value_type             the type of the memory cell it acts on
//   - f.apply(x)                evaluate f at x
//   - compose(f, g)             the mapping "f then g"  (paper: f∘g, with
//                               (f∘g)(x) = g(f(x)), footnote 3)
//   - try_compose(f, g)         compose, or nullopt when the switch should
//                               decline to combine (e.g. coefficient
//                               overflow in the Möbius family)
//   - M::identity()             the identity mapping (a plain load)
//   - f.encoded_size_bytes()    size of the wire encoding, for the
//                               tractability requirement |φ(f)| = O(w) and
//                               for traffic accounting in the simulator
//
// Combining (Section 4.2) needs ONLY this interface, which is the paper's
// point (1): the mechanism is general, not an ad-hoc trick for fetch-and-add.
//
// Composition convention. Throughout this codebase `compose(f, g)` means
// "first f, then g": compose(f, g).apply(x) == g.apply(f.apply(x)). When a
// switch holds a queued request ⟨id1, f⟩ and a request ⟨id2, g⟩ arrives
// behind it, the forwarded combined request carries compose(f, g) and the
// saved mapping for decombination is f (the reply to id2 is f(val)).
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>

namespace krs::core {

/// The minimum a *combining structure* needs from a mapping family: apply
/// and (possibly declining) composition — a semigroup of mappings. No
/// identity, no wire encoding: a software combining tree composes mappings
/// in shared memory and never serializes them, and ad-hoc families (e.g. a
/// fetch-and-θ closure over an operator with no identity element, like the
/// tree's own operand adapters) are still combinable. Every full `Rmw`
/// family below satisfies this automatically.
template <typename M>
concept CombinableMapping = std::semiregular<M> &&
    requires(const M& f, const M& g, const typename M::value_type& x) {
      typename M::value_type;
      { f.apply(x) } -> std::convertible_to<typename M::value_type>;
      { try_compose(f, g) } -> std::same_as<std::optional<M>>;
    };

template <typename M>
concept Rmw = CombinableMapping<M> &&
    requires(const M& f, const M& g, const typename M::value_type& x) {
      { compose(f, g) } -> std::convertible_to<M>;
      { M::identity() } -> std::convertible_to<M>;
      { f.encoded_size_bytes() } -> std::convertible_to<std::size_t>;
    };

/// Default try_compose for families whose composition is total: always
/// combine. Families with partial composition (Möbius) shadow this.
template <typename M>
std::optional<M> try_compose_total(const M& f, const M& g) {
  return compose(f, g);
}

}  // namespace krs::core
