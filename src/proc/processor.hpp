// Processor model (§3): issues a serial stream of RMW requests to shared
// memory, pipelining up to `window` outstanding accesses (the intra-
// processor overlap the paper argues large machines need), and consuming
// replies.
//
// Two RMW implementations (§2):
//  * memory-side: one combinable request per operation;
//  * processor-side: a read-lock, a local computation of f(v), and a
//    write-unlock; a refused lock (nack) is retried after a backoff.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "net/packet.hpp"
#include "util/assert.hpp"
#include "util/ring.hpp"

namespace krs::proc {

using core::Addr;
using core::ReqId;
using core::Tick;

/// Where a processor's memory operations come from. Implementations are the
/// workload generators in src/workload.
template <core::Rmw M>
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// The next operation to issue, or nullopt if none is ready this cycle.
  /// `outstanding` is the number of this processor's in-flight accesses:
  /// a source modelling an RP3 fence (§3.2) withholds the post-fence
  /// operation until it drops to zero.
  virtual std::optional<std::pair<Addr, M>> next(Tick now,
                                                 unsigned outstanding) = 0;

  /// All operations this source will ever produce have been produced.
  [[nodiscard]] virtual bool finished() const = 0;

  /// Observation hook: the operation with this id completed, returning the
  /// old cell value (closed-loop workloads may use it).
  virtual void on_complete(ReqId /*id*/,
                           const typename M::value_type& /*old_value*/,
                           Tick /*now*/) {}
};

/// A completed logical RMW operation, as observed by its issuing processor;
/// the machine collects these for statistics and verification.
template <core::Rmw M>
struct CompletedOp {
  ReqId id;
  Addr addr = 0;
  M f{};
  typename M::value_type reply{};
  Tick issued = 0;
  Tick completed = 0;
};

template <core::Rmw M>
class Processor {
 public:
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;
  using Value = typename M::value_type;

  Processor(std::uint32_t index, unsigned window, bool processor_side,
            TrafficSource<M>* source)
      : index_(index),
        window_(window),
        processor_side_(processor_side),
        source_(source) {
    KRS_EXPECTS(window_ >= 1);
    KRS_EXPECTS(source_ != nullptr);
    // All per-processor state is bounded by the issue window; sizing it
    // here keeps the issue/deliver path allocation-free.
    outgoing_.reserve(window_ + 1);
    retries_.reserve(window_ + 1);
    issued_meta_.reserve(window_ + 1);
    ps_ops_.reserve(window_ + 1);
  }

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

  /// Issue phase: pull at most one new operation from the source when the
  /// window allows, and requeue due lock retries.
  void tick(Tick now) {
    while (!retries_.empty() && retries_.front().first <= now) {
      outgoing_.push_back(std::move(retries_.front().second));
      retries_.pop_front();
    }
    if (outstanding_ >= window_) return;
    if (auto op = source_->next(now, outstanding_)) {
      const ReqId id{index_, seq_++};
      Fwd pkt;
      pkt.req = core::Request<M>{id, op->first, op->second, now};
      pkt.kind =
          processor_side_ ? net::TxnKind::kReadLock : net::TxnKind::kRmw;
      if (processor_side_) ps_ops_.emplace_back(id, PsOp{op->second, now});
      issued_meta_.emplace_back(id, Meta{op->first, op->second, now});
      outgoing_.push_back(std::move(pkt));
      ++outstanding_;
    }
  }

  [[nodiscard]] const Fwd* peek_outgoing() const {
    return outgoing_.empty() ? nullptr : &outgoing_.front();
  }

  Fwd pop_outgoing() {
    KRS_EXPECTS(!outgoing_.empty());
    Fwd p = std::move(outgoing_.front());
    outgoing_.pop_front();
    return p;
  }

  /// Reply delivery. Completed logical operations are appended to *done.
  void deliver(Rev&& rev, Tick now, std::vector<CompletedOp<M>>* done) {
    KRS_ASSERT(rev.reply.id.proc == index_);
    if (!processor_side_) {
      complete(rev.reply.id, rev.reply.value, now, done);
      return;
    }
    PsOp* op = flat_find(ps_ops_, rev.reply.id);
    KRS_ASSERT(op != nullptr);
    const Meta* meta = flat_find(issued_meta_, rev.reply.id);
    KRS_ASSERT(meta != nullptr);
    if (!op->write_issued) {
      if (rev.nack) {
        // Lock refused: retry the read-lock after a short backoff.
        Fwd pkt;
        pkt.req = core::Request<M>{rev.reply.id, meta->addr, op->f, now};
        pkt.kind = net::TxnKind::kReadLock;
        retries_.emplace_back(now + kRetryBackoff, std::move(pkt));
        return;
      }
      // Got the old value; compute locally and write back.
      op->old_value = rev.reply.value;
      op->write_issued = true;
      Fwd pkt;
      pkt.req = core::Request<M>{rev.reply.id, meta->addr, op->f, now};
      pkt.kind = net::TxnKind::kWriteUnlock;
      pkt.store_value = op->f.apply(rev.reply.value);
      outgoing_.push_back(std::move(pkt));
      return;
    }
    // Write-unlock acknowledged: the logical RMW is complete.
    const Value old = op->old_value;
    flat_erase(ps_ops_, rev.reply.id);
    complete(rev.reply.id, old, now, done);
  }

  /// No outstanding operations, nothing staged, source exhausted.
  [[nodiscard]] bool quiescent() const {
    return outstanding_ == 0 && outgoing_.empty() && retries_.empty() &&
           source_->finished();
  }

  [[nodiscard]] unsigned outstanding() const noexcept { return outstanding_; }

 private:
  struct Meta {
    Addr addr;
    M f;
    Tick issued;
  };
  struct PsOp {
    M f{};
    Tick issued = 0;
    Value old_value{};
    bool write_issued = false;
  };

  // Odd on purpose: every other period in the machine (memory latency,
  // pipeline hops) tends to be even, and an even backoff can phase-lock
  // retry storms with the arbitration pattern.
  static constexpr Tick kRetryBackoff = 7;

  void complete(ReqId id, const Value& old_value, Tick now,
                std::vector<CompletedOp<M>>* done) {
    const Meta* meta = flat_find(issued_meta_, id);
    KRS_ASSERT(meta != nullptr);
    if (done != nullptr) {
      done->push_back(
          {id, meta->addr, meta->f, old_value, meta->issued, now});
    }
    source_->on_complete(id, old_value, now);
    flat_erase(issued_meta_, id);
    KRS_ASSERT(outstanding_ > 0);
    --outstanding_;
  }

  // In-flight state is bounded by the window (a handful of entries), so a
  // linear scan over a flat vector beats a node-based hash map and stays
  // allocation-free after the constructor's reserve.
  template <typename V>
  static V* flat_find(std::vector<std::pair<ReqId, V>>& v, ReqId id) {
    for (auto& [k, val] : v) {
      if (k == id) return &val;
    }
    return nullptr;
  }
  template <typename V>
  static void flat_erase(std::vector<std::pair<ReqId, V>>& v, ReqId id) {
    for (auto& e : v) {
      if (e.first == id) {
        if (&e != &v.back()) e = std::move(v.back());
        v.pop_back();
        return;
      }
    }
    KRS_ASSERT(!"flat_erase: unknown id");
  }

  std::uint32_t index_;
  unsigned window_;
  bool processor_side_;
  TrafficSource<M>* source_;
  std::uint32_t seq_ = 0;
  unsigned outstanding_ = 0;
  util::RingBuffer<Fwd> outgoing_;
  util::RingBuffer<std::pair<Tick, Fwd>> retries_;
  std::vector<std::pair<ReqId, Meta>> issued_meta_;
  std::vector<std::pair<ReqId, PsOp>> ps_ops_;
};

}  // namespace krs::proc
