// A memory module (§3): an independent bank that services one request per
// cycle in FIFO order — fulfilling (M2.1)–(M2.3) locally — with a fixed
// access latency before the reply re-enters the network.
//
// Two RMW implementations from §2 are supported:
//
//  * memory-side (kRmw): the module applies the update mapping itself and
//    returns the old value — two network messages per operation, the
//    module busy for one cycle. This is the implementation the paper (and
//    the Ultracomputer/RP3) assume, and the only one that combines.
//
//  * processor-side (kReadLock / kWriteUnlock): the module returns the old
//    value and LOCKS — refusing all other traffic — until the issuing
//    processor writes back the updated value ("the memory itself is locked
//    for the duration of this extended cycle"). A write-unlock bypasses the
//    input queue capacity and head-of-line blocking so the extended cycle
//    can always complete. Requests from other processors wait; the
//    resulting serial bottleneck is measured in bench_rmw_impl.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/wait_table.hpp"
#include "util/assert.hpp"
#include "util/ring.hpp"

namespace krs::mem {

using core::Addr;
using core::ReqId;
using core::Tick;

struct ModuleConfig {
  std::size_t queue_capacity = 8;
  Tick latency = 2;  ///< cycles from service to reply emission
  /// Cycles the bank is busy per service (1 = fully pipelined; larger
  /// models a slow interleaved bank, the setting where §7's FIFO combining
  /// pays off).
  Tick service_interval = 1;
  /// §7's closing remark: on bus-based machines with an interleaved,
  /// FIFO-decoupled memory, "combining in this queue will improve the
  /// memory throughput by reducing conflicting accesses to the same memory
  /// bank." When set, an arriving request combines with the youngest
  /// queued request for its address, exactly like a network switch.
  bool combine_in_queue = false;
  /// §5.5's queueing model: "An alternative mechanism is to queue a
  /// request at memory until it is executable. This decreases the network
  /// traffic. However, unless some time-out mechanism is available at the
  /// memory controller, the hardware may deadlock." When set, a
  /// conditional operation whose guard fails (family provides
  /// f.succeeded(cell)) is parked per-location instead of NACKed, and
  /// re-tried after every update to that location. A parked operation that
  /// never wakes keeps the module non-idle — run() then reports the
  /// deadlock the paper warns about. Use with combining disabled (the
  /// general combine tables do not preserve blocking semantics).
  bool queue_failed_conditionals = false;
};

struct ModuleStats {
  std::uint64_t rmw_ops = 0;
  std::uint64_t read_locks = 0;
  std::uint64_t write_unlocks = 0;
  std::uint64_t locked_stall_cycles = 0;
  std::uint64_t lock_refused = 0;
  std::uint64_t idle_cycles = 0;
  std::uint64_t queue_combines = 0;
  std::uint64_t parked_ops = 0;   ///< §5.5 queueing: guard-failed, parked
  std::uint64_t woken_ops = 0;    ///< parked ops that became executable
};

/// One serviced access, in module processing order — the serial order the
/// verifier expands and replays (Theorem 4.2).
struct AccessRecord {
  Addr addr;
  ReqId id;
};

/// Families with guarded (conditional) operations expose whether an
/// operation's guard holds for a given cell state — the hook the §5.5
/// queueing model needs.
template <typename M>
concept HasSuccessPredicate =
    requires(const M& f, const typename M::value_type& v) {
      { f.succeeded(v) } -> std::convertible_to<bool>;
    };

template <core::Rmw M>
class MemoryModule {
 public:
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  MemoryModule(ModuleConfig cfg, Value initial)
      : cfg_(cfg), initial_(initial) {
    in_q_.reserve(cfg_.queue_capacity);
    pending_.reserve(cfg_.queue_capacity);
  }

  /// Can the module accept a packet this cycle? Write-unlocks always can;
  /// a combinable arrival needs no queue slot.
  [[nodiscard]] bool can_accept(const Fwd& pkt) const {
    if (pkt.kind == net::TxnKind::kWriteUnlock) return true;
    if (in_q_.size() < cfg_.queue_capacity) return true;
    return would_combine(pkt);
  }

  /// Accept a packet. If queue combining is enabled and the arrival
  /// combines with a queued request, the combine event is appended to
  /// *events (for the Theorem 4.2 expansion) and no queue slot is used.
  void accept(Fwd&& pkt, std::vector<net::CombineEvent>* events = nullptr) {
    KRS_EXPECTS(can_accept(pkt));
    if (cfg_.combine_in_queue && pkt.kind == net::TxnKind::kRmw) {
      // Youngest-match rule, as in the switch (preserves M2.3).
      for (std::size_t i = in_q_.size(); i-- > 0;) {
        auto& queued = in_q_[i];
        if (queued.kind != net::TxnKind::kRmw ||
            queued.req.addr != pkt.req.addr) {
          continue;
        }
        auto rec = core::try_combine(queued.req, pkt.req);
        if (!rec) break;
        wait_records_.append(queued.req.id, {*rec, pkt.path});
        ++stats_.queue_combines;
        if (events != nullptr) {
          events->push_back({rec->representative, rec->second, pkt.req.addr});
        }
        return;
      }
    }
    in_q_.push_back(std::move(pkt));
  }

  /// Service step: process at most one request, then emit replies due this
  /// cycle into `out` (so a latency-0 configuration replies in the same
  /// cycle it services).
  void tick(Tick now, std::vector<Rev>& out) {
    service_one(now);
    while (!pending_.empty() && pending_.front().due <= now) {
      out.push_back(std::move(pending_.front().pkt));
      pending_.pop_front();
    }
  }

 private:
  void service_one(Tick now) {
    if (now < busy_until_) return;  // bank busy
    if (in_q_.empty()) {
      ++stats_.idle_cycles;
      return;
    }
    busy_until_ = now + cfg_.service_interval;
    if (locked_by_.has_value()) {
      // Only the lock owner's write-unlock may proceed; find it anywhere in
      // the queue (bypass). A read-lock at the head is refused with a
      // negative acknowledgment (the §5.5 busy-wait model) so the queue
      // keeps draining — otherwise back-pressure from stalled lock
      // requests could prevent the owner's unlock from ever arriving.
      for (std::size_t i = 0; i < in_q_.size(); ++i) {
        if (in_q_[i].kind == net::TxnKind::kWriteUnlock &&
            in_q_[i].req.id.proc == *locked_by_) {
          Fwd pkt = std::move(in_q_[i]);
          in_q_.erase_at(i);
          service(std::move(pkt), now);
          return;
        }
      }
      if (in_q_.front().kind == net::TxnKind::kReadLock) {
        Fwd pkt = std::move(in_q_.front());
        in_q_.pop_front();
        Rev rev;
        rev.reply.id = pkt.req.id;
        rev.reply.completed = now + cfg_.latency;
        rev.path = std::move(pkt.path);
        rev.nack = true;
        ++stats_.lock_refused;
        pending_.push_back({now + cfg_.latency, std::move(rev)});
        return;
      }
      ++stats_.locked_stall_cycles;
      return;
    }
    Fwd pkt = std::move(in_q_.front());
    in_q_.pop_front();
    service(std::move(pkt), now);
  }

 public:
  [[nodiscard]] Value value_at(Addr addr) const {
    auto it = cells_.find(addr);
    return it == cells_.end() ? initial_ : it->second;
  }

  /// Directly set a cell, outside the simulated clock (no packet, no
  /// cycle, no access-log entry). Seam for the runtime sim backend: cell
  /// initialization and its serialized compare-exchange both act on the
  /// module's serial state between services, so they linearize against
  /// every in-flight packet by construction.
  void poke(Addr addr, Value v) { cell_ref(addr) = v; }

  [[nodiscard]] const std::vector<AccessRecord>& access_log() const noexcept {
    return access_log_;
  }
  [[nodiscard]] const ModuleStats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool idle() const noexcept {
    return in_q_.empty() && pending_.empty() && !locked_by_.has_value() &&
           wait_records_.empty() && parked_.empty();
  }

  /// §5.5 queueing: operations currently parked at this module. A machine
  /// that finishes with parked operations has deadlocked in the way the
  /// paper warns about.
  [[nodiscard]] std::size_t parked_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [addr, list] : parked_) n += list.size();
    return n;
  }

 private:
  struct Pending {
    Tick due;
    Rev pkt;
  };

  [[nodiscard]] bool would_combine(const Fwd& pkt) const {
    if (!cfg_.combine_in_queue || pkt.kind != net::TxnKind::kRmw) return false;
    for (std::size_t i = in_q_.size(); i-- > 0;) {
      const auto& queued = in_q_[i];
      if (queued.kind != net::TxnKind::kRmw ||
          queued.req.addr != pkt.req.addr) {
        continue;
      }
      return try_compose(queued.req.f, pkt.req.f).has_value();
    }
    return false;
  }

  void service(Fwd&& pkt, Tick now) {
    Value& cell = cell_ref(pkt.req.addr);
    // §5.5 queueing: park a guard-failed conditional until the location
    // changes, instead of answering with a NACK the issuer must retry.
    if constexpr (HasSuccessPredicate<M>) {
      if (cfg_.queue_failed_conditionals && pkt.kind == net::TxnKind::kRmw &&
          !pkt.req.f.succeeded(cell)) {
        parked_[pkt.req.addr].push_back(std::move(pkt));
        ++stats_.parked_ops;
        return;
      }
    }
    Rev rev;
    rev.reply.id = pkt.req.id;
    rev.reply.completed = now + cfg_.latency;
    rev.path = std::move(pkt.path);
    switch (pkt.kind) {
      case net::TxnKind::kRmw:
        rev.reply.value = cell;
        cell = pkt.req.f.apply(cell);
        access_log_.push_back({pkt.req.addr, pkt.req.id});
        ++stats_.rmw_ops;
        break;
      case net::TxnKind::kReadLock:
        rev.reply.value = cell;
        locked_by_ = pkt.req.id.proc;
        ++stats_.read_locks;
        break;
      case net::TxnKind::kWriteUnlock:
        KRS_ASSERT(locked_by_ == pkt.req.id.proc);
        rev.reply.value = cell;  // ack; old value unused
        cell = pkt.store_value;
        locked_by_.reset();
        ++stats_.write_unlocks;
        break;
    }
    const Value old_value = rev.reply.value;
    const ReqId rep_id = rev.reply.id;
    const bool was_rmw = pkt.kind == net::TxnKind::kRmw;
    pending_.push_back({now + cfg_.latency, std::move(rev)});
    // Decombine queue-combined requests (after the representative's reply,
    // so replies leave in combine order): each absorbed request gets
    // f(old) along its own stored path, as at a network switch.
    if (was_rmw) {
      wait_records_.consume(rep_id, [&](WaitRecord& record) {
        Rev second;
        second.reply.id = record.rec.second;
        second.reply.value = core::decombine(record.rec, old_value);
        second.reply.completed = now + cfg_.latency;
        second.path = record.path;
        pending_.push_back({now + cfg_.latency, std::move(second)});
      });
    }
    wake_parked(pkt.req.addr);
  }

  /// After an update, the first parked operation whose guard now holds is
  /// moved to the head of the service queue. One wake per update keeps the
  /// bank's service rate honest and yields the alternating load/store
  /// schedule of §5.5; when the woken op executes, its own update wakes
  /// the next one. (If its guard fails again by then, it simply re-parks.)
  void wake_parked(Addr addr) {
    if constexpr (HasSuccessPredicate<M>) {
      if (!cfg_.queue_failed_conditionals) return;
      const auto it = parked_.find(addr);
      if (it == parked_.end()) return;
      auto& list = it->second;
      const Value& cell = cell_ref(addr);
      for (auto lit = list.begin(); lit != list.end(); ++lit) {
        if (lit->req.f.succeeded(cell)) {
          in_q_.push_front(std::move(*lit));
          list.erase(lit);
          ++stats_.woken_ops;
          break;
        }
      }
      if (list.empty()) parked_.erase(it);
    }
  }

  Value& cell_ref(Addr addr) {
    auto [it, inserted] = cells_.try_emplace(addr, initial_);
    return it->second;
  }

  using WaitRecord = typename net::WaitTable<M>::Record;

  ModuleConfig cfg_;
  Value initial_;
  util::RingBuffer<Fwd> in_q_;
  util::RingBuffer<Pending> pending_;
  net::WaitTable<M> wait_records_;
  std::unordered_map<Addr, std::deque<Fwd>> parked_;
  std::unordered_map<Addr, Value> cells_;
  std::optional<std::uint32_t> locked_by_;
  Tick busy_until_ = 0;
  std::vector<AccessRecord> access_log_;
  ModuleStats stats_;
};

}  // namespace krs::mem
