// The simulated-machine RMW backend: the paper's network, under the
// paper's algorithms.
//
// BasicSimBackend is the third RmwBackend model (after the hardware-atomic
// and software-combining backends): every Cell is an ALLOCATED ADDRESS in
// a cycle-accurate Omega machine (sim/machine.hpp), and every fetch-and-θ
// becomes a combinable RMW packet injected at the calling thread's
// simulated processor, stepped through the cycle-sharded engine, combined
// in the switches per §4, and decombined back per §3. The §6 coordination
// repertoire — written once against the RmwBackend concept — therefore
// runs unchanged on the machine the paper actually analyzes, and its costs
// come out in PAPER UNITS (network cycles per operation, combine rate,
// per-stage stalls) instead of wall-clock on whatever host CI happens to
// own.
//
// Operation mapping:
//
//   fetch_add/or/and/xor → core::FetchTheta<…> packet    (§5.2)
//   exchange             → core::LssOp::swap packet       (§5.1)
//   store                → core::LssOp::store packet      (combines)
//   load                 → core::LssOp::load packet       (identity mapping)
//   fetch_rmw(m)         → m verbatim                     (any core::AnyRmw;
//                                                          cross-family pairs
//                                                          decline in the
//                                                          switches — §7)
//   compare_exchange     → serialized at the memory module (not a tractable
//                          mapping — the update branches on the old value),
//                          applied to the owning module's serial state
//                          under the driver lock, like CombiningBackend's
//                          update_at_root; charged one uncontended network
//                          round trip of simulated cycles
//
// Concurrency model. The machine itself is a single-clock object, so the
// backend multiplexes real threads onto simulated processors through
// per-processor MAILBOXES (thread → processor by thread_ordinal() mod n):
// a caller claims its mailbox, posts (addr, mapping), and then either
// becomes the DRIVER (takes the driver mutex and steps the machine until
// its own reply lands) or spins with backoff while another thread's
// driving serves it. Mailbox hand-off is a small atomic state machine
// (Empty → Claimed → Posted → InFlight → Done → Empty); the driver side
// runs inside the engine's consume sub-phase, where each processor's
// source is touched by exactly one shard.
//
// Determinism. Threaded injection is scheduled by the OS, but run_wave()
// posts one operation per simulated processor in the SAME cycle and steps
// the machine to drain under a single caller — and the parallel engine is
// bit-identical to the sequential one, so every cycle count the backend
// reports from a wave workload is a pure function of the wave sequence,
// identical at every engine worker count and host CPU count. That is what
// lets bench_coordination's sim dimension claim paper-unit numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"
#include "runtime/wait_policy.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "sim/machine.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace krs::runtime {

struct SimBackendConfig {
  /// n = 2^k simulated processors, memory modules, and network stages.
  unsigned log2_procs = 3;
  /// Engine worker threads used by run_wave() drains (1 = sequential).
  /// Any value yields bit-identical machine states and cycle counts; >1
  /// only changes host wall-clock.
  unsigned engine_workers = 1;
  net::SwitchConfig switch_cfg{};
  mem::ModuleConfig mem_cfg{};
};

/// Per-cell cycle accounting: operations routed through the network to
/// this cell's address and their summed issue→reply latency.
struct SimCellStats {
  std::uint64_t ops = 0;
  std::uint64_t latency_cycles = 0;

  [[nodiscard]] double mean_latency() const {
    return ops > 0 ? static_cast<double>(latency_cycles) /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

/// Backend-wide cycle accounting, aggregated from the machine transcript
/// and the per-processor sources.
struct SimBackendStats {
  core::Tick cycles = 0;                 ///< machine clock
  std::uint64_t network_ops = 0;         ///< RMWs routed through the network
  std::uint64_t root_serialized_ops = 0; ///< compare_exchange, at the module
  std::uint64_t combines = 0;            ///< switch combine events
  std::uint64_t latency_cycles = 0;      ///< summed issue→reply latency
  std::uint64_t switch_stall_cycles = 0; ///< arrivals that could not move
  std::vector<std::uint64_t> stage_stalls;  ///< stalls per network stage

  [[nodiscard]] std::uint64_t ops() const {
    return network_ops + root_serialized_ops;
  }
  [[nodiscard]] double cycles_per_op() const {
    return ops() > 0
               ? static_cast<double>(cycles) / static_cast<double>(ops())
               : 0.0;
  }
  [[nodiscard]] double combine_rate() const {
    return network_ops > 0
               ? static_cast<double>(combines) /
                     static_cast<double>(network_ops)
               : 0.0;
  }
  [[nodiscard]] double mean_latency() const {
    return network_ops > 0 ? static_cast<double>(latency_cycles) /
                                 static_cast<double>(network_ops)
                           : 0.0;
  }
};

template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicSimBackend {
  struct State;

 public:
  explicit BasicSimBackend(SimBackendConfig cfg = {})
      : s_(std::make_shared<State>(cfg)) {}

  /// Copies share one machine: primitives take backends by value, and all
  /// their cells must live in the same simulated memory.
  BasicSimBackend(const BasicSimBackend&) = default;
  BasicSimBackend& operator=(const BasicSimBackend&) = default;

  struct Cell {
    Cell(const BasicSimBackend& b, Word initial)
        : addr(b.allocate(initial)), anchor_(b.s_) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    core::Addr addr;

   private:
    std::shared_ptr<State> anchor_;  ///< the machine must outlive its cells
  };

  Word fetch_add(Cell& c, Word v) const {
    return mutate(c, core::AnyRmw(core::FetchAdd(v)));
  }
  Word fetch_or(Cell& c, Word v) const {
    return mutate(c, core::AnyRmw(core::FetchOr(v)));
  }
  Word fetch_and(Cell& c, Word v) const {
    return mutate(c, core::AnyRmw(core::FetchAnd(v)));
  }
  Word fetch_xor(Cell& c, Word v) const {
    return mutate(c, core::AnyRmw(core::FetchXor(v)));
  }
  Word exchange(Cell& c, Word v) const {
    return mutate(c, core::AnyRmw(core::LssOp::swap(v)));
  }
  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const { return mutate(c, m); }

  /// Not a tractable mapping (the update branches on the old value), so it
  /// cannot travel as a packet. Serialized at the owning memory module
  /// under the driver lock: the module's serial state between services is
  /// exactly the state every already-serviced request produced and no
  /// not-yet-serviced request has touched, so reading it and poking the
  /// conditional store is a valid linearization point against all
  /// combined traffic — the same contract as CombiningBackend's
  /// update_at_root. Charged one uncontended round trip of cycles.
  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c, KRS_SITE);
    bool ok = false;
    {
      std::lock_guard<std::mutex> lk(s_->mu);
      const Word cur = s_->machine.value_at(c.addr);
      if (cur == expected) {
        s_->machine.poke(c.addr, desired);
        ok = true;
      } else {
        expected = cur;
      }
      ++s_->root_ops;
      s_->charge_round_trip_locked();
    }
    Instrument::acquire(&c);
    return ok;
  }

  Word load(const Cell& c) const {
    // A real packet (the identity mapping), not a poke: a load costs a
    // round trip and orders with combined traffic like any other request.
    Instrument::shared_load(&c, KRS_SITE);
    const Word v = s_->inject(c.addr, core::AnyRmw(core::LssOp::load()));
    Instrument::acquire(&c);
    return v;
  }

  void store(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::shared_store(&c, KRS_SITE);
    s_->inject(c.addr, core::AnyRmw(core::LssOp::store(v)));
  }

  // --- deterministic batch surface ----------------------------------------

  /// One simultaneous-injection probe operation for run_wave.
  struct WaveOp {
    const Cell* cell;
    core::AnyRmw op;
  };

  /// Inject wave[i] at simulated processor i in the SAME cycle, step the
  /// machine until every reply has decombined back, and return the priors
  /// in processor order. The caller must be the only thread using the
  /// backend. Cycle counts after a wave sequence are a pure function of
  /// that sequence — identical at every engine_workers value (the
  /// parallel engine is bit-identical to the sequential one) and on every
  /// host. This is the §6 measurement surface: one wave = one round of a
  /// primitive's hot-path RMW pattern across all n processors.
  std::vector<Word> run_wave(const std::vector<WaveOp>& wave) const {
    KRS_EXPECTS(wave.size() <= s_->nprocs);
    std::lock_guard<std::mutex> lk(s_->mu);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Mailbox& mb = s_->mailboxes[i];
      unsigned expect = kEmpty;
      const bool claimed = mb.state.compare_exchange_strong(
          expect, kClaimed, std::memory_order_acquire,
          std::memory_order_relaxed);
      KRS_EXPECTS(claimed && "run_wave requires an otherwise idle backend");
      mb.addr = wave[i].cell->addr;
      mb.op = wave[i].op;
      mb.state.store(kPosted, std::memory_order_release);
    }
    s_->drive_until_drained_locked();
    std::vector<Word> priors(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Mailbox& mb = s_->mailboxes[i];
      KRS_ASSERT(mb.state.load(std::memory_order_relaxed) == kDone);
      priors[i] = mb.reply;
      mb.state.store(kEmpty, std::memory_order_release);
    }
    return priors;
  }

  /// Outcome of a run_traffic drive: simulated cycles consumed, logical
  /// operations completed, and the per-op issue→reply latency distribution
  /// in machine cycles — the paper-unit analogue of krs_load's wall-clock
  /// reservoirs.
  struct TrafficResult {
    core::Tick cycles = 0;
    std::uint64_t ops = 0;
    util::LogHistogram latency;
  };

  /// Drive the machine under the stochastic arrival models in src/workload:
  /// generators[p] feeds simulated processor p (at most one in-flight op
  /// per processor, the mailbox window). Each cycle, every idle processor
  /// polls its generator — so open-loop sources see their issue_probability
  /// per machine cycle, bursty sources burst in machine time, and closed-
  /// loop sources observe true reply timing through on_complete. Generator
  /// addresses are folded onto allocated cells (addr mod allocated), so a
  /// source's addr_space spreads uniform traffic across every cell the
  /// caller created while hot_addr pins the hot spot to one of them.
  ///
  /// The caller must be the only thread using the backend (same contract
  /// as run_wave). Polling order is fixed (processor 0..n-1 each cycle),
  /// so the result is a pure function of the generator sequence — same
  /// determinism claim as run_wave, at every engine_workers value.
  ///
  /// `max_cycles` bounds the drive (0 = until every generator finishes);
  /// in-flight operations are drained before returning either way.
  TrafficResult run_traffic(
      const std::vector<proc::TrafficSource<core::AnyRmw>*>& generators,
      core::Tick max_cycles = 0) const {
    KRS_EXPECTS(generators.size() <= s_->nprocs);
    std::lock_guard<std::mutex> lk(s_->mu);
    KRS_EXPECTS(s_->next_addr > 0 &&
                "run_traffic needs at least one allocated cell");
    const core::Addr cells = s_->next_addr;
    const core::Tick start = s_->machine.now();

    struct Flight {
      core::Tick issued = 0;
      std::uint32_t seq = 0;
      bool active = false;
    };
    std::vector<Flight> flight(generators.size());
    TrafficResult out;

    auto reap = [&](std::size_t p) {
      Mailbox& mb = s_->mailboxes[p];
      if (!flight[p].active ||
          mb.state.load(std::memory_order_acquire) != kDone) {
        return;
      }
      const core::Tick now = s_->machine.now();
      out.latency.add(now - flight[p].issued);
      ++out.ops;
      generators[p]->on_complete(
          core::ReqId{static_cast<std::uint32_t>(p), flight[p].seq},
          mb.reply, now);
      flight[p].active = false;
      mb.state.store(kEmpty, std::memory_order_release);
    };

    for (;;) {
      const core::Tick now = s_->machine.now();
      bool all_done = true;
      for (std::size_t p = 0; p < generators.size(); ++p) {
        reap(p);
        if (flight[p].active) {
          all_done = false;
          continue;
        }
        if (generators[p]->finished()) continue;
        all_done = false;
        if (auto op = generators[p]->next(now, 0)) {
          Mailbox& mb = s_->mailboxes[p];
          unsigned expect = kEmpty;
          const bool claimed = mb.state.compare_exchange_strong(
              expect, kClaimed, std::memory_order_acquire,
              std::memory_order_relaxed);
          KRS_EXPECTS(claimed &&
                      "run_traffic requires an otherwise idle backend");
          mb.addr = op->first % cells;
          mb.op = op->second;
          mb.state.store(kPosted, std::memory_order_release);
          flight[p].issued = now;
          flight[p].seq++;
          flight[p].active = true;
        }
      }
      if (all_done) break;
      if (max_cycles != 0 && now - start >= max_cycles) {
        // Out of budget: drain what is in flight, reap, and stop.
        s_->drive_until_drained_locked();
        for (std::size_t p = 0; p < generators.size(); ++p) reap(p);
        break;
      }
      s_->machine.tick();
    }
    out.cycles = s_->machine.now() - start;
    return out;
  }

  // --- accounting ----------------------------------------------------------

  [[nodiscard]] SimBackendStats stats() const {
    std::lock_guard<std::mutex> lk(s_->mu);
    return s_->stats_locked();
  }

  [[nodiscard]] SimCellStats cell_stats(const Cell& c) const {
    std::lock_guard<std::mutex> lk(s_->mu);
    SimCellStats out;
    for (const MailboxSource* src : s_->sources) {
      auto it = src->per_cell.find(c.addr);
      if (it != src->per_cell.end()) {
        out.ops += it->second.ops;
        out.latency_cycles += it->second.latency_cycles;
      }
    }
    return out;
  }

  [[nodiscard]] std::uint32_t processors() const noexcept {
    return s_->nprocs;
  }
  [[nodiscard]] const SimBackendConfig& config() const noexcept {
    return s_->cfg;
  }

 private:
  // Mailbox hand-off states. Empty → Claimed → Posted are poster-side;
  // Posted → InFlight (consumption by the simulated processor) and
  // InFlight → Done (reply delivery) are driver-side; Done → Empty is the
  // poster picking up its reply.
  enum MailState : unsigned {
    kEmpty = 0,
    kClaimed,
    kPosted,
    kInFlight,
    kDone,
  };

  struct alignas(kCacheLine) Mailbox {
    std::atomic<unsigned> state{kEmpty};
    core::Addr addr = 0;
    core::AnyRmw op{};
    Word reply = 0;
  };

  /// The per-processor traffic source: feeds its mailbox's posted op to
  /// the simulated processor and completes it back into the mailbox.
  /// Stats members are touched only from the engine shard that owns this
  /// processor (inside the consume sub-phase) and read while the machine
  /// is quiesced under the driver mutex — never concurrently.
  class MailboxSource final : public proc::TrafficSource<core::AnyRmw> {
   public:
    explicit MailboxSource(Mailbox* mb) : mb_(mb) {}

    std::optional<std::pair<core::Addr, core::AnyRmw>> next(
        core::Tick now, unsigned /*outstanding*/) override {
      if (mb_->state.load(std::memory_order_acquire) != kPosted) {
        return std::nullopt;
      }
      mb_->state.store(kInFlight, std::memory_order_relaxed);
      issued_ = now;
      return std::make_pair(mb_->addr, mb_->op);
    }

    /// "Finished" for the engine's drain condition: nothing is posted for
    /// the machine right now. A live backend never finishes for good, so
    /// Machine::drained() becomes "every currently injected operation has
    /// replied" — the exact stop condition the drivers need.
    [[nodiscard]] bool finished() const override {
      const unsigned st = mb_->state.load(std::memory_order_acquire);
      return st != kPosted && st != kInFlight;
    }

    void on_complete(core::ReqId /*id*/, const Word& old_value,
                     core::Tick now) override {
      ops += 1;
      latency_cycles += now - issued_;
      auto& cs = per_cell[mb_->addr];
      cs.ops += 1;
      cs.latency_cycles += now - issued_;
      mb_->reply = old_value;
      mb_->state.store(kDone, std::memory_order_release);
    }

    std::uint64_t ops = 0;
    std::uint64_t latency_cycles = 0;
    std::unordered_map<core::Addr, SimCellStats> per_cell;

   private:
    Mailbox* mb_;
    core::Tick issued_ = 0;
  };

  struct State {
    SimBackendConfig cfg;
    std::uint32_t nprocs;
    std::vector<Mailbox> mailboxes;
    std::vector<MailboxSource*> sources;  ///< owned by the machine
    sim::Machine<core::AnyRmw> machine;
    mutable std::mutex mu;     ///< driver lock: stepping, CAS, stats reads
    core::Addr next_addr = 0;  ///< under mu
    std::uint64_t root_ops = 0;  ///< serialized compare_exchange count

    explicit State(const SimBackendConfig& c)
        : cfg(c),
          nprocs(std::uint32_t{1} << c.log2_procs),
          mailboxes(nprocs),
          machine(machine_config(c), make_sources(*this)) {}

    /// Threaded injection path: claim this thread's mailbox, post, then
    /// drive the machine (or let whoever holds the driver lock drive for
    /// everyone) until the reply lands.
    Word inject(core::Addr addr, const core::AnyRmw& m) {
      Mailbox& mb = claim_mailbox();
      mb.addr = addr;
      mb.op = m;
      mb.state.store(kPosted, std::memory_order_release);
      // Blind rounds: the mailbox word is not the policy's 32-bit wait
      // word, and the driver-lock holder advances our reply regardless.
      Policy pol;
      for (;;) {
        if (mb.state.load(std::memory_order_acquire) == kDone) break;
        if (mu.try_lock()) {
          while (mb.state.load(std::memory_order_acquire) != kDone) {
            machine.tick();
          }
          mu.unlock();
          break;
        }
        pol.pause();
      }
      const Word prior = mb.reply;
      mb.state.store(kEmpty, std::memory_order_release);
      return prior;
    }

    /// More live threads than simulated processors alias onto one mailbox
    /// (ordinal mod n, like the combining tree's slot map); the claim CAS
    /// serializes them, backoff-paced.
    Mailbox& claim_mailbox() {
      Mailbox& mb = mailboxes[thread_ordinal() % nprocs];
      Policy pol;
      for (;;) {
        unsigned expect = kEmpty;
        if (mb.state.compare_exchange_weak(expect, kClaimed,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
          return mb;
        }
        pol.pause();
      }
    }

    /// Step until drained, by the configured engine. Both engines stop on
    /// the same drained() condition and produce bit-identical states, so
    /// machine.now() afterwards is independent of engine_workers.
    void drive_until_drained_locked() {
      static constexpr core::Tick kChunk = 1024;
      while (!machine.drained()) {
        if (cfg.engine_workers > 1) {
          machine.run_parallel(machine.now() + kChunk, cfg.engine_workers);
        } else {
          machine.run(machine.now() + kChunk);
        }
      }
    }

    /// Cost model for the serialized compare_exchange: one uncontended
    /// network round trip (k stages each way + one service + the module
    /// latency), charged by actually advancing the clock — which also
    /// makes progress on any packets other threads have in flight, so a
    /// CAS-heavy phase cannot freeze the simulated time base.
    void charge_round_trip_locked() {
      const core::Tick cost = 2 * cfg.log2_procs + 1 + cfg.mem_cfg.latency;
      for (core::Tick i = 0; i < cost; ++i) machine.tick();
    }

    [[nodiscard]] SimBackendStats stats_locked() const {
      SimBackendStats out;
      const sim::MachineStats ms = machine.stats();
      out.cycles = machine.now();
      out.combines = ms.combines;
      out.switch_stall_cycles = ms.switch_stall_cycles;
      out.root_serialized_ops = root_ops;
      for (const MailboxSource* src : sources) {
        out.network_ops += src->ops;
        out.latency_cycles += src->latency_cycles;
      }
      out.stage_stalls.assign(cfg.log2_procs, 0);
      const std::uint32_t rows = nprocs / 2;
      for (unsigned st = 0; st < cfg.log2_procs; ++st) {
        for (std::uint32_t r = 0; r < rows; ++r) {
          out.stage_stalls[st] += machine.switch_stats(st, r).stalls;
        }
      }
      return out;
    }

   private:
    static sim::MachineConfig<core::AnyRmw> machine_config(
        const SimBackendConfig& c) {
      sim::MachineConfig<core::AnyRmw> mc;
      mc.log2_procs = c.log2_procs;
      mc.switch_cfg = c.switch_cfg;
      mc.mem_cfg = c.mem_cfg;
      mc.window = 1;  // one mailbox op in flight per simulated processor
      return mc;
    }

    static std::vector<std::unique_ptr<proc::TrafficSource<core::AnyRmw>>>
    make_sources(State& st) {
      std::vector<std::unique_ptr<proc::TrafficSource<core::AnyRmw>>> v;
      v.reserve(st.nprocs);
      st.sources.reserve(st.nprocs);
      for (std::uint32_t p = 0; p < st.nprocs; ++p) {
        auto src = std::make_unique<MailboxSource>(&st.mailboxes[p]);
        st.sources.push_back(src.get());
        v.push_back(std::move(src));
      }
      return v;
    }
  };

  Word mutate(Cell& c, const core::AnyRmw& m) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c, KRS_SITE);
    const Word prior = s_->inject(c.addr, m);
    Instrument::acquire(&c);
    return prior;
  }

  /// Sequential addresses interleave across modules (module = addr mod n),
  /// so distinct cells land on distinct banks — hot-spot traffic is per
  /// cell, as in the paper's model.
  [[nodiscard]] core::Addr allocate(Word initial) const {
    std::lock_guard<std::mutex> lk(s_->mu);
    const core::Addr a = s_->next_addr++;
    s_->machine.poke(a, initial);
    return a;
  }

  std::shared_ptr<State> s_;
};

using SimBackend = BasicSimBackend<>;

static_assert(RmwBackend<BasicSimBackend<analysis::NoInstrument>>);
static_assert(RmwBackend<SimBackend>);

}  // namespace krs::runtime
