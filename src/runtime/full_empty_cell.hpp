// A HEP-style full/empty tagged cell (§5.5) on real threads.
//
// The four basic operations map to:
//   store-if-clear-and-set  → put / try_put   (write an empty cell, fill it)
//   load-and-clear(if set)  → take / try_take (read a full cell, empty it)
//   load (if set)           → read            (read a full cell, leave full)
//   store-and-set           → overwrite       (unconditional write)
//
// Busy-waiting follows the paper's model: a failed conditional operation is
// a negative acknowledgment; the caller retries, paced by the WaitPolicy
// seam (runtime/wait_policy.hpp — SpinYieldWait by default, FutexWait to
// park oversubscribed retriers). The cell state machine uses an extra
// transient state to make the data transfer atomic with the tag flip.
//
// The tag word lives in an RmwBackend cell (runtime/rmw_backend.hpp); the
// tag transitions are conditional (store-if-CLEAR-and-set), so they go
// through the backend's compare_exchange — on a combining backend that
// serializes at the tree root, linearized against combined traffic. A
// swap-based protocol could combine (§5.1), but a swap that loses the
// probe must write the observed tag back, which would make concurrent
// try_* probes spuriously fail; the CAS spelling keeps try_* exact.
//
// The Instrument policy (analysis/instrument.hpp) publishes the cell's
// happens-before edges: a successful put/overwrite *releases* the
// producer's history into the cell while the tag CAS holds it busy (so the
// event is recorded before any consumer can succeed), and a successful
// take/read *acquires* it — the producer→consumer ordering a race detector
// needs to accept a full/empty handoff of unsynchronized payload data.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>

#include "analysis/instrument.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"

namespace krs::runtime {

// Padded to the destructive-interference granule: the paper's §5.5 use
// case is ARRAYS of tagged cells (one per datum), and adjacent cells
// touched by different producer/consumer pairs must not share a cache
// line, or independent handoffs serialize through the coherence protocol.
template <typename T, typename Instrument = analysis::DefaultInstrument,
          RmwBackend Backend = AtomicBackend,
          WaitPolicy Policy = SpinYieldWait>
class alignas(kCacheLine) FullEmptyCell {
 public:
  explicit FullEmptyCell(Backend backend = Backend{})
      : backend_(std::move(backend)), state_(backend_, kEmpty) {}

  explicit FullEmptyCell(T initial, Backend backend = Backend{})
      : backend_(std::move(backend)),
        state_(backend_, kFull),
        slot_(std::move(initial)) {}

  FullEmptyCell(const FullEmptyCell&) = delete;
  FullEmptyCell& operator=(const FullEmptyCell&) = delete;

  [[nodiscard]] bool full() const noexcept {
    return backend_.load(state_) == kFull;
  }

  /// store-if-clear-and-set: succeeds only on an empty cell.
  bool try_put(T v) {
    Word expect = kEmpty;
    if (!backend_.compare_exchange(state_, expect, kBusy)) {
      return false;  // negative acknowledgment
    }
    Instrument::release(this);  // recorded while the tag holds the cell
    Instrument::shared_store(&slot_, KRS_SITE);
    slot_ = std::move(v);
    backend_.store(state_, kFull);
    return true;
  }

  /// Blocking put: retry until the cell is empty.
  void put(T v) {
    Policy pol;
    while (!try_put(std::move(v))) pol.pause();
  }

  /// load-and-clear (conditional on full): empties the cell.
  std::optional<T> try_take() {
    Word expect = kFull;
    if (!backend_.compare_exchange(state_, expect, kBusy)) {
      return std::nullopt;
    }
    Instrument::acquire(this);  // absorb the producer's published history
    Instrument::shared_load(&slot_, KRS_SITE);
    T v = std::move(slot_);
    backend_.store(state_, kEmpty);
    return v;
  }

  T take() {
    Policy pol;
    for (;;) {
      if (auto v = try_take()) return *std::move(v);
      pol.pause();
    }
  }

  /// load (conditional on full): copies without emptying.
  std::optional<T> try_read() {
    Word expect = kFull;
    if (!backend_.compare_exchange(state_, expect, kBusy)) {
      return std::nullopt;
    }
    Instrument::acquire(this);
    Instrument::shared_load(&slot_, KRS_SITE);
    T v = slot_;
    backend_.store(state_, kFull);
    return v;
  }

  T read() {
    Policy pol;
    for (;;) {
      if (auto v = try_read()) return *std::move(v);
      pol.pause();
    }
  }

  /// store-and-set: unconditional write; cell ends full.
  void overwrite(T v) {
    Policy pol;
    for (;;) {
      Word s = backend_.load(state_);
      if (s != kBusy && backend_.compare_exchange(state_, s, kBusy)) {
        Instrument::release(this);
        Instrument::shared_store(&slot_, KRS_SITE);
        slot_ = std::move(v);
        backend_.store(state_, kFull);
        return;
      }
      pol.pause();
    }
  }

 private:
  static constexpr Word kEmpty = 0;
  static constexpr Word kFull = 1;
  static constexpr Word kBusy = 2;

  Backend backend_;
  typename Backend::Cell state_;
  T slot_{};
};

}  // namespace krs::runtime
