// A HEP-style full/empty tagged cell (§5.5) on real threads.
//
// The four basic operations map to:
//   store-if-clear-and-set  → put / try_put   (write an empty cell, fill it)
//   load-and-clear(if set)  → take / try_take (read a full cell, empty it)
//   load (if set)           → read            (read a full cell, leave full)
//   store-and-set           → overwrite       (unconditional write)
//
// Busy-waiting follows the paper's model: a failed conditional operation is
// a negative acknowledgment; the caller retries (with exponential backoff
// to std::this_thread::yield). The cell state machine uses an extra
// transient state to make the data transfer atomic with the tag flip.
//
// The Instrument policy (analysis/instrument.hpp) publishes the cell's
// happens-before edges: a successful put/overwrite *releases* the
// producer's history into the cell while the tag CAS holds it busy (so the
// event is recorded before any consumer can succeed), and a successful
// take/read *acquires* it — the producer→consumer ordering a race detector
// needs to accept a full/empty handoff of unsynchronized payload data.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>

#include "analysis/instrument.hpp"
#include "runtime/cacheline.hpp"

namespace krs::runtime {

namespace detail {

inline void backoff(unsigned& spins) noexcept {
  if (++spins > 64) {
    std::this_thread::yield();
  }
}

}  // namespace detail

// Padded to the destructive-interference granule: the paper's §5.5 use
// case is ARRAYS of tagged cells (one per datum), and adjacent cells
// touched by different producer/consumer pairs must not share a cache
// line, or independent handoffs serialize through the coherence protocol.
template <typename T, typename Instrument = analysis::DefaultInstrument>
class alignas(kCacheLine) FullEmptyCell {
 public:
  FullEmptyCell() = default;

  explicit FullEmptyCell(T initial) : slot_(std::move(initial)) {
    state_.store(kFull, std::memory_order_release);
  }

  FullEmptyCell(const FullEmptyCell&) = delete;
  FullEmptyCell& operator=(const FullEmptyCell&) = delete;

  [[nodiscard]] bool full() const noexcept {
    return state_.load(std::memory_order_acquire) == kFull;
  }

  /// store-if-clear-and-set: succeeds only on an empty cell.
  bool try_put(T v) {
    std::uint8_t expect = kEmpty;
    if (!state_.compare_exchange_strong(expect, kBusy,
                                        std::memory_order_acquire)) {
      return false;  // negative acknowledgment
    }
    Instrument::release(this);  // recorded while the tag holds the cell
    slot_ = std::move(v);
    state_.store(kFull, std::memory_order_release);
    return true;
  }

  /// Blocking put: retry until the cell is empty.
  void put(T v) {
    unsigned spins = 0;
    while (!try_put(std::move(v))) detail::backoff(spins);
  }

  /// load-and-clear (conditional on full): empties the cell.
  std::optional<T> try_take() {
    std::uint8_t expect = kFull;
    if (!state_.compare_exchange_strong(expect, kBusy,
                                        std::memory_order_acquire)) {
      return std::nullopt;
    }
    Instrument::acquire(this);  // absorb the producer's published history
    T v = std::move(slot_);
    state_.store(kEmpty, std::memory_order_release);
    return v;
  }

  T take() {
    unsigned spins = 0;
    for (;;) {
      if (auto v = try_take()) return *std::move(v);
      detail::backoff(spins);
    }
  }

  /// load (conditional on full): copies without emptying.
  std::optional<T> try_read() {
    std::uint8_t expect = kFull;
    if (!state_.compare_exchange_strong(expect, kBusy,
                                        std::memory_order_acquire)) {
      return std::nullopt;
    }
    Instrument::acquire(this);
    T v = slot_;
    state_.store(kFull, std::memory_order_release);
    return v;
  }

  T read() {
    unsigned spins = 0;
    for (;;) {
      if (auto v = try_read()) return *std::move(v);
      detail::backoff(spins);
    }
  }

  /// store-and-set: unconditional write; cell ends full.
  void overwrite(T v) {
    unsigned spins = 0;
    for (;;) {
      std::uint8_t s = state_.load(std::memory_order_relaxed);
      if (s != kBusy &&
          state_.compare_exchange_strong(s, kBusy,
                                         std::memory_order_acquire)) {
        Instrument::release(this);
        slot_ = std::move(v);
        state_.store(kFull, std::memory_order_release);
        return;
      }
      detail::backoff(spins);
    }
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kBusy = 2;

  std::atomic<std::uint8_t> state_{kEmpty};
  T slot_{};
};

}  // namespace krs::runtime
