// Topology-aware slot layout for the combining structures.
//
// The paper's combining tree pays O(lg n) LOCAL steps per operation, but on
// a cache-coherent node the constant factor of each step is which cache the
// partner's leaf line lives in: a combine handshake between two threads on
// sibling cores inside one L2 cluster is an order of magnitude cheaper than
// one that crosses sockets. The tree itself is topology-blind — slot s maps
// to leaf width/2 + s/2, so WHICH threads pair up at a leaf is decided
// entirely by the slot numbering. This header makes that numbering a
// policy:
//
//   SlotMap            — a permutation of 0..width-1 applied between the
//                        caller-visible slot (thread_ordinal() mod width)
//                        and the tree's internal slot; adjacent INTERNAL
//                        slots share a leaf, so the permutation decides the
//                        leaf pairing.
//   IdentityTopology   — the default policy: slot i pairs with slot i^1,
//                        exactly the historical layout.
//   CpuTopology        — reads the kernel's cache/cluster groupings from
//                        sysfs (/sys/devices/system/cpu/cpuN/...) and
//                        orders slots cluster-major, so slots whose likely
//                        CPUs share a cache cluster get adjacent internal
//                        slots and their early combines stay local. On
//                        hosts where sysfs is absent, unreadable, or
//                        reports a single flat domain, it degrades to the
//                        identity layout — the policy can only relayout,
//                        never break.
//
// The mapping is heuristic by design: threads are not pinned, so "slot s
// runs on CPU s mod ncpus" is an expectation (dense thread_ordinal()s on an
// idle host), not a guarantee. A wrong guess costs locality, not
// correctness — the tree's per-node state machine is layout-agnostic.
#pragma once

#include <algorithm>
#include <concepts>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace krs::runtime {

/// A permutation of 0..width-1: caller-visible slot → internal tree slot.
/// Validated at construction; identity is the neutral layout.
class SlotMap {
 public:
  static SlotMap identity(unsigned width) {
    std::vector<unsigned> p(width);
    std::iota(p.begin(), p.end(), 0u);
    return SlotMap(std::move(p));
  }

  explicit SlotMap(std::vector<unsigned> perm) : perm_(std::move(perm)) {
    std::vector<bool> seen(perm_.size(), false);
    for (const unsigned v : perm_) {
      KRS_EXPECTS(v < perm_.size() && !seen[v] &&
                  "SlotMap requires a permutation of 0..width-1");
      seen[v] = true;
    }
  }

  [[nodiscard]] unsigned operator()(unsigned slot) const {
    KRS_EXPECTS(slot < perm_.size());
    return perm_[slot];
  }

  [[nodiscard]] unsigned width() const noexcept {
    return static_cast<unsigned>(perm_.size());
  }

  [[nodiscard]] bool is_identity() const {
    for (unsigned i = 0; i < perm_.size(); ++i) {
      if (perm_[i] != i) return false;
    }
    return true;
  }

 private:
  std::vector<unsigned> perm_;
};

/// The Topology policy seam: anything that can produce a SlotMap for a
/// given width. Backends take a policy at construction and build one map
/// per width, so the sysfs walk runs once, never on an operation path.
template <typename T>
concept Topology = requires(const T& t, unsigned width) {
  { t.slot_map(width) } -> std::same_as<SlotMap>;
};

/// The historical layout: slot i pairs with slot i^1 at a leaf.
struct IdentityTopology {
  [[nodiscard]] SlotMap slot_map(unsigned width) const {
    return SlotMap::identity(width);
  }
};

static_assert(Topology<IdentityTopology>);

/// Cache/cluster-aware layout from sysfs. Grouping key per CPU, by
/// preference: the L2 sharing set (cache/index2/shared_cpu_list — the
/// core-cluster granularity modern parts expose), then L3
/// (cache/index3/...), then topology/core_siblings_list, then
/// topology/package_id. CPUs with equal keys form one cluster; slot_map()
/// orders slots cluster-major so same-cluster slots get adjacent internal
/// slots (and therefore shared leaves). The sysfs root is injectable so
/// tests can point it at a fabricated hierarchy.
class CpuTopology {
 public:
  explicit CpuTopology(std::string sysfs_root = "/sys/devices/system/cpu")
      : root_(std::move(sysfs_root)) {
    discover();
  }

  /// CPU ids grouped by sharing domain, in first-appearance order. Empty
  /// exactly when discovery fell back to the flat layout (!discovered())
  /// — including a multi-CPU host whose CPUs all share one domain, where
  /// relayout could not change any pairing.
  [[nodiscard]] const std::vector<std::vector<unsigned>>& clusters() const {
    return clusters_;
  }

  [[nodiscard]] unsigned cpus() const noexcept {
    return static_cast<unsigned>(rank_.size());
  }

  /// True when discovery found at least two distinct sharing domains —
  /// the only case where relayout can change any pairing.
  [[nodiscard]] bool discovered() const noexcept {
    return clusters_.size() >= 2;
  }

  [[nodiscard]] SlotMap slot_map(unsigned width) const {
    if (!discovered()) return SlotMap::identity(width);  // flat fallback
    // Sort slots by the cluster-major rank of their expected CPU
    // (slot mod ncpus); the sort is stable, so slots keep their relative
    // order inside a cluster and the wrap-around of width > ncpus stays
    // deterministic. perm[slot] = position in that order.
    std::vector<unsigned> slots(width);
    std::iota(slots.begin(), slots.end(), 0u);
    std::stable_sort(slots.begin(), slots.end(),
                     [&](unsigned a, unsigned b) {
                       return rank_[a % rank_.size()] < rank_[b % rank_.size()];
                     });
    std::vector<unsigned> perm(width);
    for (unsigned pos = 0; pos < width; ++pos) perm[slots[pos]] = pos;
    return SlotMap(std::move(perm));
  }

 private:
  static std::string read_first_line(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line)) return {};
    return line;
  }

  void discover() {
    namespace fs = std::filesystem;
    std::vector<std::string> keys;
    std::error_code ec;
    for (unsigned cpu = 0; cpu < kMaxCpus; ++cpu) {
      const std::string dir = root_ + "/cpu" + std::to_string(cpu);
      if (!fs::is_directory(dir, ec) || ec) break;  // cpuN is dense
      std::string key = read_first_line(dir + "/cache/index2/shared_cpu_list");
      if (key.empty()) {
        key = read_first_line(dir + "/cache/index3/shared_cpu_list");
      }
      if (key.empty()) {
        key = read_first_line(dir + "/topology/core_siblings_list");
      }
      if (key.empty()) {
        key = read_first_line(dir + "/topology/package_id");
      }
      if (key.empty()) {
        // No grouping info at all for this CPU: a singleton domain.
        key = "cpu" + std::to_string(cpu);
      }
      keys.push_back(std::move(key));
    }
    if (keys.size() < 2) return;  // 0/1 CPUs: nothing to lay out

    std::vector<std::string> order;  // distinct keys, first appearance
    for (unsigned cpu = 0; cpu < keys.size(); ++cpu) {
      auto it = std::find(order.begin(), order.end(), keys[cpu]);
      std::size_t ci;
      if (it == order.end()) {
        ci = order.size();
        order.push_back(keys[cpu]);
        clusters_.emplace_back();
      } else {
        ci = static_cast<std::size_t>(it - order.begin());
      }
      clusters_[ci].push_back(cpu);
    }
    rank_.assign(keys.size(), 0u);
    unsigned pos = 0;
    for (const auto& cluster : clusters_) {
      for (const unsigned cpu : cluster) rank_[cpu] = pos++;
    }
    // One sharing domain is the flat layout too: drop the degenerate
    // cluster so clusters().empty() and !discovered() agree (rank_ stays
    // populated — cpus() still reports the host size).
    if (clusters_.size() < 2) clusters_.clear();
  }

  static constexpr unsigned kMaxCpus = 4096;

  std::string root_;
  std::vector<std::vector<unsigned>> clusters_;
  std::vector<unsigned> rank_;  ///< cpu → position in cluster-major order
};

static_assert(Topology<CpuTopology>);

}  // namespace krs::runtime
