// A group lock in the Gottlieb–Lubachevsky–Rudolph coordination style
// ([10]): threads of the SAME group may hold the lock concurrently;
// different groups exclude each other. Readers–writers is the two-group
// special case (group "read" of unbounded width, group "write" used one at
// a time); the §5.6 data-level synchronization automaton is the same idea
// pushed into the memory tag of a single cell.
//
// State is one word: the active group id (or none) and the member count,
// updated with compare-exchange (a combinable fetch-and-add suffices on a
// machine with wide combining; CAS is the portable spelling).
//
// The Instrument policy (analysis/instrument.hpp) publishes enter/leave as
// acquire/release edges on the lock object — conservative (it also orders
// same-group members against each other), which can mask races between
// members of one group but never invents a false race.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "analysis/instrument.hpp"
#include "util/assert.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument>
class BasicGroupLock {
 public:
  static constexpr std::uint16_t kMaxGroup = 0xFFFE;

  /// Enter as a member of `group`; blocks while another group is active.
  void enter(std::uint16_t group) {
    KRS_EXPECTS(group <= kMaxGroup);
    const std::uint64_t tag = static_cast<std::uint64_t>(group) + 1;
    unsigned spins = 0;
    for (;;) {
      std::uint64_t s = state_.load(std::memory_order_acquire);
      const std::uint64_t active = s >> kCountBits;
      if (active == 0 || active == tag) {
        const std::uint64_t count = s & kCountMask;
        const std::uint64_t next = (tag << kCountBits) | (count + 1);
        if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          Instrument::acquire(this);
          return;
        }
        continue;  // contention on our own group: retry immediately
      }
      if (++spins > 64) std::this_thread::yield();
    }
  }

  [[nodiscard]] bool try_enter(std::uint16_t group) {
    KRS_EXPECTS(group <= kMaxGroup);
    const std::uint64_t tag = static_cast<std::uint64_t>(group) + 1;
    std::uint64_t s = state_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint64_t active = s >> kCountBits;
      if (active != 0 && active != tag) return false;
      const std::uint64_t count = s & kCountMask;
      const std::uint64_t next = (tag << kCountBits) | (count + 1);
      if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        Instrument::acquire(this);
        return true;
      }
    }
  }

  /// Leave; the last member out frees the lock for any group.
  void leave() {
    Instrument::release(this);
    std::uint64_t s = state_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t count = s & kCountMask;
      KRS_ASSERT(count > 0);
      const std::uint64_t next =
          count == 1 ? 0 : (s & ~kCountMask) | (count - 1);
      if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Active group id, if any (diagnostics; racy).
  [[nodiscard]] std::int32_t active_group() const {
    const std::uint64_t s = state_.load(std::memory_order_acquire);
    const std::uint64_t active = s >> kCountBits;
    return active == 0 ? -1 : static_cast<std::int32_t>(active - 1);
  }

  [[nodiscard]] std::uint64_t member_count() const {
    return state_.load(std::memory_order_acquire) & kCountMask;
  }

 private:
  static constexpr unsigned kCountBits = 48;
  static constexpr std::uint64_t kCountMask = (std::uint64_t{1} << kCountBits) - 1;

  std::atomic<std::uint64_t> state_{0};
};

using GroupLock = BasicGroupLock<>;

}  // namespace krs::runtime
