// A group lock in the Gottlieb–Lubachevsky–Rudolph coordination style
// ([10]): threads of the SAME group may hold the lock concurrently;
// different groups exclude each other. Readers–writers is the two-group
// special case (group "read" of unbounded width, group "write" used one at
// a time); the §5.6 data-level synchronization automaton is the same idea
// pushed into the memory tag of a single cell.
//
// State is one word: the active group id (or none) and the member count,
// updated with compare-exchange (a combinable fetch-and-add suffices on a
// machine with wide combining; CAS is the portable spelling). The word
// lives in an RmwBackend cell (runtime/rmw_backend.hpp) — under
// AtomicBackend the CAS is the hardware instruction, under
// CombiningBackend it serializes at the tree root, linearized against
// combined traffic.
//
// The Instrument policy (analysis/instrument.hpp) publishes enter/leave as
// acquire/release edges on the lock object — conservative (it also orders
// same-group members against each other), which can mask races between
// members of one group but never invents a false race.
#pragma once

#include <atomic>
#include <cstdint>

#include "analysis/instrument.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument,
          RmwBackend Backend = AtomicBackend,
          WaitPolicy Policy = SpinYieldWait>
class BasicGroupLock {
 public:
  static constexpr std::uint16_t kMaxGroup = 0xFFFE;

  explicit BasicGroupLock(Backend backend = Backend{})
      : backend_(std::move(backend)), state_(backend_, 0) {}

  BasicGroupLock(const BasicGroupLock&) = delete;
  BasicGroupLock& operator=(const BasicGroupLock&) = delete;

  /// Enter as a member of `group`; blocks while another group is active.
  void enter(std::uint16_t group) {
    KRS_EXPECTS(group <= kMaxGroup);
    const Word tag = static_cast<Word>(group) + 1;
    Policy pol;
    for (;;) {
      Word s = backend_.load(state_);
      const Word active = s >> kCountBits;
      if (active == 0 || active == tag) {
        const Word count = s & kCountMask;
        const Word next = (tag << kCountBits) | (count + 1);
        if (backend_.compare_exchange(state_, s, next)) {
          Instrument::acquire(this);
          return;
        }
        continue;  // contention on our own group: retry immediately
      }
      pol.pause();
    }
  }

  [[nodiscard]] bool try_enter(std::uint16_t group) {
    KRS_EXPECTS(group <= kMaxGroup);
    const Word tag = static_cast<Word>(group) + 1;
    Word s = backend_.load(state_);
    for (;;) {
      const Word active = s >> kCountBits;
      if (active != 0 && active != tag) return false;
      const Word count = s & kCountMask;
      const Word next = (tag << kCountBits) | (count + 1);
      if (backend_.compare_exchange(state_, s, next)) {
        Instrument::acquire(this);
        return true;
      }
    }
  }

  /// Leave; the last member out frees the lock for any group.
  void leave() {
    Instrument::release(this);
    Word s = backend_.load(state_);
    for (;;) {
      const Word count = s & kCountMask;
      KRS_ASSERT(count > 0);
      const Word next = count == 1 ? 0 : (s & ~kCountMask) | (count - 1);
      if (backend_.compare_exchange(state_, s, next)) {
        return;
      }
    }
  }

  /// Active group id, if any (diagnostics; racy).
  [[nodiscard]] std::int32_t active_group() const {
    const Word s = backend_.load(state_);
    const Word active = s >> kCountBits;
    return active == 0 ? -1 : static_cast<std::int32_t>(active - 1);
  }

  [[nodiscard]] std::uint64_t member_count() const {
    return backend_.load(state_) & kCountMask;
  }

 private:
  static constexpr unsigned kCountBits = 48;
  static constexpr Word kCountMask = (Word{1} << kCountBits) - 1;

  Backend backend_;
  typename Backend::Cell state_;
};

using GroupLock = BasicGroupLock<>;

}  // namespace krs::runtime
