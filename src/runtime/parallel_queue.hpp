// The Ultracomputer parallel FIFO queue (Gottlieb–Lubachevsky–Rudolph [10]),
// modernized: enqueuers and dequeuers claim slots with fetch-and-add on two
// tickets, and each slot carries a phase tag (the per-cell analogue of a
// full/empty bit with a round counter) so that a producer waits for its
// slot to be empty *for its round* and a consumer for full *for its round*.
// No critical section anywhere: with combining memory the ticket
// fetch-and-adds are conflict-free, which is precisely why the paper's
// machine wanted combinable fetch-and-add.
//
// The two ticket words live in RmwBackend cells (runtime/rmw_backend.hpp):
// with AtomicBackend (the default) they are the hardware CAS words of the
// classic algorithm; with CombiningBackend the ticket traffic funnels
// through a software combining tree. The bounded variant must claim
// conditionally (a full queue rejects), so tickets advance by
// compare_exchange rather than a blind fetch-and-add — on a combining
// backend that conditional claim serializes at the tree root, linearized
// against all combined traffic. Per-slot phase tags stay plain atomics:
// they are spread across slots by construction, never a hot spot.
//
// The Instrument policy (analysis/instrument.hpp) publishes per-cell
// happens-before edges: an enqueue releases the producer's history into
// its claimed cell before flipping the phase tag, and the dequeue of that
// same cell acquires it — the producer→consumer edge that makes handing
// unsynchronized payload through the queue race-free, without ordering
// unrelated enqueue/dequeue pairs against each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/instrument.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

template <typename T, typename Instrument = analysis::DefaultInstrument,
          RmwBackend Backend = AtomicBackend,
          WaitPolicy Policy = SpinYieldWait>
class ParallelQueue {
 public:
  /// Capacity must be a power of two.
  explicit ParallelQueue(std::size_t capacity, Backend backend = Backend{})
      : backend_(std::move(backend)),
        cells_(capacity),
        tail_(backend_, 0),
        head_(backend_, 0) {
    KRS_EXPECTS(capacity >= 1 && util::is_pow2(capacity));
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].phase.store(i, std::memory_order_relaxed);
    }
  }

  ParallelQueue(const ParallelQueue&) = delete;
  ParallelQueue& operator=(const ParallelQueue&) = delete;

  /// Non-blocking enqueue; false when the queue is full.
  bool try_enqueue(T v) {
    Word ticket = backend_.load(tail_);
    for (;;) {
      Cell& c = cells_[ticket & (cells_.size() - 1)];
      Instrument::shared_load(&c.phase, KRS_SITE);
      const std::uint64_t phase = c.phase.load(std::memory_order_acquire);
      if (phase == ticket) {
        // Slot empty for this round: claim the ticket.
        if (backend_.compare_exchange(tail_, ticket, ticket + 1)) {
          // Publish before the phase flip: the matching dequeuer cannot
          // succeed (and acquire) until the tag says full-for-its-round.
          Instrument::release(&c);
          c.item = std::move(v);
          Instrument::shared_store(&c.phase, KRS_SITE);
          c.phase.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // compare_exchange reloaded `ticket` with the current tail.
      } else if (phase < ticket) {
        return false;  // still occupied by the previous round: full
      } else {
        ticket = backend_.load(tail_);
      }
    }
  }

  /// Non-blocking dequeue; nullopt when the queue is empty.
  std::optional<T> try_dequeue() {
    Word ticket = backend_.load(head_);
    for (;;) {
      Cell& c = cells_[ticket & (cells_.size() - 1)];
      Instrument::shared_load(&c.phase, KRS_SITE);
      const std::uint64_t phase = c.phase.load(std::memory_order_acquire);
      if (phase == ticket + 1) {
        if (backend_.compare_exchange(head_, ticket, ticket + 1)) {
          Instrument::acquire(&c);
          T v = std::move(c.item);
          Instrument::shared_store(&c.phase, KRS_SITE);
          c.phase.store(ticket + cells_.size(), std::memory_order_release);
          return v;
        }
      } else if (phase < ticket + 1) {
        return std::nullopt;  // producer not done yet: empty
      } else {
        ticket = backend_.load(head_);
      }
    }
  }

  void enqueue(T v) {
    Policy pol;
    while (!try_enqueue(std::move(v))) pol.pause();
  }

  T dequeue() {
    Policy pol;
    for (;;) {
      if (auto v = try_dequeue()) return *std::move(v);
      pol.pause();
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_.size(); }

  /// Approximate size (racy; exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const Word t = backend_.load(tail_);
    const Word h = backend_.load(head_);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  // One destructive-interference granule per cell: adjacent slots are
  // claimed by different threads, and sharing a line would serialize them
  // through the coherence protocol even though they never conflict.
  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> phase{0};
    T item{};
  };

  Backend backend_;
  std::vector<Cell> cells_;
  typename Backend::Cell tail_;
  typename Backend::Cell head_;
};

}  // namespace krs::runtime
