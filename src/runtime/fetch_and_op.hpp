// The paper's RMW repertoire on real hardware atomics.
//
// On modern CPUs fetch-and-add / and / or / xor are single instructions
// (the direct legacy of the fetch-and-add line of work this paper sits in);
// fetch-and-min/max and general fetch-and-θ are compare-exchange loops.
// These wrappers give the whole §5 catalogue one spelling, so the examples
// and coordination algorithms read like the paper.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

namespace krs::runtime {

using Word = std::uint64_t;

inline Word fetch_and_add(std::atomic<Word>& x, Word a) noexcept {
  return x.fetch_add(a, std::memory_order_acq_rel);
}

inline Word fetch_and_or(std::atomic<Word>& x, Word a) noexcept {
  return x.fetch_or(a, std::memory_order_acq_rel);
}

inline Word fetch_and_and(std::atomic<Word>& x, Word a) noexcept {
  return x.fetch_and(a, std::memory_order_acq_rel);
}

inline Word fetch_and_xor(std::atomic<Word>& x, Word a) noexcept {
  return x.fetch_xor(a, std::memory_order_acq_rel);
}

/// test-and-set(X) ≡ fetch-and-OR(X, 1) (§5.2).
inline bool test_and_set(std::atomic<Word>& x) noexcept {
  return (fetch_and_or(x, 1) & 1) != 0;
}

/// swap: Y ← RMW(X, I_Y) (§2).
inline Word swap(std::atomic<Word>& x, Word v) noexcept {
  return x.exchange(v, std::memory_order_acq_rel);
}

/// General fetch-and-θ for any update function, via a CAS loop — the
/// "semantically atomic" RMW(X, f) of §2 on hardware that only provides
/// compare-and-swap.
template <std::invocable<Word> F>
Word fetch_and_theta(std::atomic<Word>& x, F&& f) noexcept {
  Word old = x.load(std::memory_order_relaxed);
  while (!x.compare_exchange_weak(old, f(old), std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
  }
  return old;
}

/// fetch-and-min — "useful for allocation with priorities" (§5.2).
inline Word fetch_and_min(std::atomic<Word>& x, Word a) noexcept {
  return fetch_and_theta(x, [a](Word v) { return v < a ? v : a; });
}

inline Word fetch_and_max(std::atomic<Word>& x, Word a) noexcept {
  return fetch_and_theta(x, [a](Word v) { return v > a ? v : a; });
}

}  // namespace krs::runtime
