// The local-spin competitor tier: MCS and CLH queue locks, a futex-style
// parking mutex, and a sense-reversing barrier — the RMR-optimal rivals
// the combining structures must beat (or lose to, honestly) in
// bench_lock_tier.
//
// The paper's argument for combining assumes waiters cost nothing while
// they wait; the Mellor-Crummey–Scott line of work made that true on
// cache-coherent machines WITHOUT combining hardware by making every
// waiter spin on a PRIVATE word:
//
//  * BasicMcsLock — arrivals swap themselves onto a tail pointer and spin
//    on their own stack-resident node; the releaser writes exactly one
//    remote word (the successor's flag). O(1) remote memory references
//    per acquisition, FIFO by construction.
//  * BasicClhLock — the implicit-queue variant: an arrival spins on its
//    PREDECESSOR's node, and release is a single local store; the
//    releaser recycles its predecessor's node for its own next
//    acquisition. One fewer remote write than MCS on release; nodes are
//    arena-owned (the queue outlives any single acquisition).
//  * BasicParkingLock — the modern third tier (SNIPPETS part 2): a
//    3-state word (free / locked / locked-with-waiters) driven by CAS,
//    with the WaitPolicy deciding whether contended waiters spin, yield,
//    or park in the kernel. With FutexWait this is the classic futex
//    mutex; with SpinWait it is the same algorithm spinning — the
//    apples-to-apples pair bench_lock_tier measures oversubscription with.
//  * BasicSenseBarrier — the centralized sense-reversing barrier: one
//    countdown plus a phase-sense word every waiter watches; the last
//    arrival flips the sense (and, under a parking policy, wakes the
//    crowd). The classic baseline the combining-tree barrier is measured
//    against.
//
// Every wait routes through the WaitPolicy seam (runtime/wait_policy.hpp):
// the queue locks park on their private word under FutexWait, so the same
// lock object covers the whole spin↔park spectrum by template parameter.
//
// BasicLockBackend<Lock> exposes any of these locks as an RmwBackend
// substrate (cell = one padded word guarded by one lock), so every §6
// algorithm — and the bench/normalize pipeline — can run over a queue
// lock exactly as it runs over atomics, combining trees, or the flat
// combiner.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"

namespace krs::runtime {

/// Mellor-Crummey–Scott queue lock. Callers provide the queue node
/// (stack-resident inside Scoped); each waiter spins — or parks — on its
/// OWN node's flag, so the only cross-thread traffic per handoff is the
/// releaser's single store into the successor's line.
template <WaitPolicy Policy = SpinYieldWait,
          typename Instrument = analysis::DefaultInstrument>
class BasicMcsLock {
 public:
  struct alignas(kCacheLine) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> locked{0};
  };

  BasicMcsLock() = default;
  BasicMcsLock(const BasicMcsLock&) = delete;
  BasicMcsLock& operator=(const BasicMcsLock&) = delete;

  void lock(Node& me) noexcept(!Instrument::enabled) {
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(1, std::memory_order_relaxed);
    Instrument::contended_rmw(&tail_, KRS_SITE);
    Node* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      // Link in; the release store publishes our node to the predecessor.
      pred->next.store(&me, std::memory_order_release);
      Policy pol;
      Instrument::shared_load(&me.locked, KRS_SITE);
      while (me.locked.load(std::memory_order_acquire) != 0) {
        pol.wait_while_equal(me.locked, 1);
      }
    }
    Instrument::acquire(this);
  }

  [[nodiscard]] bool try_lock(Node& me) noexcept(!Instrument::enabled) {
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(0, std::memory_order_relaxed);
    Node* expected = nullptr;
    Instrument::contended_rmw(&tail_, KRS_SITE);
    if (tail_.compare_exchange_strong(expected, &me,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      Instrument::acquire(this);
      return true;
    }
    return false;
  }

  void unlock(Node& me) noexcept(!Instrument::enabled) {
    Instrument::release(this);
    Node* succ = me.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &me;
      Instrument::contended_rmw(&tail_, KRS_SITE);
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;  // no successor: queue empty
      }
      // A successor swapped in but has not linked yet; its link store is
      // imminent — a blind-paced wait, never a park on an unnamed word.
      Policy pol;
      while ((succ = me.next.load(std::memory_order_acquire)) == nullptr) {
        pol.pause();
      }
    }
    succ->locked.store(0, std::memory_order_release);
    if constexpr (Policy::kParks) Policy::notify_one(succ->locked);
  }

  /// Acquisitions that found a predecessor and queued (handed off FIFO).
  /// The deterministic stagger tests key on this growing one per enqueue.
  [[nodiscard]] std::uint64_t contended_acquires() const noexcept {
    return contended_.load(std::memory_order_relaxed);
  }

  class Scoped {
   public:
    explicit Scoped(BasicMcsLock& l) noexcept(!Instrument::enabled) : l_(l) {
      l_.lock(node_);
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() { l_.unlock(node_); }

   private:
    BasicMcsLock& l_;
    Node node_;
  };

 private:
  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
  std::atomic<std::uint64_t> contended_{0};
};

using McsLock = BasicMcsLock<>;

/// Craig / Landin–Hagersten queue lock: the implicit queue. An arrival
/// swaps its own node onto the tail and spins on the PREDECESSOR's node;
/// release is one local store. The releaser then adopts the predecessor's
/// (now free) node for its next acquisition — nodes migrate between
/// threads, so the lock's arena owns them and handles carry two pointers.
template <WaitPolicy Policy = SpinYieldWait,
          typename Instrument = analysis::DefaultInstrument>
class BasicClhLock {
 private:
  struct alignas(kCacheLine) Node {
    std::atomic<std::uint32_t> locked{0};
  };

 public:
  BasicClhLock() : id_(next_id()) {
    tail_.store(new_node(), std::memory_order_relaxed);  // released dummy
  }
  BasicClhLock(const BasicClhLock&) = delete;
  BasicClhLock& operator=(const BasicClhLock&) = delete;

  /// A thread's reusable queue position. Make one per thread per lock
  /// (Scoped caches them thread-locally); a handle must not be used
  /// concurrently with itself.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class BasicClhLock;
    Node* mine = nullptr;
    Node* pred = nullptr;
  };

  [[nodiscard]] Handle make_handle() {
    Handle h;
    h.mine = new_node();
    return h;
  }

  void lock(Handle& h) noexcept(!Instrument::enabled) {
    KRS_EXPECTS(h.mine != nullptr);
    h.mine->locked.store(1, std::memory_order_relaxed);
    Instrument::contended_rmw(&tail_, KRS_SITE);
    Node* pred = tail_.exchange(h.mine, std::memory_order_acq_rel);
    h.pred = pred;
    if (pred->locked.load(std::memory_order_relaxed) != 0) {
      contended_.fetch_add(1, std::memory_order_relaxed);
    }
    Policy pol;
    Instrument::shared_load(&pred->locked, KRS_SITE);
    while (pred->locked.load(std::memory_order_acquire) != 0) {
      pol.wait_while_equal(pred->locked, 1);
    }
    Instrument::acquire(this);
  }

  void unlock(Handle& h) noexcept(!Instrument::enabled) {
    Instrument::release(this);
    Node* released = h.mine;
    h.mine = h.pred;  // adopt the predecessor's free node for next time
    h.pred = nullptr;
    released->locked.store(0, std::memory_order_release);
    if constexpr (Policy::kParks) Policy::notify_one(released->locked);
  }

  /// Acquisitions that observed a still-held predecessor when they queued.
  /// The deterministic FIFO-stagger tests key on this growing one per
  /// enqueue-behind-a-held-lock (the observation races an in-flight
  /// release, so only waits behind a KNOWN holder count reliably).
  [[nodiscard]] std::uint64_t contended_acquires() const noexcept {
    return contended_.load(std::memory_order_relaxed);
  }

  class Scoped {
   public:
    explicit Scoped(BasicClhLock& l) : l_(l), h_(l.tls_handle()) {
      l_.lock(*h_);
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() { l_.unlock(*h_); }

   private:
    BasicClhLock& l_;
    Handle* h_;
  };

 private:
  static std::uint64_t next_id() noexcept {
    static std::atomic<std::uint64_t> c{0};
    return c.fetch_add(1, std::memory_order_relaxed);
  }

  Node* new_node() {
    std::lock_guard<std::mutex> lk(arena_mu_);
    return &arena_.emplace_back();  // deque: pointer-stable, lock-owned
  }

  /// One cached handle per (thread, lock) pair, keyed by a process-unique
  /// lock id so a destroyed lock's stale cache entries are never touched
  /// again. Acquires the arena mutex once per pair, never per operation.
  Handle* tls_handle() {
    thread_local std::unordered_map<std::uint64_t, Handle> cache;
    auto [it, fresh] = cache.try_emplace(id_);
    if (fresh) it->second = make_handle();
    return &it->second;
  }

  const std::uint64_t id_;
  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
  std::atomic<std::uint64_t> contended_{0};
  std::mutex arena_mu_;
  std::deque<Node> arena_;  // owns every node ever issued for this lock
};

using ClhLock = BasicClhLock<>;

/// The 3-state parking mutex (free=0 / locked=1 / locked-with-waiters=2):
/// the classic futex mutex when instantiated with FutexWait, and the SAME
/// algorithm busy-waiting under SpinWait/SpinYieldWait — the controlled
/// pair that isolates the parking decision from everything else in the
/// oversubscription benches. The uncontended path is one CAS in, one
/// exchange out; unlock syscalls only when a waiter announced itself.
template <WaitPolicy Policy = SpinYieldWait,
          typename Instrument = analysis::DefaultInstrument>
class BasicParkingLock {
 public:
  BasicParkingLock() = default;
  BasicParkingLock(const BasicParkingLock&) = delete;
  BasicParkingLock& operator=(const BasicParkingLock&) = delete;

  void lock() noexcept(!Instrument::enabled) {
    std::uint32_t e = 0;
    Instrument::contended_rmw(&state_, KRS_SITE);
    if (state_.compare_exchange_strong(e, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      Instrument::acquire(this);
      return;
    }
    Policy pol;
    for (;;) {
      // Announce the wait: escalate 1 → 2 so unlock knows to notify. A
      // CAS observing 0 here falls through to the acquisition attempt.
      if (e == 1) {
        state_.compare_exchange_strong(e, 2, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
      }
      if (e == 2 || state_.load(std::memory_order_relaxed) == 2) {
        pol.wait_while_equal(state_, 2);
      } else {
        pol.pause();
      }
      e = 0;
      if (state_.compare_exchange_strong(e, 2, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        // Taken as "locked with waiters": we cannot know whether others
        // still wait, so unlock will notify — a possibly-spurious wake,
        // never a lost one.
        break;
      }
    }
    Instrument::acquire(this);
  }

  [[nodiscard]] bool try_lock() noexcept(!Instrument::enabled) {
    std::uint32_t e = 0;
    Instrument::contended_rmw(&state_, KRS_SITE);
    if (state_.compare_exchange_strong(e, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      Instrument::acquire(this);
      return true;
    }
    return false;
  }

  void unlock() noexcept(!Instrument::enabled) {
    Instrument::release(this);
    Instrument::contended_rmw(&state_, KRS_SITE);
    if (state_.exchange(0, std::memory_order_release) == 2) {
      if constexpr (Policy::kParks) Policy::notify_one(state_);
    }
  }

  class Scoped {
   public:
    explicit Scoped(BasicParkingLock& l) noexcept(!Instrument::enabled)
        : l_(l) {
      l_.lock();
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() { l_.unlock(); }

   private:
    BasicParkingLock& l_;
  };

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> state_{0};
};

using ParkingLock = BasicParkingLock<FutexWait>;

/// Centralized sense-reversing barrier: one fetch-and-sub countdown, one
/// phase-sense word. Every waiter watches (or parks on) the sense word;
/// the last arrival resets the count and flips the sense. Callers keep a
/// per-thread `bool sense`, initially false, flipped by every call.
template <WaitPolicy Policy = SpinYieldWait,
          typename Instrument = analysis::DefaultInstrument>
class BasicSenseBarrier {
 public:
  explicit BasicSenseBarrier(unsigned parties)
      : parties_(parties), count_(parties) {
    KRS_EXPECTS(parties >= 1);
  }
  BasicSenseBarrier(const BasicSenseBarrier&) = delete;
  BasicSenseBarrier& operator=(const BasicSenseBarrier&) = delete;

  void arrive_and_wait(bool& sense) {
    Instrument::release(this);
    // The value the sense word takes when THIS phase completes: phases
    // alternate 1, 0, 1, … starting from the initial 0.
    const std::uint32_t target = sense ? 0u : 1u;
    sense = !sense;
    Instrument::contended_rmw(&count_, KRS_SITE);
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: re-arm the count BEFORE releasing (nobody can reach
      // the next phase's decrement until they pass this release).
      count_.store(parties_, std::memory_order_relaxed);
      release_.store(target, std::memory_order_release);
      if constexpr (Policy::kParks) Policy::notify_all(release_);
    } else {
      Policy pol;
      Instrument::shared_load(&release_, KRS_SITE);
      while (release_.load(std::memory_order_acquire) != target) {
        pol.wait_while_equal(release_, target ^ 1u);
      }
    }
    Instrument::acquire(this);
  }

  [[nodiscard]] unsigned parties() const noexcept { return parties_; }

 private:
  unsigned parties_;
  alignas(kCacheLine) std::atomic<std::uint32_t> count_;
  alignas(kCacheLine) std::atomic<std::uint32_t> release_{0};
};

using SenseBarrier = BasicSenseBarrier<>;

/// Any lock with a nested Scoped RAII guard, exposed as an RmwBackend
/// substrate: a cell is one padded word plus one lock instance, and every
/// operation runs under the lock. This is deliberately the SERIAL
/// baseline — a queue lock grants O(1)-RMR FIFO access to a critical
/// section that still executes one op at a time — which is exactly the
/// competitor the combining substrates must be measured against
/// (bench_lock_tier's mcs / clh / futex / spin rows).
template <typename Lock, typename Instrument = analysis::DefaultInstrument>
class BasicLockBackend {
 public:
  struct Cell {
    Cell(const BasicLockBackend&, Word initial) : value(initial) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    alignas(kCacheLine) Word value;
    alignas(kCacheLine) mutable Lock lk;
  };

  Word fetch_add(Cell& c, Word v) const {
    return rmw(c, [v](Word o) { return o + v; });
  }
  Word fetch_or(Cell& c, Word v) const {
    return rmw(c, [v](Word o) { return o | v; });
  }
  Word fetch_and(Cell& c, Word v) const {
    return rmw(c, [v](Word o) { return o & v; });
  }
  Word fetch_xor(Cell& c, Word v) const {
    return rmw(c, [v](Word o) { return o ^ v; });
  }
  Word exchange(Cell& c, Word v) const {
    return rmw(c, [v](Word) { return v; });
  }

  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    return rmw(c, [&m](Word o) { return m.apply(o); });
  }

  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    typename Lock::Scoped g(c.lk);
    Instrument::release(&c);
    Instrument::shared_store(&c.value, KRS_SITE);
    const Word prior = c.value;
    bool ok = false;
    if (prior == expected) {
      c.value = desired;
      ok = true;
    } else {
      expected = prior;
    }
    Instrument::acquire(&c);
    return ok;
  }

  Word load(const Cell& c) const {
    typename Lock::Scoped g(c.lk);
    Instrument::shared_load(&c.value, KRS_SITE);
    const Word v = c.value;
    Instrument::acquire(&c);
    return v;
  }

  void store(Cell& c, Word v) const {
    rmw(c, [v](Word) { return v; });
  }

 private:
  template <typename F>
  Word rmw(Cell& c, F f) const {
    typename Lock::Scoped g(c.lk);
    Instrument::release(&c);
    Instrument::shared_store(&c.value, KRS_SITE);
    const Word prior = c.value;
    c.value = f(prior);
    Instrument::acquire(&c);
    return prior;
  }
};

template <typename Lock>
using LockBackend = BasicLockBackend<Lock>;

static_assert(RmwBackend<LockBackend<McsLock>>);
static_assert(RmwBackend<LockBackend<ClhLock>>);
static_assert(RmwBackend<LockBackend<ParkingLock>>);
static_assert(RmwBackend<LockBackend<BasicParkingLock<SpinWait>>>);

}  // namespace krs::runtime
