// A fetch-and-add ticket lock: the textbook application of the
// "fetch-and-add hands out distinct tickets" property that combining makes
// contention-free. Acquire takes one fetch-and-add (combinable — under a
// combining memory P simultaneous acquirers cost O(log P) network work);
// release is one store. FIFO-fair by construction, unlike test-and-set
// spin locks. Waiters back off proportionally to their queue distance
// (Mellor-Crummey–Scott's classic ticket-lock fix): the thread holding
// ticket t re-reads now_serving only after ~(t − now_serving)·k pauses,
// so the serving word is not a P-way coherence hot spot.
//
// The Instrument policy (analysis/instrument.hpp) publishes the lock's
// happens-before edges to the race detector: an empty policy by default
// (zero cost), the global detector when analysis is enabled.
#pragma once

#include <atomic>
#include <cstdint>

#include "analysis/instrument.hpp"
#include "runtime/backoff.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/wait_policy.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicTicketLock {
 public:
  void lock() noexcept(!Instrument::enabled) {
    Instrument::contended_rmw(&next_, KRS_SITE);
    const std::uint64_t my =
        next_.fetch_add(1, std::memory_order_acq_rel);
    Policy pol;
    std::uint64_t prev_ahead = ~std::uint64_t{0};
    for (;;) {
      Instrument::shared_load(&serving_, KRS_SITE);
      const std::uint64_t now = serving_.load(std::memory_order_acquire);
      if (now == my) break;
      // Proportional backoff: my - now waiters are served before us, so
      // wait roughly that long before re-reading instead of hammering
      // the serving word from every queued thread. If the queue did not
      // advance since our last read, the holder is likely preempted
      // (oversubscribed host) and needs this core — hand the round to
      // the wait policy (yield by default; FutexWait sleeps outright).
      const std::uint64_t ahead = my - now;
      if (ahead >= prev_ahead) {
        pol.pause();
      } else {
        proportional_backoff(ahead);
        pol.reset();  // queue advanced: a fresh wait episode
      }
      prev_ahead = ahead;
    }
    Instrument::acquire(this);
  }

  bool try_lock() noexcept(!Instrument::enabled) {
    Instrument::shared_load(&serving_, KRS_SITE);
    std::uint64_t serving = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    // Take a ticket only if it would be served immediately.
    Instrument::contended_rmw(&next_, KRS_SITE);
    if (next_.compare_exchange_strong(expected, serving + 1,
                                      std::memory_order_acq_rel)) {
      Instrument::acquire(this);
      return true;
    }
    return false;
  }

  void unlock() noexcept(!Instrument::enabled) {
    Instrument::release(this);
    Instrument::contended_rmw(&serving_, KRS_SITE);
    serving_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Number of waiters currently queued (approximate).
  [[nodiscard]] std::uint64_t queue_length() const noexcept {
    const auto n = next_.load(std::memory_order_acquire);
    const auto s = serving_.load(std::memory_order_acquire);
    return n > s ? n - s : 0;
  }

  class Scoped {
   public:
    explicit Scoped(BasicTicketLock& l) noexcept(!Instrument::enabled)
        : l_(l) {
      l_.lock();
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() { l_.unlock(); }

   private:
    BasicTicketLock& l_;
  };

 private:
  alignas(kCacheLine) std::atomic<std::uint64_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> serving_{0};
};

using TicketLock = BasicTicketLock<>;

}  // namespace krs::runtime
