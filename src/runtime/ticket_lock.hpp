// A fetch-and-add ticket lock: the textbook application of the
// "fetch-and-add hands out distinct tickets" property that combining makes
// contention-free. Acquire takes one fetch-and-add (combinable — under a
// combining memory P simultaneous acquirers cost O(log P) network work);
// release is one store. FIFO-fair by construction, unlike test-and-set
// spin locks.
//
// The Instrument policy (analysis/instrument.hpp) publishes the lock's
// happens-before edges to the race detector: an empty policy by default
// (zero cost), the global detector when analysis is enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "analysis/instrument.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument>
class BasicTicketLock {
 public:
  void lock() noexcept(!Instrument::enabled) {
    const std::uint64_t my =
        next_.fetch_add(1, std::memory_order_acq_rel);
    unsigned spins = 0;
    while (serving_.load(std::memory_order_acquire) != my) {
      if (++spins > 64) std::this_thread::yield();
    }
    Instrument::acquire(this);
  }

  bool try_lock() noexcept(!Instrument::enabled) {
    std::uint64_t serving = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    // Take a ticket only if it would be served immediately.
    if (next_.compare_exchange_strong(expected, serving + 1,
                                      std::memory_order_acq_rel)) {
      Instrument::acquire(this);
      return true;
    }
    return false;
  }

  void unlock() noexcept(!Instrument::enabled) {
    Instrument::release(this);
    serving_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Number of waiters currently queued (approximate).
  [[nodiscard]] std::uint64_t queue_length() const noexcept {
    const auto n = next_.load(std::memory_order_acquire);
    const auto s = serving_.load(std::memory_order_acquire);
    return n > s ? n - s : 0;
  }

 private:
  alignas(64) std::atomic<std::uint64_t> next_{0};
  alignas(64) std::atomic<std::uint64_t> serving_{0};
};

using TicketLock = BasicTicketLock<>;

}  // namespace krs::runtime
