// The WaitPolicy seam: every waiting site in src/runtime paces itself
// through one of the policies below instead of hand-rolling a spin loop.
//
// The paper's cost model waits by local spinning on a private word (§3: a
// failed conditional RMW is a negative acknowledgment; the caller retries).
// On a real machine that model splits three ways, which is exactly the
// policy axis:
//
//  * SpinWait — pure local spinning with bounded exponential pacing, never
//    yielding the core. The paper's model verbatim; right when waiters ≤
//    cores and latency is everything.
//  * SpinYieldWait — today's default: the ExpBackoff schedule (spin 1, 2,
//    4, … pause instructions to a cap, then std::this_thread::yield each
//    round). The yield matters once the partner we wait for may need our
//    core (mild oversubscription).
//  * FutexWait — spin-then-park: a short spin grace, a few yields, then
//    the thread PARKS in the kernel (Linux futex(2); a striped
//    mutex+condvar parking lot elsewhere) until the waited word changes or
//    a bounded timeout fires. Right when waiters ≫ cores: parked waiters
//    stop burning the very cycles the lock holder needs.
//
// Interface (concept `WaitPolicy`): a policy object paces ONE wait episode.
// `pause()` is a blind round (no addressable word — FutexWait degrades to a
// bounded timed sleep, so progress never depends on a waker). `wait_while_
// equal(w, v)` is an addressable round: the policy may park on `w` while it
// holds `v`; callers keep the predicate re-check loop around it. `reset()`
// re-arms the schedule between independent episodes. `notify_one/all(w)`
// are the waker-side hooks — no-ops unless the policy parks (`kParks`), so
// default-policy fast paths stay store-only.
//
// Telemetry: every policy counts spins / yields / parks and every notify
// counts wakes. Counters accumulate into a thread-local block (flushed on
// reset/destruction) that drains into process totals at thread exit —
// wait_stats_snapshot() after joining workers is exact, and a live thread
// can watch its own thread_wait_stats() deltas (the bench harness does).
//
// Tests can interpose on parking via futex_hooks(): swap park/wake with
// scripted functions to drive spurious wakeups and lost-wake orderings
// deterministically. Hooks are process-global; install them while no
// thread is parked.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>

#include "runtime/backoff.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#endif

namespace krs::runtime {

/// Cumulative wait-side work: spin rounds (in pause instructions), yields,
/// parks (kernel sleeps, timed or woken), and wakes issued by notifiers.
struct WaitStats {
  std::uint64_t spins = 0;
  std::uint64_t yields = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;

  WaitStats& operator+=(const WaitStats& o) noexcept {
    spins += o.spins;
    yields += o.yields;
    parks += o.parks;
    wakes += o.wakes;
    return *this;
  }
  friend WaitStats operator-(WaitStats a, const WaitStats& b) noexcept {
    a.spins -= b.spins;
    a.yields -= b.yields;
    a.parks -= b.parks;
    a.wakes -= b.wakes;
    return a;
  }
};

namespace detail {

struct GlobalWaitStats {
  std::atomic<std::uint64_t> spins{0};
  std::atomic<std::uint64_t> yields{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> wakes{0};

  static GlobalWaitStats& instance() {
    static GlobalWaitStats g;
    return g;
  }

  void drain(const WaitStats& s) noexcept {
    if (s.spins) spins.fetch_add(s.spins, std::memory_order_relaxed);
    if (s.yields) yields.fetch_add(s.yields, std::memory_order_relaxed);
    if (s.parks) parks.fetch_add(s.parks, std::memory_order_relaxed);
    if (s.wakes) wakes.fetch_add(s.wakes, std::memory_order_relaxed);
  }

  [[nodiscard]] WaitStats snapshot() const noexcept {
    WaitStats s;
    s.spins = spins.load(std::memory_order_relaxed);
    s.yields = yields.load(std::memory_order_relaxed);
    s.parks = parks.load(std::memory_order_relaxed);
    s.wakes = wakes.load(std::memory_order_relaxed);
    return s;
  }
};

/// Per-thread running totals; the destructor drains them into the process
/// totals, so a coordinator that has JOINED its workers reads exact sums.
struct TlsWaitStats {
  WaitStats stats;
  TlsWaitStats() = default;
  TlsWaitStats(const TlsWaitStats&) = delete;
  TlsWaitStats& operator=(const TlsWaitStats&) = delete;
  ~TlsWaitStats() { GlobalWaitStats::instance().drain(stats); }
};

inline TlsWaitStats& wait_tls() noexcept {
  thread_local TlsWaitStats t;
  return t;
}

}  // namespace detail

/// This thread's accumulated wait work (policies flush here on reset and
/// destruction — counts from a policy object mid-episode are not yet
/// visible). Monotone within a thread; sample deltas around a region.
[[nodiscard]] inline WaitStats thread_wait_stats() noexcept {
  return detail::wait_tls().stats;
}

/// Process-wide wait work: totals drained from exited threads plus the
/// calling thread's own. Exact once all other worker threads have been
/// joined (their destructors drained); approximate while they run.
[[nodiscard]] inline WaitStats wait_stats_snapshot() noexcept {
  WaitStats s = detail::GlobalWaitStats::instance().snapshot();
  s += detail::wait_tls().stats;
  return s;
}

// ---- parking substrate ------------------------------------------------------

/// Test seam over the kernel park/wake pair. `park` returns true if the
/// call actually slept (woken or timed out), false if it returned
/// immediately because `*w != expected` (the kernel's atomic re-check —
/// the property that makes parking lost-wake-safe). Null pointers = the
/// real implementation. Process-global: install while nothing is parked.
struct FutexHooks {
  bool (*park)(const std::atomic<std::uint32_t>* w, std::uint32_t expected,
               std::chrono::nanoseconds timeout) = nullptr;
  void (*wake)(const std::atomic<std::uint32_t>* w, bool all) = nullptr;
};

inline FutexHooks& futex_hooks() noexcept {
  static FutexHooks hooks;
  return hooks;
}

namespace detail {

#if defined(__linux__)

/// futex(FUTEX_WAIT_PRIVATE): sleep while *w == expected, bounded by
/// `timeout`. The kernel re-checks the word under its internal lock, so a
/// wake issued after the caller's user-space check cannot be lost.
inline bool futex_park_impl(const std::atomic<std::uint32_t>* w,
                            std::uint32_t expected,
                            std::chrono::nanoseconds timeout) noexcept {
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (timeout.count() > 0) {
    ts.tv_sec = static_cast<time_t>(timeout.count() / 1000000000);
    ts.tv_nsec = static_cast<long>(timeout.count() % 1000000000);
    tsp = &ts;
  }
  const long rc =
      syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(w),
              FUTEX_WAIT_PRIVATE, expected, tsp, nullptr, 0);
  if (rc == 0) return true;                      // woken
  return errno == ETIMEDOUT || errno == EINTR;   // slept, then timed out /
                                                 // spuriously interrupted
  // EAGAIN: *w != expected at kernel re-check — never slept.
}

inline void futex_wake_impl(const std::atomic<std::uint32_t>* w,
                            bool all) noexcept {
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(w),
          FUTEX_WAKE_PRIVATE, all ? INT_MAX : 1, nullptr, nullptr, 0);
}

#else

/// Portable fallback: a striped mutex+condvar parking lot keyed by the
/// word's address. The waiter re-checks the word UNDER the stripe mutex
/// and the waker takes the same mutex before notifying, which restores the
/// futex's lost-wake guarantee (at condvar cost).
struct ParkingLot {
  static constexpr std::size_t kStripes = 64;
  struct Stripe {
    std::mutex mu;
    std::condition_variable cv;
  };
  Stripe stripes[kStripes];

  static ParkingLot& instance() {
    static ParkingLot lot;
    return lot;
  }
  Stripe& of(const void* addr) noexcept {
    const auto p = reinterpret_cast<std::uintptr_t>(addr);
    return stripes[(p >> 4) % kStripes];
  }
};

inline bool futex_park_impl(const std::atomic<std::uint32_t>* w,
                            std::uint32_t expected,
                            std::chrono::nanoseconds timeout) noexcept {
  auto& st = ParkingLot::instance().of(w);
  std::unique_lock<std::mutex> lk(st.mu);
  if (w->load(std::memory_order_acquire) != expected) return false;
  if (timeout.count() > 0) {
    st.cv.wait_for(lk, timeout);
  } else {
    st.cv.wait(lk);
  }
  return true;
}

inline void futex_wake_impl(const std::atomic<std::uint32_t>* w,
                            bool all) noexcept {
  auto& st = ParkingLot::instance().of(w);
  {
    std::lock_guard<std::mutex> lk(st.mu);  // order against the re-check
  }
  if (all) {
    st.cv.notify_all();
  } else {
    st.cv.notify_one();  // stripe sharing may wake a stranger: spurious,
                         // absorbed by every caller's re-check loop
  }
}

#endif

inline bool do_park(const std::atomic<std::uint32_t>* w, std::uint32_t v,
                    std::chrono::nanoseconds timeout) noexcept {
  if (auto* f = futex_hooks().park) return f(w, v, timeout);
  return futex_park_impl(w, v, timeout);
}

inline void do_wake(const std::atomic<std::uint32_t>* w, bool all) noexcept {
  if (auto* f = futex_hooks().wake) {
    f(w, all);
    return;
  }
  futex_wake_impl(w, all);
}

}  // namespace detail

// ---- policies ---------------------------------------------------------------

/// Pure local spinning, exponentially paced to a cap, never yielding the
/// core — the paper's private-word wait model verbatim. Cheapest latency
/// when waiters ≤ cores; pathological when the partner needs this core.
class SpinWait {
 public:
  static constexpr bool kParks = false;
  static constexpr std::uint32_t kSpinCap = ExpBackoff::kSpinCap;

  SpinWait() = default;
  SpinWait(const SpinWait&) = delete;
  SpinWait& operator=(const SpinWait&) = delete;
  ~SpinWait() { flush(); }

  void pause() noexcept {
    const std::uint32_t n = spins_;
    for (std::uint32_t i = 0; i < n; ++i) cpu_relax();
    local_.spins += n;
    if (spins_ < kSpinCap) spins_ *= 2;
  }

  void wait_while_equal(const std::atomic<std::uint32_t>&,
                        std::uint32_t) noexcept {
    pause();  // the caller's predicate loop re-reads the word
  }

  void reset() noexcept {
    flush();
    spins_ = 1;
  }

  static void notify_one(std::atomic<std::uint32_t>&) noexcept {}
  static void notify_all(std::atomic<std::uint32_t>&) noexcept {}

 private:
  void flush() noexcept {
    detail::wait_tls().stats += local_;
    local_ = {};
  }

  std::uint32_t spins_ = 1;
  WaitStats local_{};
};

/// The historical default: ExpBackoff's exact schedule — spin 1, 2, 4, …
/// pause instructions up to the cap, then yield every further round. Keeps
/// every primitive's pre-seam behavior while routing it through the policy
/// point (and counting it).
class SpinYieldWait {
 public:
  static constexpr bool kParks = false;

  SpinYieldWait() = default;
  SpinYieldWait(const SpinYieldWait&) = delete;
  SpinYieldWait& operator=(const SpinYieldWait&) = delete;
  ~SpinYieldWait() { flush(); }

  void pause() noexcept {
    const std::uint32_t budget = bo_.current_spins();
    if (budget <= ExpBackoff::kSpinCap) {
      local_.spins += budget;
    } else {
      ++local_.yields;
    }
    bo_.pause();
  }

  void wait_while_equal(const std::atomic<std::uint32_t>&,
                        std::uint32_t) noexcept {
    pause();
  }

  void reset() noexcept {
    flush();
    bo_.reset();
  }

  static void notify_one(std::atomic<std::uint32_t>&) noexcept {}
  static void notify_all(std::atomic<std::uint32_t>&) noexcept {}

 private:
  void flush() noexcept {
    detail::wait_tls().stats += local_;
    local_ = {};
  }

  ExpBackoff bo_;
  WaitStats local_{};
};

/// Spin-then-park: a short exponential spin grace, a few yields, then the
/// thread parks in the kernel. Addressable waits park on the waited word
/// itself (futex(2): the kernel atomically re-checks the expected value,
/// so a wake issued between our user-space check and the sleep is never
/// lost); blind waits degrade to a bounded timed sleep. Every park carries
/// an escalating bounded timeout — livelock insurance for protocols whose
/// wakers publish after their scan (the flat combiner's handoff), at worst
/// costing one timeout of latency, never a hang.
class FutexWait {
 public:
  static constexpr bool kParks = true;
  static constexpr std::uint32_t kSpinRounds = 7;   // 1+2+…+64 pause grace
  static constexpr std::uint32_t kYieldRounds = 4;  // then a few yields
  static constexpr std::chrono::nanoseconds kMinParkTimeout{100'000};
  static constexpr std::chrono::nanoseconds kMaxParkTimeout{5'000'000};

  FutexWait() = default;
  FutexWait(const FutexWait&) = delete;
  FutexWait& operator=(const FutexWait&) = delete;
  ~FutexWait() { flush(); }

  /// Blind round: no word to park on, so the park phase is a bounded timed
  /// sleep — progress never depends on a waker the caller can't name.
  void pause() noexcept {
    if (grace_round()) return;
    std::this_thread::sleep_for(next_timeout());
    ++local_.parks;
  }

  /// Addressable round: park on `w` while it holds `v`, bounded. The
  /// caller re-checks its predicate and loops; a spurious or timed-out
  /// return costs one loop iteration, nothing else.
  void wait_while_equal(const std::atomic<std::uint32_t>& w,
                        std::uint32_t v) noexcept {
    if (grace_round()) return;
    detail::do_park(&w, v, next_timeout());
    ++local_.parks;
  }

  void reset() noexcept {
    flush();
    round_ = 0;
    timeout_ = kMinParkTimeout;
  }

  static void notify_one(std::atomic<std::uint32_t>& w) noexcept {
    detail::do_wake(&w, false);
    ++detail::wait_tls().stats.wakes;
  }
  static void notify_all(std::atomic<std::uint32_t>& w) noexcept {
    detail::do_wake(&w, true);
    ++detail::wait_tls().stats.wakes;
  }

 private:
  bool grace_round() noexcept {
    if (round_ < kSpinRounds) {
      const std::uint32_t n = 1u << round_;
      for (std::uint32_t i = 0; i < n; ++i) cpu_relax();
      local_.spins += n;
      ++round_;
      return true;
    }
    if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
      ++local_.yields;
      ++round_;
      return true;
    }
    return false;
  }

  std::chrono::nanoseconds next_timeout() noexcept {
    const auto t = timeout_;
    timeout_ = timeout_ * 2 > kMaxParkTimeout ? kMaxParkTimeout : timeout_ * 2;
    return t;
  }

  void flush() noexcept {
    detail::wait_tls().stats += local_;
    local_ = {};
  }

  std::uint32_t round_ = 0;
  std::chrono::nanoseconds timeout_ = kMinParkTimeout;
  WaitStats local_{};
};

// ---- the concept ------------------------------------------------------------

template <typename P>
concept WaitPolicy =
    std::is_default_constructible_v<P> &&
    requires(P p, const std::atomic<std::uint32_t>& cw,
             std::atomic<std::uint32_t>& w, std::uint32_t v) {
      p.pause();
      p.reset();
      p.wait_while_equal(cw, v);
      P::notify_one(w);
      P::notify_all(w);
      { P::kParks } -> std::convertible_to<bool>;
    };

static_assert(WaitPolicy<SpinWait>);
static_assert(WaitPolicy<SpinYieldWait>);
static_assert(WaitPolicy<FutexWait>);

// ---- episode tracking -------------------------------------------------------

/// Resets the wrapped policy whenever the observed state word CHANGES —
/// one wait episode per observed occupancy. This is the fix for backoff
/// objects silently carried across independent waits (a retry loop that
/// watches a node through several occupancies used to keep one ever-
/// growing schedule): a state transition means the thing we were waiting
/// for happened and a NEW wait began, so the schedule re-arms.
template <WaitPolicy Policy>
class EpisodeWait {
 public:
  explicit EpisodeWait(Policy& pol) noexcept : pol_(pol) {}

  /// One blind round against the observed word `w`.
  void observe_and_pause(std::uint64_t w) noexcept {
    rearm(w);
    pol_.pause();
  }

  /// One addressable round: park on `word` while it reads `v`; `w` is the
  /// full observed state that defines the episode.
  void observe_and_wait(std::uint64_t w, const std::atomic<std::uint32_t>& word,
                        std::uint32_t v) noexcept {
    rearm(w);
    pol_.wait_while_equal(word, v);
  }

 private:
  void rearm(std::uint64_t w) noexcept {
    if (!seen_ || w != last_) {
      if (seen_) pol_.reset();  // state moved: new episode, fresh schedule
      last_ = w;
      seen_ = true;
    }
  }

  Policy& pol_;
  std::uint64_t last_ = 0;
  bool seen_ = false;
};

}  // namespace krs::runtime
