// A static combining-tree barrier: arrivals combine pairwise up a binary
// tree (each node's last arrival propagates), the release fans back down —
// the software shape of §6's combining tree, specialized to the barrier
// where the combined "operation" is just a count. Unlike the centralized
// fetch-and-add barrier, no single cell takes P updates per phase, so the
// structure scales on machines WITHOUT combining hardware — the software
// fallback the Ultracomputer line of work contrasts against.
//
// The Instrument policy (analysis/instrument.hpp) publishes the barrier's
// happens-before edges: every arrival releases its pre-barrier history
// into the barrier object, every departure acquires the joined history of
// all parties — the edge set a race detector needs to see phase N work
// ordered before phase N+1 work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/instrument.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicTreeBarrier {
 public:
  /// `parties` threads, identified by slot 0..parties-1.
  explicit BasicTreeBarrier(unsigned parties) : parties_(parties) {
    KRS_EXPECTS(parties >= 1);
    // Internal nodes in heap layout over ceil_pow2(parties) leaves.
    const auto width = util::ceil_pow2(parties);
    nodes_.resize(width);
    for (auto& n : nodes_) n = std::make_unique<Node>();
  }

  void arrive_and_wait(unsigned slot, bool& sense) {
    KRS_EXPECTS(slot < parties_);
    // Arrival: publish everything this thread did before the barrier.
    Instrument::release(this);
    const bool my_sense = sense;
    // Ascend: the second arrival at each node continues upward; the first
    // waits for the release wave.
    unsigned node = (static_cast<unsigned>(nodes_.size()) + slot) / 2;
    bool climbing = true;
    while (climbing && node >= 1) {
      // A node with a single child (odd parties padding) auto-continues.
      if (!has_sibling(slot, node)) {
        node /= 2;
        continue;
      }
      if (!nodes_[node]->arrived.exchange(true, std::memory_order_acq_rel)) {
        climbing = false;  // first at this node: wait here
        break;
      }
      nodes_[node]->arrived.store(false, std::memory_order_relaxed);
      node /= 2;
    }
    const std::uint32_t target = my_sense ? 1u : 0u;
    if (node < 1 || climbing) {
      // Reached past the root: this thread triggers the release.
      release_.store(target, std::memory_order_release);
      if constexpr (Policy::kParks) Policy::notify_all(release_);
    } else {
      Policy pol;
      while (release_.load(std::memory_order_acquire) != target) {
        // The release word only ever holds 0 or 1, so "not yet my sense"
        // is exactly "still the previous phase's sense" — addressable.
        pol.wait_while_equal(release_, target ^ 1u);
      }
    }
    // Departure: absorb every party's pre-barrier history. All arrivals
    // released above before any waiter passes the release wave, so the
    // joined clock covers the whole phase.
    Instrument::acquire(this);
    sense = !sense;
  }

 private:
  // Padded: adjacent nodes are hammered by disjoint thread pairs during
  // the ascent; sharing a line would couple their arrival CASes.
  struct alignas(kCacheLine) Node {
    std::atomic<bool> arrived{false};
  };

  /// Whether this node actually has two live children for the given
  /// party count (padding leaves of a non-power-of-two count are absent).
  [[nodiscard]] bool has_sibling(unsigned /*slot*/, unsigned node) const {
    // A node combines two subtrees; when the party count is not a power of
    // two, a right subtree may contain no live leaf — then the node has a
    // single effective child and arrivals pass through. Find the leftmost
    // leaf (heap descent by left children) of the right child's subtree.
    const auto width = static_cast<unsigned>(nodes_.size());
    unsigned right = 2 * node + 1;
    while (right < width) right *= 2;
    const unsigned right_leaf_slot = right - width;
    return right_leaf_slot < parties_;
  }

  unsigned parties_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Sense word, 0/1 alternating per phase. u32 (not bool) so a parking
  // wait policy can futex-wait on it directly.
  std::atomic<std::uint32_t> release_{0};
};

using TreeBarrier = BasicTreeBarrier<>;

}  // namespace krs::runtime
