// A software combining tree: the §6 "virtual tree embedded in the
// interconnection network", realized in shared memory.
//
// Threads ascend a binary tree; when two meet at a node, the later one
// deposits its operand and waits, the earlier one carries the combined
// operand up — exactly the switch-level combining of §4.2 with the thread
// itself playing the switch. The root applies the combined update and the
// replies (prior values) are distributed back down, each waiter receiving
// prior ⊕ (everything combined before it), the decombination rule
// ⟨id2, f(val)⟩ of the paper.
//
// The implementation follows the classic four-phase combining tree
// (precombine / combine / operate / distribute) of Yew–Tzeng–Lawrie and
// Herlihy–Shavit, generalized from getAndIncrement to fetch-and-θ for any
// associative θ. Under high contention the root sees O(P / combine-degree)
// operations instead of P — bench_combining_tree measures the crossover
// against a bare hardware fetch_add and a mutex-protected counter.
//
// This is the BLOCKING implementation: every node transition goes through
// a std::mutex + condition_variable, so each combine handshake pays
// kernel-arbitrated sleep/wake pairs. It is kept as the readable reference
// and the baseline that lock_free_combining_tree.hpp (same protocol, CAS
// status words, local spinning) is measured against; both satisfy the
// CombiningCounter concept (combining_concept.hpp) and are drop-in
// interchangeable everywhere downstream.
//
// The Instrument policy (analysis/instrument.hpp) publishes the tree's
// happens-before edges: an operation acquires the tree's history on entry
// and releases its own on exit, so two operations separated in real time
// are ordered for the race detector (the prior value the later one
// observes reflects the earlier one), while overlapping operations stay
// unordered — no false happens-before is invented for them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/instrument.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

template <typename T, typename Op = std::plus<T>,
          typename Instrument = analysis::DefaultInstrument>
class BlockingCombiningTree {
 public:
  using value_type = T;

  /// `width`: maximum number of threads (power of two, ≥ 2). Thread slots
  /// are 0..width-1; two slots share each leaf.
  BlockingCombiningTree(unsigned width, T initial = T{}, Op op = Op{})
      : width_(width), op_(op) {
    KRS_EXPECTS(width >= 2 && util::is_pow2(width));
    nodes_.resize(width_);  // heap layout, nodes_[1..width-1]
    for (unsigned i = 1; i < width_; ++i) nodes_[i] = std::make_unique<Node>();
    nodes_[1]->status = Status::kRoot;
    nodes_[1]->result = initial;
  }

  /// Atomically result ← result ⊕ v, returning the prior value, combining
  /// with concurrent callers on the way up. `slot` must be < width and
  /// used by at most one thread at a time.
  T fetch_and_op(unsigned slot, T v) {
    KRS_EXPECTS(slot < width_);
    Instrument::acquire(this);
    const unsigned my_leaf = width_ / 2 + slot / 2;  // heap index

    // Phase 1: precombine — climb while we are the first to arrive.
    unsigned node = my_leaf;
    while (nodes_[node]->precombine()) node /= 2;
    const unsigned stop = node;

    // Phase 2: combine — gather operands deposited by second arrivals.
    std::vector<unsigned> path;
    T combined = v;
    for (node = my_leaf; node != stop; node /= 2) {
      combined = nodes_[node]->combine(combined, op_);
      path.push_back(node);
    }

    // Phase 3: operate — at the root, apply; at a SECOND slot, deposit and
    // wait for the distributed result.
    const T prior = nodes_[stop]->op_phase(combined, op_);

    // Phase 4: distribute results back down our path.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      nodes_[*it]->distribute(prior, op_);
    }
    Instrument::release(this);
    return prior;
  }

  /// Atomic snapshot of the current value: holds the root mutex for one
  /// load, so it is safe concurrently with operations in flight.
  T read() {
    std::scoped_lock lk(nodes_[1]->m);
    return nodes_[1]->result;
  }

  /// Quiescent-only read: no synchronization at all. Callers must ensure
  /// no fetch_and_op is in flight (e.g. after joining the worker threads).
  [[nodiscard]] T read_unsynchronized() const { return nodes_[1]->result; }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  enum class Status : std::uint8_t { kIdle, kFirst, kSecond, kResult, kRoot };

  struct Node {
    std::mutex m;
    std::condition_variable cv;
    Status status = Status::kIdle;
    bool locked = false;
    T first_value{};
    T second_value{};
    T result{};

    /// True: keep climbing (we were first); false: stop here.
    bool precombine() {
      std::unique_lock lk(m);
      cv.wait(lk, [&] { return !locked; });
      switch (status) {
        case Status::kIdle:
          status = Status::kFirst;
          return true;
        case Status::kFirst:
          // A first arrival is already climbing through here; lock the node
          // and deposit as second.
          locked = true;
          status = Status::kSecond;
          return false;
        case Status::kRoot:
          return false;
        default:
          KRS_ASSERT(false && "unexpected precombine status");
          return false;
      }
    }

    /// Called by the FIRST thread on its way up: fold in the second's
    /// operand if one arrived.
    T combine(const T& combined, Op& op) {
      std::unique_lock lk(m);
      cv.wait(lk, [&] { return !locked; });
      locked = true;
      first_value = combined;
      switch (status) {
        case Status::kFirst:
          return combined;
        case Status::kSecond:
          // First's operations precede second's: first ⊕ second.
          return op(combined, second_value);
        default:
          KRS_ASSERT(false && "unexpected combine status");
          return combined;
      }
    }

    /// Root: apply. Second: deposit operand, await distributed prior.
    T op_phase(const T& combined, Op& op) {
      std::unique_lock lk(m);
      switch (status) {
        case Status::kRoot: {
          const T prior = result;
          result = op(result, combined);
          return prior;
        }
        case Status::kSecond: {
          second_value = combined;
          locked = false;  // let the first proceed through combine()
          cv.notify_all();
          cv.wait(lk, [&] { return status == Status::kResult; });
          locked = false;
          status = Status::kIdle;
          const T r = result;
          cv.notify_all();
          return r;
        }
        default:
          KRS_ASSERT(false && "unexpected op status");
          return combined;
      }
    }

    /// Called by the FIRST thread on its way down with the prior value of
    /// everything combined below this node's subtree position.
    void distribute(const T& prior, Op& op) {
      std::scoped_lock lk(m);
      switch (status) {
        case Status::kFirst:
          // Nobody combined here: release the node.
          status = Status::kIdle;
          locked = false;
          break;
        case Status::kSecond:
          // The second's reply: prior ⊕ first's contribution — the
          // decombination rule ⟨id2, f(val)⟩.
          result = op(prior, first_value);
          status = Status::kResult;
          break;
        default:
          KRS_ASSERT(false && "unexpected distribute status");
      }
      cv.notify_all();
    }
  };

  unsigned width_;
  Op op_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Historical name: the blocking tree was the only combining tree before
/// the lock-free one (lock_free_combining_tree.hpp) landed. New code
/// should name the implementation it wants explicitly.
template <typename T, typename Op = std::plus<T>,
          typename Instrument = analysis::DefaultInstrument>
using CombiningTree = BlockingCombiningTree<T, Op, Instrument>;

}  // namespace krs::runtime
