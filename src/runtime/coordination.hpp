// Fetch-and-add coordination algorithms — the "efficient coordination code
// for the NYU Ultracomputer operating system" lineage ([10], §2) that
// motivates making fetch-and-add combinable: none of these has a serial
// critical section; every operation is a constant number of RMW accesses
// that a combining memory serves in parallel.
//
// The algorithms are written against the RmwBackend seam
// (runtime/rmw_backend.hpp): every hot word is a backend cell, and every
// RMW on it goes through the backend. Instantiated with AtomicBackend
// (the default) they are the classic hardware fetch-and-θ algorithms;
// with CombiningBackend the same code runs with its hot spot served by a
// software combining tree — the paper's substrate-portability claim as a
// template parameter.
//
// Every primitive also takes an Instrument policy (analysis/instrument.hpp)
// that publishes its happens-before edges to the race detector; the
// default policy compiles to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "analysis/instrument.hpp"
#include "runtime/combining_concept.hpp"
#include "runtime/fetch_and_op.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

/// Centralized fetch-and-add barrier: one fetch-and-add per arrival. Each
/// arrival takes a ticket; ticket/parties is the phase it belongs to, and
/// the last arrival of a phase (ticket % parties == parties-1) publishes
/// the next phase number. The count never resets, so the algorithm is
/// identical under a combining backend (a reset store would race with
/// in-flight combined adds). With combining, P simultaneous arrivals cost
/// O(log P) root operations instead of P.
///
/// Phase-numbered rather than sense-reversing so threads carry NO per-
/// thread state: any `parties` threads (including freshly spawned ones)
/// can use the barrier at any time — sense-reversing barriers go wrong
/// when new threads join with a stale sense.
template <RmwBackend Backend = AtomicBackend,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicBarrier {
 public:
  explicit BasicBarrier(unsigned parties, Backend backend = Backend{})
      : backend_(std::move(backend)), parties_(parties), count_(backend_, 0) {
    KRS_EXPECTS(parties >= 1);
  }

  void arrive_and_wait() {
    // Publish this thread's pre-barrier history before counting in.
    Instrument::release(this);
    const Word ticket = backend_.fetch_add(count_, 1);
    const Word my_phase = ticket / parties_;
    if (ticket % parties_ == parties_ - 1) {
      phase_.store(my_phase + 1, std::memory_order_release);
    } else {
      // Blind rounds: the phase word is 64-bit (monotonic, never reused),
      // not addressable by a parking policy's 32-bit wait word.
      Policy pol;
      while (phase_.load(std::memory_order_acquire) <= my_phase) pol.pause();
    }
    // Absorb every party's pre-barrier history on the way out.
    Instrument::acquire(this);
  }

  /// Backwards-compatible sense-style call; the flag is ignored but
  /// flipped so loops written for sense-reversing barriers keep working.
  void arrive_and_wait(bool& sense) {
    arrive_and_wait();
    sense = !sense;
  }

  /// Number of completed phases.
  [[nodiscard]] Word phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

 private:
  Backend backend_;
  unsigned parties_;
  typename Backend::Cell count_;
  std::atomic<Word> phase_{0};
};

/// The historical name: the barrier on hardware fetch-and-add.
template <typename Instrument = analysis::DefaultInstrument>
using BasicFaaBarrier = BasicBarrier<AtomicBackend, Instrument>;

using FaaBarrier = BasicFaaBarrier<>;

/// The centralized barrier with its hot spot served by a software
/// combining tree instead of a single fetch-and-add word — the §6 story
/// end to end: arrivals are tickets from `Tree::fetch_and_op`, so P
/// simultaneous arrivals cost O(log P) root operations instead of P.
/// Templated over the CombiningCounter concept, so the blocking and the
/// lock-free tree are drop-in interchangeable.
///
/// Callers pass their slot id (< parties, one thread per slot), which the
/// tree uses to place them on a leaf. BasicBarrier<CombiningBackend>
/// subsumes this (same ticket algorithm, slot derived from
/// thread_ordinal()); this class remains for callers that want explicit
/// slot placement or the blocking tree.
template <CombiningCounter Tree,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicCombiningBarrier {
 public:
  explicit BasicCombiningBarrier(unsigned parties)
      : parties_(parties),
        tree_(static_cast<unsigned>(util::ceil_pow2(
            parties < 2 ? 2 : parties))) {
    KRS_EXPECTS(parties >= 1);
  }

  void arrive_and_wait(unsigned slot) {
    // Publish this thread's pre-barrier history before counting in.
    Instrument::release(this);
    const auto ticket =
        static_cast<std::uint64_t>(tree_.fetch_and_op(slot, 1));
    const std::uint64_t my_phase = ticket / parties_;
    if (ticket % parties_ == parties_ - 1) {
      phase_.store(my_phase + 1, std::memory_order_release);
    } else {
      Policy pol;
      while (phase_.load(std::memory_order_acquire) <= my_phase) pol.pause();
    }
    // Absorb every party's pre-barrier history on the way out.
    Instrument::acquire(this);
  }

  [[nodiscard]] std::uint64_t phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

 private:
  unsigned parties_;
  Tree tree_;
  std::atomic<std::uint64_t> phase_{0};
};

/// Readers–writers coordination in the busy-waiting fetch-and-add style of
/// Gottlieb–Lubachevsky–Rudolph: readers announce with fetch-and-add and
/// retreat if a writer holds the lock; a writer takes a flag with
/// test-and-set (fetch-and-or) and waits for readers to drain.
template <RmwBackend Backend = AtomicBackend,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicRwLock {
 public:
  explicit BasicRwLock(Backend backend = Backend{})
      : backend_(std::move(backend)),
        readers_(backend_, 0),
        writer_(backend_, 0) {}

  void read_lock() {
    Policy pol;
    for (;;) {
      backend_.fetch_add(readers_, 1);
      if (backend_.load(writer_) == 0) {
        Instrument::acquire(this);
        return;
      }
      // A writer is active or arriving: retreat and retry.
      backend_.fetch_add(readers_, Word{0} - 1);
      while (backend_.load(writer_) != 0) pol.pause();
      pol.reset();  // writer drained: a fresh wait episode on retry
    }
  }

  void read_unlock() {
    Instrument::release(this);
    backend_.fetch_add(readers_, Word{0} - 1);
  }

  void write_lock() {
    Policy pol;
    // test-and-set(X) ≡ fetch-and-OR(X, 1) (§5.2).
    while ((backend_.fetch_or(writer_, 1) & 1) != 0) pol.pause();
    pol.reset();  // flag taken: draining readers is a new episode
    // Wait for in-flight readers to drain or retreat.
    while (backend_.load(readers_) != 0) pol.pause();
    Instrument::acquire(this);
  }

  void write_unlock() {
    Instrument::release(this);
    backend_.store(writer_, 0);
  }

 private:
  Backend backend_;
  typename Backend::Cell readers_;
  typename Backend::Cell writer_;
};

template <typename Instrument = analysis::DefaultInstrument>
using BasicFaaRwLock = BasicRwLock<AtomicBackend, Instrument>;

using FaaRwLock = BasicFaaRwLock<>;

/// Counting semaphore with busy-waiting P/V on a fetch-and-add counter —
/// Dijkstra's semaphore implemented the replace-add way: P provisionally
/// decrements and retreats if the result went negative. The counter lives
/// in a backend cell as a two's-complement Word (addition mod 2^64 is
/// sign-agnostic, so the combining FetchAdd family carries negative
/// deltas unchanged).
template <RmwBackend Backend = AtomicBackend,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicSemaphore {
 public:
  explicit BasicSemaphore(std::int64_t initial, Backend backend = Backend{})
      : backend_(std::move(backend)),
        value_(backend_, static_cast<Word>(initial)) {}

  void p() {
    Policy pol;
    for (;;) {
      if (as_count(backend_.fetch_add(value_, Word{0} - 1)) > 0) {
        Instrument::acquire(this);
        return;
      }
      backend_.fetch_add(value_, 1);  // retreat
      while (as_count(backend_.load(value_)) <= 0) pol.pause();
      pol.reset();  // counter went positive: a fresh episode on retry
    }
  }

  [[nodiscard]] bool try_p() {
    if (as_count(backend_.fetch_add(value_, Word{0} - 1)) > 0) {
      Instrument::acquire(this);
      return true;
    }
    backend_.fetch_add(value_, 1);
    return false;
  }

  void v() {
    Instrument::release(this);
    backend_.fetch_add(value_, 1);
  }

  [[nodiscard]] std::int64_t value() const {
    return as_count(backend_.load(value_));
  }

 private:
  static std::int64_t as_count(Word w) noexcept {
    return static_cast<std::int64_t>(w);
  }

  Backend backend_;
  typename Backend::Cell value_;
};

template <typename Instrument = analysis::DefaultInstrument>
using BasicFaaSemaphore = BasicSemaphore<AtomicBackend, Instrument>;

using FaaSemaphore = BasicFaaSemaphore<>;

}  // namespace krs::runtime
