// Fetch-and-add coordination algorithms — the "efficient coordination code
// for the NYU Ultracomputer operating system" lineage ([10], §2) that
// motivates making fetch-and-add combinable: none of these has a serial
// critical section; every operation is a constant number of RMW accesses
// that a combining memory serves in parallel.
//
// Every primitive takes an Instrument policy (analysis/instrument.hpp)
// that publishes its happens-before edges to the race detector; the
// default policy compiles to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "analysis/instrument.hpp"
#include "runtime/backoff.hpp"
#include "runtime/combining_concept.hpp"
#include "runtime/fetch_and_op.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

/// Centralized fetch-and-add barrier: one fetch-and-add per arrival; the
/// last arrival resets the count and advances the phase number. With
/// combining (hardware or the software combining tree) the arrivals
/// collapse into O(log P) memory operations.
///
/// Phase-numbered rather than sense-reversing so threads carry NO per-
/// thread state: any `parties` threads (including freshly spawned ones)
/// can use the barrier at any time — sense-reversing barriers go wrong
/// when new threads join with a stale sense.
template <typename Instrument = analysis::DefaultInstrument>
class BasicFaaBarrier {
 public:
  explicit BasicFaaBarrier(unsigned parties) : parties_(parties) {
    KRS_EXPECTS(parties >= 1);
  }

  void arrive_and_wait() {
    // Publish this thread's pre-barrier history before counting in.
    Instrument::release(this);
    const Word phase = phase_.load(std::memory_order_acquire);
    if (fetch_and_add(count_, 1) == parties_ - 1) {
      count_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      unsigned spins = 0;
      while (phase_.load(std::memory_order_acquire) == phase) {
        if (++spins > 64) std::this_thread::yield();
      }
    }
    // Absorb every party's pre-barrier history on the way out.
    Instrument::acquire(this);
  }

  /// Backwards-compatible sense-style call; the flag is ignored but
  /// flipped so loops written for sense-reversing barriers keep working.
  void arrive_and_wait(bool& sense) {
    arrive_and_wait();
    sense = !sense;
  }

  [[nodiscard]] Word phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

 private:
  unsigned parties_;
  std::atomic<Word> count_{0};
  std::atomic<Word> phase_{0};
};

using FaaBarrier = BasicFaaBarrier<>;

/// The centralized barrier with its hot spot served by a software
/// combining tree instead of a single fetch-and-add word — the §6 story
/// end to end: arrivals are tickets from `Tree::fetch_and_op`, so P
/// simultaneous arrivals cost O(log P) root operations instead of P.
/// Templated over the CombiningCounter concept, so the blocking and the
/// lock-free tree are drop-in interchangeable.
///
/// Callers pass their slot id (< parties, one thread per slot), which the
/// tree uses to place them on a leaf.
template <CombiningCounter Tree,
          typename Instrument = analysis::DefaultInstrument>
class BasicCombiningBarrier {
 public:
  explicit BasicCombiningBarrier(unsigned parties)
      : parties_(parties),
        tree_(static_cast<unsigned>(util::ceil_pow2(
            parties < 2 ? 2 : parties))) {
    KRS_EXPECTS(parties >= 1);
  }

  void arrive_and_wait(unsigned slot) {
    // Publish this thread's pre-barrier history before counting in.
    Instrument::release(this);
    const auto ticket =
        static_cast<std::uint64_t>(tree_.fetch_and_op(slot, 1));
    const std::uint64_t my_phase = ticket / parties_;
    if (ticket % parties_ == parties_ - 1) {
      phase_.store(my_phase + 1, std::memory_order_release);
    } else {
      ExpBackoff bo;
      while (phase_.load(std::memory_order_acquire) <= my_phase) bo.pause();
    }
    // Absorb every party's pre-barrier history on the way out.
    Instrument::acquire(this);
  }

  [[nodiscard]] std::uint64_t phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

 private:
  unsigned parties_;
  Tree tree_;
  std::atomic<std::uint64_t> phase_{0};
};

/// Readers–writers coordination in the busy-waiting fetch-and-add style of
/// Gottlieb–Lubachevsky–Rudolph: readers announce with fetch-and-add and
/// retreat if a writer holds the lock; a writer takes a flag with
/// test-and-set (fetch-and-or) and waits for readers to drain.
template <typename Instrument = analysis::DefaultInstrument>
class BasicFaaRwLock {
 public:
  void read_lock() {
    unsigned spins = 0;
    for (;;) {
      fetch_and_add(readers_, 1);
      if (writer_.load(std::memory_order_acquire) == 0) {
        Instrument::acquire(this);
        return;
      }
      // A writer is active or arriving: retreat and retry.
      readers_.fetch_sub(1, std::memory_order_acq_rel);
      while (writer_.load(std::memory_order_acquire) != 0) {
        if (++spins > 64) std::this_thread::yield();
      }
    }
  }

  void read_unlock() {
    Instrument::release(this);
    readers_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void write_lock() {
    unsigned spins = 0;
    while (test_and_set(writer_)) {
      if (++spins > 64) std::this_thread::yield();
    }
    // Wait for in-flight readers to drain or retreat.
    while (readers_.load(std::memory_order_acquire) != 0) {
      if (++spins > 64) std::this_thread::yield();
    }
    Instrument::acquire(this);
  }

  void write_unlock() {
    Instrument::release(this);
    writer_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<Word> readers_{0};
  std::atomic<Word> writer_{0};
};

using FaaRwLock = BasicFaaRwLock<>;

/// Counting semaphore with busy-waiting P/V on a fetch-and-add counter —
/// Dijkstra's semaphore implemented the replace-add way: P provisionally
/// decrements and retreats if the result went negative.
template <typename Instrument = analysis::DefaultInstrument>
class BasicFaaSemaphore {
 public:
  explicit BasicFaaSemaphore(std::int64_t initial) : value_(initial) {}

  void p() {
    unsigned spins = 0;
    for (;;) {
      if (value_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
        Instrument::acquire(this);
        return;
      }
      value_.fetch_add(1, std::memory_order_acq_rel);  // retreat
      while (value_.load(std::memory_order_acquire) <= 0) {
        if (++spins > 64) std::this_thread::yield();
      }
    }
  }

  [[nodiscard]] bool try_p() {
    if (value_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      Instrument::acquire(this);
      return true;
    }
    value_.fetch_add(1, std::memory_order_acq_rel);
    return false;
  }

  void v() {
    Instrument::release(this);
    value_.fetch_add(1, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> value_;
};

using FaaSemaphore = BasicFaaSemaphore<>;

}  // namespace krs::runtime
