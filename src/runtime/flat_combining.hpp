// Flat combining: the publication-list rival to the combining tree.
//
// The paper's tree turns n contended RMWs into O(lg n) local handshakes —
// the right asymptotics for large n. But each handshake is a CAS-mediated
// state-machine transition on its own cache line, so for SMALL n the tree
// pays lg n coherence misses per operation where a single serialization
// point would pay ~1. Flat combining (Hendler–Incze–Shavit–Tzafrir's
// structure, applied here to the §3/§5 fetch-and-θ mapping families) is
// that single point done right:
//
//  * every thread owns a cache-line-padded PUBLICATION SLOT; to operate it
//    writes its encoded core::AnyRmw mapping into the slot and
//    release-publishes it — one line transfer, no CAS;
//  * ONE thread at a time is the COMBINER, elected by a try-lock on a
//    single word (never spun on while held — losers go back to watching
//    their own slot);
//  * the combiner scans the slots and serves every pending mapping in one
//    BATCH: it reads the value once, applies the mappings in slot order
//    while handing each op the running prior — exactly the §3
//    decombination chain ⟨id2, f(val)⟩, computed at one site instead of
//    down a tree path — and writes the value back once;
//  * after a bounded number of scan passes the combiner releases the lock
//    (HANDOFF), so no thread serves others forever and a continuously
//    loaded cell rotates its combiner.
//
// The shared-memory traffic therefore concentrates on the publication
// lines (owner↔combiner, pairwise) instead of the value word (combiner
// only) — the inversion of the §1 hot spot that tools/krs_profile's flat
// run demonstrates. Waiting is local spinning on the thread's own slot,
// paced by the WaitPolicy seam (runtime/wait_policy.hpp): SpinYieldWait
// reproduces the historical ExpBackoff schedule, FutexWait parks waiters
// on their own slot word (the combiner wakes them when the reply lands,
// with bounded park timeouts covering the publish-after-scan race).
//
// FlatCombiningBackend wraps the combiner behind the RmwBackend concept,
// making it the FOURTH substrate (after atomic / combining-tree / sim):
// every §6 algorithm runs over it unchanged. compare_exchange is not a
// tractable mapping, so it serializes under the combiner lock
// (update_at_combiner), linearized against every batched operation — the
// same escape hatch the tree's update_at_root provides.
//
// See docs/PERFORMANCE.md for the measured flat-vs-tree crossover and
// when to pick which.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "core/types.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"

namespace krs::runtime {

/// Combiner-side telemetry. `ops` counts completed published operations;
/// `combined` the subset served by ANOTHER thread's pass (the flat-
/// combining win: those threads never touched the value word); `takeovers`
/// successful combiner elections; `passes` publication-list scans;
/// `handoffs` lock releases forced by the pass cap while work was still
/// pending (the anti-starvation path); `serialized_updates` the
/// update_at_combiner escape-hatch calls.
struct FlatCombinerStats {
  std::uint64_t ops = 0;
  std::uint64_t combined = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t passes = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t serialized_updates = 0;

  /// Fraction of operations a peer combiner absorbed (0 when nothing ran).
  [[nodiscard]] double combined_fraction() const {
    return ops > 0
               ? static_cast<double>(combined) / static_cast<double>(ops)
               : 0.0;
  }
};

template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class FlatCombiner {
 public:
  using value_type = core::Word;

  static constexpr unsigned kDefaultMaxPasses = 8;

  /// `slots`: publication-record count, ≥ 2 — any value, no power-of-two
  /// constraint (there is no heap layout here). Threads may alias onto one
  /// slot (ordinal mod slots, like the tree); the claim CAS serializes
  /// them, costing waiting, never correctness.
  ///
  /// `max_passes`: scan passes one combiner may run before it must release
  /// the lock. 1 = serve one batch and hand off immediately; larger values
  /// amortize the lock word better under sustained load.
  explicit FlatCombiner(unsigned slots, core::Word initial = 0,
                        unsigned max_passes = kDefaultMaxPasses)
      : nslots_(slots < 2 ? 2 : slots),
        max_passes_(max_passes < 1 ? 1 : max_passes),
        value_(initial),
        slots_(nslots_) {
    served_.reserve(nslots_);
  }

  FlatCombiner(const FlatCombiner&) = delete;
  FlatCombiner& operator=(const FlatCombiner&) = delete;

  /// Atomically value ← f(value), returning the prior value. Publishes
  /// into `slot` (mod slots()), then either a running combiner serves the
  /// op or this thread elects itself and serves the whole publication
  /// list, its own op included.
  core::Word fetch_rmw(unsigned slot, const core::AnyRmw& f) {
    Instrument::acquire(this);
    Slot& s = claim(slot % nslots_);
    s.op = f;
    Instrument::shared_store(&s.seq, KRS_SITE);
    s.seq.store(kPending, std::memory_order_release);

    bool self_served = false;
    Policy pol;
    for (;;) {
      if (s.seq.load(std::memory_order_acquire) == kDone) break;
      if (try_lock()) {
        // A peer's pass may have served this op between the kDone check
        // and winning the lock — that op was combined, not self-served,
        // so skip the tenure and keep combined_fraction() honest.
        if (s.seq.load(std::memory_order_acquire) == kDone) {
          unlock();
          break;
        }
        combine(&s);
        unlock();
        if constexpr (Policy::kParks) wake_pending();
        self_served = true;
        break;
      }
      // Local wait on our own slot word: a combiner flipping it to kDone
      // wakes a parked waiter; the bounded park timeout re-arms the
      // try_lock election if a handoff left the list unserved.
      pol.wait_while_equal(s.seq, kPending);
    }
    KRS_ASSERT(s.seq.load(std::memory_order_acquire) == kDone);
    const core::Word prior = s.result;
    s.seq.store(kIdle, std::memory_order_release);
    if constexpr (Policy::kParks) Policy::notify_all(s.seq);
    ops_.fetch_add(1, std::memory_order_relaxed);
    if (!self_served) combined_.fetch_add(1, std::memory_order_relaxed);
    Instrument::release(this);
    return prior;
  }

  /// Serialized escape hatch for updates that are NOT tractable mappings
  /// (compare-and-swap): applies `f` under the combiner lock and returns
  /// the prior value. Linearizes with every batched operation, combines
  /// with none — the exact analogue of the tree's update_at_root.
  template <std::invocable<core::Word> F>
  core::Word update_at_combiner(F&& f) {
    Instrument::acquire(this);
    Instrument::contended_rmw(&value_, KRS_SITE);
    Policy pol;
    while (!try_lock()) pol.wait_while_equal(lock_, 1);
    const core::Word prior = value_.load(std::memory_order_relaxed);
    value_.store(std::forward<F>(f)(prior), std::memory_order_release);
    bump(serialized_updates_);  // under the lock: writers serialized
    unlock();
    if constexpr (Policy::kParks) wake_pending();
    Instrument::release(this);
    return prior;
  }

  /// Atomic snapshot of the current value: the value word is a single
  /// atomic updated only under the combiner lock, so a bare acquire load
  /// is coherent — no lock, no publication.
  [[nodiscard]] core::Word read() const {
    Instrument::shared_load(&value_, KRS_SITE);
    return value_.load(std::memory_order_acquire);
  }

  [[nodiscard]] unsigned slots() const noexcept { return nslots_; }
  [[nodiscard]] unsigned max_passes() const noexcept { return max_passes_; }

  /// Address of the value word — what the Instrument policy's
  /// contended_rmw hook reports for combiner traffic, so a profiler caller
  /// (tools/krs_profile) can map "the hot line" back to this combiner.
  [[nodiscard]] const void* value_address() const noexcept { return &value_; }

  /// Address of one publication slot's line, for the same mapping.
  [[nodiscard]] const void* slot_address(unsigned slot) const {
    KRS_EXPECTS(slot < nslots_);
    return &slots_[slot].seq;
  }

  /// Relaxed snapshot; quiesce for exact accounting (then
  /// ops == combined + self-served holds exactly).
  [[nodiscard]] FlatCombinerStats stats() const {
    FlatCombinerStats st;
    st.ops = ops_.load(std::memory_order_relaxed);
    st.combined = combined_.load(std::memory_order_relaxed);
    st.takeovers = takeovers_.load(std::memory_order_relaxed);
    st.passes = passes_.load(std::memory_order_relaxed);
    st.handoffs = handoffs_.load(std::memory_order_relaxed);
    st.serialized_updates =
        serialized_updates_.load(std::memory_order_relaxed);
    return st;
  }

  // ---- deterministic batch surface ------------------------------------------

  /// One operation of a single-caller wave (mirrors the tree's surface).
  struct WaveOp {
    unsigned slot;
    core::AnyRmw op;
  };

  /// Drive one simultaneous round from ONE caller: publish every wave[i],
  /// run combining passes until all are served, pick the replies up in
  /// wave order. Slots within a wave must be distinct; the caller must be
  /// the only thread using the combiner. Counter deltas after a wave
  /// sequence are a pure function of that sequence — the deterministic
  /// measurement surface tools/krs_profile drives.
  ///
  /// `on_op(i)` fires before each of wave[i]'s publication and pickup
  /// traffic; the combining pass itself fires on_op(0) first — the wave's
  /// first op models the thread that won the election.
  std::vector<core::Word> run_wave(
      const std::vector<WaveOp>& wave,
      const std::function<void(std::size_t)>& on_op = {}) {
    KRS_EXPECTS(wave.size() <= nslots_);
    std::vector<bool> seen(nslots_, false);
    for (const WaveOp& o : wave) {
      KRS_EXPECTS(o.slot < nslots_ && !seen[o.slot] &&
                  "wave slots must be distinct");
      seen[o.slot] = true;
    }
    Instrument::acquire(this);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (on_op) on_op(i);
      Slot& s = claim(wave[i].slot);
      s.op = wave[i].op;
      Instrument::shared_store(&s.seq, KRS_SITE);
      s.seq.store(kPending, std::memory_order_release);
    }
    if (!wave.empty()) {
      if (on_op) on_op(0);
      const bool locked = try_lock();
      KRS_ASSERT(locked && "run_wave requires an otherwise idle combiner");
      combine(nullptr);
      unlock();
    }
    std::vector<core::Word> priors(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (on_op) on_op(i);
      Slot& s = slots_[wave[i].slot];
      KRS_ASSERT(s.seq.load(std::memory_order_acquire) == kDone);
      priors[i] = s.result;
      s.seq.store(kIdle, std::memory_order_release);
      ops_.fetch_add(1, std::memory_order_relaxed);
    }
    Instrument::release(this);
    return priors;
  }

 private:
  friend struct FlatCombinerTestPeer;

  // Slot sequence states. Idle → Claimed is the aliased-thread arbitration
  // CAS; Claimed → Pending is the owner's release-publish; Pending → Done
  // is the combiner's release-reply; Done → Idle is the owner's pickup.
  enum Seq : std::uint32_t {
    kIdle = 0,
    kClaimed = 1,
    kPending = 2,
    kDone = 3,
  };

  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint32_t> seq{kIdle};
    core::AnyRmw op{};
    core::Word result = 0;
  };

  Slot& claim(unsigned idx) {
    Slot& s = slots_[idx];
    Policy pol;
    for (;;) {
      std::uint32_t expect = kIdle;
      if (s.seq.compare_exchange_weak(expect, kClaimed,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return s;
      }
      if (expect != kIdle) {
        // Another thread owns the slot: wait on the value we observed —
        // the owner's pickup (kDone→kIdle) notifies parked claimants.
        pol.wait_while_equal(s.seq, expect);
      } else {
        pol.pause();  // spurious weak-CAS failure
      }
    }
  }

  [[nodiscard]] bool try_lock() {
    std::uint32_t expect = 0;
    return lock_.compare_exchange_strong(expect, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    lock_.store(0, std::memory_order_release);
    if constexpr (Policy::kParks) Policy::notify_all(lock_);
  }

  /// Parking policies only: after releasing the lock, wake the owners of
  /// any slots still pending (a pass-cap handoff can leave published ops
  /// unserved) so a parked owner re-arms its combiner election promptly
  /// instead of riding out its park timeout.
  void wake_pending() {
    for (Slot& s : slots_) {
      if (s.seq.load(std::memory_order_acquire) == kPending) {
        Policy::notify_all(s.seq);
      }
    }
  }

  /// Increment for counters mutated ONLY while the combiner lock is held:
  /// writers are mutually excluded, so a relaxed load+store (no RMW, no
  /// lock prefix) counts exactly; stats() snapshots race benignly.
  static void bump(std::atomic<std::uint64_t>& counter) {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  /// One publication-list scan under the lock: batch-apply every pending
  /// mapping in slot order against a single read-modify-write of the
  /// value word. Each served op's reply is the running prior — the §3
  /// decombination chain evaluated at one site.
  ///
  /// PEER replies publish in TWO phases: first every result is computed
  /// and the batched value release-stored, and only then the peers' slots
  /// flip to kDone. A waiter that observes its reply therefore also
  /// observes a value_ that already includes its own op — the same order
  /// the tree enforces by applying at the root before distributing down —
  /// so a read() after a completed fetch_rmw can never miss that op (the
  /// rw-lock's reader-increment-then-writer-check handshake depends on
  /// exactly this). The combiner's OWN slot (`own`, may be null) is the
  /// one exception: its owner is this very thread, so program order
  /// already sequences the value store before any subsequent read() and
  /// the reply can flip inline — keeping the uncontended self-serve pass
  /// at one sweep.
  unsigned serve_pass(const Slot* own) {
    Instrument::contended_rmw(&value_, KRS_SITE);
    core::Word v = value_.load(std::memory_order_relaxed);
    unsigned served = 0;
    served_.clear();
    for (unsigned i = 0; i < nslots_; ++i) {
      Slot& s = slots_[i];
      Instrument::shared_load(&s.seq, KRS_SITE);
      if (s.seq.load(std::memory_order_acquire) != kPending) continue;
      s.result = v;
      v = s.op.apply(v);
      ++served;
      if (&s == own) {
        Instrument::shared_store(&s.seq, KRS_SITE);
        s.seq.store(kDone, std::memory_order_release);
      } else {
        served_.push_back(i);
      }
    }
    if (served != 0) {
      value_.store(v, std::memory_order_release);
      for (const unsigned i : served_) {
        Slot& s = slots_[i];
        Instrument::shared_store(&s.seq, KRS_SITE);
        s.seq.store(kDone, std::memory_order_release);
        if constexpr (Policy::kParks) Policy::notify_all(s.seq);
      }
    }
    bump(passes_);
    return served;
  }

  /// The combiner's tenure, lock held: scan until either nothing is
  /// pending or the pass cap forces a handoff. `own` (may be null) is the
  /// caller's slot: the first pass always serves it, so a combiner never
  /// exits with its own op unserved.
  void combine(const Slot* own) {
    bump(takeovers_);
    unsigned passes = 0;
    for (;;) {
      const unsigned served = serve_pass(own);
      ++passes;
      if (passes >= max_passes_ || served == 0) break;
    }
    KRS_ASSERT(own == nullptr ||
               own->seq.load(std::memory_order_relaxed) == kDone);
    if (passes >= max_passes_) {
      for (const Slot& s : slots_) {
        if (s.seq.load(std::memory_order_relaxed) == kPending) {
          bump(handoffs_);
          break;
        }
      }
    }
  }

  unsigned nslots_;
  unsigned max_passes_;
  alignas(kCacheLine) std::atomic<std::uint32_t> lock_{0};
  alignas(kCacheLine) std::atomic<core::Word> value_;
  std::vector<Slot> slots_;
  std::vector<unsigned> served_;  ///< serve_pass scratch; combiner lock only

  // Telemetry (relaxed; snapshots race with operations by design).
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> combined_{0};
  std::atomic<std::uint64_t> takeovers_{0};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> handoffs_{0};
  std::atomic<std::uint64_t> serialized_updates_{0};
};

/// The flat-combining RMW backend: every cell is one FlatCombiner, so
/// concurrent operations on a hot word batch at a single combiner instead
/// of serializing on the coherence protocol (small-n regime) or paying the
/// tree's lg n handshakes (large-n regime). Same mapping-family table as
/// CombiningBackend:
///
///   fetch_add/or/and/xor → core::FetchTheta<…>    (§5.2)
///   exchange             → core::LssOp::swap       (§5.1)
///   store                → core::LssOp::store      (batches; constant map)
///   fetch_rmw(m)         → m verbatim              (any core::AnyRmw —
///                                                   batching needs no
///                                                   compose, so mixed
///                                                   families never decline)
///   compare_exchange     → update_at_combiner      (serialized, §5)
///   load                 → combiner.read()         (atomic snapshot)
template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicFlatCombiningBackend {
 public:
  /// `width`: publication slots per cell, ≥ 2 — no power-of-two rounding
  /// (a flat list has no heap layout), so odd core counts from CpuTopology
  /// size exactly. Thread→slot is thread_ordinal() mod width.
  explicit BasicFlatCombiningBackend(unsigned width = kDefaultWidth,
                                     unsigned max_passes = 0)
      : width_(std::max(2u, width)), max_passes_(max_passes) {}

  struct Cell {
    Cell(const BasicFlatCombiningBackend& b, Word initial)
        : fc(b.width_, initial,
             b.max_passes_ == 0
                 ? FlatCombiner<Instrument, Policy>::kDefaultMaxPasses
                 : b.max_passes_) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    FlatCombiner<Instrument, Policy> fc;
  };

  Word fetch_add(Cell& c, Word v) const {
    return c.fc.fetch_rmw(slot(), core::AnyRmw(core::FetchAdd(v)));
  }
  Word fetch_or(Cell& c, Word v) const {
    return c.fc.fetch_rmw(slot(), core::AnyRmw(core::FetchOr(v)));
  }
  Word fetch_and(Cell& c, Word v) const {
    return c.fc.fetch_rmw(slot(), core::AnyRmw(core::FetchAnd(v)));
  }
  Word fetch_xor(Cell& c, Word v) const {
    return c.fc.fetch_rmw(slot(), core::AnyRmw(core::FetchXor(v)));
  }
  Word exchange(Cell& c, Word v) const {
    return c.fc.fetch_rmw(slot(), core::AnyRmw(core::LssOp::swap(v)));
  }

  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    return c.fc.fetch_rmw(slot(), m);
  }

  /// Not a tractable mapping (§5: the update must not branch on the old
  /// value), so it cannot batch; serialized under the combiner lock,
  /// linearized against every batched operation.
  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    bool ok = false;
    const Word want = expected;
    const Word prior = c.fc.update_at_combiner([&](Word old) {
      if (old == want) {
        ok = true;
        return desired;
      }
      return old;
    });
    if (!ok) expected = prior;
    return ok;
  }

  Word load(const Cell& c) const { return c.fc.read(); }

  void store(Cell& c, Word v) const {
    c.fc.fetch_rmw(slot(), core::AnyRmw(core::LssOp::store(v)));
  }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

  [[nodiscard]] FlatCombinerStats cell_stats(const Cell& c) const {
    return c.fc.stats();
  }

  static constexpr unsigned kDefaultWidth = 16;

 private:
  [[nodiscard]] unsigned slot() const noexcept {
    return thread_ordinal() % width_;
  }

  unsigned width_;
  unsigned max_passes_;
};

using FlatCombiningBackend = BasicFlatCombiningBackend<>;

static_assert(RmwBackend<BasicFlatCombiningBackend<analysis::NoInstrument>>);
static_assert(RmwBackend<FlatCombiningBackend>);

}  // namespace krs::runtime
