// The software combining tree with the kernel taken out of the loop: every
// node transition is a CAS on one packed status word, waiting is local
// spinning with bounded exponential backoff, and no mutex or condition
// variable appears anywhere on the operation path.
//
// The tree is built in two layers:
//
//  * MappingCombiningTree<M> — the general §4.2 mechanism. Node slots hold
//    ENCODED MAPPINGS of a semigroup family M (core::CombinableMapping):
//    a second arrival deposits its mapping g, the first folds it in with
//    compose(f, g) on the way up, the root applies the combined mapping,
//    and decombination on the way down answers the second with
//    ⟨id2, f(val)⟩ — the first's accumulated mapping applied to the prior
//    value, exactly the paper's reply rule. Because composition may
//    DECLINE (try_compose → nullopt: Möbius overflow, cross-family
//    core::AnyRmw), a declined second is served individually at the root
//    during the first's distribute phase — §7's "partial combining is
//    always correct" realized in the tree.
//  * LockFreeCombiningTree<T, Op> — the classic fetch-and-θ counter
//    (getAndIncrement generalized to any associative θ), now a thin
//    adapter over MappingCombiningTree with the operand family
//    {θ_a : x ↦ θ(x, a)}; same public surface (CombiningCounter concept)
//    as always.
//
// The blocking tree (combining_tree.hpp) serializes every node transition
// through a std::mutex + condition_variable — each combine handshake costs
// kernel-arbitrated sleep/wake pairs, which is why it loses to the very
// mutex baseline it is meant to beat (bench_combining_tree). This tree
// keeps the same four-phase protocol (precombine / combine / operate /
// distribute) but runs each node as a word-sized state machine in the
// style of Goodman-style combining words: second arrivals deposit their
// mapping in a per-node slot and spin-then-yield until the distributed
// result lands.
//
// Node status word (64 bits):
//
//   [63 ............. 4] [3]    [2..0]
//    generation count     lock   status tag
//
// Tags: Idle, First (a first arrival passed through, climbing),
// FirstLocked (the first came back in its combine phase and closed the
// node against late seconds), SecondPending (a second engaged, mapping in
// flight), SecondReady (mapping deposited), SecondCombined (the first
// inspected the mapping; reply owed — whether composition succeeded or
// declined is a first-owned flag off the status word), Result (reply
// delivered), Root. The lock bit is used only on the root word, as the
// spinlock that serializes the O(P / combine-degree) operations that
// actually reach the root. The generation count increments on every reset
// to Idle, so a stalled CAS from a previous occupancy of the node can
// never succeed against a later one (ABA).
//
// Protocol per operation (slot s, mapping f):
//   1. precombine — climb from the leaf while CAS Idle→First succeeds;
//      CAS First→SecondPending stops the climb (we are the second there);
//      the root always stops the climb.
//   2. combine — re-walk the path: CAS First→FirstLocked passes through
//      (no partner), SecondReady folds the deposited mapping in with
//      compose(first, second) — or records a decline.
//   3. operate — at the root, apply under the root word's lock bit; at a
//      SecondPending node, deposit the combined mapping (store + release
//      tag flip) and spin-then-yield for the Result tag.
//   4. distribute — walk back down: FirstLocked resets to Idle(gen+1);
//      SecondCombined receives result = first_map(prior) — exactly
//      ⟨id2, f(val)⟩ — or, if composition declined, the second's mapping
//      is applied at the root now and the second receives that prior;
//      either way the node flips to Result, the waiting second picks the
//      value up and resets the node.
//
// The Instrument policy publishes the same happens-before edges as the
// blocking tree: an operation acquires the tree's history on entry and
// releases its own on exit, so operations separated in real time are
// ordered for the race detector while overlapping ones stay unordered.
//
// See docs/PERFORMANCE.md for the encoding walkthrough, the backoff
// strategy, and measured crossovers against the blocking tree.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/rmw.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/topology.hpp"
#include "runtime/wait_policy.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

namespace detail {

/// The operand family {θ_a : x ↦ θ(x, a)} of an associative θ, as a
/// combinable mapping: θ_a ∘ θ_b = θ_{θ(a,b)}. This is what lets the
/// operand-style LockFreeCombiningTree<T, Op> ride on the mapping tree.
template <typename T, typename Op>
struct OpMapping {
  using value_type = T;

  T operand{};
  [[no_unique_address]] Op op{};

  [[nodiscard]] T apply(const T& x) const { return op(x, operand); }

  friend OpMapping compose(const OpMapping& f, const OpMapping& g) {
    // compose(f, g)(x) = g(f(x)) = θ(θ(x, fa), ga) = θ(x, θ(fa, ga)).
    return OpMapping{f.op(f.operand, g.operand), f.op};
  }
  friend std::optional<OpMapping> try_compose(const OpMapping& f,
                                              const OpMapping& g) {
    return compose(f, g);
  }
};

}  // namespace detail

/// Partial-combining telemetry (§7): how much of the tree's traffic
/// actually folded on the way up, and how much reached the root. Without
/// the declined count, a mixed-family workload that silently stops
/// combining (every try_compose declining) is indistinguishable from a
/// perfectly-combining one in the value stream — both are correct; only
/// the cost differs.
struct CombiningTreeStats {
  std::uint64_t ops = 0;            ///< root applications + folded seconds
  std::uint64_t folds = 0;          ///< successful try_compose folds
  std::uint64_t declined_folds = 0; ///< cross-family / overflow declines
  std::uint64_t root_applies = 0;   ///< operations served at the root

  /// Fraction of operations absorbed by a fold below the root (§4.2's
  /// win). 0 when nothing ran.
  [[nodiscard]] double combine_rate() const {
    return ops > 0
               ? static_cast<double>(folds) / static_cast<double>(ops)
               : 0.0;
  }
  /// Fraction serialized at the root — 1.0 means combining bought nothing
  /// (the §1 hot-spot regime); (1 - combine_rate) by construction.
  [[nodiscard]] double served_at_root_fraction() const {
    return ops > 0 ? static_cast<double>(root_applies) /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

template <core::CombinableMapping M,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class MappingCombiningTree {
 public:
  using value_type = typename M::value_type;
  using mapping_type = M;

 private:
  using V = value_type;
  static_assert(std::is_trivially_copyable_v<V>,
                "the root cell is a std::atomic<V>");

 public:
  /// `width`: requested slot capacity, rounded up internally to a power of
  /// two ≥ 2 (the heap layout needs it; callers sized to odd core counts —
  /// e.g. from CpuTopology — need not care). Thread slots are
  /// 0..width()-1, the ROUNDED range; two slots share each leaf.
  explicit MappingCombiningTree(unsigned width, V initial = V{})
      : width_(rounded_width(width)), root_(initial), nodes_(width_) {
    nodes_[kRootIndex].status.store(kRootWord, std::memory_order_relaxed);
  }

  /// Topology-aware layout: `order` permutes caller-visible slots into
  /// internal slots before the slot→leaf map, so adjacent INTERNAL slots —
  /// and therefore shared leaves — are chosen by the SlotMap (identity
  /// reproduces the historical pairing; CpuTopology groups cache-cluster
  /// siblings). Width is ceil_pow2(max(2, order.width())); slots beyond
  /// order.width() map to themselves, keeping the whole table a
  /// permutation of 0..width()-1.
  MappingCombiningTree(const SlotMap& order, V initial)
      : width_(rounded_width(order.width())),
        root_(initial),
        nodes_(width_),
        order_(width_) {
    nodes_[kRootIndex].status.store(kRootWord, std::memory_order_relaxed);
    for (unsigned s = 0; s < width_; ++s) {
      order_[s] = s < order.width() ? order(s) : s;
    }
    bool identity = true;
    for (unsigned s = 0; s < width_; ++s) identity &= order_[s] == s;
    if (identity) order_.clear();  // skip the indirection on the hot path
  }

  MappingCombiningTree(const MappingCombiningTree&) = delete;
  MappingCombiningTree& operator=(const MappingCombiningTree&) = delete;

  /// Atomically value ← f(value), returning the prior value, combining
  /// with concurrent callers on the way up. `slot` must be < width; a slot
  /// may be shared by threads, but concurrency above two threads per leaf
  /// degrades to local waiting at that leaf.
  V fetch_rmw(unsigned slot, M f) {
    KRS_EXPECTS(slot < width_);
    Instrument::acquire(this);
    const unsigned my_leaf = leaf_of(slot);  // heap index

    // Phase 1: precombine — climb while we are the first to arrive.
    unsigned node = my_leaf;
    while (precombine(node)) node /= 2;
    const unsigned stop = node;

    // Phase 2: combine — gather mappings deposited by second arrivals.
    unsigned path[kMaxDepth];
    unsigned depth = 0;
    M combined = std::move(f);
    for (node = my_leaf; node != stop; node /= 2) {
      combined = combine(node, std::move(combined));
      path[depth++] = node;
    }

    // Phase 3: operate — at the root, apply; at a SecondPending node,
    // deposit and spin for the distributed result.
    const V prior = stop == kRootIndex ? apply_at_root(combined)
                                       : deposit_and_await(stop, combined);

    // Phase 4: distribute results back down our path.
    for (unsigned i = depth; i-- > 0;) distribute(path[i], prior);
    Instrument::release(this);
    return prior;
  }

  /// Serialized escape hatch for updates that are NOT tractable mappings
  /// (compare-and-swap, arbitrary θ): applies `f` to the root value under
  /// the root lock bit and returns the prior value. Linearizes with every
  /// combined operation, but combines with none.
  template <std::invocable<V> F>
  V update_at_root(F&& f) {
    Instrument::acquire(this);
    Instrument::contended_rmw(&root_, KRS_SITE);
    lock_root();
    const V prior = root_.load(std::memory_order_relaxed);
    root_.store(std::forward<F>(f)(prior), std::memory_order_release);
    unlock_root();
    root_applies_.fetch_add(1, std::memory_order_relaxed);
    Instrument::release(this);
    return prior;
  }

  /// Atomic snapshot of the current value. The root cell is a single
  /// atomic word updated only under the root lock bit, so a bare acquire
  /// load is a coherent (and per-reader monotone) snapshot — no lock.
  [[nodiscard]] V read() const {
    Instrument::shared_load(&root_, KRS_SITE);
    return root_.load(std::memory_order_acquire);
  }

  /// Quiescent-only read, kept for CombiningCounter interface parity; on
  /// this tree it is the same relaxed-cost load as read().
  [[nodiscard]] V read_unsynchronized() const {
    return root_.load(std::memory_order_acquire);
  }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

  /// Address of the root value word — the address the Instrument policy's
  /// contended_rmw hook reports for root traffic. Lets a profiler caller
  /// (tools/krs_profile) map "the hot line" back to this tree.
  [[nodiscard]] const void* root_address() const noexcept { return &root_; }

  /// Aggregate fold/decline/root counters across all nodes. Counters are
  /// relaxed, so a concurrent snapshot is approximate; quiesce first for
  /// exact accounting (then ops == root_applies + folds holds exactly:
  /// every operation either folded into a partner below the root or was
  /// applied at the root — including declined seconds, which distribute()
  /// serves with their own root application).
  [[nodiscard]] CombiningTreeStats stats() const {
    CombiningTreeStats s;
    s.root_applies = root_applies_.load(std::memory_order_relaxed);
    for (const Node& nd : nodes_) {
      s.folds += nd.folds.load(std::memory_order_relaxed);
      s.declined_folds += nd.declined_folds.load(std::memory_order_relaxed);
    }
    s.ops = s.root_applies + s.folds;
    return s;
  }

  /// Declined try_compose folds at one node (heap index), for tests and
  /// per-node hot-spot attribution.
  [[nodiscard]] std::uint64_t declined_folds_at(unsigned node) const {
    KRS_EXPECTS(node < nodes_.size());
    return nodes_[node].declined_folds.load(std::memory_order_relaxed);
  }

  // ---- deterministic batch surface ------------------------------------------

  /// One operation of a single-caller wave: `slot` plays the role a thread
  /// slot plays on the threaded path. Slots within one wave must be
  /// DISTINCT — the wave models one simultaneous round of at most `width`
  /// threads, one per slot.
  struct WaveOp {
    unsigned slot;
    M op;
  };

  /// Drive every wave[i] through the full four-phase protocol from ONE
  /// caller, interleaved the way a simultaneous round would run, and
  /// return the priors in wave order. The caller must be the only thread
  /// using the tree. Fold/root-apply counts after a wave sequence are a
  /// pure function of that sequence — this is the deterministic
  /// measurement surface the contention profiler drives (the threaded
  /// path's combine rate depends on the host scheduler, useless on a
  /// 1-CPU CI box).
  ///
  /// `on_op(i)` fires each time processing switches to wave[i], BEFORE
  /// any of its node/root traffic — the hook the profiler uses to retag
  /// the virtual thread id per operation (analysis::set_profile_tid).
  ///
  /// Scheduling: precombine climbs run in wave order; then each
  /// operation's combine/operate phase runs in DESCENDING stop-node depth
  /// order, so every second has deposited its mapping before its first
  /// combines through that node (the second's stop is strictly deeper
  /// than its first's); finally pending seconds drain as their replies
  /// land — a dependency forest, so the drain terminates.
  std::vector<V> run_wave(const std::vector<WaveOp>& wave,
                          const std::function<void(std::size_t)>& on_op = {}) {
    KRS_EXPECTS(wave.size() <= width_);
    std::vector<bool> seen(width_, false);
    for (const WaveOp& o : wave) {
      KRS_EXPECTS(o.slot < width_ && !seen[o.slot] &&
                  "wave slots must be distinct");
      seen[o.slot] = true;
    }

    struct Flight {
      unsigned stop = 0;
      unsigned depth = 0;                 // of `stop`: root = 0
      unsigned path[kMaxDepth];           // leaf..below stop
      unsigned path_len = 0;
      M combined{};
      V prior{};
      bool done = false;
    };
    std::vector<Flight> fl(wave.size());

    // Phase 1 for everyone: claim the tree positions.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (on_op) on_op(i);
      const unsigned my_leaf = leaf_of(wave[i].slot);
      unsigned node = my_leaf;
      while (precombine(node)) node /= 2;
      fl[i].stop = node;
      fl[i].depth = util::log2_floor(node);
      for (unsigned n = my_leaf; n != node; n /= 2) {
        fl[i].path[fl[i].path_len++] = n;
      }
      fl[i].combined = wave[i].op;
    }

    // Phases 2+3, deepest stops first: seconds deposit before their
    // firsts combine through them.
    std::vector<std::size_t> order(wave.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return fl[a].depth > fl[b].depth;
                     });
    for (const std::size_t i : order) {
      if (on_op) on_op(i);
      Flight& f = fl[i];
      for (unsigned d = 0; d < f.path_len; ++d) {
        f.combined = combine(f.path[d], std::move(f.combined));
      }
      if (f.stop == kRootIndex) {
        f.prior = apply_at_root(f.combined);
        for (unsigned d = f.path_len; d-- > 0;) distribute(f.path[d], f.prior);
        f.done = true;
      } else {
        plant_second(f.stop, std::move(f.combined));
      }
    }

    // Drain the pending seconds as their firsts' distributes cascade.
    for (;;) {
      bool progressed = false;
      bool pending = false;
      for (const std::size_t i : order) {
        Flight& f = fl[i];
        if (f.done) continue;
        if (!result_ready(f.stop)) {
          pending = true;
          continue;
        }
        if (on_op) on_op(i);
        f.prior = take_result(f.stop);
        for (unsigned d = f.path_len; d-- > 0;) distribute(f.path[d], f.prior);
        f.done = true;
        progressed = true;
      }
      if (!pending) break;
      KRS_ASSERT(progressed && "wave drain stalled");
    }

    std::vector<V> priors(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) priors[i] = fl[i].prior;
    return priors;
  }

 private:
  friend struct CombiningTreeTestPeer;

  static constexpr unsigned rounded_width(unsigned width) {
    return static_cast<unsigned>(util::ceil_pow2(std::max(2u, width)));
  }

  /// Slot → leaf heap index, through the topology permutation when one was
  /// given (empty order_ = identity, the common case).
  [[nodiscard]] unsigned leaf_of(unsigned slot) const {
    const unsigned internal = order_.empty() ? slot : order_[slot];
    return width_ / 2 + internal / 2;
  }

  // ---- status word encoding -------------------------------------------------
  enum Tag : std::uint64_t {
    kIdle = 0,
    kFirst = 1,
    kFirstLocked = 2,
    kSecondPending = 3,
    kSecondReady = 4,
    kSecondCombined = 5,
    kResult = 6,
    kRoot = 7,
  };
  static constexpr std::uint64_t kTagMask = 0x7;
  static constexpr std::uint64_t kLockBit = 0x8;
  static constexpr unsigned kGenShift = 4;
  static constexpr unsigned kRootIndex = 1;
  static constexpr std::uint64_t kRootWord = kRoot;
  static constexpr unsigned kMaxDepth = 64;

  static constexpr Tag tag_of(std::uint64_t w) noexcept {
    return static_cast<Tag>(w & kTagMask);
  }
  static constexpr std::uint64_t gen_of(std::uint64_t w) noexcept {
    return w >> kGenShift;
  }
  /// Same generation, new tag.
  static constexpr std::uint64_t retag(std::uint64_t w, Tag t) noexcept {
    return (w & ~(kTagMask | kLockBit)) | t;
  }
  static constexpr std::uint64_t idle_next_gen(std::uint64_t w) noexcept {
    return (gen_of(w) + 1) << kGenShift | kIdle;
  }

  struct alignas(kCacheLine) Node {
    std::atomic<std::uint64_t> status{kIdle};
    // Mapping/reply slots on their own line: the handshake spins on
    // `status` above, the encoded mappings move below. `first_map` and
    // `declined` are written by the first in its combine phase and read
    // back by the same thread in distribute — ownership is handed by the
    // status word, never contended.
    alignas(kCacheLine) M first_map{};
    M second_map{};
    V result{};
    bool declined = false;
    // Telemetry (relaxed; read by stats() snapshots): try_compose
    // outcomes at this node. Incremented only by the first in its combine
    // phase, which owns the node then — atomics because successive
    // occupancies are different threads and snapshots race by design.
    std::atomic<std::uint64_t> folds{0};
    std::atomic<std::uint64_t> declined_folds{0};
  };

  // ---- phase 1 --------------------------------------------------------------

  /// True: keep climbing (we were first); false: stop here (second or root).
  bool precombine(unsigned n) {
    Node& nd = nodes_[n];
    // One wait EPISODE per observed status word: while the node finishes
    // a previous occupancy the backoff deepens, but any status change
    // (new tag or generation) re-arms the schedule — otherwise a thread
    // that waited out one occupancy carries a saturated backoff into the
    // next, independent wait and oversleeps it.
    Policy pol;
    EpisodeWait<Policy> ep(pol);
    for (;;) {
      std::uint64_t w = nd.status.load(std::memory_order_acquire);
      switch (tag_of(w)) {
        case kRoot:
          return false;
        case kIdle:
          Instrument::contended_rmw(&nd.status, KRS_SITE);
          if (nd.status.compare_exchange_weak(w, retag(w, kFirst),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return true;
          }
          break;
        case kFirst:
          // A first arrival is already climbing through here; engage as
          // the second and stop the climb.
          Instrument::contended_rmw(&nd.status, KRS_SITE);
          if (nd.status.compare_exchange_weak(w, retag(w, kSecondPending),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return false;
          }
          break;
        default:
          // Node still finishing a previous operation; wait locally.
          ep.observe_and_pause(w);
      }
    }
  }

  // ---- phase 2 --------------------------------------------------------------

  /// Called by the FIRST thread on its way up: fold in the second's
  /// mapping if one arrived (or record that composition declined),
  /// closing the node against late seconds.
  M combine(unsigned n, M c) {
    Node& nd = nodes_[n];
    Policy pol;
    for (;;) {
      std::uint64_t w = nd.status.load(std::memory_order_acquire);
      switch (tag_of(w)) {
        case kFirst:
          if (nd.status.compare_exchange_weak(w, retag(w, kFirstLocked),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return c;  // nobody combined here
          }
          break;
        case kSecondPending:
          pol.pause();  // second engaged; its mapping is still in flight
          break;
        case kSecondReady: {
          // The acquire load above synchronized with the deposit. Record
          // the mapping that arrived at this node for the distribute
          // phase, then fold: first's operations precede second's, so the
          // forwarded mapping is compose(first, second). A declined
          // composition (nullopt) leaves the second's mapping parked in
          // the node; distribute() will serve it at the root — partial
          // combining, always correct (§7).
          auto folded = try_compose(c, nd.second_map);
          nd.first_map = std::move(c);
          nd.declined = !folded.has_value();
          if (nd.declined) {
            nd.declined_folds.fetch_add(1, std::memory_order_relaxed);
          } else {
            nd.folds.fetch_add(1, std::memory_order_relaxed);
          }
          nd.status.store(retag(w, kSecondCombined),
                          std::memory_order_relaxed);
          if (folded) return *std::move(folded);
          return nd.first_map;
        }
        default:
          KRS_ASSERT(false && "unexpected combine status");
          return c;
      }
    }
  }

  // ---- phase 3 --------------------------------------------------------------

  /// Root case: apply the combined mapping under the root lock bit.
  V apply_at_root(const M& c) {
    Instrument::contended_rmw(&root_, KRS_SITE);
    lock_root();
    const V prior = root_.load(std::memory_order_relaxed);
    root_.store(c.apply(prior), std::memory_order_release);
    unlock_root();
    root_applies_.fetch_add(1, std::memory_order_relaxed);
    return prior;
  }

  /// Second case, step 1: deposit the combined mapping for the first to
  /// fold on its way up.
  void plant_second(unsigned n, M c) {
    Node& nd = nodes_[n];
    const std::uint64_t w = nd.status.load(std::memory_order_relaxed);
    KRS_ASSERT(tag_of(w) == kSecondPending);
    nd.second_map = std::move(c);
    nd.status.store(retag(w, kSecondReady), std::memory_order_release);
  }

  /// Second case, step 2: has the first distributed our reply yet?
  [[nodiscard]] bool result_ready(unsigned n) const {
    return tag_of(nodes_[n].status.load(std::memory_order_acquire)) ==
           kResult;
  }

  /// Second case, step 3: pick the reply up and release the node for the
  /// next pair; the new generation kills ABA.
  V take_result(unsigned n) {
    Node& nd = nodes_[n];
    const std::uint64_t w = nd.status.load(std::memory_order_acquire);
    KRS_ASSERT(tag_of(w) == kResult);
    V r = nd.result;
    nd.status.store(idle_next_gen(w), std::memory_order_release);
    return r;
  }

  /// Second case on the threaded path: deposit, then spin-then-yield on
  /// this node's status word until the first distributes our reply.
  V deposit_and_await(unsigned n, M c) {
    plant_second(n, std::move(c));
    // Blind rounds: the status word is 64-bit (generation-counted), not
    // addressable by a parking policy's 32-bit wait word.
    Policy pol;
    while (!result_ready(n)) pol.pause();
    return take_result(n);
  }

  // ---- phase 4 --------------------------------------------------------------

  /// Called by the FIRST thread on its way down with the prior value of
  /// everything combined below this node's subtree position.
  void distribute(unsigned n, const V& prior) {
    Node& nd = nodes_[n];
    const std::uint64_t w = nd.status.load(std::memory_order_relaxed);
    switch (tag_of(w)) {
      case kFirstLocked:
        // Nobody combined here: release the node.
        nd.status.store(idle_next_gen(w), std::memory_order_release);
        break;
      case kSecondCombined:
        if (nd.declined) {
          // Composition declined at this node: the second's mapping never
          // traveled with ours. Serve it individually at the root now —
          // it serializes immediately after everything we combined.
          nd.result = apply_at_root(nd.second_map);
        } else {
          // The second's reply: the first's accumulated mapping applied
          // to the prior — the decombination rule ⟨id2, f(val)⟩.
          nd.result = nd.first_map.apply(prior);
        }
        nd.status.store(retag(w, kResult), std::memory_order_release);
        break;
      default:
        KRS_ASSERT(false && "unexpected distribute status");
    }
  }

  // ---- root lock bit --------------------------------------------------------

  void lock_root() {
    Node& rt = nodes_[kRootIndex];
    // Episode per observed root word: each time the lock bit changes
    // hands the wait re-arms, so a loser of many elections does not carry
    // a saturated backoff into a freshly-uncontended acquire.
    Policy pol;
    EpisodeWait<Policy> ep(pol);
    for (;;) {
      std::uint64_t w = rt.status.load(std::memory_order_relaxed);
      if ((w & kLockBit) == 0 &&
          rt.status.compare_exchange_weak(w, w | kLockBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return;
      }
      ep.observe_and_pause(w);
    }
  }

  void unlock_root() {
    nodes_[kRootIndex].status.store(kRootWord, std::memory_order_release);
  }

  unsigned width_;
  alignas(kCacheLine) std::atomic<V> root_;
  std::atomic<std::uint64_t> root_applies_{0};
  std::vector<Node> nodes_;  // heap layout, nodes_[1..width-1]
  std::vector<unsigned> order_;  // topology slot permutation; empty = identity
};

/// The operand-style combining counter: atomically result ← result ⊕ v.
/// An adapter over MappingCombiningTree with the {⊕_v} operand family;
/// satisfies the CombiningCounter concept alongside BlockingCombiningTree.
template <typename T, typename Op = std::plus<T>,
          typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class LockFreeCombiningTree {
 public:
  using value_type = T;

  /// `width`: requested slot capacity, rounded up to a power of two ≥ 2
  /// like the underlying mapping tree. Thread slots are 0..width()-1; two
  /// slots share each leaf.
  explicit LockFreeCombiningTree(unsigned width, T initial = T{},
                                 Op op = Op{})
      : op_(op), tree_(width, initial) {}

  LockFreeCombiningTree(const LockFreeCombiningTree&) = delete;
  LockFreeCombiningTree& operator=(const LockFreeCombiningTree&) = delete;

  /// Atomically result ← result ⊕ v, returning the prior value, combining
  /// with concurrent callers on the way up. `slot` must be < width and
  /// used by at most one thread at a time.
  T fetch_and_op(unsigned slot, T v) {
    return tree_.fetch_rmw(slot, Mapping{std::move(v), op_});
  }

  /// Atomic snapshot of the current value; safe concurrently with
  /// operations in flight.
  [[nodiscard]] T read() const { return tree_.read(); }

  /// Quiescent-only read, kept for interface parity with the blocking
  /// tree; here it costs the same as read().
  [[nodiscard]] T read_unsynchronized() const {
    return tree_.read_unsynchronized();
  }

  [[nodiscard]] unsigned width() const noexcept { return tree_.width(); }

 private:
  using Mapping = detail::OpMapping<T, Op>;

  [[no_unique_address]] Op op_;
  MappingCombiningTree<Mapping, Instrument, Policy> tree_;
};

}  // namespace krs::runtime
