// The software combining tree with the kernel taken out of the loop: every
// node transition is a CAS on one packed status word, waiting is local
// spinning with bounded exponential backoff, and no mutex or condition
// variable appears anywhere on the operation path.
//
// The blocking tree (combining_tree.hpp) serializes every node transition
// through a std::mutex + condition_variable — each combine handshake costs
// kernel-arbitrated sleep/wake pairs, which is why it loses to the very
// mutex baseline it is meant to beat (bench_combining_tree). This tree
// keeps the same four-phase protocol (precombine / combine / operate /
// distribute) and the same decombination rule ⟨id2, f(val)⟩, but runs each
// node as a word-sized state machine in the style of Goodman-style
// combining words: second arrivals deposit their operand in a per-node
// slot and spin-then-yield until the distributed result lands.
//
// Node status word (64 bits):
//
//   [63 ............. 4] [3]    [2..0]
//    generation count     lock   status tag
//
// Tags: Idle, First (a first arrival passed through, climbing),
// FirstLocked (the first came back in its combine phase and closed the
// node against late seconds), SecondPending (a second engaged, operand in
// flight), SecondReady (operand deposited), SecondCombined (the first
// absorbed the operand; reply owed), Result (reply delivered), Root. The
// lock bit is used only on the root word, as the spinlock that serializes
// the O(P / combine-degree) operations that actually reach the root. The
// generation count increments on every reset to Idle, so a stalled CAS
// from a previous occupancy of the node can never succeed against a later
// one (ABA).
//
// Protocol per operation (slot s, operand v):
//   1. precombine — climb from the leaf while CAS Idle→First succeeds;
//      CAS First→SecondPending stops the climb (we are the second there);
//      the root always stops the climb.
//   2. combine — re-walk the path: CAS First→FirstLocked passes through
//      (no partner), SecondReady folds the deposited operand in
//      (first ⊕ second, the paper's serial order).
//   3. operate — at the root, apply under the root word's lock bit; at a
//      SecondPending node, deposit the combined operand (store + release
//      tag flip) and spin-then-yield for the Result tag.
//   4. distribute — walk back down: FirstLocked resets to Idle(gen+1);
//      SecondCombined receives result = prior ⊕ first_value — exactly
//      ⟨id2, f(val)⟩ — and flips to Result; the waiting second picks it up
//      and resets the node.
//
// The Instrument policy publishes the same happens-before edges as the
// blocking tree: an operation acquires the tree's history on entry and
// releases its own on exit, so operations separated in real time are
// ordered for the race detector while overlapping ones stay unordered.
//
// See docs/PERFORMANCE.md for the encoding walkthrough, the backoff
// strategy, and measured crossovers against the blocking tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/instrument.hpp"
#include "runtime/backoff.hpp"
#include "runtime/cacheline.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

template <typename T, typename Op = std::plus<T>,
          typename Instrument = analysis::DefaultInstrument>
class LockFreeCombiningTree {
 public:
  using value_type = T;

  /// `width`: maximum number of threads (power of two, ≥ 2). Thread slots
  /// are 0..width-1; two slots share each leaf.
  LockFreeCombiningTree(unsigned width, T initial = T{}, Op op = Op{})
      : width_(width), op_(op), root_value_(initial), nodes_(width) {
    KRS_EXPECTS(width >= 2 && util::is_pow2(width));
    nodes_[kRootIndex].status.store(kRootWord, std::memory_order_relaxed);
  }

  LockFreeCombiningTree(const LockFreeCombiningTree&) = delete;
  LockFreeCombiningTree& operator=(const LockFreeCombiningTree&) = delete;

  /// Atomically result ← result ⊕ v, returning the prior value, combining
  /// with concurrent callers on the way up. `slot` must be < width and
  /// used by at most one thread at a time.
  T fetch_and_op(unsigned slot, T v) {
    KRS_EXPECTS(slot < width_);
    Instrument::acquire(this);
    const unsigned my_leaf = width_ / 2 + slot / 2;  // heap index

    // Phase 1: precombine — climb while we are the first to arrive.
    unsigned node = my_leaf;
    while (precombine(node)) node /= 2;
    const unsigned stop = node;

    // Phase 2: combine — gather operands deposited by second arrivals.
    unsigned path[kMaxDepth];
    unsigned depth = 0;
    T combined = v;
    for (node = my_leaf; node != stop; node /= 2) {
      combined = combine(node, combined);
      path[depth++] = node;
    }

    // Phase 3: operate — at the root, apply; at a SecondPending node,
    // deposit and spin for the distributed result.
    const T prior = stop == kRootIndex ? apply_at_root(combined)
                                       : deposit_and_await(stop, combined);

    // Phase 4: distribute results back down our path.
    for (unsigned i = depth; i-- > 0;) distribute(path[i], prior);
    Instrument::release(this);
    return prior;
  }

  /// Atomic snapshot of the current value: takes the root word's lock bit
  /// for the duration of one load — safe concurrently with operations.
  T read() {
    lock_root();
    T v = root_value_;
    unlock_root();
    return v;
  }

  /// Quiescent-only read: no synchronization at all. Callers must ensure
  /// no fetch_and_op is in flight (e.g. after joining the worker threads).
  [[nodiscard]] T read_unsynchronized() const { return root_value_; }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  // ---- status word encoding -------------------------------------------------
  enum Tag : std::uint64_t {
    kIdle = 0,
    kFirst = 1,
    kFirstLocked = 2,
    kSecondPending = 3,
    kSecondReady = 4,
    kSecondCombined = 5,
    kResult = 6,
    kRoot = 7,
  };
  static constexpr std::uint64_t kTagMask = 0x7;
  static constexpr std::uint64_t kLockBit = 0x8;
  static constexpr unsigned kGenShift = 4;
  static constexpr unsigned kRootIndex = 1;
  static constexpr std::uint64_t kRootWord = kRoot;
  static constexpr unsigned kMaxDepth = 64;

  static constexpr Tag tag_of(std::uint64_t w) noexcept {
    return static_cast<Tag>(w & kTagMask);
  }
  static constexpr std::uint64_t gen_of(std::uint64_t w) noexcept {
    return w >> kGenShift;
  }
  /// Same generation, new tag.
  static constexpr std::uint64_t retag(std::uint64_t w, Tag t) noexcept {
    return (w & ~(kTagMask | kLockBit)) | t;
  }
  static constexpr std::uint64_t idle_next_gen(std::uint64_t w) noexcept {
    return (gen_of(w) + 1) << kGenShift | kIdle;
  }

  struct alignas(kCacheLine) Node {
    std::atomic<std::uint64_t> status{kIdle};
    // Operand/reply slots on their own line: the handshake spins on
    // `status` above, the values move below.
    alignas(kCacheLine) T first_value{};
    T second_value{};
    T result{};
  };

  // ---- phase 1 --------------------------------------------------------------

  /// True: keep climbing (we were first); false: stop here (second or root).
  bool precombine(unsigned n) {
    Node& nd = nodes_[n];
    ExpBackoff bo;
    for (;;) {
      std::uint64_t w = nd.status.load(std::memory_order_acquire);
      switch (tag_of(w)) {
        case kRoot:
          return false;
        case kIdle:
          if (nd.status.compare_exchange_weak(w, retag(w, kFirst),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return true;
          }
          break;
        case kFirst:
          // A first arrival is already climbing through here; engage as
          // the second and stop the climb.
          if (nd.status.compare_exchange_weak(w, retag(w, kSecondPending),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return false;
          }
          break;
        default:
          // Node still finishing a previous operation; wait locally.
          bo.pause();
      }
    }
  }

  // ---- phase 2 --------------------------------------------------------------

  /// Called by the FIRST thread on its way up: fold in the second's
  /// operand if one arrived, closing the node against late seconds.
  T combine(unsigned n, T c) {
    Node& nd = nodes_[n];
    ExpBackoff bo;
    for (;;) {
      std::uint64_t w = nd.status.load(std::memory_order_acquire);
      switch (tag_of(w)) {
        case kFirst:
          if (nd.status.compare_exchange_weak(w, retag(w, kFirstLocked),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return c;  // nobody combined here
          }
          break;
        case kSecondPending:
          bo.pause();  // second engaged; its operand is still in flight
          break;
        case kSecondReady:
          // The acquire load above synchronized with the deposit. Record
          // the value that arrived at this node for the distribute phase,
          // then fold: first's operations precede second's.
          nd.first_value = c;
          nd.status.store(retag(w, kSecondCombined),
                          std::memory_order_relaxed);
          return op_(c, nd.second_value);
        default:
          KRS_ASSERT(false && "unexpected combine status");
          return c;
      }
    }
  }

  // ---- phase 3 --------------------------------------------------------------

  /// Root case: apply the combined operation under the root lock bit.
  T apply_at_root(const T& c) {
    lock_root();
    T prior = root_value_;
    root_value_ = op_(prior, c);
    unlock_root();
    return prior;
  }

  /// Second case: deposit the combined operand, then spin-then-yield on
  /// this node's status word until the first distributes our reply.
  T deposit_and_await(unsigned n, T c) {
    Node& nd = nodes_[n];
    std::uint64_t w = nd.status.load(std::memory_order_relaxed);
    KRS_ASSERT(tag_of(w) == kSecondPending);
    nd.second_value = std::move(c);
    nd.status.store(retag(w, kSecondReady), std::memory_order_release);
    ExpBackoff bo;
    for (;;) {
      w = nd.status.load(std::memory_order_acquire);
      if (tag_of(w) == kResult) break;
      bo.pause();
    }
    T r = nd.result;
    // Release the node for the next pair; new generation kills ABA.
    nd.status.store(idle_next_gen(w), std::memory_order_release);
    return r;
  }

  // ---- phase 4 --------------------------------------------------------------

  /// Called by the FIRST thread on its way down with the prior value of
  /// everything combined below this node's subtree position.
  void distribute(unsigned n, const T& prior) {
    Node& nd = nodes_[n];
    const std::uint64_t w = nd.status.load(std::memory_order_relaxed);
    switch (tag_of(w)) {
      case kFirstLocked:
        // Nobody combined here: release the node.
        nd.status.store(idle_next_gen(w), std::memory_order_release);
        break;
      case kSecondCombined:
        // The second's reply: prior ⊕ first's contribution — the
        // decombination rule ⟨id2, f(val)⟩.
        nd.result = op_(prior, nd.first_value);
        nd.status.store(retag(w, kResult), std::memory_order_release);
        break;
      default:
        KRS_ASSERT(false && "unexpected distribute status");
    }
  }

  // ---- root lock bit --------------------------------------------------------

  void lock_root() {
    Node& rt = nodes_[kRootIndex];
    ExpBackoff bo;
    for (;;) {
      std::uint64_t w = rt.status.load(std::memory_order_relaxed);
      if ((w & kLockBit) == 0 &&
          rt.status.compare_exchange_weak(w, w | kLockBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return;
      }
      bo.pause();
    }
  }

  void unlock_root() {
    nodes_[kRootIndex].status.store(kRootWord, std::memory_order_release);
  }

  unsigned width_;
  Op op_;
  alignas(kCacheLine) T root_value_;
  std::vector<Node> nodes_;  // heap layout, nodes_[1..width-1]
};

}  // namespace krs::runtime
