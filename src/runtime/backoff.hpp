// Busy-wait pacing for the lock-free runtime primitives.
//
// The paper's model waits by local spinning on a private word (a failed
// conditional RMW is a negative acknowledgment; the caller retries). On a
// real machine a naive retry loop hammers the coherence protocol, so every
// spin site in src/runtime paces itself with one of two policies:
//
//  * ExpBackoff — bounded exponential backoff: spin 1, 2, 4, ... pause
//    instructions up to a cap, then fall through to std::this_thread::yield
//    on every further round. The yield matters on oversubscribed hosts
//    (more waiters than cores): the partner we are waiting for may need our
//    core to make progress at all.
//  * proportional_backoff(ahead) — the classic ticket-lock fix: a waiter
//    that knows it is `ahead` tickets from being served spins ~ahead·k
//    before re-reading now_serving, so P waiters do not all hammer the
//    serving word every iteration.
#pragma once

#include <cstdint>
#include <thread>

namespace krs::runtime {

/// One "doing nothing, politely" instruction for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  // No pause hint on this target; the loop's atomic load is the pacing.
#endif
}

/// Bounded exponential backoff: spin 2^k pauses up to `kSpinCap`, then
/// yield each round. Reset between independent waits.
class ExpBackoff {
 public:
  void pause() noexcept {
    if (spins_ <= kSpinCap) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

 private:
  static constexpr std::uint32_t kSpinCap = 64;
  std::uint32_t spins_ = 1;
};

/// Wait roughly proportional to how far back in line we are: `ahead`
/// waiters will be served first, so there is no point re-reading sooner.
/// Long waits (deep queues, oversubscription) degrade to a yield.
inline void proportional_backoff(std::uint64_t ahead) noexcept {
  constexpr std::uint64_t kSpinsPerWaiter = 48;
  constexpr std::uint64_t kYieldAhead = 16;
  if (ahead >= kYieldAhead) {
    std::this_thread::yield();
    return;
  }
  const std::uint64_t n = ahead * kSpinsPerWaiter;
  for (std::uint64_t i = 0; i < n; ++i) cpu_relax();
}

}  // namespace krs::runtime
