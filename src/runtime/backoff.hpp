// Busy-wait pacing for the lock-free runtime primitives.
//
// The paper's model waits by local spinning on a private word (a failed
// conditional RMW is a negative acknowledgment; the caller retries). On a
// real machine a naive retry loop hammers the coherence protocol, so every
// spin site in src/runtime paces itself with one of two policies:
//
//  * ExpBackoff — bounded exponential backoff: spin 1, 2, 4, ... pause
//    instructions up to a cap, then fall through to std::this_thread::yield
//    on every further round. The yield matters on oversubscribed hosts
//    (more waiters than cores): the partner we are waiting for may need our
//    core to make progress at all.
//  * proportional_backoff(ahead) — the classic ticket-lock fix: a waiter
//    that knows it is `ahead` tickets from being served spins ~ahead·k
//    before re-reading now_serving, so P waiters do not all hammer the
//    serving word every iteration.
#pragma once

#include <cstdint>
#include <thread>

namespace krs::runtime {

/// One "doing nothing, politely" instruction for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  // No pause hint on this target; the loop's atomic load is the pacing.
#endif
}

/// Bounded exponential backoff: spin 2^k pauses up to `kSpinCap`, then
/// yield each round. Reset between independent waits.
class ExpBackoff {
 public:
  static constexpr std::uint32_t kSpinCap = 64;

  void pause() noexcept {
    if (spins_ <= kSpinCap) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  /// The spin budget the NEXT pause() would use (saturates one doubling
  /// past the cap, where every further round is a yield). Exposed so the
  /// doubling/cap schedule is testable without timing a spin loop.
  [[nodiscard]] std::uint32_t current_spins() const noexcept {
    return spins_;
  }

  /// Back to the initial budget — call between independent waits.
  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
};

// Proportional-backoff schedule constants (exposed for the unit tests).
inline constexpr std::uint64_t kProportionalSpinsPerWaiter = 48;
inline constexpr std::uint64_t kProportionalYieldAhead = 16;

/// Pure schedule of proportional_backoff: how many pause instructions a
/// waiter `ahead` places from service spins before re-reading, or 0 for
/// the yield regime (and, trivially, at the head of the line).
constexpr std::uint64_t proportional_spin_count(std::uint64_t ahead) noexcept {
  return ahead >= kProportionalYieldAhead
             ? 0
             : ahead * kProportionalSpinsPerWaiter;
}

/// Wait roughly proportional to how far back in line we are: `ahead`
/// waiters will be served first, so there is no point re-reading sooner.
/// Long waits (deep queues, oversubscription) degrade to a yield;
/// ahead == 0 (served next) is a no-op.
inline void proportional_backoff(std::uint64_t ahead) noexcept {
  if (ahead >= kProportionalYieldAhead) {
    std::this_thread::yield();
    return;
  }
  const std::uint64_t n = proportional_spin_count(ahead);
  for (std::uint64_t i = 0; i < n; ++i) cpu_relax();
}

}  // namespace krs::runtime
