// §5.6 data-level synchronization served through any RmwBackend.
//
// A DlsHost owns one backend cell holding a word-packed tagged value
// (core::dls_pack: state tag in the low bits) and issues guarded
// operations (core::DlsWordOp) through the substrate's ordinary
// `fetch_rmw` path — so the atomic CAS loop, the combining tree (which
// COMBINES automaton transitions and partially declines past the wire
// budget, §7), the flat combiner, the sharded wrapper, the lock tier, and
// the simulated machine all serve protocol steps the same way they serve
// fetch-and-add. The reply carries the prior packed word; per §5.6 the
// issuer reads success (ack vs nack) off the old state, and a nacked
// operation is a no-op on the cell.
//
// IMPORTANT for sharded substrates: a DLS cell is ONE automaton — its
// state tag cannot be striped across shards the way a counter can. Hosts
// over ShardedBackend must pin a route (ScopedRouteKey) so every issuer
// reaches the same inner cell; the conservation tests do exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/any_rmw.hpp"
#include "core/dls.hpp"
#include "runtime/rmw_backend.hpp"

namespace krs::runtime {

/// One §5.6-synchronized cell over a backend substrate.
template <RmwBackend B>
class DlsHost {
 public:
  struct Reply {
    bool ok;              ///< old state ∈ guard: the operation took effect
    core::DlsCell prior;  ///< unpacked cell BEFORE the operation
  };

  DlsHost(B& backend, core::DlsCell initial)
      : backend_(backend), cell_(backend, core::dls_pack(initial)) {}

  explicit DlsHost(B& backend) : DlsHost(backend, core::DlsCell{}) {}

  /// Issue one guarded operation; never blocks beyond the substrate's own
  /// combining/locking. A nack left the cell untouched.
  Reply issue(const core::DlsWordOp& op) {
    const core::Word prior = backend_.fetch_rmw(cell_, core::AnyRmw(op));
    const bool ok = op.succeeded(prior);
    (ok ? acks_ : nacks_).fetch_add(1, std::memory_order_relaxed);
    return Reply{ok, core::dls_unpack(prior)};
  }

  /// Retry until the guard admits, up to max_attempts; nullopt = gave up
  /// (each failed attempt was a §5.6 nack, counted in nacks()).
  std::optional<Reply> issue_until(const core::DlsWordOp& op,
                                   unsigned max_attempts) {
    for (unsigned i = 0; i < max_attempts; ++i) {
      Reply r = issue(op);
      if (r.ok) return r;
    }
    return std::nullopt;
  }

  /// Unpacked snapshot of the cell (plain backend load; on a combining
  /// substrate this is the tree's decombined read).
  [[nodiscard]] core::DlsCell snapshot() const {
    return core::dls_unpack(backend_.load(cell_));
  }

  [[nodiscard]] std::uint64_t acks() const noexcept {
    return acks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nacks() const noexcept {
    return nacks_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] B& backend() noexcept { return backend_; }
  [[nodiscard]] typename B::Cell& cell() noexcept { return cell_; }

 private:
  B& backend_;
  typename B::Cell cell_;
  std::atomic<std::uint64_t> acks_{0};
  std::atomic<std::uint64_t> nacks_{0};
};

}  // namespace krs::runtime
