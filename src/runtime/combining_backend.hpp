// The software-combining RMW backend: every cell is a
// MappingCombiningTree<core::AnyRmw>, so concurrent operations on one hot
// word combine pairwise on the way to the root (§4.2) instead of
// serializing on the coherence protocol. This is the "no combining
// hardware, combine in software" point of the paper realized behind the
// same RmwBackend interface the hardware-atomic backend implements — the
// §6 algorithms cannot tell the difference.
//
// Mapping families pushed through the tree:
//
//   fetch_add/or/and/xor → core::FetchTheta<…>   (§5.2, combine = θ on operands)
//   exchange             → core::LssOp::swap      (§5.1, first table)
//   store                → core::LssOp::store     (combines; constant mapping)
//   fetch_rmw(m)         → m verbatim             (any core::AnyRmw; mixed
//                                                  families decline at the
//                                                  node and are served
//                                                  individually — §7)
//   compare_exchange     → update_at_root          (not a tractable mapping:
//                                                  the update branches on
//                                                  the old value, so it
//                                                  serializes at the root,
//                                                  linearized against all
//                                                  combined traffic)
//   load                 → tree.read()             (atomic root snapshot)
//
// Thread→slot assignment uses thread_ordinal() mod width. Slots may
// collide (more threads than width): the tree's per-node state machine
// admits at most a first and a second per occupancy and parks later
// arrivals, so collisions cost waiting, never correctness.
#pragma once

#include <algorithm>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "runtime/lock_free_combining_tree.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/topology.hpp"
#include "util/bits.hpp"

namespace krs::runtime {

template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicCombiningBackend {
 public:
  /// `width`: slot capacity of every cell's tree, ≥ 2 — any value works,
  /// including odd core counts discovered by CpuTopology (the tree rounds
  /// its heap up to a power of two internally; the thread→slot modulo
  /// stays at the requested width so live slots remain dense). More
  /// threads than `width` still work (slots are shared); sizing width to
  /// the expected thread count maximizes combining.
  explicit BasicCombiningBackend(unsigned width = kDefaultWidth)
      : BasicCombiningBackend(width, IdentityTopology{}) {}

  /// Topology-aware layout: `topo` decides which slots share tree leaves
  /// (see runtime/topology.hpp). The SlotMap is computed once here; cells
  /// share it.
  template <Topology T>
  BasicCombiningBackend(unsigned width, const T& topo)
      : width_(std::max(2u, width)), slot_map_(topo.slot_map(width_)) {}

  struct Cell {
    Cell(const BasicCombiningBackend& b, Word initial)
        : tree(b.slot_map_, initial) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    MappingCombiningTree<core::AnyRmw, Instrument, Policy> tree;
  };

  Word fetch_add(Cell& c, Word v) const {
    return c.tree.fetch_rmw(slot(), core::AnyRmw(core::FetchAdd(v)));
  }
  Word fetch_or(Cell& c, Word v) const {
    return c.tree.fetch_rmw(slot(), core::AnyRmw(core::FetchOr(v)));
  }
  Word fetch_and(Cell& c, Word v) const {
    return c.tree.fetch_rmw(slot(), core::AnyRmw(core::FetchAnd(v)));
  }
  Word fetch_xor(Cell& c, Word v) const {
    return c.tree.fetch_rmw(slot(), core::AnyRmw(core::FetchXor(v)));
  }
  Word exchange(Cell& c, Word v) const {
    return c.tree.fetch_rmw(slot(), core::AnyRmw(core::LssOp::swap(v)));
  }

  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    return c.tree.fetch_rmw(slot(), m);
  }

  /// Not a tractable mapping (§5: the update must not branch on the old
  /// value), so it cannot combine; serialized at the root, linearized
  /// against every combined operation.
  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    bool ok = false;
    const Word want = expected;
    const Word prior = c.tree.update_at_root([&](Word old) {
      if (old == want) {
        ok = true;
        return desired;
      }
      return old;
    });
    if (!ok) expected = prior;
    return ok;
  }

  Word load(const Cell& c) const { return c.tree.read(); }

  void store(Cell& c, Word v) const {
    c.tree.fetch_rmw(slot(), core::AnyRmw(core::LssOp::store(v)));
  }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

  /// Partial-combining telemetry for one cell's tree (§7): combine_rate,
  /// declined folds, served-at-root fraction. Relaxed snapshot; quiesce
  /// for exact accounting.
  [[nodiscard]] CombiningTreeStats cell_stats(const Cell& c) const {
    return c.tree.stats();
  }

  static constexpr unsigned kDefaultWidth = 16;

 private:
  [[nodiscard]] unsigned slot() const noexcept {
    return thread_ordinal() % width_;
  }

  unsigned width_;
  SlotMap slot_map_;
};

using CombiningBackend = BasicCombiningBackend<>;

static_assert(RmwBackend<BasicCombiningBackend<analysis::NoInstrument>>);
static_assert(RmwBackend<CombiningBackend>);

}  // namespace krs::runtime
