// The sharded RMW substrate: spread the hot spot, aggregate on read.
//
// The paper's combining collapses a hot word's traffic IN-NETWORK; this
// header is the dual optimization the Pfister–Norton model equally
// motivates: spread the load across MANY cells so no single memory module
// saturates, and fold the pieces back together only when somebody reads.
// A `ShardedBackend<Inner>::Cell` stripes one logical word across S
// per-shard `Inner` cells (any substrate: hardware atomics, the combining
// tree, the flat combiner, the simulated machine), each on its own cache
// line. Updates touch exactly ONE shard — so they stay combinable inside
// that shard's own substrate — while `load()` folds the shard values with
// the cell's semigroup operation (sum for counters, union for flag words):
// the write-cheap/read-folds structure of a write-and-f-array, with the §3
// decombination chain run at read time instead of in the switches.
//
// Semantics — deliberately RELAXED relative to a single cell:
//
//  * fetch_add/or/and/xor/exchange/fetch_rmw apply to the ROUTED shard and
//    return that shard's prior. Per-shard streams are individually
//    linearizable (the inner substrate guarantees it), and any
//    shard-decomposable invariant — the counter's global sum, the or-word's
//    bit union — holds exactly. What is given up is a TOTAL order across
//    shards: two clients on different shards can both see prior 0. That is
//    the price of the spread; callers who need global tickets keep a
//    single-shard cell (shards = 1 degrades to exactly the inner backend).
//  * load() is an aggregation read: it folds every shard with the
//    backend's Aggregation (associative + commutative, identity-initialized
//    spare shards). Each per-shard read is individually atomic; the fold is
//    not a global snapshot — it is bounded by the values the shards held
//    sometime during the read, the standard sharded-counter contract.
//  * compare_exchange operates on the routed shard (shard-local CAS).
//  * store() quiesces the cell to v: identity into every shard, v into the
//    routed one. Like any racing store, concurrent updates may interleave;
//    use it for initialization/reset, not as a synchronization edge.
//
// Routing decides WHICH shard an operation touches:
//
//  * kThreadOrdinal — shard = placement(key mod S): consecutive client keys
//    stripe round-robin across shards (the Ultracomputer's interleaving).
//  * kHashed — shard = placement(mix64(key) mod S): decorrelates shard
//    choice from key arithmetic, for key populations with stride patterns.
//
// The routing KEY defaults to thread_ordinal(), but a harness multiplexing
// M logical clients onto N worker threads installs the client's identity
// with ScopedRouteKey — the shard then follows the CLIENT, not the worker
// thread, so thread churn (and thread_ordinal() reuse) can never migrate a
// client's shard mid-sequence.
//
// Topology-aware placement: constructed with a Topology policy
// (runtime/topology.hpp) and an expected key-population width, the backend
// block-partitions the topology's cluster-major key order across shards,
// so the threads hitting one shard share a cache cluster and the shard's
// line ping-pongs inside one L2 instead of across the die.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <numeric>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/types.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/topology.hpp"
#include "runtime/wait_policy.hpp"

namespace krs::runtime {

namespace detail {

/// SplitMix64 finalizer: the cheap, well-mixed 64→64 hash used for
/// kHashed routing (same constants as util::SplitMix64's output stage).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct RouteKeyState {
  std::uint64_t key = 0;
  bool active = false;
};

inline RouteKeyState& route_key_state() noexcept {
  thread_local RouteKeyState st;
  return st;
}

}  // namespace detail

/// The routing key sharded backends resolve for the current thread: the
/// innermost ScopedRouteKey if one is installed, thread_ordinal()
/// otherwise.
inline std::uint64_t route_key() noexcept {
  const detail::RouteKeyState& st = detail::route_key_state();
  return st.active ? st.key : thread_ordinal();
}

/// RAII override of the current thread's routing key. A worker thread
/// multiplexing logical clients installs the client's id around each of
/// the client's operations; nesting restores the outer key on exit.
class ScopedRouteKey {
 public:
  explicit ScopedRouteKey(std::uint64_t key) noexcept
      : saved_(detail::route_key_state()) {
    detail::route_key_state() = {key, true};
  }
  ScopedRouteKey(const ScopedRouteKey&) = delete;
  ScopedRouteKey& operator=(const ScopedRouteKey&) = delete;
  ~ScopedRouteKey() { detail::route_key_state() = saved_; }

 private:
  detail::RouteKeyState saved_;
};

enum class ShardRouting {
  kThreadOrdinal,  ///< shard = placement(key mod S) — striped
  kHashed,         ///< shard = placement(mix64(key) mod S) — decorrelated
};

/// The semigroup the aggregation read folds shard values with. Must be
/// associative and commutative with `identity` as neutral element — the
/// spare shards are initialized to it, so fold(identity, x) == x keeps a
/// fresh cell's aggregate equal to its initial value.
struct Aggregation {
  using Fold = Word (*)(Word, Word);
  Word identity = 0;
  Fold fold = nullptr;

  /// Counters / semaphores / tickets: aggregate = Σ shard values.
  static constexpr Aggregation sum() {
    return {0, [](Word a, Word b) { return a + b; }};
  }
  /// Flag/or words: aggregate = ∪ shard bits.
  static constexpr Aggregation bit_or() {
    return {0, [](Word a, Word b) { return a | b; }};
  }
  /// Watermarks: aggregate = max shard value.
  static constexpr Aggregation max() {
    return {0, [](Word a, Word b) { return a > b ? a : b; }};
  }
};

/// Per-cell shard telemetry: operation count routed to each shard.
/// Relaxed counters — quiesce for exact accounting.
struct ShardedCellStats {
  std::vector<std::uint64_t> shard_ops;

  [[nodiscard]] std::uint64_t total() const {
    return std::accumulate(shard_ops.begin(), shard_ops.end(),
                           std::uint64_t{0});
  }
  /// Largest single shard's share of the routed traffic (1.0 = all ops on
  /// one shard — the unsharded hot spot reborn; ~1/S = perfect spread).
  [[nodiscard]] double max_share() const {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    std::uint64_t m = 0;
    for (const std::uint64_t v : shard_ops) m = v > m ? v : m;
    return static_cast<double>(m) / static_cast<double>(t);
  }
};

template <RmwBackend Inner, typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicShardedBackend {
 public:
  static constexpr unsigned kDefaultShards = 8;

  /// `inner`: the per-shard substrate (copied; SimBackend copies share one
  /// machine by design). `shards` ≥ 1; 1 degrades to exactly the inner
  /// backend plus one indirection.
  explicit BasicShardedBackend(Inner inner, unsigned shards = kDefaultShards,
                               ShardRouting routing =
                                   ShardRouting::kThreadOrdinal)
      : inner_(std::move(inner)),
        shards_(shards < 1 ? 1 : shards),
        routing_(routing) {
    placement_.resize(shards_);
    std::iota(placement_.begin(), placement_.end(), 0u);
  }

  /// Topology-aware placement: `width` is the expected routing-key
  /// population (thread or client count); `topo` orders those keys
  /// cluster-major and the constructor block-partitions that order across
  /// shards, so keys sharing a cache cluster share a shard. Falls back to
  /// the striped identity placement when the topology is flat.
  template <Topology T>
  BasicShardedBackend(Inner inner, unsigned shards, ShardRouting routing,
                      unsigned width, const T& topo)
      : BasicShardedBackend(std::move(inner), shards, routing) {
    width = width < shards_ ? shards_ : width;
    const SlotMap sm = topo.slot_map(width);
    // sm(k) is key k's position in cluster-major order; equal blocks of
    // that order map to one shard each, so cluster siblings (adjacent
    // positions) coalesce onto the same shard.
    placement_.assign(width, 0u);
    for (unsigned k = 0; k < width; ++k) {
      placement_[k] = static_cast<unsigned>(
          (static_cast<std::uint64_t>(sm(k)) * shards_) / width);
    }
  }

  struct Cell {
    Cell(const BasicShardedBackend& b, Word initial)
        : home(b.shard_of()), ops(b.shards_) {
      // Construct the S inner cells in place (inner cells are pinned —
      // deque never relocates); the initial value lands in the HOME shard
      // (the shard the constructing context routes to, so a
      // single-threaded script sees unsharded semantics), identity
      // elsewhere, keeping the aggregate equal to `initial`.
      for (unsigned s = 0; s < b.shards_; ++s) {
        slots.emplace_back(b.inner_,
                           s == home ? initial : b.agg_.identity);
      }
    }
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    struct alignas(kCacheLine) Slot {
      Slot(const Inner& b, Word v) : cell(b, v) {}
      typename Inner::Cell cell;
    };

    std::deque<Slot> slots;  ///< S cache-line-isolated inner cells
    unsigned home;           ///< shard holding the initial value
    std::deque<std::atomic<std::uint64_t>> ops;  ///< per-shard telemetry
  };

  Word fetch_add(Cell& c, Word v) const {
    return inner_.fetch_add(routed(c), v);
  }
  Word fetch_or(Cell& c, Word v) const { return inner_.fetch_or(routed(c), v); }
  Word fetch_and(Cell& c, Word v) const {
    return inner_.fetch_and(routed(c), v);
  }
  Word fetch_xor(Cell& c, Word v) const {
    return inner_.fetch_xor(routed(c), v);
  }
  Word exchange(Cell& c, Word v) const { return inner_.exchange(routed(c), v); }

  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    return inner_.fetch_rmw(routed(c), m);
  }

  /// Shard-local CAS: conditional on the ROUTED shard's value, linearized
  /// against that shard's stream only.
  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    return inner_.compare_exchange(routed(c), expected, desired);
  }

  /// The aggregation read: fold every shard with the backend's semigroup.
  /// Each per-shard load is atomic in the inner substrate; the fold is the
  /// §3 decombination chain run at read time.
  Word load(const Cell& c) const {
    Word acc = agg_.identity;
    for (const auto& slot : c.slots) {
      acc = agg_.fold(acc, inner_.load(slot.cell));
    }
    return acc;
  }

  /// Policy-paced quiesce: wait until the aggregate equals `expected`.
  /// The fold is not a snapshot, so this is a convergence wait (all
  /// updaters done, or the expected total provably reached) — the
  /// sharded analogue of spinning on a single cell's value, with the
  /// wait routed through the WaitPolicy seam instead of a private loop.
  void await_aggregate(const Cell& c, Word expected) const {
    Policy pol;
    while (load(c) != expected) pol.pause();
  }

  /// Quiescing reset: identity into every shard, v into the routed one.
  void store(Cell& c, Word v) const {
    const unsigned target = shard_of();
    for (unsigned s = 0; s < shards_; ++s) {
      inner_.store(c.slots[s].cell, s == target ? v : agg_.identity);
    }
  }

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] ShardRouting routing() const noexcept { return routing_; }
  [[nodiscard]] const Inner& inner() const noexcept { return inner_; }

  /// The shard the given routing key resolves to.
  [[nodiscard]] unsigned shard_of_key(std::uint64_t key) const noexcept {
    if (routing_ == ShardRouting::kHashed) key = detail::mix64(key);
    return placement_[key % placement_.size()];
  }

  /// The shard the CURRENT context routes to (ScopedRouteKey if installed,
  /// thread_ordinal() otherwise).
  [[nodiscard]] unsigned shard_of() const noexcept {
    return shard_of_key(route_key());
  }

  void set_aggregation(Aggregation agg) noexcept { agg_ = agg; }
  [[nodiscard]] const Aggregation& aggregation() const noexcept {
    return agg_;
  }

  [[nodiscard]] ShardedCellStats cell_stats(const Cell& c) const {
    ShardedCellStats out;
    out.shard_ops.reserve(shards_);
    for (const auto& n : c.ops) {
      out.shard_ops.push_back(n.load(std::memory_order_relaxed));
    }
    return out;
  }

  /// Direct shard access for tests and per-shard seeding (e.g. spreading
  /// a semaphore's permits across shards before the clients arrive).
  [[nodiscard]] typename Inner::Cell& shard_cell(Cell& c,
                                                 unsigned s) const {
    return c.slots[s].cell;
  }

 private:
  typename Inner::Cell& routed(Cell& c) const {
    const unsigned s = shard_of();
    c.ops[s].fetch_add(1, std::memory_order_relaxed);
    return c.slots[s].cell;
  }

  Inner inner_;
  unsigned shards_;
  ShardRouting routing_;
  Aggregation agg_ = Aggregation::sum();
  std::vector<unsigned> placement_;  ///< key-position → shard
};

template <RmwBackend Inner>
using ShardedBackend = BasicShardedBackend<Inner>;

static_assert(RmwBackend<ShardedBackend<AtomicBackend>>);
static_assert(
    RmwBackend<BasicShardedBackend<BasicAtomicBackend<analysis::NoInstrument>,
                                   analysis::NoInstrument>>);

}  // namespace krs::runtime
