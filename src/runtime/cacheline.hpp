// The destructive-interference granule every contended runtime structure
// pads to. Adjacent per-slot state (queue cells, combining-tree nodes,
// barrier nodes, the two ticket-lock words) must not share a cache line,
// or the coherence traffic the paper's combining is meant to eliminate
// reappears as false sharing between logically independent slots.
#pragma once

#include <cstddef>

namespace krs::runtime {

// Morally std::hardware_destructive_interference_size, but pinned to a
// literal: GCC's -Winterference-size (correctly) warns that the std
// constant varies with -mtune and so must not leak into layouts that
// cross translation units compiled with different flags. 64 bytes is the
// destructive granule on every mainstream x86-64 and AArch64 part; a
// platform where that is wrong changes exactly this one definition.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace krs::runtime
