// The shared shape of a software combining tree, so everything downstream
// (the combining-counter barrier in coordination.hpp, the benches, the
// examples) is templated over WHICH tree serves the hot spot — the
// blocking mutex/condvar tree or the lock-free status-word tree — and the
// two stay drop-in interchangeable.
#pragma once

#include <concepts>

namespace krs::runtime {

/// A width-bounded fetch-and-θ combining structure: `fetch_and_op(slot, v)`
/// atomically folds v into the shared value and returns the prior value
/// (combining with concurrent callers), `read()` takes a synchronized
/// snapshot, `read_unsynchronized()` is the quiescent-only fast read, and
/// `width()` bounds the usable slot ids.
template <typename Tree>
concept CombiningCounter = requires(Tree& t, const Tree& ct, unsigned slot,
                                    typename Tree::value_type v) {
  typename Tree::value_type;
  { t.fetch_and_op(slot, v) } -> std::same_as<typename Tree::value_type>;
  { t.read() } -> std::same_as<typename Tree::value_type>;
  { ct.read_unsynchronized() } -> std::same_as<typename Tree::value_type>;
  { ct.width() } -> std::convertible_to<unsigned>;
};

}  // namespace krs::runtime
