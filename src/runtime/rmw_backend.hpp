// The RMW substrate seam: one concept under every §6 algorithm.
//
// The paper's coordination algorithms (queues, barriers, readers-writers,
// semaphores) are written against an abstract machine that executes
// RMW(X, f) atomically — the algorithms do not care whether f is realized
// as a hardware fetch-and-θ instruction, a CAS loop, a software combining
// tree, or a combining network. This header is that seam for the runtime
// layer: an `RmwBackend` owns word-sized shared cells and executes RMW
// operations on them; every primitive in src/runtime is templated over a
// backend and uses only this interface on its hot words.
//
// Interface (concept `RmwBackend`):
//
//   B::Cell            — a shared word owned by the backend. Cells are not
//                        movable (they may wrap std::atomic or a combining
//                        tree); they are constructed in place from
//                        (const B&, initial_value).
//   b.fetch_add/or/and/xor(c, v), b.exchange(c, v)
//                      — the typed fast paths; return the prior value.
//   b.fetch_rmw(c, m)  — the general path: any tractable mapping, as a
//                        core::AnyRmw value; returns the prior value.
//   b.compare_exchange(c, expected, desired)
//                      — conditional store. Not a tractable mapping (the
//                        update depends on comparing the old value), so
//                        backends may serialize it; algorithms that want to
//                        scale under contention should prefer the fetch
//                        paths, which combine.
//   b.load(c), b.store(c, v)
//
// Two backends ship:
//
//   * AtomicBackend — hardware fetch-and-θ where the instruction exists
//     (std::atomic fetch_add/fetch_or/...), a CAS loop applying
//     m.apply(old) otherwise. This is the §2 "memory does the RMW" model
//     on a real coherence protocol.
//   * CombiningBackend (combining_backend.hpp) — every operation funnels
//     through a MappingCombiningTree<core::AnyRmw>, so concurrent
//     operations on one hot cell combine pairwise on the way to the root
//     (§4.2) instead of serializing on the coherence protocol.
//
// Instrumentation: backends carry the Instrument policy and publish the
// happens-before edges for their cells — a release before every
// value-publishing operation and an acquire after every value-observing
// one, keyed on the cell address. Primitives built on a backend get their
// cell-mediated HB edges for free and add only their algorithm-specific
// edges (e.g. a barrier's phase transition).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/types.hpp"
#include "runtime/cacheline.hpp"

namespace krs::runtime {

using Word = core::Word;

/// Small dense per-thread ordinal (0, 1, 2, ... in first-use order),
/// process-wide. Backends that need a per-thread slot (the combining tree's
/// leaf position) derive it from this; callers never pass slot indices
/// through the backend interface.
inline unsigned thread_ordinal() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

template <typename B>
concept RmwBackend =
    std::constructible_from<typename B::Cell, const B&, Word> &&
    requires(B& b, typename B::Cell& c, const typename B::Cell& cc, Word v,
             Word& e, const core::AnyRmw& m) {
      { b.fetch_add(c, v) } -> std::same_as<Word>;
      { b.fetch_or(c, v) } -> std::same_as<Word>;
      { b.fetch_and(c, v) } -> std::same_as<Word>;
      { b.fetch_xor(c, v) } -> std::same_as<Word>;
      { b.exchange(c, v) } -> std::same_as<Word>;
      { b.fetch_rmw(c, m) } -> std::same_as<Word>;
      { b.compare_exchange(c, e, v) } -> std::same_as<bool>;
      { b.load(cc) } -> std::same_as<Word>;
      { b.store(c, v) };
    };

/// Hardware fetch-and-θ backend: each cell is one std::atomic<Word>; the
/// typed fast paths are the native RMW instructions, and fetch_rmw is a
/// CAS loop applying m.apply(old) (the §2 semantics when the memory has no
/// combining support — correct, but a hot cell serializes).
template <typename Instrument = analysis::DefaultInstrument>
class BasicAtomicBackend {
 public:
  struct Cell {
    Cell(const BasicAtomicBackend&, Word initial) : word(initial) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    alignas(kCacheLine) std::atomic<Word> word;
  };

  Word fetch_add(Cell& c, Word v) const {
    Instrument::release(&c);
    Word prior = c.word.fetch_add(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_or(Cell& c, Word v) const {
    Instrument::release(&c);
    Word prior = c.word.fetch_or(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_and(Cell& c, Word v) const {
    Instrument::release(&c);
    Word prior = c.word.fetch_and(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_xor(Cell& c, Word v) const {
    Instrument::release(&c);
    Word prior = c.word.fetch_xor(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word exchange(Cell& c, Word v) const {
    Instrument::release(&c);
    Word prior = c.word.exchange(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }

  /// The general path: hardware has no "fetch-and-f" for an arbitrary
  /// mapping, so retry CAS until the old value we applied f to is the old
  /// value we replaced — the standard emulation, with the typed paths
  /// above available when the family is known statically.
  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    Instrument::release(&c);
    Word old = c.word.load(std::memory_order_acquire);
    while (!c.word.compare_exchange_weak(old, m.apply(old),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    }
    Instrument::acquire(&c);
    return old;
  }

  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    Instrument::release(&c);
    bool ok = c.word.compare_exchange_strong(expected, desired,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    Instrument::acquire(&c);
    return ok;
  }

  Word load(const Cell& c) const {
    Word v = c.word.load(std::memory_order_acquire);
    Instrument::acquire(&c);
    return v;
  }

  void store(Cell& c, Word v) const {
    Instrument::release(&c);
    c.word.store(v, std::memory_order_release);
  }
};

using AtomicBackend = BasicAtomicBackend<>;

static_assert(RmwBackend<BasicAtomicBackend<analysis::NoInstrument>>);
static_assert(RmwBackend<AtomicBackend>);

}  // namespace krs::runtime
