// The RMW substrate seam: one concept under every §6 algorithm.
//
// The paper's coordination algorithms (queues, barriers, readers-writers,
// semaphores) are written against an abstract machine that executes
// RMW(X, f) atomically — the algorithms do not care whether f is realized
// as a hardware fetch-and-θ instruction, a CAS loop, a software combining
// tree, or a combining network. This header is that seam for the runtime
// layer: an `RmwBackend` owns word-sized shared cells and executes RMW
// operations on them; every primitive in src/runtime is templated over a
// backend and uses only this interface on its hot words.
//
// Interface (concept `RmwBackend`):
//
//   B::Cell            — a shared word owned by the backend. Cells are not
//                        movable (they may wrap std::atomic or a combining
//                        tree); they are constructed in place from
//                        (const B&, initial_value).
//   b.fetch_add/or/and/xor(c, v), b.exchange(c, v)
//                      — the typed fast paths; return the prior value.
//   b.fetch_rmw(c, m)  — the general path: any tractable mapping, as a
//                        core::AnyRmw value; returns the prior value.
//   b.compare_exchange(c, expected, desired)
//                      — conditional store. Not a tractable mapping (the
//                        update depends on comparing the old value), so
//                        backends may serialize it; algorithms that want to
//                        scale under contention should prefer the fetch
//                        paths, which combine.
//   b.load(c), b.store(c, v)
//
// Two backends ship:
//
//   * AtomicBackend — hardware fetch-and-θ where the instruction exists
//     (std::atomic fetch_add/fetch_or/...), a CAS loop applying
//     m.apply(old) otherwise. This is the §2 "memory does the RMW" model
//     on a real coherence protocol.
//   * CombiningBackend (combining_backend.hpp) — every operation funnels
//     through a MappingCombiningTree<core::AnyRmw>, so concurrent
//     operations on one hot cell combine pairwise on the way to the root
//     (§4.2) instead of serializing on the coherence protocol.
//
// Instrumentation: backends carry the Instrument policy and publish the
// happens-before edges for their cells — a release before every
// value-publishing operation and an acquire after every value-observing
// one, keyed on the cell address. Primitives built on a backend get their
// cell-mediated HB edges for free and add only their algorithm-specific
// edges (e.g. a barrier's phase transition).
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/types.hpp"
#include "runtime/backoff.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/wait_policy.hpp"

namespace krs::runtime {

using Word = core::Word;

namespace detail {

/// Process-wide pool of dense thread ordinals. An exiting thread returns
/// its ordinal (via the thread-local guard below) and the smallest free
/// ordinal is handed out next, so a churny process keeps its live threads
/// dense in 0..peak-1 instead of leaking slots monotonically — otherwise
/// every combining-tree slot map (combining_backend.hpp slot(), the sim
/// backend's processor map) degenerates to a few aliased slots over time.
/// Mutex-guarded: acquire/release run once per thread lifetime, never on
/// an operation path.
class OrdinalPool {
 public:
  static OrdinalPool& instance() {
    static OrdinalPool pool;
    return pool;
  }

  unsigned acquire() {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty()) return next_++;
    std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
    const unsigned o = free_.back();
    free_.pop_back();
    return o;
  }

  void release(unsigned o) {
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(o);
    std::push_heap(free_.begin(), free_.end(), std::greater<>{});
  }

 private:
  std::mutex mu_;
  std::vector<unsigned> free_;  // min-heap: smallest ordinal leaves first
  unsigned next_ = 0;
};

/// RAII tenancy of one ordinal for the current thread's lifetime. The pool
/// singleton is constructed before the first guard, so it outlives every
/// guard's destructor (reverse destruction order), on the main thread and
/// worker threads alike.
struct OrdinalGuard {
  const unsigned ordinal = OrdinalPool::instance().acquire();
  OrdinalGuard() = default;
  OrdinalGuard(const OrdinalGuard&) = delete;
  OrdinalGuard& operator=(const OrdinalGuard&) = delete;
  ~OrdinalGuard() { OrdinalPool::instance().release(ordinal); }
};

/// The general fetch_rmw emulation: retry CAS until the old value we
/// applied f to is the old value we replaced. Every failed CAS pays one
/// backoff pause — a bare retry loop on a hot word is exactly the §1
/// hot-spot storm, and on an oversubscribed host the winner may need our
/// core to retire its store at all. Templated over the atomic and the
/// backoff policy so the pacing contract (exactly one pause per failure,
/// fresh schedule per call) is testable with a scripted flaky atomic.
/// The default pacing is the WaitPolicy seam's SpinYieldWait — the
/// ExpBackoff schedule routed through the policy point; any WaitPolicy
/// (or anything with pause()) drops in.
template <typename AtomicLike, typename Backoff = SpinYieldWait>
Word paced_cas_rmw(AtomicLike& word, const core::AnyRmw& m,
                   Backoff bo = Backoff{}) {
  Word old = word.load(std::memory_order_acquire);
  while (!word.compare_exchange_weak(old, m.apply(old),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    bo.pause();
  }
  return old;
}

}  // namespace detail

/// Small dense per-thread ordinal, process-wide. Backends that need a
/// per-thread slot (the combining tree's leaf position, the sim backend's
/// simulated processor) derive it from this; callers never pass slot
/// indices through the backend interface. Ordinals are reclaimed when the
/// owning thread exits, so they stay bounded by the peak number of LIVE
/// threads — sequential spawn/join churn reuses the same few slots rather
/// than counting up forever.
inline unsigned thread_ordinal() noexcept {
  thread_local const detail::OrdinalGuard guard;
  return guard.ordinal;
}

template <typename B>
concept RmwBackend =
    std::constructible_from<typename B::Cell, const B&, Word> &&
    requires(B& b, typename B::Cell& c, const typename B::Cell& cc, Word v,
             Word& e, const core::AnyRmw& m) {
      { b.fetch_add(c, v) } -> std::same_as<Word>;
      { b.fetch_or(c, v) } -> std::same_as<Word>;
      { b.fetch_and(c, v) } -> std::same_as<Word>;
      { b.fetch_xor(c, v) } -> std::same_as<Word>;
      { b.exchange(c, v) } -> std::same_as<Word>;
      { b.fetch_rmw(c, m) } -> std::same_as<Word>;
      { b.compare_exchange(c, e, v) } -> std::same_as<bool>;
      { b.load(cc) } -> std::same_as<Word>;
      { b.store(c, v) };
    };

/// Hardware fetch-and-θ backend: each cell is one std::atomic<Word>; the
/// typed fast paths are the native RMW instructions, and fetch_rmw is a
/// CAS loop applying m.apply(old) (the §2 semantics when the memory has no
/// combining support — correct, but a hot cell serializes). The Policy
/// paces the CAS retries (SpinYieldWait = the historical ExpBackoff
/// schedule; FutexWait makes oversubscribed retry storms sleep instead of
/// burning the winner's quantum).
template <typename Instrument = analysis::DefaultInstrument,
          WaitPolicy Policy = SpinYieldWait>
class BasicAtomicBackend {
 public:
  struct Cell {
    Cell(const BasicAtomicBackend&, Word initial) : word(initial) {}
    Cell(const Cell&) = delete;
    Cell& operator=(const Cell&) = delete;

    alignas(kCacheLine) std::atomic<Word> word;
  };

  Word fetch_add(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    Word prior = c.word.fetch_add(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_or(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    Word prior = c.word.fetch_or(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_and(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    Word prior = c.word.fetch_and(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word fetch_xor(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    Word prior = c.word.fetch_xor(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }
  Word exchange(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    Word prior = c.word.exchange(v, std::memory_order_acq_rel);
    Instrument::acquire(&c);
    return prior;
  }

  /// The general path: hardware has no "fetch-and-f" for an arbitrary
  /// mapping, so retry CAS until the old value we applied f to is the old
  /// value we replaced — the standard emulation, with the typed paths
  /// above available when the family is known statically. Retries are
  /// paced with a fresh wait-policy episode per call
  /// (detail::paced_cas_rmw): a bare loop here is the §1 hot-spot storm
  /// in miniature.
  Word fetch_rmw(Cell& c, const core::AnyRmw& m) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    const Word old = detail::paced_cas_rmw<std::atomic<Word>, Policy>(c.word, m);
    Instrument::acquire(&c);
    return old;
  }

  bool compare_exchange(Cell& c, Word& expected, Word desired) const {
    Instrument::release(&c);
    Instrument::contended_rmw(&c.word, KRS_SITE);
    bool ok = c.word.compare_exchange_strong(expected, desired,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    Instrument::acquire(&c);
    return ok;
  }

  Word load(const Cell& c) const {
    Instrument::shared_load(&c.word, KRS_SITE);
    Word v = c.word.load(std::memory_order_acquire);
    Instrument::acquire(&c);
    return v;
  }

  void store(Cell& c, Word v) const {
    Instrument::release(&c);
    Instrument::shared_store(&c.word, KRS_SITE);
    c.word.store(v, std::memory_order_release);
  }
};

using AtomicBackend = BasicAtomicBackend<>;

static_assert(RmwBackend<BasicAtomicBackend<analysis::NoInstrument>>);
static_assert(RmwBackend<AtomicBackend>);

}  // namespace krs::runtime
