// Workload generators (traffic sources) for the simulated machine.
//
// The central experiment workload is the hot-spot model of Pfister & Norton
// [20], which the paper's introduction uses to motivate combining: each
// request goes to one fixed "hot" address with probability h and to a
// uniformly random address otherwise. Even small h congests a non-combining
// network because the tree of switches feeding the hot module saturates.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "proc/processor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace krs::workload {

using core::Addr;
using core::Tick;

/// Issued-vs-offered accounting, common to the rate-controlled sources.
/// `offered` counts the polls where the source HAD work pending (the
/// requested arrival opportunities); `issued` the ops actually released;
/// `throttled` the offered polls the rate gate (open-loop thinning) or the
/// on/off modulation withheld. offered == issued + throttled, so a harness
/// can report achieved vs requested load: under saturation the consumer
/// polls less often, and the shortfall shows up here instead of silently
/// stretching the run.
struct SourceStats {
  std::uint64_t offered = 0;
  std::uint64_t issued = 0;
  std::uint64_t throttled = 0;

  /// Fraction of offered load actually released (1.0 = unthrottled).
  [[nodiscard]] double issue_fraction() const {
    return offered > 0
               ? static_cast<double>(issued) / static_cast<double>(offered)
               : 0.0;
  }
};

/// Produces `op_factory(rng)` operations at hot/uniform addresses, one per
/// call, `total` in all; optionally throttled to an issue probability per
/// cycle (open-loop rate control). stats() exposes issued-vs-offered
/// counts so the harness can report achieved against requested arrival
/// rate.
template <core::Rmw M>
class HotSpotSource final : public proc::TrafficSource<M> {
 public:
  struct Params {
    std::uint64_t total = 1000;       ///< operations to issue
    double hot_fraction = 0.0;        ///< probability of targeting hot_addr
    Addr hot_addr = 0;
    Addr addr_space = 1 << 16;        ///< uniform addresses in [0, addr_space)
    double issue_probability = 1.0;   ///< per-cycle chance a ready op issues
  };

  HotSpotSource(Params p, std::function<M(util::Xoshiro256&)> op_factory,
                std::uint64_t seed)
      : p_(p), op_factory_(std::move(op_factory)), rng_(seed) {
    KRS_EXPECTS(p_.addr_space >= 1);
  }

  std::optional<std::pair<Addr, M>> next(Tick, unsigned) override {
    if (stats_.issued >= p_.total) return std::nullopt;
    ++stats_.offered;  // work was pending this poll
    if (p_.issue_probability < 1.0 && !rng_.chance(p_.issue_probability)) {
      ++stats_.throttled;
      return std::nullopt;
    }
    ++stats_.issued;
    const Addr addr = rng_.chance(p_.hot_fraction)
                          ? p_.hot_addr
                          : rng_.below(p_.addr_space);
    return std::make_pair(addr, op_factory_(rng_));
  }

  [[nodiscard]] bool finished() const override {
    return stats_.issued >= p_.total;
  }

  [[nodiscard]] const SourceStats& stats() const noexcept { return stats_; }

 private:
  Params p_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  SourceStats stats_;
};

/// Bursty open-loop arrivals: an on/off (interrupted-Poisson) modulation of
/// the hot-spot mixture. The source alternates ON and OFF periods with
/// exponentially distributed durations (mean_on / mean_off cycles — the
/// memoryless on/off Markov model); while ON, each poll issues with
/// probability `rate` (Poisson thinning), while OFF nothing issues and
/// nothing is offered. The burst structure is what separates tail latency
/// from throughput: mean load can be modest while ON-period arrival spikes
/// queue at the hot module exactly as §3's model predicts.
template <core::Rmw M>
class BurstySource final : public proc::TrafficSource<M> {
 public:
  struct Params {
    std::uint64_t total = 1000;   ///< operations to issue
    double hot_fraction = 0.0;    ///< probability of targeting hot_addr
    Addr hot_addr = 0;
    Addr addr_space = 1 << 16;    ///< uniform addresses in [0, addr_space)
    double rate = 1.0;            ///< per-poll issue probability while ON
    double mean_on = 64.0;        ///< mean ON-period length, cycles
    double mean_off = 64.0;       ///< mean OFF-period length, cycles
  };

  BurstySource(Params p, std::function<M(util::Xoshiro256&)> op_factory,
               std::uint64_t seed)
      : p_(p), op_factory_(std::move(op_factory)), rng_(seed) {
    KRS_EXPECTS(p_.addr_space >= 1);
    KRS_EXPECTS(p_.mean_on >= 1.0 && p_.mean_off >= 0.0);
    phase_end_ = draw_duration(p_.mean_on);  // start ON at tick 0
  }

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned) override {
    if (stats_.issued >= p_.total) return std::nullopt;
    advance_phase(now);
    if (!on_) return std::nullopt;  // OFF: nothing offered, nothing issued
    ++stats_.offered;
    if (p_.rate < 1.0 && !rng_.chance(p_.rate)) {
      ++stats_.throttled;  // thinned within the burst
      return std::nullopt;
    }
    ++stats_.issued;
    const Addr addr = rng_.chance(p_.hot_fraction)
                          ? p_.hot_addr
                          : rng_.below(p_.addr_space);
    return std::make_pair(addr, op_factory_(rng_));
  }

  [[nodiscard]] bool finished() const override {
    return stats_.issued >= p_.total;
  }

  [[nodiscard]] const SourceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool on() const noexcept { return on_; }

 private:
  void advance_phase(Tick now) {
    while (now >= phase_end_) {
      on_ = !on_;
      phase_end_ += draw_duration(on_ ? p_.mean_on : p_.mean_off);
    }
  }

  /// Exponentially distributed duration with the given mean, ≥ 1 cycle.
  Tick draw_duration(double mean) {
    if (mean <= 1.0) return 1;
    const double u = rng_.uniform();  // [0, 1); guard keeps log() finite
    const double d = -mean * std::log(u > 0.0 ? u : 1e-12);
    return d < 1.0 ? Tick{1} : static_cast<Tick>(d);
  }

  Params p_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  SourceStats stats_;
  bool on_ = true;
  Tick phase_end_ = 0;
};

/// Closed-loop arrivals: `clients` logical clients multiplexed onto this
/// source (one simulated processor), each cycling issue → wait for the
/// reply → think (exponential, mean think_mean cycles) → reissue. Offered
/// load self-limits with service time — the defining closed-loop property:
/// a saturated server slows the clients down instead of growing an
/// unbounded queue, so tail latency and throughput couple through the
/// number of clients, not an external rate knob. Completions are matched
/// to clients FIFO (the per-processor window keeps in-flight ops ordered).
template <core::Rmw M>
class ClosedLoopSource final : public proc::TrafficSource<M> {
 public:
  struct Params {
    std::uint64_t total = 1000;  ///< operations to issue across all clients
    unsigned clients = 1;        ///< logical clients on this processor
    double think_mean = 0.0;     ///< mean think time between ops, cycles
    double hot_fraction = 1.0;   ///< probability of targeting hot_addr
    Addr hot_addr = 0;
    Addr addr_space = 1;         ///< uniform addresses in [0, addr_space)
  };

  ClosedLoopSource(Params p, std::function<M(util::Xoshiro256&)> op_factory,
                   std::uint64_t seed)
      : p_(p), op_factory_(std::move(op_factory)), rng_(seed),
        ready_at_(p_.clients < 1 ? 1 : p_.clients, Tick{0}),
        waiting_(ready_at_.size(), false) {
    KRS_EXPECTS(p_.addr_space >= 1);
  }

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned) override {
    if (stats_.issued >= p_.total) return std::nullopt;
    // A client offers work iff it is neither thinking nor awaiting a reply;
    // round-robin scan keeps issue order fair across clients.
    const std::size_t n = ready_at_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t c = (next_client_ + probe) % n;
      if (waiting_[c] || ready_at_[c] > now) continue;
      ++stats_.offered;
      ++stats_.issued;  // closed loop: an offering client always issues
      waiting_[c] = true;
      pending_.push_back(c);
      next_client_ = (c + 1) % n;
      const Addr addr = rng_.chance(p_.hot_fraction)
                            ? p_.hot_addr
                            : rng_.below(p_.addr_space);
      return std::make_pair(addr, op_factory_(rng_));
    }
    return std::nullopt;
  }

  void on_complete(core::ReqId, const typename M::value_type&,
                   Tick now) override {
    // Replies return in issue order within one processor's window, so the
    // FIFO of in-flight clients matches completions to issuers.
    KRS_EXPECTS(!pending_.empty());
    const std::size_t c = pending_.front();
    pending_.pop_front();
    waiting_[c] = false;
    ++stats_.completed;
    ready_at_[c] = now + draw_think();
  }

  [[nodiscard]] bool finished() const override {
    return stats_.issued >= p_.total && pending_.empty();
  }

  struct ClosedLoopStats : SourceStats {
    std::uint64_t completed = 0;
  };
  [[nodiscard]] const ClosedLoopStats& stats() const noexcept {
    return stats_;
  }

 private:
  Tick draw_think() {
    if (p_.think_mean <= 0.0) return 0;
    const double u = rng_.uniform();
    const double d = -p_.think_mean * std::log(u > 0.0 ? u : 1e-12);
    return static_cast<Tick>(d);
  }

  Params p_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  ClosedLoopStats stats_;
  std::vector<Tick> ready_at_;       ///< per-client think-until tick
  std::vector<bool> waiting_;        ///< per-client awaiting-reply flag
  std::deque<std::size_t> pending_;  ///< in-flight clients, FIFO
  std::size_t next_client_ = 0;
};

/// Every operation goes to the same address — the pure hot-spot used for
/// the Figure-1 demonstration and the combining-degree experiments.
template <core::Rmw M>
class SingleAddressSource final : public proc::TrafficSource<M> {
 public:
  SingleAddressSource(Addr addr, std::uint64_t total,
                      std::function<M(util::Xoshiro256&)> op_factory,
                      std::uint64_t seed)
      : addr_(addr), total_(total), op_factory_(std::move(op_factory)),
        rng_(seed) {}

  std::optional<std::pair<Addr, M>> next(Tick, unsigned) override {
    if (issued_ >= total_) return std::nullopt;
    ++issued_;
    return std::make_pair(addr_, op_factory_(rng_));
  }

  [[nodiscard]] bool finished() const override { return issued_ >= total_; }

 private:
  Addr addr_;
  std::uint64_t total_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  std::uint64_t issued_ = 0;
};

/// An explicit script of (issue-at-or-after tick, addr, op) triples, in
/// order. Used by directed tests. An item marked `fence_before` models the
/// RP3 fence instruction (§3.2): it is withheld until every earlier access
/// of this processor has completed.
template <core::Rmw M>
class ScriptedSource final : public proc::TrafficSource<M> {
 public:
  struct Item {
    Tick not_before = 0;
    Addr addr = 0;
    M f{};
    bool fence_before = false;
  };

  explicit ScriptedSource(std::deque<Item> items) : items_(std::move(items)) {}

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned outstanding) override {
    if (items_.empty() || items_.front().not_before > now) return std::nullopt;
    if (items_.front().fence_before && outstanding > 0) return std::nullopt;
    Item it = std::move(items_.front());
    items_.pop_front();
    return std::make_pair(it.addr, std::move(it.f));
  }

  [[nodiscard]] bool finished() const override { return items_.empty(); }

 private:
  std::deque<Item> items_;
};

/// Closed-loop source for guarded families (full/empty, data-level sync)
/// under the §5.5 BUSY-WAITING model: each scripted operation is reissued
/// (after a fixed backoff) until its guard succeeds, then the source moves
/// to the next operation. Compare with ModuleConfig::
/// queue_failed_conditionals, where the memory parks the request instead
/// and no retry traffic exists.
template <core::Rmw M>
  requires requires(const M& f, const typename M::value_type& v) {
    { f.succeeded(v) } -> std::convertible_to<bool>;
  }
class RetryingSource final : public proc::TrafficSource<M> {
 public:
  struct Item {
    Addr addr = 0;
    M f{};
  };

  RetryingSource(std::deque<Item> items, Tick backoff = 4)
      : items_(std::move(items)), backoff_(backoff) {}

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned) override {
    if (items_.empty() || !ready_ || now < not_before_) return std::nullopt;
    ready_ = false;
    return std::make_pair(items_.front().addr, items_.front().f);
  }

  void on_complete(core::ReqId, const typename M::value_type& old_value,
                   Tick now) override {
    ++attempts_;
    if (items_.front().f.succeeded(old_value)) {
      items_.pop_front();
    } else {
      not_before_ = now + backoff_;  // busy-wait: try again later
    }
    ready_ = true;
  }

  [[nodiscard]] bool finished() const override { return items_.empty(); }

  /// Total operations issued, including failed attempts — the §5.5
  /// network-traffic cost of busy waiting.
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  std::deque<Item> items_;
  Tick backoff_;
  Tick not_before_ = 0;
  bool ready_ = true;
  std::uint64_t attempts_ = 0;
};

}  // namespace krs::workload
