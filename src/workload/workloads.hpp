// Workload generators (traffic sources) for the simulated machine.
//
// The central experiment workload is the hot-spot model of Pfister & Norton
// [20], which the paper's introduction uses to motivate combining: each
// request goes to one fixed "hot" address with probability h and to a
// uniformly random address otherwise. Even small h congests a non-combining
// network because the tree of switches feeding the hot module saturates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "proc/processor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace krs::workload {

using core::Addr;
using core::Tick;

/// Produces `op_factory(rng)` operations at hot/uniform addresses, one per
/// call, `total` in all; optionally throttled to an issue probability per
/// cycle (open-loop rate control).
template <core::Rmw M>
class HotSpotSource final : public proc::TrafficSource<M> {
 public:
  struct Params {
    std::uint64_t total = 1000;       ///< operations to issue
    double hot_fraction = 0.0;        ///< probability of targeting hot_addr
    Addr hot_addr = 0;
    Addr addr_space = 1 << 16;        ///< uniform addresses in [0, addr_space)
    double issue_probability = 1.0;   ///< per-cycle chance a ready op issues
  };

  HotSpotSource(Params p, std::function<M(util::Xoshiro256&)> op_factory,
                std::uint64_t seed)
      : p_(p), op_factory_(std::move(op_factory)), rng_(seed) {
    KRS_EXPECTS(p_.addr_space >= 1);
  }

  std::optional<std::pair<Addr, M>> next(Tick, unsigned) override {
    if (issued_ >= p_.total) return std::nullopt;
    if (p_.issue_probability < 1.0 && !rng_.chance(p_.issue_probability)) {
      return std::nullopt;
    }
    ++issued_;
    const Addr addr = rng_.chance(p_.hot_fraction)
                          ? p_.hot_addr
                          : rng_.below(p_.addr_space);
    return std::make_pair(addr, op_factory_(rng_));
  }

  [[nodiscard]] bool finished() const override { return issued_ >= p_.total; }

 private:
  Params p_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  std::uint64_t issued_ = 0;
};

/// Every operation goes to the same address — the pure hot-spot used for
/// the Figure-1 demonstration and the combining-degree experiments.
template <core::Rmw M>
class SingleAddressSource final : public proc::TrafficSource<M> {
 public:
  SingleAddressSource(Addr addr, std::uint64_t total,
                      std::function<M(util::Xoshiro256&)> op_factory,
                      std::uint64_t seed)
      : addr_(addr), total_(total), op_factory_(std::move(op_factory)),
        rng_(seed) {}

  std::optional<std::pair<Addr, M>> next(Tick, unsigned) override {
    if (issued_ >= total_) return std::nullopt;
    ++issued_;
    return std::make_pair(addr_, op_factory_(rng_));
  }

  [[nodiscard]] bool finished() const override { return issued_ >= total_; }

 private:
  Addr addr_;
  std::uint64_t total_;
  std::function<M(util::Xoshiro256&)> op_factory_;
  util::Xoshiro256 rng_;
  std::uint64_t issued_ = 0;
};

/// An explicit script of (issue-at-or-after tick, addr, op) triples, in
/// order. Used by directed tests. An item marked `fence_before` models the
/// RP3 fence instruction (§3.2): it is withheld until every earlier access
/// of this processor has completed.
template <core::Rmw M>
class ScriptedSource final : public proc::TrafficSource<M> {
 public:
  struct Item {
    Tick not_before = 0;
    Addr addr = 0;
    M f{};
    bool fence_before = false;
  };

  explicit ScriptedSource(std::deque<Item> items) : items_(std::move(items)) {}

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned outstanding) override {
    if (items_.empty() || items_.front().not_before > now) return std::nullopt;
    if (items_.front().fence_before && outstanding > 0) return std::nullopt;
    Item it = std::move(items_.front());
    items_.pop_front();
    return std::make_pair(it.addr, std::move(it.f));
  }

  [[nodiscard]] bool finished() const override { return items_.empty(); }

 private:
  std::deque<Item> items_;
};

/// Closed-loop source for guarded families (full/empty, data-level sync)
/// under the §5.5 BUSY-WAITING model: each scripted operation is reissued
/// (after a fixed backoff) until its guard succeeds, then the source moves
/// to the next operation. Compare with ModuleConfig::
/// queue_failed_conditionals, where the memory parks the request instead
/// and no retry traffic exists.
template <core::Rmw M>
  requires requires(const M& f, const typename M::value_type& v) {
    { f.succeeded(v) } -> std::convertible_to<bool>;
  }
class RetryingSource final : public proc::TrafficSource<M> {
 public:
  struct Item {
    Addr addr = 0;
    M f{};
  };

  RetryingSource(std::deque<Item> items, Tick backoff = 4)
      : items_(std::move(items)), backoff_(backoff) {}

  std::optional<std::pair<Addr, M>> next(Tick now, unsigned) override {
    if (items_.empty() || !ready_ || now < not_before_) return std::nullopt;
    ready_ = false;
    return std::make_pair(items_.front().addr, items_.front().f);
  }

  void on_complete(core::ReqId, const typename M::value_type& old_value,
                   Tick now) override {
    ++attempts_;
    if (items_.front().f.succeeded(old_value)) {
      items_.pop_front();
    } else {
      not_before_ = now + backoff_;  // busy-wait: try again later
    }
    ready_ = true;
  }

  [[nodiscard]] bool finished() const override { return items_.empty(); }

  /// Total operations issued, including failed attempts — the §5.5
  /// network-traffic cost of busy waiting.
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  std::deque<Item> items_;
  Tick backoff_;
  Tick not_before_ = 0;
  bool ready_ = true;
  std::uint64_t attempts_ = 0;
};

}  // namespace krs::workload
