// Coordination scenarios written as path expressions.
//
// The paper's §5.6 sketches data-level synchronization and points at path
// expressions as the protocol language; this header writes the classic
// scenarios DOWN as expressions, compiles them (core/path_expr.hpp) to
// minimal automata, and hands out the guarded operations as word-level
// RMWs (core::DlsWordOp) any substrate can serve (runtime/dls_service.hpp).
//
// Each scenario documents the conservation invariant its automaton
// enforces — the property the multi-thread tests check after hammering
// the cell from 2/4/8 threads:
//
//   ProducerConsumerPath  `put (put get)* get`
//       3 states = buffer occupancy 0..2. Acked puts minus acked gets
//       equals the final occupancy; a get's reply value is the most
//       recently acked put's value (the cell is a depth-2 handoff slot).
//
//   ReadersWritersPath    `w_open w_append* w_close | r_open (r_open r_close)* r_close`
//       4 states: idle / writer-active / one-reader / two-readers.
//       Writers exclude everyone (w_append is only admitted inside an
//       acked w_open session); up to two readers share. Acked opens
//       minus acked closes equals the occupancy encoded by the final
//       state; closes never outrun opens.
//
//   FileSessionPath       `open (read | append)* close`
//       2 states = the §5.5 full/empty pair: `open` flips empty→full
//       like a lock acquire, everything else is guarded by full. Acked
//       opens minus acked closes is 0 or 1 at every instant.
#pragma once

#include <string_view>

#include "core/dls.hpp"
#include "core/path_expr.hpp"
#include "util/assert.hpp"

namespace krs::workload {

/// A compiled path-expression protocol: owns the automaton, exposes the
/// operations. Construction asserts the expression compiles — these are
/// library-fixed protocols, not user input.
class CompiledPath {
 public:
  explicit CompiledPath(std::string_view expr) {
    core::PathCompiler pc;
    auto a = pc.compile(expr);
    KRS_ASSERT(a.has_value());
    automaton_ = *a;
  }

  [[nodiscard]] const core::PathAutomaton& automaton() const noexcept {
    return automaton_;
  }
  [[nodiscard]] unsigned states() const noexcept {
    return automaton_.states();
  }

  [[nodiscard]] core::DlsWordOp op(std::string_view name) const {
    return automaton_.load_op(name);
  }
  [[nodiscard]] core::DlsWordOp store(std::string_view name,
                                      core::Word v) const {
    return automaton_.store_op(name, v);
  }

 private:
  core::PathAutomaton automaton_;
};

/// Depth-2 producer/consumer handoff slot. State = occupancy (0, 1, 2).
class ProducerConsumerPath : public CompiledPath {
 public:
  static constexpr std::string_view kExpr = "put (put get)* get";

  ProducerConsumerPath() : CompiledPath(kExpr) {
    KRS_ASSERT(states() == 3);
  }

  /// Deposit v; admitted while occupancy < 2.
  [[nodiscard]] core::DlsWordOp put(core::Word v) const {
    return store("put", v);
  }
  /// Remove; admitted while occupancy > 0. The reply's prior value is the
  /// latest acked put.
  [[nodiscard]] core::DlsWordOp get() const { return op("get"); }

  /// Occupancy is literally the automaton state.
  [[nodiscard]] static unsigned occupancy(const core::DlsCell& c) noexcept {
    return c.state;
  }
};

/// One writer XOR up to two readers. States: 0 idle, then writer-active
/// and the reader-count states as the compiler numbers them.
class ReadersWritersPath : public CompiledPath {
 public:
  static constexpr std::string_view kExpr =
      "w_open w_append* w_close | r_open (r_open r_close)* r_close";

  ReadersWritersPath() : CompiledPath(kExpr) {
    KRS_ASSERT(states() == 4);
  }

  [[nodiscard]] core::DlsWordOp writer_open() const { return op("w_open"); }
  [[nodiscard]] core::DlsWordOp writer_append(core::Word v) const {
    return store("w_append", v);
  }
  [[nodiscard]] core::DlsWordOp writer_close() const { return op("w_close"); }
  [[nodiscard]] core::DlsWordOp reader_open() const { return op("r_open"); }
  [[nodiscard]] core::DlsWordOp reader_close() const { return op("r_close"); }

  /// Opens-minus-closes encoded by a state: idle 0, writer or one reader
  /// 1, two readers 2. Derived from the automaton rather than hard-coded
  /// state numbers.
  [[nodiscard]] unsigned occupancy(unsigned state) const {
    if (state == 0) return 0;
    // Two readers iff r_close leads to a state that still admits r_close.
    const auto& a = automaton();
    if (a.admits("r_close", state) &&
        a.admits("r_close", a.next_of("r_close", state))) {
      return 2;
    }
    return 1;
  }
};

/// The §5.5 full/empty cell as the 2-state path `open (read | append)*
/// close` — the smallest protocol the automaton family embeds.
class FileSessionPath : public CompiledPath {
 public:
  static constexpr std::string_view kExpr = "open (read | append)* close";

  FileSessionPath() : CompiledPath(kExpr) {
    KRS_ASSERT(states() == 2);
  }

  [[nodiscard]] core::DlsWordOp open() const { return op("open"); }
  [[nodiscard]] core::DlsWordOp read() const { return op("read"); }
  [[nodiscard]] core::DlsWordOp append(core::Word v) const {
    return store("append", v);
  }
  [[nodiscard]] core::DlsWordOp close() const { return op("close"); }
};

}  // namespace krs::workload
