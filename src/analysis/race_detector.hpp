// A FastTrack-style happens-before race detector (Flanagan & Freund, PLDI
// 2009; the dynamic half of the Helgrind/TSan lineage) for the real-thread
// runtime layer.
//
// The detector consumes an event stream —
//   on_read / on_write          data accesses to shadowed addresses,
//   on_acquire / on_release     synchronization on an opaque sync object
//                               (a lock, a barrier, a full/empty cell),
//   fork / join                 thread creation and termination edges —
// and maintains the happens-before order with vector clocks. Per shadowed
// address it keeps the last write as an *epoch* c@t and the reads as an
// epoch that inflates to a full vector clock only when reads are genuinely
// concurrent (the FastTrack adaptive representation): the common same-
// thread / ordered case is O(1), the read-share case O(threads).
//
// Two accesses to the same address race iff at least one is a write and
// neither happens-before the other. A detected race is *reported* (with
// both access sites) and then the shadow state is updated as if the access
// were ordered, so one bug yields one report, not a cascade.
//
// The detector is a passive library: nothing in the runtime calls it unless
// instrumentation is switched on (analysis/instrument.hpp), and the
// deterministic explorer (verify/race_explorer.hpp) drives it with explicit
// thread ids, making verdicts reproducible without real concurrency.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "util/assert.hpp"

namespace krs::analysis {

/// Source label for an access, carried into race reports. Use KRS_SITE to
/// capture file:line automatically.
struct AccessSite {
  const char* label = "?";
};

#define KRS_SITE_STRINGIZE2(x) #x
#define KRS_SITE_STRINGIZE(x) KRS_SITE_STRINGIZE2(x)
#define KRS_SITE \
  ::krs::analysis::AccessSite { __FILE__ ":" KRS_SITE_STRINGIZE(__LINE__) }

/// One recorded access, as it appears in a race report.
struct Access {
  Tid tid = 0;
  ClockVal clock = 0;
  bool is_write = false;
  AccessSite site{};
};

struct RaceReport {
  std::uintptr_t addr = 0;
  Access prior;    ///< the access already in the shadow state
  Access current;  ///< the access that exposed the race

  [[nodiscard]] std::string to_string() const {
    const auto acc = [](const Access& a) {
      return std::string(a.is_write ? "write" : "read") + " by T" +
             std::to_string(a.tid) + " at " + a.site.label + " (clock " +
             std::to_string(a.clock) + ")";
    };
    return "data race on 0x" + [this] {
      char buf[20];
      std::snprintf(buf, sizeof buf, "%llx",
                    static_cast<unsigned long long>(addr));
      return std::string(buf);
    }() + ": " + acc(prior) + " is concurrent with " + acc(current);
  }
};

struct DetectorStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t epoch_fast_path = 0;  ///< same-epoch accesses: O(1), no check
  std::uint64_t read_inflations = 0;  ///< exclusive→shared read promotions
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  // Segment merging (DRD-style): a joined thread's segment is merged into
  // its joiner and its Tid slot retired for reuse, so clock state stays
  // O(peak live threads) under churn instead of O(total threads ever).
  std::uint64_t segments_merged = 0;  ///< joins that retired a Tid slot
  std::uint64_t tid_reuses = 0;       ///< registrations served from retired slots
  std::uint64_t live_threads = 0;     ///< currently registered, not retired
  std::uint64_t peak_live_threads = 0;
};

class RaceDetector {
 public:
  explicit RaceDetector(std::size_t max_reports = 64)
      : max_reports_(max_reports) {}

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Register a thread with no happens-before history (a root thread).
  Tid new_thread() {
    std::scoped_lock lk(m_);
    return make_thread_locked(VectorClock{});
  }

  /// Register a thread forked by `parent`: everything the parent did so
  /// far happens-before everything the child will do.
  Tid fork(Tid parent) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(parent < threads_.size());
    VectorClock child = threads_[parent].clock;
    const Tid c = make_thread_locked(std::move(child));
    // The parent's subsequent accesses must NOT be ordered before the
    // child's via this edge: advance the parent past the snapshot.
    threads_[parent].clock.tick(parent);
    return c;
  }

  /// Join edge: everything `child` did happens-before whatever `parent`
  /// does next. The child's segment is now MERGED into the parent's
  /// history (DRD's segment-merge step), so its Tid slot is retired: a
  /// later registration whose initial clock covers the child's final
  /// epoch may reuse the slot, keeping thread/clock state bounded by the
  /// peak number of LIVE threads under sequential churn.
  void join(Tid parent, Tid child) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(parent < threads_.size() && child < threads_.size());
    KRS_EXPECTS(threads_[child].live);
    threads_[parent].clock.join(threads_[child].clock);
    threads_[child].clock.tick(child);
    threads_[child].live = false;
    // The reuse guard: the slot's clock component after the tick is
    // strictly above every epoch the dead segment ever published.
    threads_[child].retired_at = threads_[child].clock.get(child);
    free_tids_.push_back(child);
    ++stats_.segments_merged;
    --stats_.live_threads;
  }

  /// t acquires sync object s: t's clock absorbs every release of s.
  void on_acquire(Tid t, const void* s) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(t < threads_.size());
    ++stats_.acquires;
    threads_[t].clock.join(syncs_[s]);
  }

  /// t releases sync object s: s's clock absorbs t's history, and t's own
  /// component advances so later accesses are not dragged under the edge.
  void on_release(Tid t, const void* s) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(t < threads_.size());
    ++stats_.releases;
    syncs_[s].join(threads_[t].clock);
    threads_[t].clock.tick(t);
  }

  void on_read(Tid t, const void* addr, AccessSite site = {}) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(t < threads_.size());
    ++stats_.reads;
    const VectorClock& c = threads_[t].clock;
    VarState& v = shadow_[reinterpret_cast<std::uintptr_t>(addr)];
    const Epoch e = c.epoch_of(t);
    // Epoch fast path: this thread already read at this clock.
    if ((!v.read_shared && v.read == e) ||
        (v.read_shared && v.read_vc.get(t) == e.clock)) {
      ++stats_.epoch_fast_path;
      return;
    }
    // write→read check.
    if (!v.write.none() && !c.covers(v.write)) {
      report_locked(addr, v.write_access, {t, e.clock, false, site});
    }
    // Record the read: keep the cheap epoch while reads stay ordered,
    // inflate to a vector clock once two reads are concurrent.
    if (!v.read_shared) {
      if (v.read.none() || c.covers(v.read)) {
        v.read = e;
        v.read_access = {t, e.clock, false, site};
      } else {
        ++stats_.read_inflations;
        v.read_shared = true;
        v.read_vc.set(v.read.tid, v.read.clock);
        v.read_sites[v.read.tid] = v.read_access;
        v.read_vc.set(t, e.clock);
        v.read_sites[t] = {t, e.clock, false, site};
      }
    } else {
      v.read_vc.set(t, e.clock);
      v.read_sites[t] = {t, e.clock, false, site};
    }
  }

  void on_write(Tid t, const void* addr, AccessSite site = {}) {
    std::scoped_lock lk(m_);
    KRS_EXPECTS(t < threads_.size());
    ++stats_.writes;
    const VectorClock& c = threads_[t].clock;
    VarState& v = shadow_[reinterpret_cast<std::uintptr_t>(addr)];
    const Epoch e = c.epoch_of(t);
    // Epoch fast path: same-epoch write.
    if (v.write == e) {
      ++stats_.epoch_fast_path;
      return;
    }
    const Access me{t, e.clock, true, site};
    // write→write check.
    if (!v.write.none() && !c.covers(v.write)) {
      report_locked(addr, v.write_access, me);
    }
    // read→write checks (exclusive epoch or full vector).
    if (!v.read_shared) {
      if (!v.read.none() && !c.covers(v.read)) {
        report_locked(addr, v.read_access, me);
      }
    } else {
      for (Tid u = 0; u < static_cast<Tid>(v.read_vc.size()); ++u) {
        const ClockVal rc = v.read_vc.get(u);
        if (rc != 0 && rc > c.get(u)) {
          const auto it = v.read_sites.find(u);
          report_locked(addr, it != v.read_sites.end() ? it->second
                                                       : Access{u, rc, false, {}},
                        me);
        }
      }
      // Writes collapse the shared-read state back to the cheap form.
      v.read_shared = false;
      v.read_vc = VectorClock{};
      v.read_sites.clear();
      v.read = Epoch{};
    }
    v.write = e;
    v.write_access = me;
  }

  [[nodiscard]] std::vector<RaceReport> races() const {
    std::scoped_lock lk(m_);
    return reports_;
  }

  [[nodiscard]] std::size_t race_count() const {
    std::scoped_lock lk(m_);
    return reports_.size();
  }

  [[nodiscard]] bool clean() const { return race_count() == 0; }

  [[nodiscard]] DetectorStats stats() const {
    std::scoped_lock lk(m_);
    return stats_;
  }

  /// Thread SLOTS allocated (live + retired-awaiting-reuse). With segment
  /// merging this is bounded by the peak live-thread count under
  /// sequential churn, not by the total number of threads ever created.
  [[nodiscard]] std::size_t threads() const {
    std::scoped_lock lk(m_);
    return threads_.size();
  }

  /// Largest vector-clock component count over all thread slots — the
  /// memory-bound the segment-merge churn test pins: clock entries stay
  /// O(peak live threads) because retired slots are reused, never grown
  /// past.
  [[nodiscard]] std::size_t clock_entries() const {
    std::scoped_lock lk(m_);
    std::size_t n = 0;
    for (const ThreadState& ts : threads_) {
      n = std::max(n, ts.clock.components());
    }
    return n;
  }

  /// Unique per-detector id, used by the thread-local tid cache to survive
  /// address reuse between consecutive detectors (analysis/instrument.hpp).
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

 private:
  struct ThreadState {
    VectorClock clock;
    bool live = true;
    ClockVal retired_at = 0;  ///< clock floor a reusing tenant must cover
  };

  /// FastTrack shadow word: last write as an epoch; reads as an epoch
  /// while totally ordered, a vector clock once concurrent.
  struct VarState {
    Epoch write{};
    Access write_access{};
    Epoch read{};
    Access read_access{};
    bool read_shared = false;
    VectorClock read_vc;
    std::unordered_map<Tid, Access> read_sites;
  };

  Tid make_thread_locked(VectorClock initial) {
    // Try to reuse a retired slot — SOUND only when the new thread is
    // already ordered after everything the dead tenant did, i.e. its
    // initial clock covers the retired segment's final epoch (true for a
    // fork whose parent joined the dead thread; never true for a root
    // thread, whose empty clock covers nothing). Clocks continue from the
    // retired value, never reset, so epochs c@t of the dead tenant stay
    // distinguishable from the new one's everywhere in the shadow state.
    for (std::size_t i = 0; i < free_tids_.size(); ++i) {
      const Tid t = free_tids_[i];
      const ClockVal floor_ = threads_[t].retired_at;
      if (initial.get(t) + 1 < floor_) continue;  // unordered: unsound
      free_tids_.erase(free_tids_.begin() + static_cast<std::ptrdiff_t>(i));
      initial.set(t, std::max(initial.get(t), floor_) + 1);
      threads_[t] = {std::move(initial), true, 0};
      ++stats_.tid_reuses;
      ++stats_.live_threads;
      stats_.peak_live_threads =
          std::max(stats_.peak_live_threads, stats_.live_threads);
      return t;
    }
    const Tid t = static_cast<Tid>(threads_.size());
    initial.set(t, 1);  // clocks start at 1; 0 means "never"
    threads_.push_back({std::move(initial), true, 0});
    ++stats_.live_threads;
    stats_.peak_live_threads =
        std::max(stats_.peak_live_threads, stats_.live_threads);
    return t;
  }

  void report_locked(std::uintptr_t addr, const Access& prior,
                     const Access& current) {
    if (reports_.size() < max_reports_) {
      reports_.push_back({addr, prior, current});
    }
  }

  void report_locked(const void* addr, const Access& prior,
                     const Access& current) {
    report_locked(reinterpret_cast<std::uintptr_t>(addr), prior, current);
  }

  static std::uint64_t next_uid() noexcept {
    static std::atomic<std::uint64_t> n{1};
    return n.fetch_add(1, std::memory_order_relaxed);
  }

  mutable std::mutex m_;
  const std::size_t max_reports_;
  const std::uint64_t uid_ = next_uid();
  std::vector<ThreadState> threads_;
  std::vector<Tid> free_tids_;  ///< retired slots awaiting a covered tenant
  std::unordered_map<const void*, VectorClock> syncs_;
  std::unordered_map<std::uintptr_t, VarState> shadow_;
  std::vector<RaceReport> reports_;
  DetectorStats stats_{};
};

}  // namespace krs::analysis
