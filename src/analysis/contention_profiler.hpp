// A shadow-memory contention profiler: the "find the hot spot" half of the
// paper's argument. The paper proves that combinable RMW traffic to ONE
// shared word is what serializes a shared-memory multiprocessor (§1, §3)
// and that a combining structure absorbs it — but knowing WHICH word is
// hot in a real program is a dynamic-analysis problem, the same one
// Valgrind-class tools (memcheck, DRD, cachegrind) solve with shadow
// memory at binary level. This header is that tool at library level:
// every instrumented primitive feeds its shared-word traffic through the
// contended_rmw / shared_load / shared_store hook family
// (analysis/instrument.hpp), and the profiler buckets it by cache line.
//
// Per line it records:
//   * access counts by kind (RMW / load / store) and by thread,
//   * CONFLICTS — consecutive accesses by different threads, the shadow
//     analogue of a coherence-protocol ownership transfer,
//   * per-site attribution (file:line via AccessSite) with the set of
//     8-byte offsets each site touched, which yields a FALSE-SHARING flag
//     when distinct sites hit distinct offsets of one line: the accesses
//     conflict in the coherence protocol without conflicting in the data,
//   * an inter-access gap histogram (in global event-sequence distance):
//     a tightly clustered gap distribution is the §1 hot-spot regime, a
//     sparse one is background traffic.
//
// On top sits the combining-opportunity analyzer. Under the paper's wave
// model (§3: simultaneous requests to one cell combine pairwise in the
// network; §4.2: the software tree does the same), when M threads issue
// balanced traffic at a line, a combining cell serves each wave with ONE
// root application regardless of M — the root still sees the slowest
// thread's request stream, so of N total accesses about N·max_i(share_i)
// must reach the word and the rest are absorbed by decombination:
//
//   absorbable ≈ 1 − max_thread_share      (= (M−1)/M when balanced)
//
// Each absorbed access also skips a full memory round trip, which the
// simulated machine (runtime/sim_backend.hpp, charge_round_trip_locked)
// prices at 2·log2(P) + 1 + mem-latency cycles — the §3/§6 cost model —
// so the report can rank lines by estimated absorbed traffic and say
// "N call sites, M threads, conflict rate r → a combining cell would
// absorb ≈X% of this line's traffic".
//
// The profiler is passive and mutex-serialized like the race detector:
// nothing feeds it unless a ScopedProfiler is installed, and the hooks
// are free-function no-ops otherwise. Thread identity defaults to a
// process-wide auto id per OS thread; deterministic drivers (the
// krs_profile CLI's wave mode, scripted tests) can pin a VIRTUAL tid with
// ScopedProfileTid / set_profile_tid so verdicts are schedule-free.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/race_detector.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"

namespace krs::analysis {

enum class AccessKind : unsigned char { kRmw, kLoad, kStore };

// ---- profiler thread identity ----------------------------------------------
//
// Independent of the race detector's Tid space: the profiler only needs
// "same thread or not", and must work with no detector installed.

inline constexpr std::uint32_t kProfileTidAuto = 0xffffffffu;

namespace detail {

inline std::uint32_t& profile_tid_override() noexcept {
  thread_local std::uint32_t t = kProfileTidAuto;
  return t;
}

inline std::uint32_t profile_tid_auto() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  thread_local const std::uint32_t id =
      counter.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

/// This thread's profiler id: the virtual override if one is set, else a
/// dense process-wide auto id assigned on first use.
inline std::uint32_t profile_self_tid() noexcept {
  const std::uint32_t o = detail::profile_tid_override();
  return o != kProfileTidAuto ? o : detail::profile_tid_auto();
}

/// Set (or, with kProfileTidAuto, clear) this thread's virtual profiler
/// tid; returns the previous override. Deterministic drivers switch the
/// virtual tid per logical issuer so conflict counts are schedule-free.
inline std::uint32_t set_profile_tid(std::uint32_t t) noexcept {
  std::uint32_t& slot = detail::profile_tid_override();
  const std::uint32_t prev = slot;
  slot = t;
  return prev;
}

/// RAII form of set_profile_tid for scoped scripted streams.
class ScopedProfileTid {
 public:
  explicit ScopedProfileTid(std::uint32_t t) : prev_(set_profile_tid(t)) {}
  ~ScopedProfileTid() { set_profile_tid(prev_); }
  ScopedProfileTid(const ScopedProfileTid&) = delete;
  ScopedProfileTid& operator=(const ScopedProfileTid&) = delete;

 private:
  std::uint32_t prev_;
};

// ---- configuration and report shapes ---------------------------------------

struct ProfilerConfig {
  /// log2 of the line size accesses are bucketed by (6 → 64-byte lines,
  /// the kCacheLine granule the runtime pads to).
  unsigned line_shift = 6;
  /// A line is HOT when it has at least this many accesses...
  std::uint64_t hot_min_accesses = 16;
  /// ...from at least this many distinct threads.
  unsigned hot_min_threads = 2;
  /// Sites listed per line in the report (all sites are counted).
  std::size_t top_sites = 4;
  /// Memory-module latency term of the §3/§6 round-trip cost model
  /// (2·log2 P + 1 + latency cycles per request), matching the sim
  /// backend's mem::ModuleConfig default.
  std::uint64_t mem_latency = 2;
};

/// One call site's share of a line's traffic.
struct SiteProfile {
  std::string site;           ///< AccessSite label (file:line)
  std::uint64_t count = 0;    ///< accesses from this site
  std::uint8_t offsets = 0;   ///< bitmask of touched 8-byte words in line
};

/// One cache line's summary, as ranked by the opportunity analyzer.
struct LineProfile {
  std::uintptr_t base = 0;  ///< line base address (addr >> shift << shift)
  std::uint64_t accesses = 0;
  std::uint64_t rmws = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t conflicts = 0;  ///< consecutive accesses by different threads
  unsigned threads = 0;         ///< distinct tids seen
  unsigned sites = 0;           ///< distinct call sites seen
  bool hot = false;
  bool false_sharing = false;
  double conflict_rate = 0.0;     ///< conflicts / (accesses − 1)
  double max_thread_share = 1.0;  ///< dominant thread's share of accesses
  double absorbable = 0.0;        ///< 1 − max_thread_share (0 if 1 thread)
  double est_absorbed_ops = 0.0;  ///< absorbable · accesses
  double est_cycles_saved = 0.0;  ///< est_absorbed_ops · round-trip cycles
  double gap_mean = 0.0;          ///< mean inter-access distance (events)
  std::uint64_t gap_p50 = 0;
  std::uint64_t gap_p99 = 0;
  std::vector<SiteProfile> top_sites;

  /// The opportunity analyzer's one-line verdict for this line.
  [[nodiscard]] std::string opportunity() const {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%u site%s, %u thread%s, conflict rate %.2f -> a combining "
                  "cell would absorb ~%.0f%% of traffic (~%.0f of %llu ops, "
                  "~%.0f cycles in the sim cost model)",
                  sites, sites == 1 ? "" : "s", threads,
                  threads == 1 ? "" : "s", conflict_rate, absorbable * 100.0,
                  est_absorbed_ops,
                  static_cast<unsigned long long>(accesses), est_cycles_saved);
    return buf;
  }
};

struct ContentionReport {
  std::vector<LineProfile> lines;  ///< ranked: est_absorbed_ops desc
  std::uint64_t total_accesses = 0;
  std::uint64_t total_conflicts = 0;
  std::size_t hot_lines = 0;  ///< lines meeting the hot thresholds

  /// Human-readable report: the top `max_lines` ranked lines with their
  /// combining-opportunity verdicts.
  [[nodiscard]] std::string to_string(std::size_t max_lines = 10) const;

  /// Machine-readable JSON object (no trailing newline). The krs_profile
  /// CLI wraps per-backend reports in a "krs-profile-v1" document that
  /// bench/harness/normalize.py folds into the perf trajectory.
  [[nodiscard]] std::string to_json() const;
};

// ---- the profiler ----------------------------------------------------------

class ContentionProfiler {
 public:
  explicit ContentionProfiler(ProfilerConfig cfg = {}) : cfg_(cfg) {}

  ContentionProfiler(const ContentionProfiler&) = delete;
  ContentionProfiler& operator=(const ContentionProfiler&) = delete;

  void on_access(std::uint32_t tid, const void* addr, AccessKind kind,
                 AccessSite site = {}) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t line = a >> cfg_.line_shift;
    const unsigned word_in_line =
        static_cast<unsigned>((a - (line << cfg_.line_shift)) >> 3);
    std::scoped_lock lk(m_);
    const std::uint64_t seq = ++seq_;
    Bucket& b = shadow_[line];
    ++b.accesses;
    switch (kind) {
      case AccessKind::kRmw: ++b.rmws; break;
      case AccessKind::kLoad: ++b.loads; break;
      case AccessKind::kStore: ++b.stores; break;
    }
    if (b.last_tid != kProfileTidAuto && b.last_tid != tid) ++b.conflicts;
    if (b.last_seq != 0) b.gaps.add(seq - b.last_seq);
    b.last_tid = tid;
    b.last_seq = seq;
    ++b.per_thread[tid];
    SiteAgg& s = b.sites[site.label != nullptr ? site.label : "?"];
    ++s.count;
    s.offsets |= static_cast<std::uint8_t>(1u << (word_in_line & 7));
  }

  void on_rmw(std::uint32_t tid, const void* addr, AccessSite site = {}) {
    on_access(tid, addr, AccessKind::kRmw, site);
  }
  void on_load(std::uint32_t tid, const void* addr, AccessSite site = {}) {
    on_access(tid, addr, AccessKind::kLoad, site);
  }
  void on_store(std::uint32_t tid, const void* addr, AccessSite site = {}) {
    on_access(tid, addr, AccessKind::kStore, site);
  }

  [[nodiscard]] const ProfilerConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] std::uint64_t events() const {
    std::scoped_lock lk(m_);
    return seq_;
  }

  /// Summarize one line (by any address inside it); zeroed if unseen.
  [[nodiscard]] LineProfile line_of(const void* addr) const {
    std::scoped_lock lk(m_);
    const auto line =
        reinterpret_cast<std::uintptr_t>(addr) >> cfg_.line_shift;
    const auto it = shadow_.find(line);
    return it != shadow_.end() ? summarize_locked(line, it->second)
                               : LineProfile{};
  }

  /// The full ranked report. Ranking: estimated absorbed traffic
  /// descending (the combining-opportunity score), then raw access count,
  /// then address — so the first entry is the line where a combining cell
  /// buys the most.
  [[nodiscard]] ContentionReport report() const {
    std::scoped_lock lk(m_);
    ContentionReport out;
    out.lines.reserve(shadow_.size());
    for (const auto& [line, b] : shadow_) {
      out.lines.push_back(summarize_locked(line, b));
      out.total_accesses += b.accesses;
      out.total_conflicts += b.conflicts;
      if (out.lines.back().hot) ++out.hot_lines;
    }
    std::sort(out.lines.begin(), out.lines.end(),
              [](const LineProfile& a, const LineProfile& b) {
                if (a.est_absorbed_ops != b.est_absorbed_ops) {
                  return a.est_absorbed_ops > b.est_absorbed_ops;
                }
                if (a.accesses != b.accesses) return a.accesses > b.accesses;
                return a.base < b.base;
              });
    return out;
  }

 private:
  struct SiteAgg {
    std::uint64_t count = 0;
    std::uint8_t offsets = 0;
  };

  /// Shadow bucket for one cache line. Ordered maps keep report output
  /// deterministic for a given access stream.
  struct Bucket {
    std::uint64_t accesses = 0;
    std::uint64_t rmws = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t conflicts = 0;
    std::uint32_t last_tid = kProfileTidAuto;
    std::uint64_t last_seq = 0;
    std::map<std::uint32_t, std::uint64_t> per_thread;
    std::map<std::string, SiteAgg> sites;
    util::LogHistogram gaps;
  };

  [[nodiscard]] LineProfile summarize_locked(std::uintptr_t line,
                                             const Bucket& b) const {
    LineProfile p;
    p.base = line << cfg_.line_shift;
    p.accesses = b.accesses;
    p.rmws = b.rmws;
    p.loads = b.loads;
    p.stores = b.stores;
    p.conflicts = b.conflicts;
    p.threads = static_cast<unsigned>(b.per_thread.size());
    p.sites = static_cast<unsigned>(b.sites.size());
    p.hot = b.accesses >= cfg_.hot_min_accesses &&
            p.threads >= cfg_.hot_min_threads;
    p.conflict_rate =
        b.accesses > 1 ? static_cast<double>(b.conflicts) /
                             static_cast<double>(b.accesses - 1)
                       : 0.0;
    std::uint64_t top = 0;
    for (const auto& [tid, n] : b.per_thread) top = std::max(top, n);
    p.max_thread_share =
        b.accesses > 0
            ? static_cast<double>(top) / static_cast<double>(b.accesses)
            : 1.0;
    // The wave model: the root still serves the dominant thread's stream;
    // everything else can fold into it (§3, §4.2). One thread: nothing to
    // combine with.
    p.absorbable = p.threads >= 2 ? 1.0 - p.max_thread_share : 0.0;
    p.est_absorbed_ops = p.absorbable * static_cast<double>(b.accesses);
    const std::uint64_t round_trip =
        2 * util::log2_ceil(std::max(2u, p.threads)) + 1 + cfg_.mem_latency;
    p.est_cycles_saved = p.est_absorbed_ops * static_cast<double>(round_trip);
    p.gap_mean = b.gaps.mean();
    p.gap_p50 = b.gaps.quantile_bound(0.50);
    p.gap_p99 = b.gaps.quantile_bound(0.99);
    // False sharing: two sites whose touched-offset sets are disjoint —
    // they collide in the coherence protocol, never in the data.
    std::vector<std::uint8_t> masks;
    masks.reserve(b.sites.size());
    for (const auto& [label, agg] : b.sites) masks.push_back(agg.offsets);
    for (std::size_t i = 0; i < masks.size() && !p.false_sharing; ++i) {
      for (std::size_t j = i + 1; j < masks.size(); ++j) {
        if ((masks[i] & masks[j]) == 0) {
          p.false_sharing = true;
          break;
        }
      }
    }
    // Top sites by count (ties by label: the map is already ordered).
    std::vector<std::pair<std::string, SiteAgg>> ranked(b.sites.begin(),
                                                        b.sites.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& c) {
                       return a.second.count > c.second.count;
                     });
    const std::size_t n = std::min(cfg_.top_sites, ranked.size());
    p.top_sites.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      p.top_sites.push_back(
          {ranked[i].first, ranked[i].second.count, ranked[i].second.offsets});
    }
    return p;
  }

  mutable std::mutex m_;
  ProfilerConfig cfg_;
  std::uint64_t seq_ = 0;  ///< global event sequence (gap time base)
  std::map<std::uintptr_t, Bucket> shadow_;  ///< keyed by line number
};

// ---- report emitters -------------------------------------------------------

inline std::string ContentionReport::to_string(std::size_t max_lines) const {
  std::string s = "contention report: " + std::to_string(total_accesses) +
                  " accesses, " + std::to_string(total_conflicts) +
                  " conflicts, " + std::to_string(lines.size()) +
                  " lines touched, " + std::to_string(hot_lines) +
                  " hot lines\n";
  const std::size_t n = std::min(max_lines, lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LineProfile& p = lines[i];
    char head[192];
    std::snprintf(head, sizeof head,
                  "#%zu line 0x%llx: %llu accesses (%llu rmw / %llu load / "
                  "%llu store), %llu conflicts, gap p50<=%llu%s%s\n",
                  i + 1, static_cast<unsigned long long>(p.base),
                  static_cast<unsigned long long>(p.accesses),
                  static_cast<unsigned long long>(p.rmws),
                  static_cast<unsigned long long>(p.loads),
                  static_cast<unsigned long long>(p.stores),
                  static_cast<unsigned long long>(p.conflicts),
                  static_cast<unsigned long long>(p.gap_p50),
                  p.hot ? " [hot]" : "",
                  p.false_sharing ? " [false sharing]" : "");
    s += head;
    s += "    " + p.opportunity() + "\n";
    for (const SiteProfile& site : p.top_sites) {
      s += "    site " + site.site + ": " + std::to_string(site.count) +
           " accesses\n";
    }
  }
  return s;
}

namespace detail {

inline void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
}

inline std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace detail

inline std::string ContentionReport::to_json() const {
  std::string s = "{";
  s += "\"total_accesses\":" + std::to_string(total_accesses);
  s += ",\"total_conflicts\":" + std::to_string(total_conflicts);
  s += ",\"lines_touched\":" + std::to_string(lines.size());
  s += ",\"hot_lines\":" + std::to_string(hot_lines);
  s += ",\"lines\":[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const LineProfile& p = lines[i];
    if (i != 0) s += ",";
    char base[24];
    std::snprintf(base, sizeof base, "0x%llx",
                  static_cast<unsigned long long>(p.base));
    s += std::string("{\"line\":\"") + base + "\"";
    s += ",\"accesses\":" + std::to_string(p.accesses);
    s += ",\"rmws\":" + std::to_string(p.rmws);
    s += ",\"loads\":" + std::to_string(p.loads);
    s += ",\"stores\":" + std::to_string(p.stores);
    s += ",\"conflicts\":" + std::to_string(p.conflicts);
    s += ",\"threads\":" + std::to_string(p.threads);
    s += ",\"sites\":" + std::to_string(p.sites);
    s += std::string(",\"hot\":") + (p.hot ? "true" : "false");
    s += std::string(",\"false_sharing\":") +
         (p.false_sharing ? "true" : "false");
    s += ",\"conflict_rate\":" + detail::json_num(p.conflict_rate);
    s += ",\"max_thread_share\":" + detail::json_num(p.max_thread_share);
    s += ",\"absorbable_fraction\":" + detail::json_num(p.absorbable);
    s += ",\"est_absorbed_ops\":" + detail::json_num(p.est_absorbed_ops);
    s += ",\"est_cycles_saved\":" + detail::json_num(p.est_cycles_saved);
    s += ",\"gap_mean\":" + detail::json_num(p.gap_mean);
    s += ",\"gap_p50\":" + std::to_string(p.gap_p50);
    s += ",\"gap_p99\":" + std::to_string(p.gap_p99);
    s += ",\"top_sites\":[";
    for (std::size_t j = 0; j < p.top_sites.size(); ++j) {
      if (j != 0) s += ",";
      s += "{\"site\":\"";
      detail::json_escape_into(s, p.top_sites[j].site);
      s += "\",\"count\":" + std::to_string(p.top_sites[j].count) + "}";
    }
    s += "]}";
  }
  s += "]}";
  return s;
}

}  // namespace krs::analysis
