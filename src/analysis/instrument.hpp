// Zero-cost-when-disabled instrumentation hooks for the runtime layer.
//
// Every primitive in src/runtime takes an instrumentation policy as a
// defaulted template parameter:
//
//   template <typename Instrument = krs::analysis::DefaultInstrument>
//   class BasicTicketLock { ... Instrument::acquire(this); ... };
//
// Two policies are provided:
//
//  * NoInstrument      — every hook is an empty constexpr-friendly inline
//                        function; the compiler erases the calls entirely,
//                        so uninstrumented builds pay nothing (checked by
//                        static_assert(sizeof) identities in the tests).
//  * GlobalInstrument  — hooks forward to the process-global RaceDetector
//                        installed with ScopedDetector, tagging events with
//                        a per-thread id that is registered on demand.
//
// DefaultInstrument is NoInstrument unless KRS_ANALYSIS_ENABLED is defined
// (the -DKRS_ANALYSIS=ON CMake option defines it globally), so existing
// call sites compile unchanged and behave identically.
//
// Thread identity: GlobalInstrument maps std::this_thread onto a detector
// Tid lazily, caching (detector uid, tid) in TLS. A thread first seen by
// the detector gets a *root* registration — no happens-before edge from
// its creator. Tests that need the fork edge (e.g. main initializes data,
// workers then use it) create threads through ForkHandle / adopt(), which
// routes the edge through RaceDetector::fork.
#pragma once

#include <atomic>

#include "analysis/race_detector.hpp"

namespace krs::analysis {

namespace detail {

inline std::atomic<RaceDetector*>& global_slot() noexcept {
  static std::atomic<RaceDetector*> slot{nullptr};
  return slot;
}

struct TlsBinding {
  std::uint64_t detector_uid = 0;
  Tid tid = 0;
};

inline TlsBinding& tls_binding() noexcept {
  thread_local TlsBinding b;
  return b;
}

}  // namespace detail

/// The detector currently receiving instrumentation events (nullptr: none).
inline RaceDetector* global_detector() noexcept {
  return detail::global_slot().load(std::memory_order_acquire);
}

/// Install `d` as the global detector for this scope. Not reentrant: one
/// detector at a time (tests run them serially).
class ScopedDetector {
 public:
  explicit ScopedDetector(RaceDetector& d) {
    detail::global_slot().store(&d, std::memory_order_release);
  }
  ~ScopedDetector() {
    detail::global_slot().store(nullptr, std::memory_order_release);
  }
  ScopedDetector(const ScopedDetector&) = delete;
  ScopedDetector& operator=(const ScopedDetector&) = delete;
};

/// This thread's id under detector `d`, registering a root thread on first
/// use. The cache is keyed by the detector's uid, so a new detector at a
/// recycled address does not inherit stale ids.
inline Tid self_tid(RaceDetector& d) {
  auto& b = detail::tls_binding();
  if (b.detector_uid != d.uid()) {
    b = {d.uid(), d.new_thread()};
  }
  return b.tid;
}

/// A fork edge prepared in the parent and adopted in the child:
///
///   ForkHandle h;                       // parent: snapshots parent clock
///   std::jthread t([h] { h.adopt(); ...worker... });
///   ...
///   h.join();                           // parent: after t joined
class ForkHandle {
 public:
  ForkHandle() {
    if (RaceDetector* d = global_detector()) {
      detector_uid_ = d->uid();
      parent_ = self_tid(*d);
      child_ = d->fork(parent_);
    }
  }

  /// Called on the child thread: bind its TLS id to the forked Tid.
  void adopt() const {
    RaceDetector* d = global_detector();
    if (d == nullptr || d->uid() != detector_uid_) return;
    detail::tls_binding() = {detector_uid_, child_};
  }

  /// Called on the parent after joining the child thread.
  void join() const {
    RaceDetector* d = global_detector();
    if (d == nullptr || d->uid() != detector_uid_) return;
    d->join(parent_, child_);
  }

  [[nodiscard]] Tid child_tid() const noexcept { return child_; }

 private:
  std::uint64_t detector_uid_ = 0;
  Tid parent_ = 0;
  Tid child_ = 0;
};

// ---- free hooks (no-ops when no detector is installed) ---------------------

inline void hb_acquire(const void* sync) {
  if (RaceDetector* d = global_detector()) d->on_acquire(self_tid(*d), sync);
}

inline void hb_release(const void* sync) {
  if (RaceDetector* d = global_detector()) d->on_release(self_tid(*d), sync);
}

inline void shadow_read(const void* addr, AccessSite site = {}) {
  if (RaceDetector* d = global_detector()) d->on_read(self_tid(*d), addr, site);
}

inline void shadow_write(const void* addr, AccessSite site = {}) {
  if (RaceDetector* d = global_detector()) {
    d->on_write(self_tid(*d), addr, site);
  }
}

// ---- the two policies ------------------------------------------------------

/// Disabled instrumentation: empty inline hooks the optimizer erases.
struct NoInstrument {
  static constexpr bool enabled = false;
  static constexpr void acquire(const void*) noexcept {}
  static constexpr void release(const void*) noexcept {}
};

/// Instrumentation wired to the global detector. `acquire(s)`/`release(s)`
/// are the happens-before edges a primitive publishes: release at every
/// point that hands state to a successor, acquire at every point that
/// receives it.
struct GlobalInstrument {
  static constexpr bool enabled = true;
  static void acquire(const void* sync) { hb_acquire(sync); }
  static void release(const void* sync) { hb_release(sync); }
};

#ifdef KRS_ANALYSIS_ENABLED
using DefaultInstrument = GlobalInstrument;
#else
using DefaultInstrument = NoInstrument;
#endif

}  // namespace krs::analysis
