// Zero-cost-when-disabled instrumentation hooks for the runtime layer.
//
// Every primitive in src/runtime takes an instrumentation policy as a
// defaulted template parameter:
//
//   template <typename Instrument = krs::analysis::DefaultInstrument>
//   class BasicTicketLock { ... Instrument::acquire(this); ... };
//
// Two policies are provided:
//
//  * NoInstrument      — every hook is an empty constexpr-friendly inline
//                        function; the compiler erases the calls entirely,
//                        so uninstrumented builds pay nothing (checked by
//                        static_assert(sizeof) identities in the tests).
//  * GlobalInstrument  — hooks forward to the process-global RaceDetector
//                        installed with ScopedDetector, tagging events with
//                        a per-thread id that is registered on demand.
//
// DefaultInstrument is NoInstrument unless KRS_ANALYSIS_ENABLED is defined
// (the -DKRS_ANALYSIS=ON CMake option defines it globally), so existing
// call sites compile unchanged and behave identically.
//
// Thread identity: GlobalInstrument maps std::this_thread onto a detector
// Tid lazily, caching (detector uid, tid) in TLS. A thread first seen by
// the detector gets a *root* registration — no happens-before edge from
// its creator. Tests that need the fork edge (e.g. main initializes data,
// workers then use it) create threads through ForkHandle / adopt(), which
// routes the edge through RaceDetector::fork.
#pragma once

#include <atomic>

#include "analysis/contention_profiler.hpp"
#include "analysis/race_detector.hpp"

namespace krs::analysis {

namespace detail {

inline std::atomic<RaceDetector*>& global_slot() noexcept {
  static std::atomic<RaceDetector*> slot{nullptr};
  return slot;
}

inline std::atomic<ContentionProfiler*>& global_profiler_slot() noexcept {
  static std::atomic<ContentionProfiler*> slot{nullptr};
  return slot;
}

/// Generation of the global detector slot: bumped on every ScopedDetector
/// install AND uninstall. TLS bindings remember the generation they were
/// made under, so a long-lived thread (a pool worker, main) that carries a
/// binding across detector scopes re-registers instead of reusing a Tid
/// that the detector may have RETIRED and handed to another thread in the
/// meantime (segment merging reuses tids after join) — the stale-binding
/// aliasing footgun.
inline std::atomic<std::uint64_t>& binding_generation() noexcept {
  static std::atomic<std::uint64_t> gen{1};
  return gen;
}

struct TlsBinding {
  std::uint64_t detector_uid = 0;
  std::uint64_t generation = 0;
  Tid tid = 0;
};

inline TlsBinding& tls_binding() noexcept {
  thread_local TlsBinding b;
  return b;
}

}  // namespace detail

/// The detector currently receiving instrumentation events (nullptr: none).
inline RaceDetector* global_detector() noexcept {
  return detail::global_slot().load(std::memory_order_acquire);
}

/// The contention profiler currently receiving shared-access events
/// (nullptr: none). Independent of the detector: either, both, or neither
/// may be installed.
inline ContentionProfiler* global_profiler() noexcept {
  return detail::global_profiler_slot().load(std::memory_order_acquire);
}

/// Install `d` as the global detector for this scope. Not reentrant: one
/// detector at a time (tests run them serially). Both install and
/// uninstall advance the binding generation, invalidating every TLS tid
/// cache made under the previous scope.
class ScopedDetector {
 public:
  explicit ScopedDetector(RaceDetector& d) {
    detail::binding_generation().fetch_add(1, std::memory_order_relaxed);
    detail::global_slot().store(&d, std::memory_order_release);
  }
  ~ScopedDetector() {
    detail::global_slot().store(nullptr, std::memory_order_release);
    detail::binding_generation().fetch_add(1, std::memory_order_relaxed);
  }
  ScopedDetector(const ScopedDetector&) = delete;
  ScopedDetector& operator=(const ScopedDetector&) = delete;
};

/// Install `p` as the global contention profiler for this scope. Same
/// serial-use contract as ScopedDetector.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(ContentionProfiler& p) {
    detail::global_profiler_slot().store(&p, std::memory_order_release);
  }
  ~ScopedProfiler() {
    detail::global_profiler_slot().store(nullptr, std::memory_order_release);
  }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;
};

/// This thread's id under detector `d`, registering a root thread on first
/// use. The cache is keyed by the detector's uid AND the binding
/// generation: a new detector at a recycled address does not inherit
/// stale ids, and neither does the same detector across scopes — its tid
/// space may have retired-and-reused slots by then.
inline Tid self_tid(RaceDetector& d) {
  auto& b = detail::tls_binding();
  const std::uint64_t gen =
      detail::binding_generation().load(std::memory_order_relaxed);
  if (b.detector_uid != d.uid() || b.generation != gen) {
    b = {d.uid(), gen, d.new_thread()};
  }
  return b.tid;
}

/// A fork edge prepared in the parent and adopted in the child:
///
///   ForkHandle h;                       // parent: snapshots parent clock
///   std::jthread t([h] { h.adopt(); ...worker... });
///   ...
///   h.join();                           // parent: after t joined
class ForkHandle {
 public:
  ForkHandle() {
    if (RaceDetector* d = global_detector()) {
      detector_uid_ = d->uid();
      parent_ = self_tid(*d);
      child_ = d->fork(parent_);
    }
  }

  /// Called on the child thread: bind its TLS id to the forked Tid.
  void adopt() const {
    RaceDetector* d = global_detector();
    if (d == nullptr || d->uid() != detector_uid_) return;
    detail::tls_binding() = {
        detector_uid_,
        detail::binding_generation().load(std::memory_order_relaxed), child_};
  }

  /// Called on the parent after joining the child thread.
  void join() const {
    RaceDetector* d = global_detector();
    if (d == nullptr || d->uid() != detector_uid_) return;
    d->join(parent_, child_);
  }

  [[nodiscard]] Tid child_tid() const noexcept { return child_; }

 private:
  std::uint64_t detector_uid_ = 0;
  Tid parent_ = 0;
  Tid child_ = 0;
};

// ---- free hooks (no-ops when no detector is installed) ---------------------

inline void hb_acquire(const void* sync) {
  if (RaceDetector* d = global_detector()) d->on_acquire(self_tid(*d), sync);
}

inline void hb_release(const void* sync) {
  if (RaceDetector* d = global_detector()) d->on_release(self_tid(*d), sync);
}

inline void shadow_read(const void* addr, AccessSite site = {}) {
  if (RaceDetector* d = global_detector()) d->on_read(self_tid(*d), addr, site);
}

inline void shadow_write(const void* addr, AccessSite site = {}) {
  if (RaceDetector* d = global_detector()) {
    d->on_write(self_tid(*d), addr, site);
  }
}

// ---- contention-profiler hooks (no-ops when no profiler is installed) ------
//
// The shared-traffic hook family: primitives report every access to a
// SHARED hot word (the word a combining cell could stand in for), tagged
// with the call site. Orthogonal to the happens-before hooks above — the
// detector judges ordering, the profiler measures traffic.

inline void profile_rmw(const void* addr, AccessSite site = {}) {
  if (ContentionProfiler* p = global_profiler()) {
    p->on_rmw(profile_self_tid(), addr, site);
  }
}

inline void profile_load(const void* addr, AccessSite site = {}) {
  if (ContentionProfiler* p = global_profiler()) {
    p->on_load(profile_self_tid(), addr, site);
  }
}

inline void profile_store(const void* addr, AccessSite site = {}) {
  if (ContentionProfiler* p = global_profiler()) {
    p->on_store(profile_self_tid(), addr, site);
  }
}

// ---- the two policies ------------------------------------------------------

/// Disabled instrumentation: empty inline hooks the optimizer erases.
struct NoInstrument {
  static constexpr bool enabled = false;
  static constexpr void acquire(const void*) noexcept {}
  static constexpr void release(const void*) noexcept {}
  static constexpr void contended_rmw(const void*, AccessSite = {}) noexcept {}
  static constexpr void shared_load(const void*, AccessSite = {}) noexcept {}
  static constexpr void shared_store(const void*, AccessSite = {}) noexcept {}
};

/// Instrumentation wired to the global detector and profiler.
/// `acquire(s)`/`release(s)` are the happens-before edges a primitive
/// publishes: release at every point that hands state to a successor,
/// acquire at every point that receives it. `contended_rmw` /
/// `shared_load` / `shared_store` are the traffic events a primitive's
/// shared words generate, fed to the contention profiler.
struct GlobalInstrument {
  static constexpr bool enabled = true;
  static void acquire(const void* sync) { hb_acquire(sync); }
  static void release(const void* sync) { hb_release(sync); }
  static void contended_rmw(const void* addr, AccessSite site = {}) {
    profile_rmw(addr, site);
  }
  static void shared_load(const void* addr, AccessSite site = {}) {
    profile_load(addr, site);
  }
  static void shared_store(const void* addr, AccessSite site = {}) {
    profile_store(addr, site);
  }
};

#ifdef KRS_ANALYSIS_ENABLED
using DefaultInstrument = GlobalInstrument;
#else
using DefaultInstrument = NoInstrument;
#endif

}  // namespace krs::analysis
