// Vector clocks and epochs — the happens-before lattice underneath the
// race detector (analysis/race_detector.hpp).
//
// The runtime layer (src/runtime) implements the paper's coordination
// algorithms on real threads; arguing they are race-free needs the standard
// happens-before partial order of Lamport, represented the FastTrack way
// (Flanagan & Freund, PLDI 2009): each thread carries a vector clock C_t,
// each synchronization object a clock L_s, and most accesses are summarized
// by a single *epoch* c@t (the clock of the last access and the thread that
// made it) instead of a whole vector — the O(1) fast path.
//
// Conventions:
//  * thread clocks start at 1, so clock value 0 in an epoch means
//    "no such access yet" (kNoAccess);
//  * an epoch e = c@t is covered by a vector clock V (e ⊑ V) iff
//    c <= V[t]: the access happened-before everything V has seen of t;
//  * join is the pointwise maximum — the clock of "after both".
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace krs::analysis {

using Tid = std::uint32_t;
using ClockVal = std::uint32_t;

/// A scalar summary of one access: the issuing thread and its clock value
/// at the time — FastTrack's c@t.
struct Epoch {
  Tid tid = 0;
  ClockVal clock = 0;  ///< 0 = no access recorded

  [[nodiscard]] constexpr bool none() const noexcept { return clock == 0; }

  friend constexpr bool operator==(const Epoch&, const Epoch&) = default;
};

inline std::string to_string(const Epoch& e) {
  return std::to_string(e.clock) + "@T" + std::to_string(e.tid);
}

/// A grow-on-demand vector clock. Components absent from the vector are 0.
class VectorClock {
 public:
  VectorClock() = default;

  [[nodiscard]] ClockVal get(Tid t) const noexcept {
    return t < c_.size() ? c_[t] : 0;
  }

  void set(Tid t, ClockVal v) {
    if (t >= c_.size()) c_.resize(t + 1, 0);
    c_[t] = v;
  }

  /// Advance this thread's own component (a release step).
  void tick(Tid t) { set(t, get(t) + 1); }

  /// Pointwise maximum: the clock of "after both this and o".
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  /// e ⊑ this: the access summarized by e happened-before the point this
  /// clock stands at.
  [[nodiscard]] bool covers(const Epoch& e) const noexcept {
    return e.clock <= get(e.tid);
  }

  /// o ≤ this pointwise (every access o has seen, this has seen).
  [[nodiscard]] bool covers(const VectorClock& o) const noexcept {
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (o.c_[i] > get(static_cast<Tid>(i))) return false;
    }
    return true;
  }

  [[nodiscard]] Epoch epoch_of(Tid t) const noexcept { return {t, get(t)}; }

  /// Number of components stored (threads mentioned so far).
  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }

  /// Number of NONZERO components — the clock's real footprint. Under
  /// Tid-slot reuse (race-detector segment merging) this stays bounded by
  /// the peak live-thread count even when thousands of threads churn
  /// through, which is what DetectorStats' churn accounting asserts.
  [[nodiscard]] std::size_t components() const noexcept {
    std::size_t n = 0;
    for (const ClockVal v : c_) n += v != 0 ? 1 : 0;
    return n;
  }

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    const std::size_t n = std::max(a.c_.size(), b.c_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.get(static_cast<Tid>(i)) != b.get(static_cast<Tid>(i))) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<ClockVal> c_;
};

inline std::string to_string(const VectorClock& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(v.get(static_cast<Tid>(i)));
  }
  return s + "]";
}

}  // namespace krs::analysis
