// Deterministic, exhaustive driver for the happens-before race detector —
// the analysis-layer sibling of verify/interleave.hpp.
//
// interleave.hpp enumerates every interleaving of small *memory* programs
// to map out what outcomes a memory model admits. This file enumerates
// every interleaving of small *synchronization event* programs (reads,
// writes, lock acquire/release) and feeds each complete schedule to a
// fresh analysis::RaceDetector. That turns the detector's verdict into a
// schedule-quantified statement that tests can assert:
//
//  * a well-synchronized program must be reported race-free under EVERY
//    interleaving (no false positives anywhere in the schedule space), and
//  * a racy program must be reported racy under EVERY interleaving — the
//    defining property of happens-before detectors over lockset or
//    sampling approaches: the race is visible even in schedules where the
//    accesses did not physically collide.
//
// Lock semantics are enforced during enumeration (an acquire of a lock
// held by another thread is not enabled), so only schedules a real
// execution could produce are explored. Programs here are tiny (the state
// space is the multinomial of the per-thread event counts); this is a
// verification harness, not a production scheduler.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "analysis/race_detector.hpp"
#include "util/assert.hpp"

namespace krs::verify {

/// Events of the abstract trace language. Variables and locks are small
/// dense ids, unrelated to real addresses.
struct ERead {
  unsigned var;
};
struct EWrite {
  unsigned var;
};
struct EAcquire {
  unsigned lock;
};
struct ERelease {
  unsigned lock;
};

using Event = std::variant<ERead, EWrite, EAcquire, ERelease>;

/// One list of events per thread, executed in program order.
struct EventProgram {
  std::vector<std::vector<Event>> threads;
};

struct RaceExploreResult {
  std::uint64_t schedules = 0;       ///< complete interleavings explored
  std::uint64_t racy_schedules = 0;  ///< interleavings with ≥1 report
  /// Reports from the first racy schedule, for diagnostics.
  std::vector<analysis::RaceReport> sample;

  [[nodiscard]] bool always_racy() const {
    return schedules > 0 && racy_schedules == schedules;
  }
  [[nodiscard]] bool never_racy() const {
    return schedules > 0 && racy_schedules == 0;
  }
};

namespace race_detail {

class Explorer {
 public:
  explicit Explorer(const EventProgram& prog) : prog_(prog) {}

  RaceExploreResult run() {
    std::vector<std::size_t> pc(prog_.threads.size(), 0);
    std::vector<std::size_t> schedule;
    dfs(pc, schedule);
    return std::move(res_);
  }

 private:
  /// May thread t take its next step, given which locks are held?
  [[nodiscard]] bool enabled(const std::vector<std::size_t>& pc,
                             const std::vector<int>& holder,
                             std::size_t t) const {
    if (pc[t] >= prog_.threads[t].size()) return false;
    const Event& e = prog_.threads[t][pc[t]];
    if (const auto* a = std::get_if<EAcquire>(&e)) {
      const int h = a->lock < holder.size() ? holder[a->lock] : -1;
      return h == -1 || h == static_cast<int>(t);
    }
    return true;
  }

  void dfs(std::vector<std::size_t>& pc, std::vector<std::size_t>& schedule) {
    // Recompute lock ownership from the schedule prefix (programs are tiny;
    // clarity over speed).
    std::vector<int> holder = replay_locks(schedule);
    bool progressed = false;
    for (std::size_t t = 0; t < prog_.threads.size(); ++t) {
      if (!enabled(pc, holder, t)) continue;
      progressed = true;
      ++pc[t];
      schedule.push_back(t);
      dfs(pc, schedule);
      schedule.pop_back();
      --pc[t];
    }
    if (progressed) return;
    // Complete iff every thread ran to the end (a deadlocked prefix — only
    // possible with misnested locks — is a program bug).
    for (std::size_t t = 0; t < prog_.threads.size(); ++t) {
      KRS_ASSERT(pc[t] == prog_.threads[t].size() &&
                 "event program deadlocked: misnested locks");
    }
    judge(schedule);
  }

  [[nodiscard]] std::vector<int> replay_locks(
      const std::vector<std::size_t>& schedule) const {
    std::vector<int> holder;
    std::vector<std::size_t> pc(prog_.threads.size(), 0);
    for (const std::size_t t : schedule) {
      const Event& e = prog_.threads[t][pc[t]++];
      if (const auto* a = std::get_if<EAcquire>(&e)) {
        if (a->lock >= holder.size()) holder.resize(a->lock + 1, -1);
        holder[a->lock] = static_cast<int>(t);
      } else if (const auto* r = std::get_if<ERelease>(&e)) {
        if (r->lock >= holder.size()) holder.resize(r->lock + 1, -1);
        holder[r->lock] = -1;
      }
    }
    return holder;
  }

  /// Feed one complete schedule to a fresh detector.
  void judge(const std::vector<std::size_t>& schedule) {
    analysis::RaceDetector det;
    std::vector<analysis::Tid> tid;
    tid.reserve(prog_.threads.size());
    for (std::size_t t = 0; t < prog_.threads.size(); ++t) {
      tid.push_back(det.new_thread());
    }
    std::vector<std::size_t> pc(prog_.threads.size(), 0);
    for (const std::size_t t : schedule) {
      const Event& e = prog_.threads[t][pc[t]++];
      // Vars and locks live in disjoint fake address spaces.
      if (const auto* r = std::get_if<ERead>(&e)) {
        det.on_read(tid[t], var_addr(r->var));
      } else if (const auto* w = std::get_if<EWrite>(&e)) {
        det.on_write(tid[t], var_addr(w->var));
      } else if (const auto* a = std::get_if<EAcquire>(&e)) {
        det.on_acquire(tid[t], lock_addr(a->lock));
      } else if (const auto* rel = std::get_if<ERelease>(&e)) {
        det.on_release(tid[t], lock_addr(rel->lock));
      }
    }
    ++res_.schedules;
    if (!det.clean()) {
      ++res_.racy_schedules;
      if (res_.sample.empty()) res_.sample = det.races();
    }
  }

  static const void* var_addr(unsigned v) {
    return reinterpret_cast<const void*>(static_cast<std::uintptr_t>(0x1000 + v));
  }
  static const void* lock_addr(unsigned l) {
    return reinterpret_cast<const void*>(static_cast<std::uintptr_t>(0x9000 + l));
  }

  const EventProgram& prog_;
  RaceExploreResult res_;
};

}  // namespace race_detail

/// All interleavings of `prog`, each judged by a fresh detector.
inline RaceExploreResult explore_races(const EventProgram& prog) {
  return race_detail::Explorer(prog).run();
}

}  // namespace krs::verify
