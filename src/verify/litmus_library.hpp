// A small library of named litmus programs over the interleaving explorer,
// extending the paper's two examples (§3.2, §5.1) with the classical
// shapes used to characterize weak memory models. Under condition (M2) —
// per-processor per-LOCATION ordering only — the same outcomes appear as
// on real relaxed machines that reorder independent accesses, and fences
// restore sequential consistency, exactly as §3.2 prescribes for the RP3.
#pragma once

#include "verify/interleave.hpp"

namespace krs::verify::litmus {

/// Message passing: P0 writes data then flag; P1 reads flag then data.
/// Under M1 flag=1 ⇒ data=1. Under M2 either side may reorder, so
/// flag=1 ∧ data=0 becomes observable (without fences).
inline LitmusProgram message_passing(bool fences) {
  LitmusProgram p;
  if (fences) {
    p.procs = {
        {IStoreConst{"data", 1}, IFence{}, IStoreConst{"flag", 1}},
        {ILoad{"flag", "f"}, IFence{}, ILoad{"data", "d"}},
    };
  } else {
    p.procs = {
        {IStoreConst{"data", 1}, IStoreConst{"flag", 1}},
        {ILoad{"flag", "f"}, ILoad{"data", "d"}},
    };
  }
  p.initial = {{"data", 0}, {"flag", 0}};
  return p;
}

/// Store buffering: P0: X←1; r0←Y.  P1: Y←1; r1←X.
/// Under M1, r0=0 ∧ r1=0 is impossible; under M2 it is observable.
inline LitmusProgram store_buffering(bool fences) {
  LitmusProgram p;
  if (fences) {
    p.procs = {
        {IStoreConst{"X", 1}, IFence{}, ILoad{"Y", "r0"}},
        {IStoreConst{"Y", 1}, IFence{}, ILoad{"X", "r1"}},
    };
  } else {
    p.procs = {
        {IStoreConst{"X", 1}, ILoad{"Y", "r0"}},
        {IStoreConst{"Y", 1}, ILoad{"X", "r1"}},
    };
  }
  p.initial = {{"X", 0}, {"Y", 0}};
  return p;
}

/// Coherence (CoRR): two reads of ONE location by one processor must not
/// see values going backwards — (M2.3) forbids it even without fences,
/// because same-location program order is always preserved.
inline LitmusProgram coherence_rr() {
  LitmusProgram p;
  p.procs = {
      {ILoad{"X", "a"}, ILoad{"X", "b"}},
      {IStoreConst{"X", 1}},
  };
  p.initial = {{"X", 0}};
  return p;
}

/// Independent reads of independent writes (IRIW): two writers to distinct
/// locations, two readers disagreeing on the order. Forbidden under M1
/// (there is one interleaving); observable under M2.
inline LitmusProgram iriw(bool fences) {
  LitmusProgram p;
  if (fences) {
    p.procs = {
        {IStoreConst{"X", 1}},
        {IStoreConst{"Y", 1}},
        {ILoad{"X", "a"}, IFence{}, ILoad{"Y", "b"}},
        {ILoad{"Y", "c"}, IFence{}, ILoad{"X", "d"}},
    };
  } else {
    p.procs = {
        {IStoreConst{"X", 1}},
        {IStoreConst{"Y", 1}},
        {ILoad{"X", "a"}, ILoad{"Y", "b"}},
        {ILoad{"Y", "c"}, ILoad{"X", "d"}},
    };
  }
  p.initial = {{"X", 0}, {"Y", 0}};
  return p;
}

}  // namespace krs::verify::litmus
