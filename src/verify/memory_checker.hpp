// Executable form of the paper's correctness criteria (§3.2, §4.3).
//
// Given a finished simulation, the checker
//   1. expands every (possibly combined) message the memory processed into
//      the sequence of original requests it *represents* (the inductive
//      structure of Lemma 4.1: a message that absorbed B then C represents
//      [own request, expansion of B, expansion of C]),
//   2. replays each location's expanded request sequence serially and
//      checks that every processor observed exactly the serial reply and
//      that the final memory value matches (M2.1: the behavior is as if a
//      serial stream of atomic operations executed),
//   3. checks that every issued operation was processed exactly once
//      (M2.2: every request is eventually accepted), and
//   4. checks that same-processor requests to the same location were
//      processed in issue order (M2.3).
//
// A machine run that passes is a witness that the combining network
// produced a behavior of a correct non-combining memory — Theorem 4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"

namespace krs::verify {

using core::Addr;
using core::ReqId;

struct CheckResult {
  bool ok = true;
  std::string error;
  std::uint64_t locations_checked = 0;
  std::uint64_t operations_checked = 0;
  std::uint64_t combined_messages_expanded = 0;

  static CheckResult failure(std::string msg) {
    return {false, std::move(msg), 0, 0, 0};
  }
};

/// Check a completed machine run against the initial cell value. `Machine`
/// must expose rmw_type, combine_log(), completed(), processors(),
/// module(i).access_log(), and value_at(addr) (satisfied by
/// sim::Machine<M>).
template <typename MachineT>
CheckResult check_machine(
    const MachineT& m,
    const typename MachineT::rmw_type::value_type& initial) {
  using M = typename MachineT::rmw_type;
  CheckResult res;

  // Children of each representative, in chronological combine order. A
  // reversed child (§5.1 starred table) logically precedes its parent.
  struct Child {
    ReqId id;
    bool reversed;
  };
  std::unordered_map<ReqId, std::vector<Child>, core::ReqIdHash> children;
  for (const auto& ev : m.combine_log()) {
    children[ev.representative].push_back({ev.absorbed, ev.reversed});
  }

  std::unordered_map<ReqId, const proc::CompletedOp<M>*, core::ReqIdHash> ops;
  for (const auto& op : m.completed()) ops.emplace(op.id, &op);

  // Expand each module's serial access log per address.
  std::map<Addr, std::vector<ReqId>> per_addr;
  std::unordered_set<ReqId, core::ReqIdHash> seen;
  // Expansion (Lemma 4.1): a message's represented sequence starts as its
  // own request; each combine event appends the absorbed message's
  // expansion — or PREPENDS it for a reversed combine.
  bool duplicate = false;
  const std::function<std::vector<ReqId>(ReqId)> expand =
      [&](ReqId id) -> std::vector<ReqId> {
    if (!seen.insert(id).second) {
      duplicate = true;
      return {};
    }
    std::vector<ReqId> seq{id};
    if (auto it = children.find(id); it != children.end()) {
      for (const Child& c : it->second) {
        std::vector<ReqId> sub = expand(c.id);
        seq.insert(c.reversed ? seq.begin() : seq.end(), sub.begin(),
                   sub.end());
      }
    }
    return seq;
  };
  for (std::uint32_t mod = 0; mod < m.processors(); ++mod) {
    for (const auto& rec : m.module(mod).access_log()) {
      const bool combined = children.count(rec.id) != 0;
      std::vector<ReqId> seq = expand(rec.id);
      if (duplicate) {
        return CheckResult::failure("a request was represented twice "
                                    "(M2.1 violated)");
      }
      auto& dst = per_addr[rec.addr];
      dst.insert(dst.end(), seq.begin(), seq.end());
      if (combined) ++res.combined_messages_expanded;
    }
  }

  // Every completed operation must have been processed exactly once.
  for (const auto& op : m.completed()) {
    if (seen.count(op.id) == 0) {
      return CheckResult::failure("completed op " + core::to_string(op.id) +
                                  " never reached memory (M2.2 violated)");
    }
  }
  if (seen.size() != m.completed().size()) {
    std::ostringstream os;
    os << "memory processed " << seen.size() << " requests but "
       << m.completed().size() << " completed";
    return CheckResult::failure(os.str());
  }

  // Serial replay per location (Lemma 4.1 (2)–(3)) and M2.3.
  for (const auto& [addr, order] : per_addr) {
    typename M::value_type value = initial;
    std::unordered_map<std::uint32_t, std::uint32_t> last_seq;
    for (const ReqId id : order) {
      const auto it = ops.find(id);
      if (it == ops.end()) {
        return CheckResult::failure("memory processed unknown request " +
                                    core::to_string(id));
      }
      const auto& op = *it->second;
      if (op.addr != addr) {
        return CheckResult::failure("request " + core::to_string(id) +
                                    " processed at wrong location");
      }
      if (!(op.reply == value)) {
        return CheckResult::failure(
            "reply mismatch at addr " + std::to_string(addr) + " for " +
            core::to_string(id) + " (M2.1/Lemma 4.1(2) violated)");
      }
      value = op.f.apply(value);
      if (auto ls = last_seq.find(id.proc); ls != last_seq.end()) {
        if (id.seq <= ls->second) {
          return CheckResult::failure(
              "same-processor same-location reordering for P" +
              std::to_string(id.proc) + " (M2.3 violated)");
        }
      }
      last_seq[id.proc] = id.seq;
      ++res.operations_checked;
    }
    if (!(m.value_at(addr) == value)) {
      return CheckResult::failure("final memory value mismatch at addr " +
                                  std::to_string(addr) +
                                  " (Lemma 4.1(3) violated)");
    }
    ++res.locations_checked;
  }
  return res;
}

}  // namespace krs::verify
