#include "verify/interleave.hpp"

#include <optional>

#include "util/assert.hpp"

namespace krs::verify {

namespace {

struct State {
  // executed[p][i]: instruction i of processor p has performed at memory.
  std::vector<std::vector<bool>> executed;
  // snooped[p][i]: store already forwarded its value to an early load but
  // has not yet performed (early-load model only).
  std::vector<std::vector<bool>> snooped;
  std::map<std::string, Word> memory;
  std::map<std::string, Word> locals;

  friend bool operator<(const State& a, const State& b) {
    if (a.executed != b.executed) return a.executed < b.executed;
    if (a.snooped != b.snooped) return a.snooped < b.snooped;
    if (a.memory != b.memory) return a.memory < b.memory;
    return a.locals < b.locals;
  }
};

std::string local_key(std::size_t p, const std::string& name) {
  return "P" + std::to_string(p) + "." + name;
}

const std::string* shared_var(const Instr& ins) {
  if (const auto* l = std::get_if<ILoad>(&ins)) return &l->var;
  if (const auto* s = std::get_if<IStoreConst>(&ins)) return &s->var;
  if (const auto* s = std::get_if<IStoreLocal>(&ins)) return &s->var;
  return nullptr;
}

const std::string* reads_local(const Instr& ins) {
  if (const auto* s = std::get_if<IStoreLocal>(&ins)) return &s->local;
  return nullptr;
}

const std::string* writes_local(const Instr& ins) {
  if (const auto* l = std::get_if<ILoad>(&ins)) return &l->local;
  return nullptr;
}

class Explorer {
 public:
  Explorer(const LitmusProgram& prog, MemModel model)
      : prog_(prog), model_(model) {}

  std::set<Outcome> run() {
    State s;
    s.executed.resize(prog_.procs.size());
    s.snooped.resize(prog_.procs.size());
    for (std::size_t p = 0; p < prog_.procs.size(); ++p) {
      s.executed[p].assign(prog_.procs[p].size(), false);
      s.snooped[p].assign(prog_.procs[p].size(), false);
    }
    s.memory = prog_.initial;
    dfs(s);
    return std::move(outcomes_);
  }

 private:
  /// May instruction i of processor p perform at memory now?
  bool enabled(const State& s, std::size_t p, std::size_t i) const {
    const auto& prog = prog_.procs[p];
    if (s.executed[p][i]) return false;
    const Instr& ins = prog[i];
    const std::string* var = shared_var(ins);
    for (std::size_t j = 0; j < i; ++j) {
      if (s.executed[p][j]) continue;
      const Instr& prev = prog[j];
      if (model_ == MemModel::kSequentialConsistency) return false;
      // A fence orders everything across it.
      if (std::holds_alternative<IFence>(prev) ||
          std::holds_alternative<IFence>(ins)) {
        return false;
      }
      // (M2.3): same-location accesses keep program order.
      const std::string* pvar = shared_var(prev);
      if (var != nullptr && pvar != nullptr && *var == *pvar) return false;
      // Data dependency through a local.
      const std::string* rl = reads_local(ins);
      const std::string* wl = writes_local(prev);
      if (rl != nullptr && wl != nullptr && *rl == *wl) return false;
    }
    return true;
  }

  Word store_value(const State& s, std::size_t p, const Instr& ins) const {
    if (const auto* c = std::get_if<IStoreConst>(&ins)) return c->value;
    const auto& sl = std::get<IStoreLocal>(ins);
    const auto it = s.locals.find(local_key(p, sl.local));
    KRS_ASSERT(it != s.locals.end());
    return it->second + sl.imm;
  }

  void perform(State& s, std::size_t p, std::size_t i) const {
    const Instr& ins = prog_.procs[p][i];
    s.executed[p][i] = true;
    if (const auto* l = std::get_if<ILoad>(&ins)) {
      const auto it = s.memory.find(l->var);
      s.locals[local_key(p, l->local)] = it == s.memory.end() ? 0 : it->second;
      return;
    }
    if (std::holds_alternative<IFence>(ins)) return;
    s.memory[*shared_var(ins)] = store_value(s, p, ins);
  }

  void dfs(const State& s) {
    if (!visited_.insert(s).second) return;
    bool progressed = false;
    for (std::size_t p = 0; p < prog_.procs.size(); ++p) {
      for (std::size_t i = 0; i < prog_.procs[p].size(); ++i) {
        if (!enabled(s, p, i)) continue;
        progressed = true;
        State next = s;
        perform(next, p, i);
        dfs(next);
        // Early-load: a load may instead be satisfied by another
        // processor's enabled-but-unperformed store to the same variable.
        if (model_ == MemModel::kPerLocationFifoEarlyLoad) {
          if (const auto* l = std::get_if<ILoad>(&prog_.procs[p][i])) {
            for (std::size_t q = 0; q < prog_.procs.size(); ++q) {
              if (q == p) continue;
              for (std::size_t j = 0; j < prog_.procs[q].size(); ++j) {
                const Instr& st = prog_.procs[q][j];
                const std::string* svar = shared_var(st);
                if (std::holds_alternative<ILoad>(st) ||
                    std::holds_alternative<IFence>(st)) {
                  continue;  // only stores satisfy a load early
                }
                if (svar == nullptr || *svar != l->var) continue;
                if (!enabled(s, q, j) || s.snooped[q][j]) continue;
                State nx = s;
                nx.executed[p][i] = true;  // load completes early...
                nx.locals[local_key(p, l->local)] = store_value(s, q, st);
                nx.snooped[q][j] = true;   // ...store still pending
                dfs(nx);
              }
            }
          }
        }
      }
    }
    if (!progressed) {
      Outcome o = s.memory;
      for (const auto& [k, v] : s.locals) o[k] = v;
      outcomes_.insert(std::move(o));
    }
  }

  const LitmusProgram& prog_;
  MemModel model_;
  std::set<State> visited_;
  std::set<Outcome> outcomes_;
};

}  // namespace

std::set<Outcome> explore(const LitmusProgram& prog, MemModel model) {
  return Explorer(prog, model).run();
}

bool reachable(const std::set<Outcome>& outcomes, const Outcome& pattern) {
  for (const auto& o : outcomes) {
    bool match = true;
    for (const auto& [k, v] : pattern) {
      const auto it = o.find(k);
      if (it == o.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace krs::verify
