// Exhaustive interleaving explorer for the paper's small litmus programs.
//
// Three memory models are implemented:
//
//  * kSequentialConsistency — condition (M1): memory behaves as one FIFO
//    server over an interleaving of the per-processor instruction streams.
//
//  * kPerLocationFifo — condition (M2): only same-processor accesses to the
//    SAME location keep their order; accesses by one processor to distinct
//    locations may be reordered (subject to data dependencies through local
//    variables, which processors always respect, and to explicit fences —
//    the RP3 `fence` instruction of §3.2).
//
//  * kPerLocationFifoEarlyLoad — (M2) plus the *incorrect* optimization of
//    §5.1: a load may be satisfied directly from another processor's
//    not-yet-performed store to the same location (as if a combining switch
//    returned the store's value before the store reached memory).
//
// explore() enumerates every completed execution and returns the set of
// observable outcomes (final memory + final locals). The tests reproduce:
//   - Collier's example (§3.2): M2 admits a=1,b=0, which M1 forbids; adding
//     fences restores the M1 outcome set.
//   - The §5.1 counterexample: early-load satisfaction admits b=2 ∧ A=1,
//     which no correct (M2) execution produces.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"

namespace krs::verify {

using core::Word;

/// local := mem[var]
struct ILoad {
  std::string var;
  std::string local;
};

/// mem[var] := value
struct IStoreConst {
  std::string var;
  Word value;
};

/// mem[var] := local + imm
struct IStoreLocal {
  std::string var;
  std::string local;
  Word imm = 0;
};

/// Wait for all earlier operations of this processor to perform (RP3 fence).
struct IFence {};

using Instr = std::variant<ILoad, IStoreConst, IStoreLocal, IFence>;

struct LitmusProgram {
  std::vector<std::vector<Instr>> procs;
  std::map<std::string, Word> initial;
};

/// One observable outcome: final shared memory and all locals, the latter
/// keyed "P<i>.<name>".
using Outcome = std::map<std::string, Word>;

enum class MemModel {
  kSequentialConsistency,
  kPerLocationFifo,
  kPerLocationFifoEarlyLoad,
};

/// All outcomes reachable under the given model.
std::set<Outcome> explore(const LitmusProgram& prog, MemModel model);

/// Convenience: is `outcome` (a subset of keys) matched by any reachable
/// outcome? All keys in `pattern` must match exactly.
bool reachable(const std::set<Outcome>& outcomes, const Outcome& pattern);

}  // namespace krs::verify
