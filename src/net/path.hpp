// The packet path header as fixed-size inline storage. OmegaTopology caps
// k at 16 and the hypercube caps dimensions at 10, so a route never takes
// more than 16 hops — a std::array plus a length byte replaces the old
// per-packet std::vector, making packets trivially copyable and removing
// one heap allocation per hop from the simulator's innermost loop.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

#include "util/assert.hpp"

namespace krs::net {

class PathHeader {
 public:
  static constexpr std::size_t kMaxHops = 16;

  constexpr PathHeader() = default;
  constexpr PathHeader(std::initializer_list<std::uint8_t> hops) {
    for (const auto h : hops) push_back(h);
  }

  constexpr void push_back(std::uint8_t hop) {
    KRS_EXPECTS(len_ < kMaxHops);
    hops_[len_++] = hop;
  }

  constexpr void pop_back() {
    KRS_EXPECTS(len_ > 0);
    --len_;
  }

  [[nodiscard]] constexpr std::uint8_t back() const {
    KRS_EXPECTS(len_ > 0);
    return hops_[len_ - 1];
  }

  [[nodiscard]] constexpr std::uint8_t operator[](std::size_t i) const {
    KRS_EXPECTS(i < len_);
    return hops_[i];
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return len_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return len_ == 0; }

  friend constexpr bool operator==(const PathHeader& a,
                                   const PathHeader& b) noexcept {
    if (a.len_ != b.len_) return false;
    for (std::uint8_t i = 0; i < a.len_; ++i) {
      if (a.hops_[i] != b.hops_[i]) return false;
    }
    return true;
  }

 private:
  std::array<std::uint8_t, kMaxHops> hops_{};
  std::uint8_t len_ = 0;
};

}  // namespace krs::net
