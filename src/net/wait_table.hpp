// Flat open-addressed wait buffer for combine records, replacing the
// per-switch std::unordered_map. The switch's wait buffer is bounded by
// its configured capacity, so the whole structure — an open-addressed
// index of representatives (linear probing, backshift deletion) plus a
// pooled slab of records chained per representative — can be sized once
// and never allocate again. Components without a hard bound (the memory
// module's §7 queue combining) start small and grow geometrically, so the
// steady state is allocation-free there too.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "net/path.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::net {

template <core::Rmw M>
class WaitTable {
 public:
  /// One decombination record: enough to synthesize the absorbed request's
  /// reply and route it home. `reversed`/`absorbed_map` serve the §5.1
  /// order-reversal variant (switch only).
  struct Record {
    core::CombineRecord<M> rec{};
    PathHeader path{};
    bool reversed = false;
    M absorbed_map{};
  };

  explicit WaitTable(std::size_t expected_records = 16) {
    const std::size_t cap = expected_records < 8 ? 8 : expected_records;
    pool_.resize(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      pool_[i].next = static_cast<std::int32_t>(i + 1);
    }
    pool_.back().next = kNil;
    free_head_ = 0;
    slots_.resize(util::ceil_pow2(2 * cap));
  }

  /// Records currently chained under `id` (0 when absent) — the pairwise
  /// policy's fan-in check.
  [[nodiscard]] std::size_t fan_in(core::ReqId id) const {
    const Slot* s = find(id);
    return s == nullptr ? 0 : s->count;
  }

  /// Append a combine record under representative `id` (insertion order is
  /// preserved — decombined replies must leave in combine order).
  void append(core::ReqId id, Record&& r) {
    if (free_head_ == kNil) grow_pool();
    const std::int32_t node = free_head_;
    free_head_ = pool_[node].next;
    pool_[node].record = std::move(r);
    pool_[node].next = kNil;

    Slot& s = find_or_insert(id);
    if (s.count == 0) {
      s.head = s.tail = node;
    } else {
      pool_[s.tail].next = node;
      s.tail = node;
    }
    ++s.count;
    ++records_;
  }

  /// If `id` has records, invoke `f(Record&)` on each in insertion order,
  /// erase the entry, and return the number consumed (0 when absent).
  template <typename F>
  std::size_t consume(core::ReqId id, F&& f) {
    Slot* s = find(id);
    if (s == nullptr) return 0;
    const std::size_t n = s->count;
    std::int32_t node = s->head;
    erase_slot(s);
    while (node != kNil) {
      const std::int32_t next = pool_[node].next;
      f(pool_[node].record);
      pool_[node].record = Record{};
      pool_[node].next = free_head_;
      free_head_ = node;
      node = next;
    }
    KRS_ASSERT(records_ >= n);
    records_ -= n;
    return n;
  }

  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return records_ == 0; }

 private:
  static constexpr std::int32_t kNil = -1;

  struct PoolNode {
    Record record{};
    std::int32_t next = kNil;
  };

  struct Slot {
    core::ReqId key{};
    std::int32_t head = kNil;
    std::int32_t tail = kNil;
    std::uint32_t count = 0;  ///< 0 means the slot is empty
  };

  [[nodiscard]] std::size_t mask() const noexcept { return slots_.size() - 1; }

  [[nodiscard]] std::size_t ideal(core::ReqId id) const noexcept {
    return core::ReqIdHash{}(id)&mask();
  }

  [[nodiscard]] const Slot* find(core::ReqId id) const {
    for (std::size_t i = ideal(id);; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      if (s.count == 0) return nullptr;
      if (s.key == id) return &s;
    }
  }
  [[nodiscard]] Slot* find(core::ReqId id) {
    return const_cast<Slot*>(std::as_const(*this).find(id));
  }

  Slot& find_or_insert(core::ReqId id) {
    if (2 * (entries_ + 1) > slots_.size()) rehash(slots_.size() * 2);
    for (std::size_t i = ideal(id);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.count == 0) {
        s.key = id;
        s.head = s.tail = kNil;
        ++entries_;
        return s;
      }
      if (s.key == id) return s;
    }
  }

  /// Linear-probing deletion with backward shift: close the hole by moving
  /// later cluster members whose ideal position precedes it.
  void erase_slot(Slot* s) {
    std::size_t i = static_cast<std::size_t>(s - slots_.data());
    --entries_;
    std::size_t j = i;
    for (;;) {
      slots_[i].count = 0;
      std::size_t k;
      do {
        j = (j + 1) & mask();
        if (slots_[j].count == 0) return;
        k = ideal(slots_[j].key);
        // Keep scanning while j's ideal slot lies strictly inside (i, j]
        // (cyclically) — moving it back to i would break its probe chain.
      } while (i <= j ? (i < k && k <= j) : (i < k || k <= j));
      slots_[i] = slots_[j];
      i = j;
    }
  }

  void grow_pool() {
    const std::size_t old = pool_.size();
    pool_.resize(old * 2);
    for (std::size_t i = old; i < pool_.size(); ++i) {
      pool_[i].next = static_cast<std::int32_t>(i + 1);
    }
    pool_.back().next = kNil;
    free_head_ = static_cast<std::int32_t>(old);
  }

  void rehash(std::size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    for (const Slot& s : old) {
      if (s.count == 0) continue;
      for (std::size_t i = ideal(s.key);; i = (i + 1) & mask()) {
        if (slots_[i].count == 0) {
          slots_[i] = s;
          break;
        }
      }
    }
  }

  std::vector<PoolNode> pool_;
  std::vector<Slot> slots_;
  std::int32_t free_head_ = kNil;
  std::size_t records_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace krs::net
