// A 2×2 packet-switched combining switch (§4.2), the building block of the
// Ultracomputer-style network.
//
// Forward direction: requests arriving at an input port are routed to an
// output queue by a destination bit. If a request for the same address is
// already waiting in that queue (and policy allows), the arrival is
// *combined* into it: the queued request's mapping becomes compose(f, g)
// and a wait-buffer record (id2, f, path of the absorbed request) is saved
// under the queued request's id. Combining consumes no queue space — that
// is precisely how combining relieves hot-spot congestion.
//
// Reverse direction: a reply arriving for id first decombines: for every
// wait-buffer record saved under id (in LIFO order of the values they
// captured — order is immaterial since each targets a distinct requester),
// a new reply ⟨id2, f(val)⟩ is emitted along the absorbed request's own
// path. The original reply then continues along its popped path.
//
// Policy knobs reproduce the design space of §7 ("one can use combining
// logic that detects only part of the combinable pairs"): combining can be
// disabled (baseline network), limited to pairwise (one combine per queued
// message, as in the NYU VLSI switch) or unlimited fan-in; the wait buffer
// has finite capacity, and a full wait buffer declines further combining.
#pragma once

#include <cstdint>
#include <vector>

#include "core/combining.hpp"
#include "core/load_store_swap.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "net/packet.hpp"
#include "net/wait_table.hpp"
#include "util/assert.hpp"
#include "util/ring.hpp"

namespace krs::net {

enum class CombinePolicy : std::uint8_t {
  kNone,      ///< never combine (baseline network)
  kPairwise,  ///< a queued message combines at most once per switch
  kUnlimited  ///< unbounded fan-in per queued message
};

struct SwitchConfig {
  CombinePolicy policy = CombinePolicy::kUnlimited;
  std::size_t queue_capacity = 4;        ///< per output-port request queue
  std::size_t wait_buffer_capacity = 64; ///< combine records per switch
  /// §5.1's order-reversal optimization (second table): when a store
  /// arrives behind a queued load/swap, execute the store (logically)
  /// first so the forwarded request degenerates to a store and no data
  /// word need return from memory. Only applies to the load/store/swap
  /// family, only between uncombined requests of DIFFERENT processors
  /// ("reversing operations is clearly wrong when successive requests of
  /// the same processor are combined").
  bool allow_order_reversal = false;
};

struct SwitchStats {
  std::uint64_t requests_forwarded = 0;
  std::uint64_t request_bytes = 0;  ///< header + mapping encoding, enqueued
  std::uint64_t combines = 0;
  std::uint64_t reversed_combines = 0;  ///< §5.1 starred-table combines
  std::uint64_t combine_declined_policy = 0;
  std::uint64_t combine_declined_waitbuf = 0;
  std::uint64_t stalls = 0;  ///< cycles an arrival could not move (queue full)
  std::uint64_t replies_forwarded = 0;
  std::uint64_t max_wait_buffer = 0;
  std::uint64_t max_queue_depth = 0;  ///< deepest request FIFO ever seen
};

/// One combine event, reported to the machine-level log so the verifier can
/// expand combined messages into the request sequences they represent.
struct CombineEvent {
  core::ReqId representative;
  core::ReqId absorbed;
  core::Addr addr;
  /// §5.1 reversal: the absorbed request's effect logically PRECEDES the
  /// representative's (the verifier expands it first).
  bool reversed = false;
};

template <core::Rmw M>
class CombiningSwitch {
 public:
  explicit CombiningSwitch(const SwitchConfig& cfg = {})
      : cfg_(cfg), wait_buffer_(cfg.wait_buffer_capacity) {
    // Size the forward FIFOs to their capacity bound up front. The reverse
    // FIFOs can burst past it (decombination fan-out) — they grow on first
    // use and, like all ring buffers here, never shrink, so the steady
    // state performs no allocation at all.
    for (auto& q : fwd_out_) q.reserve(cfg_.queue_capacity);
    for (auto& q : rev_out_) q.reserve(cfg_.queue_capacity);
  }

  /// Try to accept a forward packet at input port `in_port`, destined for
  /// output port `out_port`. Returns true if the packet was consumed
  /// (enqueued or combined); false if the switch is full (caller retries
  /// next cycle). On combining, the event is appended to *events.
  bool offer_request(FwdPacket<M>&& pkt, unsigned in_port, unsigned out_port,
                     std::vector<CombineEvent>* events) {
    KRS_EXPECTS(in_port < 2 && out_port < 2);
    auto& q = fwd_out_[out_port];
    if (pkt.kind == TxnKind::kRmw && cfg_.policy != CombinePolicy::kNone) {
      // Combine only with the YOUNGEST queued request for this address, and
      // give up if that one declines. Combining with an older entry could
      // sequence this arrival ahead of an intervening request from the same
      // processor to the same location, violating M2.3 — the unique-path
      // network keeps same-source/same-address requests in one queue, so
      // "youngest match" preserves their order unconditionally.
      for (std::size_t i = q.size(); i-- > 0;) {
        auto& queued = q[i];
        if (queued.kind != TxnKind::kRmw || queued.req.addr != pkt.req.addr) {
          continue;
        }
        if (cfg_.policy == CombinePolicy::kPairwise &&
            wait_buffer_.fan_in(queued.req.id) >= 1) {
          ++stats_.combine_declined_policy;
          break;
        }
        if (wait_buffer_.records() >= cfg_.wait_buffer_capacity) {
          ++stats_.combine_declined_waitbuf;
          break;
        }
        // §5.1 order reversal, when enabled and applicable (load/store/swap
        // family, both messages uncombined originals of distinct
        // processors, and the reversible table actually reverses).
        if (try_reversed_combine(queued, pkt, in_port, events)) return true;
        auto rec = core::try_combine(queued.req, pkt.req);
        if (!rec) break;  // family declined (e.g. Möbius overflow)
        queued.combined = true;
        pkt.path.push_back(static_cast<std::uint8_t>(in_port));
        wait_buffer_.append(queued.req.id,
                            {*rec, pkt.path, /*reversed=*/false, M{}});
        stats_.max_wait_buffer = std::max<std::uint64_t>(
            stats_.max_wait_buffer, wait_buffer_.records());
        ++stats_.combines;
        if (events != nullptr) {
          events->push_back({queued.req.id, rec->second, pkt.req.addr, false});
        }
        return true;
      }
    }
    if (q.size() >= cfg_.queue_capacity) {
      ++stats_.stalls;
      return false;
    }
    stats_.request_bytes += kMessageHeaderBytes + pkt.req.f.encoded_size_bytes();
    pkt.path.push_back(static_cast<std::uint8_t>(in_port));
    q.push_back(std::move(pkt));
    ++stats_.requests_forwarded;
    stats_.max_queue_depth =
        std::max<std::uint64_t>(stats_.max_queue_depth, q.size());
    return true;
  }

  /// id (8) + address (8): the fixed part of a request message.
  static constexpr std::size_t kMessageHeaderBytes = 16;

  /// Head of the output queue for a port (next packet to leave toward the
  /// next stage / memory), or nullptr.
  [[nodiscard]] const FwdPacket<M>* peek_output(unsigned out_port) const {
    const auto& q = fwd_out_[out_port];
    return q.empty() ? nullptr : &q.front();
  }

  FwdPacket<M> pop_output(unsigned out_port) {
    auto& q = fwd_out_[out_port];
    KRS_EXPECTS(!q.empty());
    FwdPacket<M> p = std::move(q.front());
    q.pop_front();
    return p;
  }

  /// Accept a reply coming back from the memory side. Decombines against
  /// the wait buffer and stages all resulting replies on the reverse
  /// queues of their input ports.
  void accept_reply(RevPacket<M>&& pkt) {
    deliver_reverse(std::move(pkt));
  }

  [[nodiscard]] const RevPacket<M>* peek_reply(unsigned in_port) const {
    const auto& q = rev_out_[in_port];
    return q.empty() ? nullptr : &q.front();
  }

  RevPacket<M> pop_reply(unsigned in_port) {
    auto& q = rev_out_[in_port];
    KRS_EXPECTS(!q.empty());
    RevPacket<M> p = std::move(q.front());
    q.pop_front();
    return p;
  }

  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }

  /// True when no request or reply traffic is pending in this switch.
  [[nodiscard]] bool idle() const noexcept {
    return fwd_out_[0].empty() && fwd_out_[1].empty() && rev_out_[0].empty() &&
           rev_out_[1].empty() && wait_buffer_.empty();
  }

  [[nodiscard]] std::size_t wait_buffer_size() const noexcept {
    return wait_buffer_.records();
  }

 private:
  using WaitRecord = typename WaitTable<M>::Record;

  /// Attempt the §5.1 reversed combination of `pkt` (an arriving store)
  /// into `queued` (a load/swap). Only defined for the LssOp family.
  bool try_reversed_combine(FwdPacket<M>& queued, FwdPacket<M>& pkt,
                            unsigned in_port,
                            std::vector<CombineEvent>* events) {
    if constexpr (std::same_as<M, core::LssOp>) {
      if (!cfg_.allow_order_reversal) return false;
      if (queued.combined || pkt.combined) return false;
      if (queued.req.id.proc == pkt.req.id.proc) return false;
      if (wait_buffer_.records() >= cfg_.wait_buffer_capacity) return false;
      const auto r = core::compose_reversible(queued.req.f, pkt.req.f);
      if (!r.reversed) return false;
      WaitRecord wr;
      wr.rec = core::CombineRecord<M>{queued.req.id, pkt.req.id, M{}};
      pkt.path.push_back(static_cast<std::uint8_t>(in_port));
      wr.path = pkt.path;
      wr.reversed = true;
      wr.absorbed_map = pkt.req.f;
      queued.req.f = r.forwarded;
      queued.combined = true;
      wait_buffer_.append(queued.req.id, std::move(wr));
      stats_.max_wait_buffer = std::max<std::uint64_t>(stats_.max_wait_buffer,
                                                       wait_buffer_.records());
      ++stats_.combines;
      ++stats_.reversed_combines;
      if (events != nullptr) {
        events->push_back({queued.req.id, pkt.req.id, pkt.req.addr, true});
      }
      return true;
    } else {
      (void)queued;
      (void)pkt;
      (void)in_port;
      (void)events;
      return false;
    }
  }

  void deliver_reverse(RevPacket<M>&& pkt) {
    // Decombine first: every record saved under this id spawns a reply.
    const auto original_val = pkt.reply.value;
    wait_buffer_.consume(pkt.reply.id, [&](WaitRecord& wr) {
      RevPacket<M> second;
      second.reply.id = wr.rec.second;
      second.reply.value =
          wr.reversed ? original_val : core::decombine(wr.rec, original_val);
      second.reply.completed = pkt.reply.completed;
      second.path = wr.path;
      second.nack = pkt.nack;
      if (wr.reversed) {
        // The representative executed after the absorbed store: its
        // reply is the value that store wrote.
        pkt.reply.value = wr.absorbed_map.apply(original_val);
      }
      route_out(std::move(second));
    });
    route_out(std::move(pkt));
  }

  void route_out(RevPacket<M>&& pkt) {
    KRS_EXPECTS(!pkt.path.empty());
    const unsigned port = pkt.path.back();
    pkt.path.pop_back();
    KRS_EXPECTS(port < 2);
    rev_out_[port].push_back(std::move(pkt));
    ++stats_.replies_forwarded;
  }

  SwitchConfig cfg_;
  util::RingBuffer<FwdPacket<M>> fwd_out_[2];
  util::RingBuffer<RevPacket<M>> rev_out_[2];
  WaitTable<M> wait_buffer_;
  SwitchStats stats_;
};

}  // namespace krs::net
