// Omega (perfect-shuffle) multistage network topology.
//
// An Omega network with n = 2^k inputs has k stages of n/2 two-by-two
// switches. Before every stage the n "wires" are permuted by the perfect
// shuffle (left rotation of the k-bit wire index); within a stage, a switch
// routes a request to output port b where b is the destination address bit
// examined at that stage (most significant first).
//
// The Omega network has a unique path between every (processor, module)
// pair, which gives the paper's §4.1 assumptions for free: it is
// non-overtaking per source/destination pair, and replies can retrace the
// request path exactly.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::net {

/// Pure wiring arithmetic for an n = 2^k input Omega network.
class OmegaTopology {
 public:
  explicit OmegaTopology(unsigned log2_ports) : k_(log2_ports) {
    KRS_EXPECTS(k_ >= 1 && k_ <= 16);
  }

  [[nodiscard]] unsigned stages() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t ports() const noexcept { return 1u << k_; }
  [[nodiscard]] std::uint32_t switches_per_stage() const noexcept {
    return 1u << (k_ - 1);
  }

  /// Perfect shuffle: left-rotate the k-bit wire index.
  [[nodiscard]] std::uint32_t shuffle(std::uint32_t wire) const noexcept {
    return ((wire << 1) | (wire >> (k_ - 1))) & (ports() - 1);
  }

  /// Inverse shuffle: right-rotate.
  [[nodiscard]] std::uint32_t unshuffle(std::uint32_t wire) const noexcept {
    return ((wire >> 1) | ((wire & 1) << (k_ - 1))) & (ports() - 1);
  }

  /// The switch row and input port reached at stage `s` by the wire that
  /// leaves stage s-1 (or a processor, for s = 0) with index `wire`.
  struct PortRef {
    std::uint32_t row;
    unsigned port;
  };

  [[nodiscard]] PortRef stage_input(std::uint32_t wire) const noexcept {
    const std::uint32_t w = shuffle(wire);
    return {w >> 1, static_cast<unsigned>(w & 1)};
  }

  /// Output port a request bound for memory module `dst` takes at stage s.
  [[nodiscard]] unsigned route_bit(std::uint32_t dst, unsigned s) const noexcept {
    KRS_EXPECTS(s < k_);
    return util::bit_of(dst, k_ - 1 - s);
  }

  /// Wire index leaving (row, out_port).
  [[nodiscard]] static std::uint32_t output_wire(std::uint32_t row,
                                                 unsigned port) noexcept {
    return (row << 1) | port;
  }

  /// Where the wire feeding stage-s input (row, port) comes from:
  /// for s == 0, the processor with this index; otherwise the output wire
  /// (row', port') of stage s-1.
  [[nodiscard]] std::uint32_t upstream_wire(std::uint32_t row,
                                            unsigned port) const noexcept {
    return unshuffle(output_wire(row, port));
  }

  /// Full forward route of a (src processor, dst module) pair: the switch
  /// (row, in port, out port) at each stage. Mostly used by tests.
  struct Hop {
    std::uint32_t row;
    unsigned in_port;
    unsigned out_port;
  };

  template <typename OutIt>
  void route(std::uint32_t src, std::uint32_t dst, OutIt out) const {
    std::uint32_t wire = src;
    for (unsigned s = 0; s < k_; ++s) {
      const PortRef in = stage_input(wire);
      const unsigned op = route_bit(dst, s);
      *out++ = Hop{in.row, in.port, op};
      wire = output_wire(in.row, op);
    }
    KRS_ENSURES(wire == dst);
  }

 private:
  unsigned k_;
};

}  // namespace krs::net
