// Network packets: requests travelling toward memory, replies travelling
// back. A forward packet accumulates the path header the paper describes
// ("as a message travels through the network, it can construct a header
// describing its path; this header is used to route the reply in the
// reverse direction").
#pragma once

#include <cstdint>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "net/path.hpp"

namespace krs::net {

/// Kind of memory transaction carried by a forward packet. kRmw is the
/// memory-side implementation of §2 (one request, one reply, combinable).
/// kReadLock/kWriteUnlock model the processor-side baseline (the "load-store
/// extended cycle" with the module locked in between) — never combined.
enum class TxnKind : std::uint8_t { kRmw, kReadLock, kWriteUnlock };

template <core::Rmw M>
struct FwdPacket {
  core::Request<M> req;
  TxnKind kind = TxnKind::kRmw;
  /// True once this message has absorbed or been produced by any combine —
  /// order reversal (§5.1) is then no longer permitted, since the message
  /// may represent several requests whose relative order is already fixed.
  bool combined = false;
  /// New cell value carried by a kWriteUnlock (the processor computed f(v)
  /// locally in the processor-side implementation of §2).
  typename M::value_type store_value{};
  /// Input port taken at each stage so far; replies pop from the back.
  /// Inline (k ≤ 16): packets copy without touching the heap.
  PathHeader path;
};

template <core::Rmw M>
struct RevPacket {
  core::Reply<M> reply;
  PathHeader path;
  /// Negative acknowledgment (processor-side baseline: lock refused).
  bool nack = false;
};

}  // namespace krs::net
