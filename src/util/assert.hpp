// Lightweight contract-checking macros, in the spirit of the GSL's
// Expects/Ensures (C++ Core Guidelines I.6/I.8). Violations abort with a
// source location: simulation code must never continue past a broken
// invariant, since later results would be silently wrong.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace krs::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace krs::util

#define KRS_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::krs::util::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__))

#define KRS_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::krs::util::contract_failure("postcondition", #cond, __FILE__, \
                                          __LINE__))

#define KRS_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                        \
          : ::krs::util::contract_failure("invariant", #cond, __FILE__, \
                                          __LINE__))
