#include "util/rational.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace krs::util {

std::optional<std::int64_t> checked_add(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<std::int64_t> checked_sub(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<std::int64_t> checked_mul(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<std::int64_t> checked_neg(std::int64_t a) noexcept {
  return checked_sub(0, a);
}

Rational::Rational(std::int64_t p, std::int64_t q) noexcept
    : num_(0), den_(1), valid_(false) {
  if (q == 0) return;
  // Normalize sign into the numerator. q == INT64_MIN cannot be negated.
  if (q < 0) {
    auto np = checked_neg(p);
    auto nq = checked_neg(q);
    if (!np || !nq) return;
    p = *np;
    q = *nq;
  }
  const std::int64_t g = std::gcd(p, q);
  if (g != 0) {
    p /= g;
    q /= g;
  }
  num_ = p;
  den_ = q;
  valid_ = true;
}

std::int64_t Rational::as_integer() const noexcept {
  KRS_EXPECTS(is_integer());
  return num_;
}

double Rational::to_double() const noexcept {
  if (!valid_) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (!valid_) return "<invalid>";
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

namespace {

// a/b + c/d with all intermediate products checked. Inputs are normalized.
Rational add_impl(const Rational& a, const Rational& b, bool negate_b) {
  if (!a.ok() || !b.ok()) return Rational::invalid();
  std::int64_t bn = b.num();
  if (negate_b) {
    auto n = checked_neg(bn);
    if (!n) return Rational::invalid();
    bn = *n;
  }
  // Reduce cross terms by gcd of denominators first to widen headroom.
  const std::int64_t g = std::gcd(a.den(), b.den());
  const std::int64_t ad = a.den() / g;
  const std::int64_t bd = b.den() / g;
  const auto t1 = checked_mul(a.num(), bd);
  const auto t2 = checked_mul(bn, ad);
  if (!t1 || !t2) return Rational::invalid();
  const auto num = checked_add(*t1, *t2);
  const auto d1 = checked_mul(a.den(), bd);
  if (!num || !d1) return Rational::invalid();
  return Rational(*num, *d1);
}

}  // namespace

Rational operator+(const Rational& a, const Rational& b) noexcept {
  return add_impl(a, b, /*negate_b=*/false);
}

Rational operator-(const Rational& a, const Rational& b) noexcept {
  return add_impl(a, b, /*negate_b=*/true);
}

Rational operator*(const Rational& a, const Rational& b) noexcept {
  if (!a.ok() || !b.ok()) return Rational::invalid();
  // Cross-reduce before multiplying to minimize overflow.
  const std::int64_t g1 = std::gcd(a.num(), b.den());
  const std::int64_t g2 = std::gcd(b.num(), a.den());
  const std::int64_t an = g1 != 0 ? a.num() / g1 : a.num();
  const std::int64_t bd = g1 != 0 ? b.den() / g1 : b.den();
  const std::int64_t bn = g2 != 0 ? b.num() / g2 : b.num();
  const std::int64_t ad = g2 != 0 ? a.den() / g2 : a.den();
  const auto num = checked_mul(an, bn);
  const auto den = checked_mul(ad, bd);
  if (!num || !den) return Rational::invalid();
  return Rational(*num, *den);
}

Rational operator/(const Rational& a, const Rational& b) noexcept {
  if (!a.ok() || !b.ok() || b.num() == 0) return Rational::invalid();
  return a * Rational(b.den(), b.num());
}

Rational operator-(const Rational& a) noexcept {
  if (!a.ok()) return Rational::invalid();
  const auto n = checked_neg(a.num());
  if (!n) return Rational::invalid();
  return Rational(*n, a.den());
}

}  // namespace krs::util
