// Bounded blocking channel for CSP-style message passing between threads.
//
// Section 6 of the paper expresses the asynchronous parallel-prefix tree as
// CSP processes communicating over synchronous channels (`parent ! val`,
// `parent ? val`). `Channel<T>` provides the message-passing substrate for
// that construction (and for other producer/consumer examples). A capacity-1
// channel gives near-CSP rendezvous semantics (a second send blocks until
// the first value is received), which is all the tree algorithm needs.
//
// Follows C++ Core Guidelines CP.mess: prefer message passing over shared
// mutable state; values are moved through the channel.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace krs::util {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1) : capacity_(capacity) {
    KRS_EXPECTS(capacity >= 1);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. Returns std::nullopt once the channel is closed and
  /// drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close the channel: senders fail, receivers drain then get nullopt.
  void close() {
    std::scoped_lock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace krs::util
