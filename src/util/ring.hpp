// A growable power-of-two ring buffer with deque semantics, built for the
// simulator's hot path: steady-state push/pop never allocates (capacity
// only ever grows, and growth doubles), indexing from the front is O(1)
// (the switch's youngest-match scan walks it backwards), and storage is
// one contiguous block (no per-node allocation as in std::deque).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::util {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  void reserve(std::size_t capacity) {
    if (capacity <= buf_.size()) return;
    grow_to(ceil_pow2(capacity));
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (count_ == buf_.size()) grow_to(buf_.empty() ? 8 : buf_.size() * 2);
    T& slot = buf_[wrap(head_ + count_)];
    slot = T(std::forward<Args>(args)...);
    ++count_;
    return slot;
  }

  void push_front(T&& v) {
    if (count_ == buf_.size()) grow_to(buf_.empty() ? 8 : buf_.size() * 2);
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = std::move(v);
    ++count_;
  }

  [[nodiscard]] T& front() {
    KRS_EXPECTS(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    KRS_EXPECTS(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() { return (*this)[count_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[count_ - 1]; }

  /// i-th element from the front (0 = front, size()-1 = back).
  [[nodiscard]] T& operator[](std::size_t i) {
    KRS_EXPECTS(i < count_);
    return buf_[wrap(head_ + i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    KRS_EXPECTS(i < count_);
    return buf_[wrap(head_ + i)];
  }

  void pop_front() {
    KRS_EXPECTS(count_ > 0);
    buf_[head_] = T{};  // release held resources promptly
    head_ = wrap(head_ + 1);
    --count_;
  }

  /// Remove the i-th element, shifting whichever side is shorter. The
  /// simulator uses this only for rare mid-queue extraction (the module's
  /// write-unlock bypass), never on the steady path.
  void erase_at(std::size_t i) {
    KRS_EXPECTS(i < count_);
    if (i <= count_ / 2) {
      for (std::size_t j = i; j > 0; --j) (*this)[j] = std::move((*this)[j - 1]);
      pop_front();
    } else {
      for (std::size_t j = i; j + 1 < count_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
      (*this)[count_ - 1] = T{};
      --count_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) buf_[wrap(head_ + i)] = T{};
    head_ = 0;
    count_ = 0;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i & (buf_.size() - 1);
  }

  void grow_to(std::size_t new_cap) {
    std::vector<T> bigger(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace krs::util
