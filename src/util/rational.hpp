// Exact rational arithmetic with overflow detection.
//
// Used by the Möbius (linear-fractional) mapping family of §5.4: composing
// fetch-and-{add,sub,mul,div} requests multiplies 2x2 coefficient matrices,
// and applying the composed map evaluates (a*x + b) / (c*x + d). Doing this
// in floating point would mask the numerical-stability caveats the paper
// discusses, so the reference implementation is exact: 64-bit numerator and
// denominator, normalized, with every operation checked for overflow.
//
// Overflow and division-by-zero are reported via the `ok()` flag rather than
// exceptions: combining-switch code treats a non-tractable composition as
// "do not combine", which is a normal (and correct) outcome, not an error.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>

namespace krs::util {

/// Checked signed 64-bit helpers. Return std::nullopt on overflow.
std::optional<std::int64_t> checked_add(std::int64_t a, std::int64_t b) noexcept;
std::optional<std::int64_t> checked_sub(std::int64_t a, std::int64_t b) noexcept;
std::optional<std::int64_t> checked_mul(std::int64_t a, std::int64_t b) noexcept;
std::optional<std::int64_t> checked_neg(std::int64_t a) noexcept;

/// An exact rational p/q with q > 0, gcd(p, q) == 1; or the distinguished
/// "invalid" value produced by overflow or division by zero.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1), valid_(true) {}

  /// Integer value.
  explicit Rational(std::int64_t n) noexcept : num_(n), den_(1), valid_(true) {}

  /// p/q, normalized. q == 0 produces the invalid value.
  Rational(std::int64_t p, std::int64_t q) noexcept;

  static Rational invalid() noexcept {
    Rational r;
    r.valid_ = false;
    return r;
  }

  [[nodiscard]] bool ok() const noexcept { return valid_; }
  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  /// True iff the value is a valid integer.
  [[nodiscard]] bool is_integer() const noexcept { return valid_ && den_ == 1; }

  /// The integer value; precondition: is_integer().
  [[nodiscard]] std::int64_t as_integer() const noexcept;

  [[nodiscard]] double to_double() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend Rational operator+(const Rational& a, const Rational& b) noexcept;
  friend Rational operator-(const Rational& a, const Rational& b) noexcept;
  friend Rational operator*(const Rational& a, const Rational& b) noexcept;
  friend Rational operator/(const Rational& a, const Rational& b) noexcept;
  friend Rational operator-(const Rational& a) noexcept;

  /// Equality: invalid values compare unequal to everything (including other
  /// invalid values), like NaN.
  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.valid_ && b.valid_ && a.num_ == b.num_ && a.den_ == b.den_;
  }

 private:
  std::int64_t num_;
  std::int64_t den_;
  bool valid_;
};

}  // namespace krs::util
