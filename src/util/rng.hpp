// Deterministic, seedable pseudo-random number generation for simulations.
//
// Every stochastic component of the simulator draws from one of these
// generators so that experiments are reproducible bit-for-bit from a seed.
// SplitMix64 is used for seeding / cheap streams; Xoshiro256** is the main
// workhorse (fast, 256-bit state, passes BigCrush).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace krs::util {

/// SplitMix64: tiny, fast generator; primarily used to expand a 64-bit seed
/// into larger state (as recommended by the xoshiro authors).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    KRS_EXPECTS(bound != 0);
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace krs::util
