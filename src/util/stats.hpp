// Streaming statistics accumulators used by the simulator's measurement
// layer: mean/min/max/variance (Welford) and a coarse log-scale histogram
// for latency distributions.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "util/bits.hpp"

namespace krs::util {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    const double new_mean = mean_ + delta * static_cast<double>(o.n_) / total;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ = new_mean;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for nonnegative integer samples
/// (e.g. request latencies in cycles). Bucket b holds samples in
/// [2^b, 2^(b+1)) with bucket 0 holding {0, 1}.
class LogHistogram {
 public:
  static constexpr unsigned kBuckets = 40;

  void add(std::uint64_t x) noexcept {
    const unsigned b = x <= 1 ? 0 : std::min(kBuckets - 1, log2_floor(x));
    ++buckets_[b];
    ++count_;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// The q-quantile (q ∈ [0, 1]) with linear interpolation inside the
  /// covering bucket: the nearest-rank sample is located in its bucket
  /// and placed at its fractional position across the bucket's value
  /// range [lo, hi]. Exactly bucket-resolution accurate — and because
  /// merge() is bucket-exact, merging per-worker histograms yields the
  /// SAME percentile as one histogram fed every sample, so parallel
  /// reservoirs reduce without quantile drift. Compare quantile_bound(),
  /// which only reports the covering bucket's upper bound.
  [[nodiscard]] double percentile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    // Nearest-rank target: the ceil(q·n)-th sample (1-based), clamped so
    // q=0 means the first sample.
    const double scaled = q * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (seen + buckets_[b] >= rank) {
        const double lo = b == 0 ? 0.0
                                 : static_cast<double>(std::uint64_t{1} << b);
        const double hi = b == 0
            ? 1.0
            : static_cast<double>((std::uint64_t{1} << (b + 1)) - 1);
        // Position of the target inside this bucket, mid-sample rule: the
        // i-th of n samples sits at (i - 0.5)/n across [lo, hi].
        const double frac =
            (static_cast<double>(rank - seen) - 0.5) /
            static_cast<double>(buckets_[b]);
        return lo + frac * (hi - lo);
      }
      seen += buckets_[b];
    }
    return static_cast<double>(sum_) /
           static_cast<double>(count_);  // unreachable: counts are consistent
  }

  /// Smallest bucket upper bound covering the q-quantile (approximate).
  [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > target) return (std::uint64_t{1} << (b + 1)) - 1;
    }
    return ~std::uint64_t{0};
  }

  [[nodiscard]] std::uint64_t bucket(unsigned b) const noexcept {
    return b < kBuckets ? buckets_[b] : 0;
  }

  /// Fold another histogram into this one. Bucket-exact: merging per-worker
  /// histograms gives the same result as one histogram fed every sample, so
  /// parallel stats reduce without sharing (each worker owns its own
  /// accumulator, the single-threaded reduction merges afterwards).
  void merge(const LogHistogram& o) noexcept {
    for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace krs::util
