// Small bit-manipulation helpers shared by the network simulator and the
// parallel-prefix machinery.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace krs::util {

/// True iff x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); x must be nonzero.
constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  KRS_EXPECTS(x != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)); x must be nonzero.
constexpr unsigned log2_ceil(std::uint64_t x) noexcept {
  KRS_EXPECTS(x != 0);
  return x == 1 ? 0u : log2_floor(x - 1) + 1u;
}

/// Next power of two >= x (x must be nonzero and representable).
constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  KRS_EXPECTS(x != 0);
  return std::uint64_t{1} << log2_ceil(x);
}

/// Extract bit b of x (bit 0 = least significant).
constexpr unsigned bit_of(std::uint64_t x, unsigned b) noexcept {
  return static_cast<unsigned>((x >> b) & 1u);
}

}  // namespace krs::util
