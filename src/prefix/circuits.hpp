// Parallel-prefix circuit generators, for the §6 comparison with
// Ladner–Fischer [12].
//
// A circuit is a DAG of binary * gates over n inputs computing all
// EXCLUSIVE prefixes id, x1, x1*x2, …, x1*…*x_{n-1} — exclusive because
// that is exactly what a combining network delivers: the reply to request i
// is the prefix of the EARLIER requests applied to the cell, with no final
// multiplication at the leaf. (The total x1*…*xn is produced as a
// byproduct: the value the memory cell ends with.)
//
// Two classical constructions:
//
//  * tree_prefix_circuit — the up-sweep/down-sweep tree: gate-for-gate the
//    operations of the combining tree of §6 (the size-economical end of
//    the Ladner–Fischer recursive family). Size 2n − 2 − ⌈lg n⌉ for
//    n = 2^k (checked by tests against analyze_prefix_tree and the paper's
//    formula), depth ≈ 2 lg n.
//
//  * sklansky_prefix_circuit — the depth-optimal divide-and-conquer
//    construction (Ladner–Fischer P0): depth ⌈lg n⌉, size ≈ (n/2)·lg n.
//    More gates, half the depth: the size/depth trade-off the LF paper is
//    about, reproduced in bench_prefix.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace krs::prefix {

/// Operand reference: kIdentityRef, an input (< inputs), or a gate output
/// (inputs + gate index).
inline constexpr std::size_t kIdentityRef = static_cast<std::size_t>(-1);

struct Gate {
  std::size_t lhs;
  std::size_t rhs;
};

struct PrefixCircuit {
  std::size_t inputs = 0;
  std::vector<Gate> gates;
  /// outputs[i]: reference computing the exclusive prefix x1*…*x_{i-1}.
  std::vector<std::size_t> outputs;
  /// Reference computing the total product x1*…*xn.
  std::size_t total = kIdentityRef;

  [[nodiscard]] std::size_t size() const noexcept { return gates.size(); }

  /// Depth of the deepest gate feeding an exclusive-prefix output (the
  /// reply path; the total is excluded, mirroring §6's cycle count).
  [[nodiscard]] std::size_t output_depth() const {
    const auto d = gate_depths();
    std::size_t out_max = 0;
    for (const auto ref : outputs) out_max = std::max(out_max, ref_depth(ref, d));
    return out_max;
  }

  /// Depth including the total product.
  [[nodiscard]] std::size_t full_depth() const {
    const auto d = gate_depths();
    std::size_t m = ref_depth(total, d);
    for (const auto ref : outputs) m = std::max(m, ref_depth(ref, d));
    return m;
  }

  /// Evaluate over concrete values; returns the exclusive prefixes.
  template <typename T, typename Op>
  std::vector<T> evaluate(const std::vector<T>& xs, Op op,
                          const T& identity) const {
    T total_out{};
    return evaluate_with_total(xs, op, identity, total_out);
  }

  template <typename T, typename Op>
  std::vector<T> evaluate_with_total(const std::vector<T>& xs, Op op,
                                     const T& identity, T& total_out) const {
    KRS_EXPECTS(xs.size() == inputs);
    std::vector<T> val;
    val.reserve(gates.size());
    const auto ref = [&](std::size_t r) -> const T& {
      if (r == kIdentityRef) return identity;
      return r < inputs ? xs[r] : val[r - inputs];
    };
    for (const auto& g : gates) val.push_back(op(ref(g.lhs), ref(g.rhs)));
    std::vector<T> out;
    out.reserve(outputs.size());
    for (const auto r : outputs) out.push_back(ref(r));
    total_out = ref(total);
    return out;
  }

 private:
  [[nodiscard]] std::vector<std::size_t> gate_depths() const {
    std::vector<std::size_t> d(gates.size());
    for (std::size_t g = 0; g < gates.size(); ++g) {
      d[g] = 1 + std::max(ref_depth(gates[g].lhs, d),
                          ref_depth(gates[g].rhs, d));
    }
    return d;
  }

  [[nodiscard]] std::size_t ref_depth(std::size_t ref,
                                      const std::vector<std::size_t>& d) const {
    if (ref == kIdentityRef || ref < inputs) return 0;
    return d[ref - inputs];
  }
};

/// The combining-tree (up/down sweep) exclusive-prefix circuit. The
/// recursion passes `prefix`, the reference to the product of everything
/// left of the current range (kIdentityRef on the leftmost spine — those
/// multiplications are the trivial ones of §6 and are elided).
inline PrefixCircuit tree_prefix_circuit(std::size_t n) {
  KRS_EXPECTS(n >= 1);
  PrefixCircuit c;
  c.inputs = n;
  c.outputs.assign(n, kIdentityRef);
  // Build with an explicit recursive lambda returning the subtree product.
  const auto build = [&](auto&& self, std::size_t lo, std::size_t len,
                         std::size_t prefix) -> std::size_t {
    if (len == 1) {
      c.outputs[lo] = prefix;
      return lo;
    }
    const std::size_t left = (len + 1) / 2;
    const std::size_t lref = self(self, lo, left, prefix);
    std::size_t rprefix;
    if (prefix == kIdentityRef) {
      rprefix = lref;  // the §6 trivial multiplication, elided
    } else {
      c.gates.push_back({prefix, lref});
      rprefix = c.inputs + c.gates.size() - 1;
    }
    const std::size_t rref = self(self, lo + left, len - left, rprefix);
    c.gates.push_back({lref, rref});
    return c.inputs + c.gates.size() - 1;
  };
  c.total = n == 1 ? 0 : build(build, 0, n, kIdentityRef);
  if (n == 1) c.outputs[0] = kIdentityRef;
  return c;
}

/// Sklansky / Ladner–Fischer P0, exclusive form: compute the inclusive
/// prefixes with the classical minimum-depth recursion, then shift.
inline PrefixCircuit sklansky_prefix_circuit(std::size_t n) {
  KRS_EXPECTS(n >= 1);
  PrefixCircuit c;
  c.inputs = n;
  std::vector<std::size_t> inclusive(n, kIdentityRef);
  const auto build = [&](auto&& self, std::size_t lo, std::size_t len) -> void {
    if (len == 1) {
      inclusive[lo] = lo;
      return;
    }
    const std::size_t left = (len + 1) / 2;
    self(self, lo, left);
    self(self, lo + left, len - left);
    const std::size_t lref = inclusive[lo + left - 1];
    for (std::size_t i = lo + left; i < lo + len; ++i) {
      c.gates.push_back({lref, inclusive[i]});
      inclusive[i] = c.inputs + c.gates.size() - 1;
    }
  };
  build(build, 0, n);
  c.outputs.assign(n, kIdentityRef);
  for (std::size_t i = 1; i < n; ++i) c.outputs[i] = inclusive[i - 1];
  c.total = inclusive[n - 1];
  return c;
}

}  // namespace krs::prefix
