// §6 — the combining network as an asynchronous parallel-prefix machine.
//
// This is a faithful executable of the paper's CSP processes, with real
// threads and blocking channels replacing CSP rendezvous:
//
//   Leaf::      parent ! val;   parent ? val
//   Node::      left ? lval;  right ? rval;  parent ! lval*rval;
//               parent ? pval;  left ! pval;  right ! pval*lval
//   Superoot::  child ? val;  child ! id
//
// On return, leaf i holds val_1 * … * val_{i-1} (the EXCLUSIVE prefix: the
// reply an RMW request would receive from a combining network), and the
// superoot holds val_1 * … * val_n (the value the memory cell ends with).
//
// "The global clock synchronization used by [Ladner–Fischer] is replaced by
// local dataflow synchronization" — here literally: there is no barrier or
// clock anywhere, only channel sends and receives.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/channel.hpp"

namespace krs::prefix {

template <typename T>
struct AsyncPrefixResult {
  std::vector<T> exclusive_prefix;  ///< per leaf: product of earlier leaves
  T total;                          ///< product of all leaves (at superoot)
  std::uint64_t applications = 0;   ///< * evaluations actually performed
};

/// Run the asynchronous prefix tree over `vals` with associative `op` and
/// its identity. The tree splits n leaves as ⌈n/2⌉ / ⌊n/2⌋ at every level
/// (a complete tree when n is a power of two). One thread per internal
/// node, leaf, and superoot — pure message passing, no shared state.
template <typename T, typename Op>
AsyncPrefixResult<T> async_prefix(const std::vector<T>& vals, Op op,
                                  const T& identity) {
  KRS_EXPECTS(!vals.empty());
  const std::size_t n = vals.size();
  using Chan = util::Channel<T>;

  AsyncPrefixResult<T> result;
  result.exclusive_prefix.assign(n, identity);
  std::atomic<std::uint64_t> apps{0};
  const auto counted = [&op, &apps](const T& a, const T& b) {
    apps.fetch_add(1, std::memory_order_relaxed);
    return op(a, b);
  };

  // Channel pairs: up[i] carries child→parent values, down[i] parent→child,
  // one pair per tree edge. Edges are created during recursive layout.
  std::vector<std::unique_ptr<Chan>> ups, downs;
  const auto new_edge = [&]() {
    ups.push_back(std::make_unique<Chan>(1));
    downs.push_back(std::make_unique<Chan>(1));
    return ups.size() - 1;
  };

  struct NodeSpec {
    std::size_t parent_edge;
    std::size_t left_edge;
    std::size_t right_edge;
  };
  struct LeafSpec {
    std::size_t parent_edge;
    std::size_t index;
  };
  std::vector<NodeSpec> nodes;
  std::vector<LeafSpec> leaves;

  // Lay out the subtree covering [lo, lo+len) hanging off `parent_edge`.
  const auto layout = [&](auto&& self, std::size_t lo, std::size_t len,
                          std::size_t parent_edge) -> void {
    if (len == 1) {
      leaves.push_back({parent_edge, lo});
      return;
    }
    const std::size_t left_len = (len + 1) / 2;
    const std::size_t le = new_edge();
    const std::size_t re = new_edge();
    nodes.push_back({parent_edge, le, re});
    self(self, lo, left_len, le);
    self(self, lo + left_len, len - left_len, re);
  };
  const std::size_t root_edge = new_edge();
  layout(layout, 0, n, root_edge);

  {
    std::vector<std::jthread> threads;
    threads.reserve(nodes.size() + leaves.size() + 1);

    // Superoot: receives the total, replies with the identity.
    threads.emplace_back([&] {
      auto total = ups[root_edge]->receive();
      KRS_ASSERT(total.has_value());
      result.total = *std::move(total);
      downs[root_edge]->send(identity);
    });

    for (const auto& nd : nodes) {
      threads.emplace_back([&, nd] {
        auto lval = ups[nd.left_edge]->receive();
        auto rval = ups[nd.right_edge]->receive();
        KRS_ASSERT(lval && rval);
        ups[nd.parent_edge]->send(counted(*lval, *rval));
        auto pval = downs[nd.parent_edge]->receive();
        KRS_ASSERT(pval.has_value());
        downs[nd.left_edge]->send(*pval);
        downs[nd.right_edge]->send(counted(*pval, *lval));
      });
    }

    for (const auto& lf : leaves) {
      threads.emplace_back([&, lf] {
        ups[lf.parent_edge]->send(vals[lf.index]);
        auto pre = downs[lf.parent_edge]->receive();
        KRS_ASSERT(pre.has_value());
        result.exclusive_prefix[lf.index] = *std::move(pre);
      });
    }
  }  // join all

  result.applications = apps.load();
  return result;
}

}  // namespace krs::prefix
