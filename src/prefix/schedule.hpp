// §6 — operation counts and critical paths of the prefix tree.
//
// The paper: "Each internal node performs two multiplications, of which
// ⌈lg n⌉ are trivial. Thus, 2n − 2 − ⌈lg n⌉ nontrivial multiplications are
// done. The algorithm can be implemented to run in 2⌈lg n⌉ − 2
// multiplication cycles, when globally synchronized."
//
// This header computes both quantities from the tree itself (no closed
// form), so the tests can CHECK the paper's formulas rather than restate
// them:
//
//  * nontrivial multiplications: every internal node multiplies once going
//    up (lval*rval) and once going down (pval*lval for its right child);
//    down-multiplications with pval = identity — the nodes on the leftmost
//    spine — are trivial.
//
//  * multiplication cycles: the dataflow critical path where a nontrivial
//    multiplication costs one cycle, messages are free, and a node may
//    compute its down product as soon as pval and lval are available (it
//    need not wait for its own up product — the eager schedule). The
//    paper's figure counts the cycles until every LEAF has its prefix; the
//    root's final product (the memory update) overlaps with the down sweep
//    and is off that path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace krs::prefix {

struct ScheduleReport {
  std::uint64_t internal_nodes = 0;
  std::uint64_t total_multiplications = 0;     ///< 2 per internal node
  std::uint64_t trivial_multiplications = 0;   ///< identity-operand downs
  std::uint64_t nontrivial_multiplications = 0;
  std::uint64_t leaf_critical_path = 0;   ///< cycles to all leaf prefixes
  std::uint64_t total_critical_path = 0;  ///< cycles incl. the root product
};

/// Analyze the ⌈n/2⌉/⌊n/2⌋-split prefix tree over n leaves.
inline ScheduleReport analyze_prefix_tree(std::size_t n) {
  KRS_EXPECTS(n >= 1);
  ScheduleReport r;
  if (n == 1) return r;

  // First pass: up times (product availability) plus node/mult counts.
  const auto up = [&](auto&& self, std::size_t len) -> std::uint64_t {
    if (len == 1) return 0;
    const std::size_t left = (len + 1) / 2;
    const std::uint64_t lt = self(self, left);
    const std::uint64_t rt = self(self, len - left);
    ++r.internal_nodes;
    r.total_multiplications += 1;  // up multiplication (always nontrivial
                                   // for len >= 2 operands... counted below)
    return std::max(lt, rt) + 1;
  };

  // Second pass: down sweep. pval_id marks the leftmost spine. Returns the
  // latest cycle at which a leaf of this subtree receives its prefix, given
  // that pval arrives at `pval_time`.
  const auto down = [&](auto&& self, std::size_t len, std::uint64_t pval_time,
                        bool pval_id) -> std::uint64_t {
    if (len == 1) return pval_time;
    const std::size_t left = (len + 1) / 2;
    // Recompute child up times locally (cheap; tree depth is log n).
    const auto up_time = [](auto&& s, std::size_t l) -> std::uint64_t {
      if (l == 1) return 0;
      const std::size_t ll = (l + 1) / 2;
      return std::max(s(s, ll), s(s, l - ll)) + 1;
    };
    const std::uint64_t lup = up_time(up_time, left);
    r.total_multiplications += 1;  // down multiplication pval*lval
    std::uint64_t right_pval_time;
    bool right_pval_id = false;
    if (pval_id) {
      // pval is the identity: the right child's pval is just lval — the
      // trivial multiplication of the left spine.
      ++r.trivial_multiplications;
      right_pval_time = lup;
      right_pval_id = false;
    } else {
      right_pval_time = std::max(pval_time, lup) + 1;
    }
    const std::uint64_t ldone = self(self, left, pval_time, pval_id);
    const std::uint64_t rdone =
        self(self, len - left, right_pval_time, right_pval_id);
    return std::max(ldone, rdone);
  };

  const std::uint64_t root_up = up(up, n);
  r.leaf_critical_path = down(down, n, 0, true);
  r.total_critical_path = std::max(r.leaf_critical_path, root_up);
  r.nontrivial_multiplications =
      r.total_multiplications - r.trivial_multiplications;
  return r;
}

}  // namespace krs::prefix
