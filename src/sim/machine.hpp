// The simulated multiprocessor (§3–§4): n processors, a k-stage Omega
// network of combining 2×2 switches, and n independent memory modules with
// memory-side RMW. Cycle-accurate at packet granularity: one packet per
// link per direction per cycle, one service per module per cycle.
//
// The cycle is organized for the engine layer (sim/engine.hpp) as two
// sub-phases over n/2 column shards (shard i owns the stage-i switches of
// every stage plus processors and modules 2i, 2i+1):
//
//  * CONSUME: every component ingests the single-slot links feeding it —
//    processors take replies and issue, switches take replies then
//    requests (rotating-priority arbitration), modules take one request
//    and tick. Each link has exactly one consumer.
//  * PRODUCE: every component moves at most one packet per output into an
//    empty link — switch queue heads, processor outgoing head, the module
//    reply ring head. Each link has exactly one producer.
//
// Links are written in one sub-phase and read in the other, so shards
// never race and every cycle reads the previous sub-phase's snapshot:
// the parallel engine is bit-identical to the sequential one.
//
// The machine records everything the §4.3 correctness argument needs:
//  * every combine event (representative, absorbed) in chronological order,
//  * each module's serial processing order of (possibly combined) requests,
//  * each completed operation's original mapping and observed reply.
// The verifier (src/verify) expands the combined messages into the request
// sequences they represent (Lemma 4.1) and replays them serially.
// Per-shard event logs are merged in shard order at the end of each cycle,
// so the global logs are identical at every worker count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/omega.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"
#include "runtime/cacheline.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/ring.hpp"
#include "util/stats.hpp"

namespace krs::sim {

using core::Addr;
using core::ReqId;
using core::Tick;

template <core::Rmw M>
struct MachineConfig {
  unsigned log2_procs = 3;  ///< n = 2^k processors, modules, and stages k
  net::SwitchConfig switch_cfg{};
  mem::ModuleConfig mem_cfg{};
  typename M::value_type initial_value{};
  unsigned window = 4;             ///< outstanding ops per processor
  bool processor_side_rmw = false; ///< use the §2 baseline implementation
};

struct MachineStats {
  Tick cycles = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t combines = 0;
  std::uint64_t switch_stall_cycles = 0;
  /// Request messages (and their bytes) that actually occupied link/queue
  /// slots, summed over all switches — combining shows up as a reduction
  /// relative to ops × stages.
  std::uint64_t request_messages = 0;
  std::uint64_t request_bytes = 0;
  util::LogHistogram latency;
  double throughput_ops_per_cycle = 0.0;

  /// Fold another accumulator into this one. Counters add and the latency
  /// histogram merges bucket-exact, so per-shard (or per-worker) partials
  /// reduce to the same result a single global accumulator would have
  /// seen — no shared counters needed on the hot path. `cycles` takes the
  /// max (partials observe the same clock); throughput is recomputed.
  void merge(const MachineStats& o) {
    cycles = std::max(cycles, o.cycles);
    ops_completed += o.ops_completed;
    combines += o.combines;
    switch_stall_cycles += o.switch_stall_cycles;
    request_messages += o.request_messages;
    request_bytes += o.request_bytes;
    latency.merge(o.latency);
    throughput_ops_per_cycle =
        cycles > 0 ? static_cast<double>(ops_completed) /
                         static_cast<double>(cycles)
                   : 0.0;
  }
};

/// A single-slot inter-component channel: full exactly between the produce
/// sub-phase that wrote it and the consume sub-phase that drains it.
/// Padded so links consumed by different shards never share a line.
template <typename P>
struct alignas(runtime::kCacheLine) CycleLink {
  P pkt{};
  bool full = false;
};

template <core::Rmw M>
class Machine {
 public:
  using rmw_type = M;
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  Machine(MachineConfig<M> cfg,
          std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources)
      : cfg_(cfg), topo_(cfg.log2_procs), sources_(std::move(sources)) {
    const auto n = topo_.ports();
    KRS_EXPECTS(sources_.size() == n);
    stages_.resize(topo_.stages());
    arb_priority_.assign(topo_.stages(),
                         std::vector<unsigned>(topo_.switches_per_stage(), 0));
    for (auto& st : stages_) {
      st.reserve(topo_.switches_per_stage());
      for (std::uint32_t r = 0; r < topo_.switches_per_stage(); ++r) {
        st.emplace_back(cfg_.switch_cfg);
      }
    }
    modules_.reserve(n);
    procs_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      modules_.emplace_back(cfg_.mem_cfg, cfg_.initial_value);
      procs_.emplace_back(i, cfg_.window, cfg_.processor_side_rmw,
                          sources_[i].get());
    }
    // Boundary b sits between stage b-1 and stage b (b = 0: processors,
    // b = k: modules); each holds one link per wire per direction.
    fwd_links_.assign(topo_.stages() + 1,
                      std::vector<CycleLink<Fwd>>(n));
    rev_links_.assign(topo_.stages() + 1,
                      std::vector<CycleLink<Rev>>(n));
    mod_out_.resize(n);
    logs_.resize(topo_.switches_per_stage());
  }

  [[nodiscard]] std::uint32_t processors() const noexcept {
    return topo_.ports();
  }

  /// Memory module that owns an address (low-order interleaving).
  [[nodiscard]] std::uint32_t module_of(Addr addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (topo_.ports() - 1));
  }

  /// Advance one cycle (sequential shard order).
  void tick() {
    const std::uint32_t shards = engine_shards();
    for (unsigned ph = 0; ph < kSubphases; ++ph) {
      for (std::uint32_t sh = 0; sh < shards; ++sh) engine_subphase(ph, sh);
    }
    engine_end_cycle();
  }

  /// Run until every processor is quiescent and the machine has drained,
  /// or `max_cycles` elapse. Returns true iff fully drained.
  bool run(Tick max_cycles) { return SequentialEngine::run(*this, max_cycles); }

  /// Same semantics — and bit-identical results — on a worker pool.
  /// `workers` is clamped to the shard count; 0/1 falls back to run().
  bool run_parallel(Tick max_cycles, unsigned workers) {
    return ParallelEngine(workers).run(*this, max_cycles);
  }

  // --- engine concept (sim/engine.hpp) ------------------------------------

  /// Shard i owns switch row i of every stage, processors 2i and 2i+1, and
  /// modules 2i and 2i+1 — all components whose input links it consumes.
  [[nodiscard]] std::uint32_t engine_shards() const noexcept {
    return topo_.switches_per_stage();
  }
  [[nodiscard]] unsigned engine_subphases() const noexcept {
    return kSubphases;
  }

  void engine_subphase(unsigned ph, std::uint32_t shard) {
    if (ph == 0) {
      consume(shard);
    } else {
      produce(shard);
    }
  }

  /// Serial between cycles: merge per-shard logs in shard order (so the
  /// global transcript is independent of the worker count) and advance
  /// the clock.
  void engine_end_cycle() {
    for (auto& log : logs_) {
      combine_log_.insert(combine_log_.end(), log.events.begin(),
                          log.events.end());
      log.events.clear();
      for (auto& op : log.completed) completed_.push_back(op);
      log.completed.clear();
    }
    ++now_;
  }

  [[nodiscard]] bool drained() const {
    for (const auto& p : procs_) {
      if (!p.quiescent()) return false;
    }
    for (const auto& st : stages_) {
      for (const auto& sw : st) {
        if (!sw.idle()) return false;
      }
    }
    for (const auto& m : modules_) {
      if (!m.idle()) return false;
    }
    for (const auto& boundary : fwd_links_) {
      for (const auto& l : boundary) {
        if (l.full) return false;
      }
    }
    for (const auto& boundary : rev_links_) {
      for (const auto& l : boundary) {
        if (l.full) return false;
      }
    }
    for (const auto& q : mod_out_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] Tick now() const noexcept { return now_; }

  [[nodiscard]] const std::vector<proc::CompletedOp<M>>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<net::CombineEvent>& combine_log() const {
    return combine_log_;
  }
  [[nodiscard]] const mem::MemoryModule<M>& module(std::uint32_t i) const {
    return modules_[i];
  }
  [[nodiscard]] Value value_at(Addr addr) const {
    return modules_[module_of(addr)].value_at(addr);
  }

  /// Directly set a memory cell, outside the simulated clock: no packets,
  /// no cycles, no transcript entry. Seam for the runtime sim backend
  /// (cell initialization, serialized compare-exchange): the write lands
  /// in the owning module's serial state between services, so it
  /// linearizes before every not-yet-serviced request and after every
  /// serviced one.
  void poke(Addr addr, Value v) { modules_[module_of(addr)].poke(addr, v); }

  [[nodiscard]] MachineStats stats() const {
    // Built as a per-shard reduction through MachineStats::merge — the
    // same reduction a parallel stats pass performs, exercised on every
    // call so sequential and parallel reports cannot drift apart.
    MachineStats s;
    s.cycles = now_;
    for (std::uint32_t col = 0; col < topo_.switches_per_stage(); ++col) {
      MachineStats part;
      part.cycles = now_;
      for (unsigned st = 0; st < topo_.stages(); ++st) {
        const auto& sw = stages_[st][col].stats();
        part.combines += sw.combines;
        part.switch_stall_cycles += sw.stalls;
        part.request_messages += sw.requests_forwarded;
        part.request_bytes += sw.request_bytes;
      }
      s.merge(part);
    }
    MachineStats ops;
    ops.cycles = now_;
    ops.ops_completed = completed_.size();
    for (const auto& op : completed_) ops.latency.add(op.completed - op.issued);
    s.merge(ops);
    return s;
  }

  [[nodiscard]] const net::SwitchStats& switch_stats(unsigned stage,
                                                     std::uint32_t row) const {
    return stages_[stage][row].stats();
  }

 private:
  static constexpr unsigned kSubphases = 2;

  /// Per-shard transcript segment, merged (and cleared) every cycle by
  /// engine_end_cycle. Padded: adjacent shards append concurrently.
  struct alignas(runtime::kCacheLine) ShardLog {
    std::vector<net::CombineEvent> events;
    std::vector<proc::CompletedOp<M>> completed;
    std::vector<Rev> due_scratch;  ///< reused module.tick output buffer
  };

  // --- link indexing -------------------------------------------------------
  // Boundary b, wire w: for b < k, w is the stage-b input wire
  // (row << 1) | in_port of the consuming switch; for b == k, w is the
  // module index. A producer therefore shuffles its output wire for
  // b < k (the perfect-shuffle wiring between stages) and uses it
  // directly into the module boundary.

  [[nodiscard]] std::uint32_t down_wire(unsigned boundary,
                                        std::uint32_t out_wire) const {
    return boundary == topo_.stages() ? out_wire : topo_.shuffle(out_wire);
  }

  // --- consume: ingest input links, shard `col` ----------------------------

  void consume(std::uint32_t col) {
    ShardLog& log = logs_[col];
    const unsigned k = topo_.stages();

    // Processors 2col, 2col+1: take the reply link, then retire retries
    // and issue new work.
    for (unsigned j = 0; j < 2; ++j) {
      const std::uint32_t p = 2 * col + j;
      auto& link = rev_links_[0][topo_.shuffle(p)];
      if (link.full) {
        KRS_ASSERT(link.pkt.path.empty());
        procs_[p].deliver(std::move(link.pkt), now_, &log.completed);
        link.full = false;
      }
      procs_[p].tick(now_);
    }

    // Switches (s, col): replies first (decombine into the reverse
    // queues), then requests under rotating-priority arbitration.
    for (unsigned s = 0; s < k; ++s) {
      auto& sw = stages_[s][col];
      for (unsigned port = 0; port < 2; ++port) {
        const std::uint32_t wire = net::OmegaTopology::output_wire(col, port);
        auto& link = rev_links_[s + 1][down_wire(s + 1, wire)];
        if (link.full) {
          sw.accept_reply(std::move(link.pkt));
          link.full = false;
        }
      }
      // Input-port arbitration must be LOCALLY fair: with fixed priority,
      // a congested output queue that frees one slot per cycle starves
      // port 1 forever; with globally synchronized alternation (now mod 2)
      // the whole machine can parity-lock — every period in the system is
      // even (reply latency, pipeline hops), so under the processor-side
      // lock protocol the owner's write-unlock then never advances (a
      // measured livelock, not a hypothetical). The standard fix:
      // per-switch rotating priority that flips exactly when the favored
      // port wins a transfer.
      unsigned& pref = arb_priority_[s][col];
      const unsigned order[2] = {pref, pref ^ 1u};
      for (unsigned i = 0; i < 2; ++i) {
        const unsigned port = order[i];
        auto& link = fwd_links_[s][net::OmegaTopology::output_wire(col, port)];
        if (!link.full) continue;
        const unsigned out_port =
            topo_.route_bit(module_of(link.pkt.req.addr), s);
        if (sw.offer_request(std::move(link.pkt), port, out_port,
                             &log.events)) {
          link.full = false;
          if (i == 0) pref = order[1];  // favored port won: rotate
        }
      }
    }

    // Modules 2col, 2col+1: pull one request from the boundary link, then
    // service; due replies stage on the module's reply ring.
    for (unsigned j = 0; j < 2; ++j) {
      const std::uint32_t m = 2 * col + j;
      auto& link = fwd_links_[k][m];
      if (link.full && modules_[m].can_accept(link.pkt)) {
        modules_[m].accept(std::move(link.pkt), &log.events);
        link.full = false;
      }
      log.due_scratch.clear();
      modules_[m].tick(now_, log.due_scratch);
      for (auto& rev : log.due_scratch) {
        mod_out_[m].push_back(std::move(rev));
      }
    }
  }

  // --- produce: fill output links, shard `col` -----------------------------

  void produce(std::uint32_t col) {
    const unsigned k = topo_.stages();

    // Processor outgoing heads → stage-0 request links.
    for (unsigned j = 0; j < 2; ++j) {
      const std::uint32_t p = 2 * col + j;
      auto& link = fwd_links_[0][topo_.shuffle(p)];
      if (!link.full && procs_[p].peek_outgoing() != nullptr) {
        link.pkt = procs_[p].pop_outgoing();
        link.full = true;
      }
    }

    // Switch queue heads: forward toward memory, reverse toward the
    // processors. One packet per link per cycle in each direction.
    for (unsigned s = 0; s < k; ++s) {
      auto& sw = stages_[s][col];
      for (unsigned port = 0; port < 2; ++port) {
        const std::uint32_t wire = net::OmegaTopology::output_wire(col, port);
        auto& flink = fwd_links_[s + 1][down_wire(s + 1, wire)];
        if (!flink.full && sw.peek_output(port) != nullptr) {
          flink.pkt = sw.pop_output(port);
          flink.full = true;
        }
        auto& rlink = rev_links_[s][wire];
        if (!rlink.full && sw.peek_reply(port) != nullptr) {
          rlink.pkt = sw.pop_reply(port);
          rlink.full = true;
        }
      }
    }

    // Module reply ring heads → boundary-k reply links.
    for (unsigned j = 0; j < 2; ++j) {
      const std::uint32_t m = 2 * col + j;
      auto& link = rev_links_[k][m];
      if (!link.full && !mod_out_[m].empty()) {
        link.pkt = std::move(mod_out_[m].front());
        mod_out_[m].pop_front();
        link.full = true;
      }
    }
  }

  MachineConfig<M> cfg_;
  net::OmegaTopology topo_;
  std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources_;
  std::vector<std::vector<net::CombiningSwitch<M>>> stages_;
  std::vector<mem::MemoryModule<M>> modules_;
  std::vector<proc::Processor<M>> procs_;
  std::vector<proc::CompletedOp<M>> completed_;
  std::vector<net::CombineEvent> combine_log_;
  /// Rotating input-port priority per switch (see consume()).
  std::vector<std::vector<unsigned>> arb_priority_;
  /// Single-slot links at each stage boundary, [k+1][n] per direction.
  std::vector<std::vector<CycleLink<Fwd>>> fwd_links_;
  std::vector<std::vector<CycleLink<Rev>>> rev_links_;
  /// Per-module staged replies awaiting a free boundary link.
  std::vector<util::RingBuffer<Rev>> mod_out_;
  std::vector<ShardLog> logs_;
  Tick now_ = 0;
};

}  // namespace krs::sim
