// The simulated multiprocessor (§3–§4): n processors, a k-stage Omega
// network of combining 2×2 switches, and n independent memory modules with
// memory-side RMW. Cycle-accurate at packet granularity: one packet per
// link per direction per cycle, one service per module per cycle.
//
// The machine records everything the §4.3 correctness argument needs:
//  * every combine event (representative, absorbed) in chronological order,
//  * each module's serial processing order of (possibly combined) requests,
//  * each completed operation's original mapping and observed reply.
// The verifier (src/verify) expands the combined messages into the request
// sequences they represent (Lemma 4.1) and replays them serially.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/omega.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace krs::sim {

using core::Addr;
using core::ReqId;
using core::Tick;

template <core::Rmw M>
struct MachineConfig {
  unsigned log2_procs = 3;  ///< n = 2^k processors, modules, and stages k
  net::SwitchConfig switch_cfg{};
  mem::ModuleConfig mem_cfg{};
  typename M::value_type initial_value{};
  unsigned window = 4;             ///< outstanding ops per processor
  bool processor_side_rmw = false; ///< use the §2 baseline implementation
};

struct MachineStats {
  Tick cycles = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t combines = 0;
  std::uint64_t switch_stall_cycles = 0;
  /// Request messages (and their bytes) that actually occupied link/queue
  /// slots, summed over all switches — combining shows up as a reduction
  /// relative to ops × stages.
  std::uint64_t request_messages = 0;
  std::uint64_t request_bytes = 0;
  util::LogHistogram latency;
  double throughput_ops_per_cycle = 0.0;
};

template <core::Rmw M>
class Machine {
 public:
  using rmw_type = M;
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  Machine(MachineConfig<M> cfg,
          std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources)
      : cfg_(cfg), topo_(cfg.log2_procs), sources_(std::move(sources)) {
    const auto n = topo_.ports();
    KRS_EXPECTS(sources_.size() == n);
    stages_.resize(topo_.stages());
    arb_priority_.assign(topo_.stages(),
                         std::vector<unsigned>(topo_.switches_per_stage(), 0));
    for (auto& st : stages_) {
      st.reserve(topo_.switches_per_stage());
      for (std::uint32_t r = 0; r < topo_.switches_per_stage(); ++r) {
        st.emplace_back(cfg_.switch_cfg);
      }
    }
    modules_.reserve(n);
    procs_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      modules_.emplace_back(cfg_.mem_cfg, cfg_.initial_value);
      procs_.emplace_back(i, cfg_.window, cfg_.processor_side_rmw,
                          sources_[i].get());
    }
  }

  [[nodiscard]] std::uint32_t processors() const noexcept {
    return topo_.ports();
  }

  /// Memory module that owns an address (low-order interleaving).
  [[nodiscard]] std::uint32_t module_of(Addr addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (topo_.ports() - 1));
  }

  /// Advance one cycle.
  void tick() {
    step_replies_to_processors();
    step_replies_through_network();
    step_memory();
    step_requests_through_network();
    step_processors();
    ++now_;
  }

  /// Run until every processor is quiescent and the machine has drained,
  /// or `max_cycles` elapse. Returns true iff fully drained.
  bool run(Tick max_cycles) {
    while (now_ < max_cycles) {
      tick();
      if (drained()) {
        finalize_stats();
        return true;
      }
    }
    finalize_stats();
    return drained();
  }

  [[nodiscard]] bool drained() const {
    for (const auto& p : procs_) {
      if (!p.quiescent()) return false;
    }
    for (const auto& st : stages_) {
      for (const auto& sw : st) {
        if (!sw.idle()) return false;
      }
    }
    for (const auto& m : modules_) {
      if (!m.idle()) return false;
    }
    return true;
  }

  [[nodiscard]] Tick now() const noexcept { return now_; }

  [[nodiscard]] const std::vector<proc::CompletedOp<M>>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<net::CombineEvent>& combine_log() const {
    return combine_log_;
  }
  [[nodiscard]] const mem::MemoryModule<M>& module(std::uint32_t i) const {
    return modules_[i];
  }
  [[nodiscard]] Value value_at(Addr addr) const {
    return modules_[module_of(addr)].value_at(addr);
  }

  [[nodiscard]] MachineStats stats() const {
    MachineStats s;
    s.cycles = now_;
    s.ops_completed = completed_.size();
    for (const auto& op : completed_) s.latency.add(op.completed - op.issued);
    for (const auto& st : stages_) {
      for (const auto& sw : st) {
        s.combines += sw.stats().combines;
        s.switch_stall_cycles += sw.stats().stalls;
        s.request_messages += sw.stats().requests_forwarded;
        s.request_bytes += sw.stats().request_bytes;
      }
    }
    s.throughput_ops_per_cycle =
        now_ > 0 ? static_cast<double>(completed_.size()) /
                       static_cast<double>(now_)
                 : 0.0;
    return s;
  }

  [[nodiscard]] const net::SwitchStats& switch_stats(unsigned stage,
                                                     std::uint32_t row) const {
    return stages_[stage][row].stats();
  }

 private:
  // --- cycle phases, in intra-cycle order ---------------------------------

  // Phase 1: replies leaving stage 0 reach their processors.
  void step_replies_to_processors() {
    auto& stage0 = stages_[0];
    for (std::uint32_t row = 0; row < stage0.size(); ++row) {
      for (unsigned port = 0; port < 2; ++port) {
        if (stage0[row].peek_reply(port) == nullptr) continue;
        Rev rev = stage0[row].pop_reply(port);
        const std::uint32_t proc = topo_.upstream_wire(row, port);
        KRS_ASSERT(rev.path.empty());
        procs_[proc].deliver(std::move(rev), now_, &completed_);
      }
    }
  }

  // Phase 2: replies hop one stage toward the processors. Processing
  // stages in increasing order means a reply moved into stage s-1 this
  // cycle waits there until the next cycle (one hop per cycle).
  void step_replies_through_network() {
    for (unsigned s = 1; s < topo_.stages(); ++s) {
      auto& stage = stages_[s];
      for (std::uint32_t row = 0; row < stage.size(); ++row) {
        for (unsigned port = 0; port < 2; ++port) {
          if (stage[row].peek_reply(port) == nullptr) continue;
          Rev rev = stage[row].pop_reply(port);
          const std::uint32_t wire = topo_.upstream_wire(row, port);
          stages_[s - 1][wire >> 1].accept_reply(std::move(rev));
        }
      }
    }
  }

  // Phase 3: memory modules pull one request from the last stage, service
  // one request, and emit due replies into the last stage.
  void step_memory() {
    const unsigned last = topo_.stages() - 1;
    for (std::uint32_t m = 0; m < modules_.size(); ++m) {
      auto& sw = stages_[last][m >> 1];
      const unsigned out_port = m & 1;
      if (const Fwd* head = sw.peek_output(out_port);
          head != nullptr && modules_[m].can_accept(*head)) {
        modules_[m].accept(sw.pop_output(out_port), &combine_log_);
      }
      std::vector<Rev> due;
      modules_[m].tick(now_, due);
      for (auto& rev : due) {
        stages_[last][m >> 1].accept_reply(std::move(rev));
      }
    }
  }

  // Phase 4: requests hop one stage toward memory. Processing stages from
  // the memory side first lets a slot freed by the module pull be refilled
  // within the cycle (classic cut-through pipelining).
  //
  // Input-port arbitration must be LOCALLY fair: with fixed priority, a
  // congested output queue that frees one slot per cycle starves port 1
  // forever; with globally synchronized alternation (now mod 2) the whole
  // machine can parity-lock — every period in the system is even (reply
  // latency, retry backoff), so the freed slot can reappear only on cycles
  // where the other port holds priority, and under the processor-side lock
  // protocol the owner's write-unlock then never advances (a measured
  // livelock, not a hypothetical). The standard fix: per-switch rotating
  // priority that flips exactly when the favored port wins a transfer.
  void step_requests_through_network() {
    for (unsigned s = topo_.stages(); s-- > 0;) {
      auto& stage = stages_[s];
      for (std::uint32_t row = 0; row < stage.size(); ++row) {
        unsigned& pref = arb_priority_[s][row];
        const unsigned order[2] = {pref, pref ^ 1u};
        for (unsigned i = 0; i < 2; ++i) {
          const unsigned port = order[i];
          const std::uint32_t wire = topo_.upstream_wire(row, port);
          const bool moved = s == 0 ? pull_from_processor(wire, row, port)
                                    : pull_from_switch(s, row, port, wire);
          if (moved && i == 0) pref = order[1];  // favored port won: rotate
        }
      }
    }
  }

  bool pull_from_processor(std::uint32_t proc, std::uint32_t row,
                           unsigned in_port) {
    const Fwd* head = procs_[proc].peek_outgoing();
    if (head == nullptr) return false;
    const unsigned out_port = topo_.route_bit(module_of(head->req.addr), 0);
    Fwd pkt = *head;  // copy; only pop on acceptance
    if (stages_[0][row].offer_request(std::move(pkt), in_port, out_port,
                                      &combine_log_)) {
      procs_[proc].pop_outgoing();
      return true;
    }
    return false;
  }

  bool pull_from_switch(unsigned s, std::uint32_t row, unsigned in_port,
                        std::uint32_t wire) {
    auto& up = stages_[s - 1][wire >> 1];
    const unsigned up_port = wire & 1;
    const Fwd* head = up.peek_output(up_port);
    if (head == nullptr) return false;
    const unsigned out_port = topo_.route_bit(module_of(head->req.addr), s);
    Fwd pkt = *head;
    if (stages_[s][row].offer_request(std::move(pkt), in_port, out_port,
                                      &combine_log_)) {
      up.pop_output(up_port);
      return true;
    }
    return false;
  }

  // Phase 5: processors retire retries and issue new work.
  void step_processors() {
    for (auto& p : procs_) p.tick(now_);
  }

  void finalize_stats() {}

  MachineConfig<M> cfg_;
  net::OmegaTopology topo_;
  std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources_;
  std::vector<std::vector<net::CombiningSwitch<M>>> stages_;
  std::vector<mem::MemoryModule<M>> modules_;
  std::vector<proc::Processor<M>> procs_;
  std::vector<proc::CompletedOp<M>> completed_;
  std::vector<net::CombineEvent> combine_log_;
  /// Rotating input-port priority per switch (see
  /// step_requests_through_network).
  std::vector<std::vector<unsigned>> arb_priority_;
  Tick now_ = 0;
};

}  // namespace krs::sim
