// §7's second deployment of combining: "machines where multiple processors
// are connected to a shared memory by a bus. The shared memory is often
// heavily interleaved ... A FIFO buffer is often used to decouple memory
// from the shared bus. Combining in this queue will improve the memory
// throughput by reducing conflicting accesses to the same memory bank."
//
// This machine has no multistage network: one request crosses the bus per
// cycle (round-robin arbitration among processors), lands in its bank's
// FIFO (where it may combine), and one reply crosses back per cycle. Banks
// are slow relative to the bus (ModuleConfig::service_interval), which is
// exactly when the FIFO fills and queue combining pays.
//
// Reuses the memory module and processor models; the Theorem 4.2 checker
// works unchanged (combine events come from the module FIFO).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace krs::sim {

template <core::Rmw M>
struct BusMachineConfig {
  std::uint32_t processors = 8;
  std::uint32_t banks = 4;
  mem::ModuleConfig bank_cfg{};
  typename M::value_type initial_value{};
  unsigned window = 4;
  /// Requests (and replies) crossing the bus per cycle.
  unsigned bus_width = 1;
};

struct BusMachineStats {
  core::Tick cycles = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t queue_combines = 0;
  std::uint64_t bus_busy_cycles = 0;
  util::LogHistogram latency;
  double throughput_ops_per_cycle = 0.0;
};

template <core::Rmw M>
class BusMachine {
 public:
  using rmw_type = M;
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  BusMachine(BusMachineConfig<M> cfg,
             std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources)
      : cfg_(cfg), sources_(std::move(sources)) {
    KRS_EXPECTS(cfg_.processors >= 1 && cfg_.banks >= 1);
    KRS_EXPECTS(sources_.size() == cfg_.processors);
    banks_.reserve(cfg_.banks);
    for (std::uint32_t b = 0; b < cfg_.banks; ++b) {
      banks_.emplace_back(cfg_.bank_cfg, cfg_.initial_value);
    }
    bank_out_.resize(cfg_.banks);
    bank_due_.resize(cfg_.banks);
    procs_.reserve(cfg_.processors);
    for (std::uint32_t p = 0; p < cfg_.processors; ++p) {
      procs_.emplace_back(p, cfg_.window, /*processor_side=*/false,
                          sources_[p].get());
    }
  }

  [[nodiscard]] std::uint32_t bank_of(core::Addr addr) const noexcept {
    return static_cast<std::uint32_t>(addr % cfg_.banks);
  }

  void tick() {
    const std::uint32_t shards = engine_shards();
    for (unsigned ph = 0; ph < kSubphases; ++ph) {
      for (std::uint32_t sh = 0; sh < shards; ++sh) engine_subphase(ph, sh);
    }
    engine_end_cycle();
  }

  bool run(core::Tick max_cycles) {
    return SequentialEngine::run(*this, max_cycles);
  }

  /// Bit-identical to run() at every worker count: the bus phases are
  /// inherently serial (one arbiter) and run on shard 0 alone; bank
  /// service and processor issue are per-shard parallel.
  bool run_parallel(core::Tick max_cycles, unsigned workers) {
    return ParallelEngine(workers).run(*this, max_cycles);
  }

  // --- engine concept (sim/engine.hpp) ------------------------------------

  [[nodiscard]] std::uint32_t engine_shards() const noexcept {
    return std::max(cfg_.banks, cfg_.processors);
  }
  [[nodiscard]] unsigned engine_subphases() const noexcept {
    return kSubphases;
  }

  void engine_subphase(unsigned ph, std::uint32_t shard) {
    switch (ph) {
      case 0:  // reply bus: one arbiter, serial on shard 0
        if (shard == 0) step_reply_bus();
        break;
      case 1:  // bank service: independent per bank
        if (shard < cfg_.banks) step_bank(shard);
        break;
      case 2:  // request bus: one arbiter, serial on shard 0
        if (shard == 0) step_request_bus();
        break;
      default:  // processor issue: independent per processor
        if (shard < cfg_.processors) procs_[shard].tick(now_);
        break;
    }
  }

  void engine_end_cycle() { ++now_; }

  [[nodiscard]] bool drained() const {
    for (const auto& p : procs_) {
      if (!p.quiescent()) return false;
    }
    for (const auto& b : banks_) {
      if (!b.idle()) return false;
    }
    for (const auto& q : bank_out_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  // --- checker interface (same shape as sim::Machine) ----------------------
  [[nodiscard]] std::uint32_t processors() const noexcept {
    return cfg_.banks;  // the checker iterates module(0..processors())
  }
  [[nodiscard]] const mem::MemoryModule<M>& module(std::uint32_t b) const {
    return banks_[b];
  }
  [[nodiscard]] const std::vector<proc::CompletedOp<M>>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<net::CombineEvent>& combine_log() const {
    return combine_log_;
  }
  [[nodiscard]] Value value_at(core::Addr addr) const {
    return banks_[bank_of(addr)].value_at(addr);
  }

  [[nodiscard]] core::Tick now() const noexcept { return now_; }

  [[nodiscard]] BusMachineStats stats() const {
    BusMachineStats s;
    s.cycles = now_;
    s.ops_completed = completed_.size();
    for (const auto& op : completed_) s.latency.add(op.completed - op.issued);
    for (const auto& b : banks_) s.queue_combines += b.stats().queue_combines;
    s.bus_busy_cycles = bus_busy_;
    s.throughput_ops_per_cycle =
        now_ > 0
            ? static_cast<double>(completed_.size()) / static_cast<double>(now_)
            : 0.0;
    return s;
  }

 private:
  static constexpr unsigned kSubphases = 4;

  void step_reply_bus() {
    unsigned transferred = 0;
    for (std::uint32_t i = 0; i < cfg_.banks && transferred < cfg_.bus_width;
         ++i) {
      const std::uint32_t b =
          (static_cast<std::uint32_t>(now_) + i) % cfg_.banks;
      if (bank_out_[b].empty()) continue;
      Rev rev = std::move(bank_out_[b].front());
      bank_out_[b].erase(bank_out_[b].begin());
      procs_[rev.reply.id.proc].deliver(std::move(rev), now_, &completed_);
      ++transferred;
    }
  }

  void step_bank(std::uint32_t b) {
    auto& due = bank_due_[b];  // shard-local scratch, reused each cycle
    due.clear();
    banks_[b].tick(now_, due);
    for (auto& rev : due) bank_out_[b].push_back(std::move(rev));
  }

  void step_request_bus() {
    unsigned transferred = 0;
    for (std::uint32_t i = 0;
         i < cfg_.processors && transferred < cfg_.bus_width; ++i) {
      const std::uint32_t p =
          (static_cast<std::uint32_t>(now_) + i) % cfg_.processors;
      const Fwd* head = procs_[p].peek_outgoing();
      if (head == nullptr) continue;
      auto& bank = banks_[bank_of(head->req.addr)];
      if (!bank.can_accept(*head)) continue;  // bank FIFO full: retry later
      bank.accept(procs_[p].pop_outgoing(), &combine_log_);
      ++transferred;
      ++bus_busy_;
    }
  }

  BusMachineConfig<M> cfg_;
  std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources_;
  std::vector<mem::MemoryModule<M>> banks_;
  std::vector<std::vector<Rev>> bank_out_;
  std::vector<std::vector<Rev>> bank_due_;
  std::vector<proc::Processor<M>> procs_;
  std::vector<proc::CompletedOp<M>> completed_;
  std::vector<net::CombineEvent> combine_log_;
  std::uint64_t bus_busy_ = 0;
  core::Tick now_ = 0;
};

}  // namespace krs::sim
