// Deterministic cycle engines shared by the simulated machines.
//
// A machine models its cycle as a fixed sequence of SUB-PHASES over a set
// of SHARDS. Within one sub-phase, distinct shards touch disjoint state:
// every cross-shard channel is a single-slot link with exactly one writer
// sub-phase and one reader sub-phase, so a sub-phase reads only snapshots
// the previous sub-phase published. That makes the shard loop order
// immaterial — the sequential engine and the parallel engine (any worker
// count, any interleaving) produce bit-identical machine states, which is
// what lets the determinism suite diff transcripts across thread counts.
//
// The parallel engine is the dogfooding exercise: the workers synchronize
// with the repo's own combining-tree barrier (§6 software shape), three
// phase waves per simulated cycle.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "runtime/tree_barrier.hpp"
#include "util/assert.hpp"

namespace krs::sim {

/// What a machine must expose to be driven by the engines. `engine_subphase`
/// must be safe to call concurrently for distinct shards of the SAME
/// sub-phase; `engine_end_cycle` runs serially between cycles (merge
/// per-shard logs in shard order, advance the clock).
template <typename MachineT>
concept CycleSharded = requires(MachineT& m, const MachineT& cm) {
  { cm.engine_shards() } -> std::convertible_to<std::uint32_t>;
  { cm.engine_subphases() } -> std::convertible_to<unsigned>;
  m.engine_subphase(0u, std::uint32_t{0});
  m.engine_end_cycle();
  { cm.drained() } -> std::convertible_to<bool>;
  { cm.now() } -> std::convertible_to<core::Tick>;
};

/// Reference engine: one thread, shards in index order. This is the
/// specification the parallel engine is tested against.
struct SequentialEngine {
  template <CycleSharded MachineT>
  static bool run(MachineT& m, core::Tick max_cycles) {
    const std::uint32_t shards = m.engine_shards();
    const unsigned phases = m.engine_subphases();
    while (m.now() < max_cycles) {
      for (unsigned ph = 0; ph < phases; ++ph) {
        for (std::uint32_t sh = 0; sh < shards; ++sh) {
          m.engine_subphase(ph, sh);
        }
      }
      m.engine_end_cycle();
      if (m.drained()) return true;
    }
    return m.drained();
  }
};

/// Worker-pool engine: shards are split into contiguous static ranges, one
/// per worker; a tree barrier separates sub-phases and the serial
/// end-of-cycle step. Because sub-phases only communicate through
/// single-writer/single-reader links, the result is bit-identical to
/// SequentialEngine at every worker count.
class ParallelEngine {
 public:
  explicit ParallelEngine(unsigned workers)
      : workers_(std::max(1u, workers)) {}

  template <CycleSharded MachineT>
  bool run(MachineT& m, core::Tick max_cycles) {
    const std::uint32_t shards = m.engine_shards();
    const unsigned workers =
        static_cast<unsigned>(std::min<std::uint64_t>(workers_, shards));
    if (workers <= 1) return SequentialEngine::run(m, max_cycles);
    if (m.now() >= max_cycles) return m.drained();

    const unsigned phases = m.engine_subphases();
    runtime::TreeBarrier barrier(workers);
    // Written by worker 0 only, between two barrier waves; the barrier's
    // release/acquire chain publishes it to every worker.
    bool stop = false;

    auto body = [&](unsigned w) {
      const auto lo =
          static_cast<std::uint32_t>(std::uint64_t{shards} * w / workers);
      const auto hi =
          static_cast<std::uint32_t>(std::uint64_t{shards} * (w + 1) / workers);
      bool sense = true;
      for (;;) {
        for (unsigned ph = 0; ph < phases; ++ph) {
          for (std::uint32_t sh = lo; sh < hi; ++sh) {
            m.engine_subphase(ph, sh);
          }
          barrier.arrive_and_wait(w, sense);
        }
        if (w == 0) {
          m.engine_end_cycle();
          stop = m.drained() || m.now() >= max_cycles;
        }
        barrier.arrive_and_wait(w, sense);
        if (stop) return;
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) {
      pool.emplace_back(body, w);
    }
    body(0);
    for (auto& t : pool) t.join();
    return m.drained();
  }

 private:
  unsigned workers_;
};

}  // namespace krs::sim
