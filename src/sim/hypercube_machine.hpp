// §7: "the mechanisms described in this paper can be easily adopted for
// use by direct connection machines, such as the cosmic cube, where the
// processors themselves act like network switches and the local memories
// at each node are all viewed as part of a distributed, shared memory."
//
// A 2^d-node hypercube: every node hosts a processor, a memory module
// owning the addresses that hash to it, and a router. Requests travel by
// e-cube (dimension-order) routing — a unique, deterministic path, so the
// §4.1 assumptions (non-overtaking, reply retraces the path) hold exactly
// as in the indirect network. Each router output link carries a combining
// FIFO with the same youngest-match rule and wait-buffer decombination as
// the 2×2 switch; the Theorem 4.2 checker applies unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "proc/processor.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"

namespace krs::sim {

template <core::Rmw M>
struct HypercubeConfig {
  unsigned dimensions = 3;  ///< 2^d nodes
  mem::ModuleConfig mem_cfg{};
  typename M::value_type initial_value{};
  unsigned window = 4;
  std::size_t link_queue_capacity = 4;
  net::CombinePolicy policy = net::CombinePolicy::kUnlimited;
  std::size_t wait_buffer_capacity = 64;
};

struct HypercubeStats {
  core::Tick cycles = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t combines = 0;
  std::uint64_t hops = 0;  ///< request link traversals
  util::LogHistogram latency;
  double throughput_ops_per_cycle = 0.0;
};

template <core::Rmw M>
class HypercubeMachine {
 public:
  using rmw_type = M;
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  HypercubeMachine(HypercubeConfig<M> cfg,
                   std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources)
      : cfg_(cfg), sources_(std::move(sources)) {
    KRS_EXPECTS(cfg_.dimensions >= 1 && cfg_.dimensions <= 10);
    const std::uint32_t n = nodes();
    KRS_EXPECTS(sources_.size() == n);
    node_.resize(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      node_[u].memory =
          std::make_unique<mem::MemoryModule<M>>(cfg_.mem_cfg,
                                                 cfg_.initial_value);
      node_[u].proc = std::make_unique<proc::Processor<M>>(
          u, cfg_.window, /*processor_side=*/false, sources_[u].get());
      node_[u].out_req.resize(cfg_.dimensions);
      node_[u].in_req.resize(cfg_.dimensions);
      node_[u].in_rep.resize(cfg_.dimensions);
    }
  }

  [[nodiscard]] std::uint32_t nodes() const noexcept {
    return 1u << cfg_.dimensions;
  }

  [[nodiscard]] std::uint32_t node_of(core::Addr addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (nodes() - 1));
  }

  void tick() {
    step_replies();
    step_memory();
    step_requests();
    for (auto& nd : node_) nd.proc->tick(now_);
    ++now_;
  }

  bool run(core::Tick max_cycles) {
    while (now_ < max_cycles) {
      tick();
      if (drained()) return true;
    }
    return drained();
  }

  [[nodiscard]] bool drained() const {
    for (const auto& nd : node_) {
      if (!nd.proc->quiescent() || !nd.memory->idle()) return false;
      if (!nd.wait_buffer.empty() || !nd.local_rep.empty()) return false;
      for (const auto& q : nd.out_req) {
        if (!q.empty()) return false;
      }
      for (const auto& q : nd.in_req) {
        if (!q.empty()) return false;
      }
      for (const auto& q : nd.in_rep) {
        if (!q.empty()) return false;
      }
      if (!nd.inject.empty()) return false;
    }
    return true;
  }

  // --- checker interface -----------------------------------------------------
  [[nodiscard]] std::uint32_t processors() const noexcept { return nodes(); }
  [[nodiscard]] const mem::MemoryModule<M>& module(std::uint32_t u) const {
    return *node_[u].memory;
  }
  [[nodiscard]] const std::vector<proc::CompletedOp<M>>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<net::CombineEvent>& combine_log() const {
    return combine_log_;
  }
  [[nodiscard]] Value value_at(core::Addr addr) const {
    return node_[node_of(addr)].memory->value_at(addr);
  }
  [[nodiscard]] core::Tick now() const noexcept { return now_; }

  [[nodiscard]] HypercubeStats stats() const {
    HypercubeStats s;
    s.cycles = now_;
    s.ops_completed = completed_.size();
    for (const auto& op : completed_) s.latency.add(op.completed - op.issued);
    s.combines = combines_;
    s.hops = hops_;
    s.throughput_ops_per_cycle =
        now_ > 0
            ? static_cast<double>(completed_.size()) / static_cast<double>(now_)
            : 0.0;
    return s;
  }

 private:
  struct Node {
    std::unique_ptr<mem::MemoryModule<M>> memory;
    std::unique_ptr<proc::Processor<M>> proc;
    /// Per-dimension outgoing request FIFO (combining happens here) and
    /// incoming staging (one slot per link per cycle).
    std::vector<std::deque<Fwd>> out_req;
    std::vector<std::deque<Fwd>> in_req;
    std::vector<std::deque<Rev>> in_rep;
    /// Requests injected by the local processor, pre-routing.
    std::deque<Fwd> inject;
    /// Replies destined for the local processor.
    std::deque<Rev> local_rep;
    /// Decombination records, keyed by representative id.
    struct WaitRecord {
      core::CombineRecord<M> rec;
      std::vector<std::uint8_t> path;
    };
    std::unordered_map<core::ReqId, std::vector<WaitRecord>, core::ReqIdHash>
        wait_buffer;
  };

  /// e-cube: the dimension of the lowest differing bit (deterministic,
  /// unique path — the §4.1 assumptions hold).
  [[nodiscard]] static unsigned route_dim(std::uint32_t u, std::uint32_t v) {
    KRS_EXPECTS(u != v);
    const std::uint32_t diff = u ^ v;
    return util::log2_floor(diff & (~diff + 1u));
  }

  // Path header encoding: each hop stores the dimension it arrived on.
  // The reply leaves node u back along the last recorded dimension.

  void step_replies() {
    // Replies hop one link per cycle; deliver local ones to the processor.
    for (std::uint32_t u = 0; u < nodes(); ++u) {
      Node& nd = node_[u];
      while (!nd.local_rep.empty()) {
        Rev rev = std::move(nd.local_rep.front());
        nd.local_rep.pop_front();
        KRS_ASSERT(rev.path.empty());
        nd.proc->deliver(std::move(rev), now_, &completed_);
      }
      for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
        if (nd.in_rep[dim].empty()) continue;
        Rev rev = std::move(nd.in_rep[dim].front());
        nd.in_rep[dim].pop_front();
        deliver_reply(u, std::move(rev));
      }
    }
  }

  /// A reply present AT node u (after crossing a link or leaving memory):
  /// decombine against u's wait buffer, then route onward.
  void deliver_reply(std::uint32_t u, Rev&& rev) {
    Node& nd = node_[u];
    if (auto it = nd.wait_buffer.find(rev.reply.id);
        it != nd.wait_buffer.end()) {
      auto recs = std::move(it->second);
      nd.wait_buffer.erase(it);
      for (auto& wr : recs) {
        Rev second;
        second.reply.id = wr.rec.second;
        second.reply.value = core::decombine(wr.rec, rev.reply.value);
        second.reply.completed = rev.reply.completed;
        second.path = std::move(wr.path);
        route_reply(u, std::move(second));
      }
    }
    route_reply(u, std::move(rev));
  }

  void route_reply(std::uint32_t u, Rev&& rev) {
    Node& nd = node_[u];
    if (rev.path.empty()) {
      nd.local_rep.push_back(std::move(rev));
      return;
    }
    const unsigned dim = rev.path.back();
    rev.path.pop_back();
    KRS_ASSERT(dim < cfg_.dimensions);
    // Staged at the neighbor; processed next cycle (one hop per cycle).
    node_[u ^ (1u << dim)].in_rep[dim].push_back(std::move(rev));
  }

  void step_memory() {
    for (std::uint32_t u = 0; u < nodes(); ++u) {
      Node& nd = node_[u];
      std::vector<Rev> due;
      nd.memory->tick(now_, due);
      for (auto& rev : due) deliver_reply(u, std::move(rev));
    }
  }

  void step_requests() {
    // Two passes so a packet moves one hop per cycle: first every node
    // routes what arrived LAST cycle (plus local injections), then output
    // FIFO heads cross their links into next-cycle staging.
    for (std::uint32_t u = 0; u < nodes(); ++u) {
      Node& nd = node_[u];
      for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
        if (nd.in_req[dim].empty()) continue;
        Fwd pkt = std::move(nd.in_req[dim].front());
        nd.in_req[dim].pop_front();
        pkt.path.push_back(static_cast<std::uint8_t>(dim));
        if (!accept_at_node(u, std::move(pkt))) {
          // No space: un-stage (retry next cycle). Restore the path mark.
          Fwd back = std::move(un_staged_);
          back.path.pop_back();
          nd.in_req[dim].push_front(std::move(back));
        }
      }
      if (const Fwd* head = nd.proc->peek_outgoing(); head != nullptr) {
        Fwd pkt = *head;
        if (accept_at_node(u, std::move(pkt))) nd.proc->pop_outgoing();
      }
    }
    for (std::uint32_t u = 0; u < nodes(); ++u) {
      Node& nd = node_[u];
      for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
        if (nd.out_req[dim].empty()) continue;
        Node& peer = node_[u ^ (1u << dim)];
        if (!peer.in_req[dim].empty()) continue;  // staging slot busy
        peer.in_req[dim].push_back(std::move(nd.out_req[dim].front()));
        nd.out_req[dim].pop_front();
        ++hops_;
      }
    }
  }

  /// Route a request present at node u into the local memory or the proper
  /// output FIFO, combining youngest-match. Returns false when the target
  /// FIFO is full (caller must restore the packet; see un_staged_).
  bool accept_at_node(std::uint32_t u, Fwd&& pkt) {
    Node& nd = node_[u];
    const std::uint32_t dest = node_of(pkt.req.addr);
    if (dest == u) {
      if (!nd.memory->can_accept(pkt)) {
        un_staged_ = std::move(pkt);
        return false;
      }
      nd.memory->accept(std::move(pkt), &combine_log_);
      return true;
    }
    const unsigned dim = route_dim(u, dest);
    auto& q = nd.out_req[dim];
    if (cfg_.policy != net::CombinePolicy::kNone &&
        pkt.kind == net::TxnKind::kRmw) {
      for (auto it = q.rbegin(); it != q.rend(); ++it) {
        if (it->kind != net::TxnKind::kRmw || it->req.addr != pkt.req.addr) {
          continue;
        }
        if (nd.wait_buffer.size() >= cfg_.wait_buffer_capacity) break;
        auto rec = core::try_combine(it->req, pkt.req);
        if (!rec) break;
        it->combined = true;
        nd.wait_buffer[it->req.id].push_back(
            typename Node::WaitRecord{*rec, std::move(pkt.path)});
        ++combines_;
        combine_log_.push_back({rec->representative, rec->second,
                                pkt.req.addr, false});
        return true;
      }
    }
    if (q.size() >= cfg_.link_queue_capacity) {
      un_staged_ = std::move(pkt);
      return false;
    }
    q.push_back(std::move(pkt));
    return true;
  }

  HypercubeConfig<M> cfg_;
  std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources_;
  std::vector<Node> node_;
  std::vector<proc::CompletedOp<M>> completed_;
  std::vector<net::CombineEvent> combine_log_;
  std::uint64_t combines_ = 0;
  std::uint64_t hops_ = 0;
  Fwd un_staged_{};
  core::Tick now_ = 0;
};

}  // namespace krs::sim
