// §7: "the mechanisms described in this paper can be easily adopted for
// use by direct connection machines, such as the cosmic cube, where the
// processors themselves act like network switches and the local memories
// at each node are all viewed as part of a distributed, shared memory."
//
// A 2^d-node hypercube: every node hosts a processor, a memory module
// owning the addresses that hash to it, and a router. Requests travel by
// e-cube (dimension-order) routing — a unique, deterministic path, so the
// §4.1 assumptions (non-overtaking, reply retraces the path) hold exactly
// as in the indirect network. Each router output link carries a combining
// FIFO with the same youngest-match rule and wait-buffer decombination as
// the 2×2 switch; the Theorem 4.2 checker applies unchanged.
//
// Engine layout (sim/engine.hpp): one shard per node. CONSUME ingests the
// node's staging slots (replies, then local memory, then requests, then
// the processor's injection) and routes into node-local queues; PRODUCE
// moves at most one packet per link per direction into the neighbor's
// empty staging slot. Each staging slot has exactly one producer (the
// neighbor across that dimension) and one consumer (the node itself), so
// shard order is immaterial and parallel runs are bit-identical to
// sequential ones.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/combining.hpp"
#include "core/rmw.hpp"
#include "core/types.hpp"
#include "mem/module.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/wait_table.hpp"
#include "proc/processor.hpp"
#include "runtime/cacheline.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"

namespace krs::sim {

template <core::Rmw M>
struct HypercubeConfig {
  unsigned dimensions = 3;  ///< 2^d nodes
  mem::ModuleConfig mem_cfg{};
  typename M::value_type initial_value{};
  unsigned window = 4;
  std::size_t link_queue_capacity = 4;
  net::CombinePolicy policy = net::CombinePolicy::kUnlimited;
  std::size_t wait_buffer_capacity = 64;
};

struct HypercubeStats {
  core::Tick cycles = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t combines = 0;
  std::uint64_t hops = 0;  ///< request link traversals
  util::LogHistogram latency;
  double throughput_ops_per_cycle = 0.0;
};

template <core::Rmw M>
class HypercubeMachine {
 public:
  using rmw_type = M;
  using Value = typename M::value_type;
  using Fwd = net::FwdPacket<M>;
  using Rev = net::RevPacket<M>;

  HypercubeMachine(HypercubeConfig<M> cfg,
                   std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources)
      : cfg_(cfg), sources_(std::move(sources)) {
    KRS_EXPECTS(cfg_.dimensions >= 1 && cfg_.dimensions <= 10);
    const std::uint32_t n = nodes();
    KRS_EXPECTS(sources_.size() == n);
    node_.resize(n);
    logs_.resize(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      node_[u].memory =
          std::make_unique<mem::MemoryModule<M>>(cfg_.mem_cfg,
                                                 cfg_.initial_value);
      node_[u].proc = std::make_unique<proc::Processor<M>>(
          u, cfg_.window, /*processor_side=*/false, sources_[u].get());
      node_[u].out_req.resize(cfg_.dimensions);
      node_[u].out_rep.resize(cfg_.dimensions);
      node_[u].in_req.resize(cfg_.dimensions);
      node_[u].in_rep.resize(cfg_.dimensions);
      node_[u].wait_buffer =
          std::make_unique<net::WaitTable<M>>(cfg_.wait_buffer_capacity);
    }
  }

  [[nodiscard]] std::uint32_t nodes() const noexcept {
    return 1u << cfg_.dimensions;
  }

  [[nodiscard]] std::uint32_t node_of(core::Addr addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (nodes() - 1));
  }

  /// Advance one cycle (sequential shard order).
  void tick() {
    const std::uint32_t n = nodes();
    for (unsigned ph = 0; ph < kSubphases; ++ph) {
      for (std::uint32_t u = 0; u < n; ++u) engine_subphase(ph, u);
    }
    engine_end_cycle();
  }

  bool run(core::Tick max_cycles) {
    return SequentialEngine::run(*this, max_cycles);
  }

  /// Bit-identical to run() at every worker count.
  bool run_parallel(core::Tick max_cycles, unsigned workers) {
    return ParallelEngine(workers).run(*this, max_cycles);
  }

  // --- engine concept (sim/engine.hpp) ------------------------------------

  [[nodiscard]] std::uint32_t engine_shards() const noexcept {
    return nodes();
  }
  [[nodiscard]] unsigned engine_subphases() const noexcept {
    return kSubphases;
  }

  void engine_subphase(unsigned ph, std::uint32_t shard) {
    if (ph == 0) {
      consume(shard);
    } else {
      produce(shard);
    }
  }

  void engine_end_cycle() {
    for (auto& log : logs_) {
      combine_log_.insert(combine_log_.end(), log.events.begin(),
                          log.events.end());
      log.events.clear();
      for (auto& op : log.completed) completed_.push_back(op);
      log.completed.clear();
    }
    ++now_;
  }

  [[nodiscard]] bool drained() const {
    for (const auto& nd : node_) {
      if (!nd.proc->quiescent() || !nd.memory->idle()) return false;
      if (!nd.wait_buffer->empty() || !nd.local_rep.empty()) return false;
      for (const auto& q : nd.out_req) {
        if (!q.empty()) return false;
      }
      for (const auto& q : nd.out_rep) {
        if (!q.empty()) return false;
      }
      for (const auto& q : nd.in_req) {
        if (!q.empty()) return false;
      }
      for (const auto& q : nd.in_rep) {
        if (!q.empty()) return false;
      }
    }
    return true;
  }

  // --- checker interface -----------------------------------------------------
  [[nodiscard]] std::uint32_t processors() const noexcept { return nodes(); }
  [[nodiscard]] const mem::MemoryModule<M>& module(std::uint32_t u) const {
    return *node_[u].memory;
  }
  [[nodiscard]] const std::vector<proc::CompletedOp<M>>& completed() const {
    return completed_;
  }
  [[nodiscard]] const std::vector<net::CombineEvent>& combine_log() const {
    return combine_log_;
  }
  [[nodiscard]] Value value_at(core::Addr addr) const {
    return node_[node_of(addr)].memory->value_at(addr);
  }
  [[nodiscard]] core::Tick now() const noexcept { return now_; }

  [[nodiscard]] HypercubeStats stats() const {
    HypercubeStats s;
    s.cycles = now_;
    s.ops_completed = completed_.size();
    for (const auto& op : completed_) s.latency.add(op.completed - op.issued);
    for (const auto& nd : node_) {
      s.combines += nd.combines;
      s.hops += nd.hops;
    }
    s.throughput_ops_per_cycle =
        now_ > 0
            ? static_cast<double>(completed_.size()) / static_cast<double>(now_)
            : 0.0;
    return s;
  }

 private:
  static constexpr unsigned kSubphases = 2;

  struct alignas(runtime::kCacheLine) Node {
    std::unique_ptr<mem::MemoryModule<M>> memory;
    std::unique_ptr<proc::Processor<M>> proc;
    /// Per-dimension outgoing FIFOs (request combining happens in
    /// out_req) and single-slot incoming staging, filled by the neighbor
    /// across that dimension during PRODUCE, drained here during CONSUME.
    std::vector<std::deque<Fwd>> out_req;
    std::vector<std::deque<Rev>> out_rep;
    std::vector<std::deque<Fwd>> in_req;
    std::vector<std::deque<Rev>> in_rep;
    /// Replies destined for the local processor, delivered next cycle.
    std::deque<Rev> local_rep;
    /// Decombination records, keyed by representative id.
    std::unique_ptr<net::WaitTable<M>> wait_buffer;
    /// Shard-local counters, summed by stats() — no shared cells.
    std::uint64_t combines = 0;
    std::uint64_t hops = 0;
  };

  /// Per-shard transcript segment, merged in node order every cycle.
  struct alignas(runtime::kCacheLine) ShardLog {
    std::vector<net::CombineEvent> events;
    std::vector<proc::CompletedOp<M>> completed;
    std::vector<Rev> due_scratch;
  };

  /// e-cube: the dimension of the lowest differing bit (deterministic,
  /// unique path — the §4.1 assumptions hold).
  [[nodiscard]] static unsigned route_dim(std::uint32_t u, std::uint32_t v) {
    KRS_EXPECTS(u != v);
    const std::uint32_t diff = u ^ v;
    return util::log2_floor(diff & (~diff + 1u));
  }

  // Path header encoding: each hop stores the dimension it arrived on.
  // The reply leaves node u back along the last recorded dimension.

  // --- consume: ingest staging slots, shard `u` ----------------------------

  void consume(std::uint32_t u) {
    Node& nd = node_[u];
    ShardLog& log = logs_[u];
    // Replies that became local last cycle reach the processor.
    while (!nd.local_rep.empty()) {
      Rev rev = std::move(nd.local_rep.front());
      nd.local_rep.pop_front();
      KRS_ASSERT(rev.path.empty());
      nd.proc->deliver(std::move(rev), now_, &log.completed);
    }
    // One reply per incoming link: decombine and route onward.
    for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
      if (nd.in_rep[dim].empty()) continue;
      Rev rev = std::move(nd.in_rep[dim].front());
      nd.in_rep[dim].pop_front();
      handle_reply(u, std::move(rev));
    }
    // Local memory services and emits due replies.
    log.due_scratch.clear();
    nd.memory->tick(now_, log.due_scratch);
    for (auto& rev : log.due_scratch) handle_reply(u, std::move(rev));
    // One request per incoming link; a refused head stays staged (the
    // neighbor's PRODUCE sees the slot busy — back-pressure).
    for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
      if (nd.in_req[dim].empty()) continue;
      if (try_route(u, nd.in_req[dim].front(), static_cast<int>(dim), &log)) {
        nd.in_req[dim].pop_front();
      }
    }
    // Local injection.
    if (const Fwd* head = nd.proc->peek_outgoing(); head != nullptr) {
      Fwd copy = *head;
      if (try_route(u, copy, /*arrival_dim=*/-1, &log)) nd.proc->pop_outgoing();
    }
    nd.proc->tick(now_);
  }

  /// A reply present AT node u (after crossing a link or leaving memory):
  /// decombine against u's wait buffer, then route onward.
  void handle_reply(std::uint32_t u, Rev&& rev) {
    Node& nd = node_[u];
    const auto original_val = rev.reply.value;
    nd.wait_buffer->consume(rev.reply.id, [&](auto& wr) {
      Rev second;
      second.reply.id = wr.rec.second;
      second.reply.value = core::decombine(wr.rec, original_val);
      second.reply.completed = rev.reply.completed;
      second.path = wr.path;
      route_reply(u, std::move(second));
    });
    route_reply(u, std::move(rev));
  }

  void route_reply(std::uint32_t u, Rev&& rev) {
    Node& nd = node_[u];
    if (rev.path.empty()) {
      nd.local_rep.push_back(std::move(rev));
      return;
    }
    const unsigned dim = rev.path.back();
    rev.path.pop_back();
    KRS_ASSERT(dim < cfg_.dimensions);
    // Staged here; PRODUCE moves it across the link (one hop per cycle).
    nd.out_rep[dim].push_back(std::move(rev));
  }

  /// Route a request at node u into the local memory or the proper output
  /// FIFO, combining youngest-match. `head` is only consumed on success
  /// (return true); on refusal it is left untouched for retry next cycle.
  /// `arrival_dim` is recorded in the path header (−1: local injection).
  bool try_route(std::uint32_t u, Fwd& head, int arrival_dim, ShardLog* log) {
    Node& nd = node_[u];
    const std::uint32_t dest = node_of(head.req.addr);
    if (dest == u) {
      if (!nd.memory->can_accept(head)) return false;
      Fwd pkt = std::move(head);
      if (arrival_dim >= 0) {
        pkt.path.push_back(static_cast<std::uint8_t>(arrival_dim));
      }
      nd.memory->accept(std::move(pkt), &log->events);
      return true;
    }
    const unsigned dim = route_dim(u, dest);
    auto& q = nd.out_req[dim];
    if (cfg_.policy != net::CombinePolicy::kNone &&
        head.kind == net::TxnKind::kRmw) {
      for (auto it = q.rbegin(); it != q.rend(); ++it) {
        if (it->kind != net::TxnKind::kRmw || it->req.addr != head.req.addr) {
          continue;
        }
        if (nd.wait_buffer->entries() >= cfg_.wait_buffer_capacity) break;
        auto rec = core::try_combine(it->req, head.req);
        if (!rec) break;
        it->combined = true;
        Fwd pkt = std::move(head);
        if (arrival_dim >= 0) {
          pkt.path.push_back(static_cast<std::uint8_t>(arrival_dim));
        }
        nd.wait_buffer->append(it->req.id, {*rec, pkt.path});
        ++nd.combines;
        log->events.push_back(
            {rec->representative, rec->second, pkt.req.addr, false});
        return true;
      }
    }
    if (q.size() >= cfg_.link_queue_capacity) return false;
    Fwd pkt = std::move(head);
    if (arrival_dim >= 0) {
      pkt.path.push_back(static_cast<std::uint8_t>(arrival_dim));
    }
    q.push_back(std::move(pkt));
    return true;
  }

  // --- produce: cross the links, shard `u` ---------------------------------

  void produce(std::uint32_t u) {
    Node& nd = node_[u];
    for (unsigned dim = 0; dim < cfg_.dimensions; ++dim) {
      Node& peer = node_[u ^ (1u << dim)];
      // This node is the UNIQUE producer of peer.in_req[dim] and
      // peer.in_rep[dim] (the link across `dim` has two fixed endpoints),
      // so concurrent produce shards never write the same slot.
      if (!nd.out_req[dim].empty() && peer.in_req[dim].empty()) {
        peer.in_req[dim].push_back(std::move(nd.out_req[dim].front()));
        nd.out_req[dim].pop_front();
        ++nd.hops;
      }
      if (!nd.out_rep[dim].empty() && peer.in_rep[dim].empty()) {
        peer.in_rep[dim].push_back(std::move(nd.out_rep[dim].front()));
        nd.out_rep[dim].pop_front();
      }
    }
  }

  HypercubeConfig<M> cfg_;
  std::vector<std::unique_ptr<proc::TrafficSource<M>>> sources_;
  std::vector<Node> node_;
  std::vector<ShardLog> logs_;
  std::vector<proc::CompletedOp<M>> completed_;
  std::vector<net::CombineEvent> combine_log_;
  core::Tick now_ = 0;
};

}  // namespace krs::sim
