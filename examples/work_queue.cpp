// A decentralized work queue on real threads — the paper's §1 claim made
// concrete: "When processed in an efficient manner, [simultaneous requests
// to one cell] can form the basis for a completely parallel, decentralized
// operating system."
//
// Worker threads pull task indices from a fetch-and-add ticket counter (via
// the software combining tree), process them, and push results through the
// GLR-style parallel FIFO queue; an aggregator reduces the results. A
// sense-reversing fetch-and-add barrier separates rounds. There is no lock
// and no serial critical section anywhere.
//
// Build & run:   ./examples/work_queue [threads] [tasks]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "runtime/coordination.hpp"
#include "runtime/lock_free_combining_tree.hpp"
#include "runtime/parallel_queue.hpp"
#include "util/bits.hpp"

using namespace krs::runtime;

namespace {

// A deliberately lumpy "task": collatz trajectory length.
unsigned task_cost(std::uint64_t n) {
  unsigned steps = 0;
  n = n * 2654435761u % 9999991u + 1;
  while (n != 1 && steps < 10000) {
    n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
    ++steps;
  }
  return steps;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads =
      argc > 1 ? std::atoi(argv[1])
               : std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  const std::uint64_t tasks = argc > 2 ? std::atoll(argv[2]) : 20000;
  const unsigned width = static_cast<unsigned>(krs::util::ceil_pow2(
      std::max(2u, threads)));

  LockFreeCombiningTree<long> tickets(width, 0);  // shared task counter
  ParallelQueue<std::uint64_t> results(1024);  // results pipeline
  FaaBarrier barrier(threads + 1);             // workers + aggregator
  std::atomic<std::uint64_t> done{0};

  std::printf("%u workers, %llu tasks, combining-tree tickets + parallel "
              "FIFO queue, zero locks\n",
              threads, static_cast<unsigned long long>(tasks));

  std::vector<std::jthread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      bool sense = true;
      std::uint64_t processed = 0;
      for (;;) {
        const long ticket = tickets.fetch_and_op(t, 1);
        if (static_cast<std::uint64_t>(ticket) >= tasks) break;
        results.enqueue(task_cost(static_cast<std::uint64_t>(ticket)));
        ++processed;
      }
      done.fetch_add(processed);
      barrier.arrive_and_wait(sense);
      std::printf("  worker %u processed %llu tasks\n", t,
                  static_cast<unsigned long long>(processed));
    });
  }

  // Aggregator drains results concurrently.
  std::uint64_t total_cost = 0, drained = 0;
  bool sense = true;
  while (drained < tasks) {
    if (auto v = results.try_dequeue()) {
      total_cost += *v;
      ++drained;
    } else {
      std::this_thread::yield();
    }
  }
  barrier.arrive_and_wait(sense);

  std::printf("aggregate: %llu tasks, total cost %llu, tickets issued %ld\n",
              static_cast<unsigned long long>(drained),
              static_cast<unsigned long long>(total_cost), tickets.read());
  if (done.load() != tasks || drained != tasks) {
    std::fprintf(stderr, "LOST WORK: done=%llu drained=%llu\n",
                 static_cast<unsigned long long>(done.load()),
                 static_cast<unsigned long long>(drained));
    return 1;
  }
  std::printf("every task processed exactly once.\n");
  return 0;
}
