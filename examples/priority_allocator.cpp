// §5.2: "Fetch-and-min is useful for allocation with priorities."
//
// A pool of workers races to claim a shared resource for the most urgent
// request: each posts its deadline with fetch-and-min to a shared cell and
// reads back the previous minimum — whoever actually LOWERED the minimum
// (reply > own deadline) is the new best candidate. Combining networks
// merge the concurrent fetch-and-mins into one (the combined operand is the
// min of the operands), so the allocation round costs O(log P) memory
// operations instead of P.
//
// The demo runs the protocol twice: on the simulated combining machine
// (with the Theorem 4.2 checker) and on real threads with hardware
// compare-exchange.
//
// Build & run:   ./examples/priority_allocator
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/fetch_theta.hpp"
#include "runtime/fetch_and_op.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchMin;
using core::Word;

int main() {
  std::printf("== simulated combining machine ==\n");
  sim::MachineConfig<FetchMin> cfg;
  cfg.log2_procs = 4;
  cfg.initial_value = core::MinOp::identity_element;  // "no deadline yet"
  const std::uint32_t n = 1u << cfg.log2_procs;

  // Every processor posts one deadline to the arbitration cell (addr 2).
  std::vector<Word> deadline(n);
  std::vector<std::unique_ptr<proc::TrafficSource<FetchMin>>> src;
  util::Xoshiro256 rng(7);
  for (std::uint32_t p = 0; p < n; ++p) {
    deadline[p] = 100 + rng.below(900);
    std::deque<workload::ScriptedSource<FetchMin>::Item> items;
    items.push_back({0, 2, FetchMin(deadline[p])});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchMin>>(std::move(items)));
  }
  sim::Machine<FetchMin> m(cfg, std::move(src));
  m.run(100000);

  Word best = core::MinOp::identity_element;
  for (std::uint32_t p = 0; p < n; ++p) best = std::min(best, deadline[p]);
  std::printf("16 deadlines posted concurrently; combines in network: %llu\n",
              static_cast<unsigned long long>(m.stats().combines));
  std::printf("arbitration cell ends at %llu (true minimum %llu)\n",
              static_cast<unsigned long long>(m.value_at(2)),
              static_cast<unsigned long long>(best));
  std::uint64_t improvers = 0;
  for (const auto& op : m.completed()) {
    // A processor improved the minimum iff the old value it saw was larger
    // than its own deadline.
    if (op.reply > deadline[op.id.proc]) ++improvers;
  }
  std::printf("%llu processors observed themselves lowering the minimum\n",
              static_cast<unsigned long long>(improvers));
  const auto check = verify::check_machine(m, cfg.initial_value);
  std::printf("Theorem 4.2 checker: %s\n\n",
              check.ok ? "PASS" : check.error.c_str());

  std::printf("== real threads (CAS-loop fetch_and_min) ==\n");
  std::atomic<Word> cell{core::MinOp::identity_element};
  const unsigned nt =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  std::vector<Word> tdl(nt);
  std::atomic<unsigned> winners{0};
  util::Xoshiro256 rng2(8);
  for (auto& d : tdl) d = 100 + rng2.below(900);
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < nt; ++t) {
      ts.emplace_back([&, t] {
        const Word old = runtime::fetch_and_min(cell, tdl[t]);
        if (old > tdl[t]) winners.fetch_add(1);
      });
    }
  }
  Word best2 = core::MinOp::identity_element;
  for (auto d : tdl) best2 = std::min(best2, d);
  std::printf("%u threads; cell = %llu (true minimum %llu); %u lowered it\n",
              nt, static_cast<unsigned long long>(cell.load()),
              static_cast<unsigned long long>(best2), winners.load());
  return (m.value_at(2) == best && cell.load() == best2 && check.ok) ? 0 : 1;
}
