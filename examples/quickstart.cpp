// Quickstart: the paper in one file.
//
//  1. RMW mappings and combining at the algebra level (§2, §4.2).
//  2. A simulated 16-processor combining machine executing a fetch-and-add
//     hot spot (§1's motivating workload), verified against the formal
//     correctness criteria (§3, §4.3).
//
// Build & run:   ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/combining.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;
using core::LssOp;

int main() {
  std::printf("== 1. RMW algebra ==\n");
  // fetch-and-add(X, 5) followed by fetch-and-add(X, 7) combine into
  // fetch-and-add(X, 12); the second requester's reply is f(val) = val + 5.
  core::Request<FetchAdd> first{{1, 0}, 0x100, FetchAdd(5)};
  const core::Request<FetchAdd> second{{2, 0}, 0x100, FetchAdd(7)};
  const auto record = core::try_combine(first, second);
  std::printf("combined request: %s\n", first.f.to_string().c_str());
  const core::Word at_memory = 1000;
  std::printf("memory had %llu -> replies: first=%llu second=%llu, "
              "memory ends %llu\n",
              static_cast<unsigned long long>(at_memory),
              static_cast<unsigned long long>(at_memory),
              static_cast<unsigned long long>(core::decombine(*record, at_memory)),
              static_cast<unsigned long long>(first.f.apply(at_memory)));

  // Loads, stores and swaps combine by the §5.1 table:
  std::printf("load ∘ store(42) combines into: %s\n",
              compose(LssOp::load(), LssOp::store(42)).to_string().c_str());

  std::printf("\n== 2. A combining machine ==\n");
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 4;  // 16 processors, 16 memory modules, 4 stages
  const std::uint32_t n = 1u << cfg.log2_procs;
  constexpr std::uint64_t kPerProc = 64;

  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> sources;
  for (std::uint32_t p = 0; p < n; ++p) {
    // Everyone hammers address 7 with fetch-and-add(1): the pure hot spot.
    sources.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
        7, kPerProc, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
  }
  sim::Machine<FetchAdd> machine(cfg, std::move(sources));
  machine.run(1'000'000);

  const auto stats = machine.stats();
  std::printf("%u processors x %llu fetch-and-adds to one cell\n", n,
              static_cast<unsigned long long>(kPerProc));
  std::printf("cycles: %llu   combines in the network: %llu\n",
              static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(stats.combines));
  std::printf("final cell value: %llu (expected %llu)\n",
              static_cast<unsigned long long>(machine.value_at(7)),
              static_cast<unsigned long long>(n * kPerProc));

  std::printf("\n== 3. Formal check (Lemma 4.1 / Theorem 4.2) ==\n");
  const auto check = verify::check_machine(machine, 0);
  std::printf("checker: %s  (%llu ops, %llu locations, %llu combined "
              "messages expanded)\n",
              check.ok ? "PASS" : check.error.c_str(),
              static_cast<unsigned long long>(check.operations_checked),
              static_cast<unsigned long long>(check.locations_checked),
              static_cast<unsigned long long>(check.combined_messages_expanded));
  return check.ok ? 0 : 1;
}
