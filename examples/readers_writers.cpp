// Readers–writers three ways (§1, [10]): the busy-waiting fetch-and-add
// algorithm, the GLR group lock, and std::shared_mutex, racing on a shared
// table while an invariant checker rides along.
//
// The shared object is a two-field record that writers keep consistent
// (checksum == f(payload)); any reader observing a torn pair proves a
// mutual-exclusion bug. The demo reports throughput per structure and
// verifies zero violations.
//
// Build & run:   ./examples/readers_writers [seconds-per-structure]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "runtime/coordination.hpp"
#include "runtime/group_lock.hpp"

using namespace krs::runtime;

namespace {

struct Record {
  volatile std::uint64_t payload = 1;
  volatile std::uint64_t checksum = 0x9e3779b97f4a7c15ULL;  // payload * K
};

constexpr std::uint64_t kK = 0x9e3779b97f4a7c15ULL;

struct Result {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t violations = 0;
};

template <typename ReadLock, typename WriteLock>
Result race(double seconds, ReadLock read_section, WriteLock write_section) {
  Record rec;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0}, writes{0}, violations{0};
  const unsigned nr = 3, nw = 1;
  {
    std::vector<std::jthread> ts;
    for (unsigned w = 0; w < nw; ++w) {
      ts.emplace_back([&] {
        std::uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          write_section([&] {
            const std::uint64_t v = rec.payload + 1;
            rec.payload = v;
            rec.checksum = v * kK;
          });
          ++n;
        }
        writes.fetch_add(n);
      });
    }
    for (unsigned r = 0; r < nr; ++r) {
      ts.emplace_back([&] {
        std::uint64_t n = 0, bad = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          read_section([&] {
            const std::uint64_t p = rec.payload;
            const std::uint64_t c = rec.checksum;
            if (c != p * kK) ++bad;
          });
          ++n;
        }
        reads.fetch_add(n);
        violations.fetch_add(bad);
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop = true;
  }
  return {reads.load(), writes.load(), violations.load()};
}

void report(const char* name, const Result& r, double secs) {
  std::printf("%-18s %10.0f reads/s %9.0f writes/s  violations: %llu %s\n",
              name, static_cast<double>(r.reads) / secs,
              static_cast<double>(r.writes) / secs,
              static_cast<unsigned long long>(r.violations),
              r.violations == 0 ? "(ok)" : "(BUG!)");
}

}  // namespace

int main(int argc, char** argv) {
  const double secs = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("3 readers + 1 writer on a checksummed record, %.1fs per "
              "structure\n\n",
              secs);

  {
    FaaRwLock lock;
    const auto r = race(
        secs,
        [&](auto body) {
          lock.read_lock();
          body();
          lock.read_unlock();
        },
        [&](auto body) {
          lock.write_lock();
          body();
          lock.write_unlock();
        });
    report("faa rw-lock", r, secs);
  }
  {
    GroupLock lock;  // group 0 = readers, group 1 = writer
    const auto r = race(
        secs,
        [&](auto body) {
          lock.enter(0);
          body();
          lock.leave();
        },
        [&](auto body) {
          lock.enter(1);
          body();
          lock.leave();
        });
    report("GLR group lock", r, secs);
  }
  {
    std::shared_mutex lock;
    const auto r = race(
        secs,
        [&](auto body) {
          std::shared_lock lk(lock);
          body();
        },
        [&](auto body) {
          std::unique_lock lk(lock);
          body();
        });
    report("std::shared_mutex", r, secs);
  }
  std::printf("\n(the fetch-and-add structures have no serial lock-handoff "
              "path — the property the paper's combinable RMW operations "
              "were designed to exploit at machine scale)\n");
  return 0;
}
