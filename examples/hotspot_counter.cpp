// The hot-spot experiment (§1, after Pfister & Norton): a shared counter —
// say, the ready-queue index of a "completely parallel, decentralized
// operating system" — is hit by every processor while the rest of the
// traffic is uniform. Sweep the hot fraction and compare a combining
// network against the same network with combining disabled.
//
// Expected shape: without combining, latency explodes as soon as a few
// percent of references hit one cell (tree saturation); with combining the
// hot references merge in the network and latency stays near the uniform
// baseline.
//
// Build & run:   ./examples/hotspot_counter [log2_procs]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/fetch_theta.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::FetchAdd;

namespace {

struct RunResult {
  double mean_latency;
  double throughput;
  std::uint64_t combines;
};

RunResult run(unsigned log2_procs, double hot, net::CombinePolicy policy) {
  sim::MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = log2_procs;
  cfg.switch_cfg.policy = policy;
  cfg.window = 4;
  const std::uint32_t n = 1u << log2_procs;

  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> sources;
  for (std::uint32_t p = 0; p < n; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = 256;
    params.hot_fraction = hot;
    params.hot_addr = 3;
    params.addr_space = 1u << 16;
    sources.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256& r) { return FetchAdd(r.below(100)); },
        0xC0FFEE + p));
  }
  sim::Machine<FetchAdd> m(cfg, std::move(sources));
  if (!m.run(10'000'000)) {
    std::fprintf(stderr, "machine did not drain!\n");
    std::exit(1);
  }
  const auto check = verify::check_machine(m, 0);
  if (!check.ok) {
    std::fprintf(stderr, "correctness check failed: %s\n",
                 check.error.c_str());
    std::exit(1);
  }
  const auto s = m.stats();
  return {s.latency.mean(), s.throughput_ops_per_cycle, s.combines};
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned log2_procs = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("hot-spot sweep on a %u-processor machine "
              "(every access verified serializable)\n\n",
              1u << log2_procs);
  std::printf("%8s | %26s | %26s\n", "", "no combining", "combining");
  std::printf("%8s | %12s %13s | %12s %13s %9s\n", "hot %", "latency",
              "ops/cycle", "latency", "ops/cycle", "combines");
  for (const double hot : {0.0, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 1.0}) {
    const auto base = run(log2_procs, hot, net::CombinePolicy::kNone);
    const auto comb = run(log2_procs, hot, net::CombinePolicy::kUnlimited);
    std::printf("%7.1f%% | %12.1f %13.3f | %12.1f %13.3f %9llu\n", hot * 100,
                base.mean_latency, base.throughput, comb.mean_latency,
                comb.throughput,
                static_cast<unsigned long long>(comb.combines));
  }
  std::printf("\n(no-combining latency blowing up with hot%% while the "
              "combining column stays flat is the paper's motivating "
              "phenomenon)\n");
  return 0;
}
