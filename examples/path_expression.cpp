// §5.6 — data-level synchronization and path expressions, end to end.
//
// A shared object (here: a file-like record) is protected by the path
// expression  open (read | append)* close : the expression compiles
// (core/path_expr.hpp) to an automaton living in the object's memory tag,
// and every access is a guarded RMW that fails (nack) when the protocol
// would be violated. Four sections:
//
//   1. the algebra — a session walk with acks/nacks, and a COMPOSED whole
//      session whose success predicate survives composition (the issuer
//      of a combined request reads whole-session success off one reply);
//   2. real threads through CombiningBackend — the automaton served by
//      the same software combining tree that serves fetch-and-add;
//   3. the §5.6 size bound as partial combining — a deterministic wave in
//      which two stores exceed a narrowed wire budget, the switch
//      DECLINES the fold, and the declined request is served individually
//      at the root (§7) — both effects still land;
//   4. the simulated combining machine — protocol traffic costed in paper
//      cycles, serializability checked (Theorem 4.2).
//
// Build & run:   ./examples/path_expression
#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/dls.hpp"
#include "core/path_expr.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/dls_service.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/path_scenarios.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::DlsCell;

// States: 0 = closed, 1 = open.
using Op = core::DlsOp<2>;

namespace {

Op op_open() { return Op::guarded_load(0b01, {1, 0}); }
Op op_read() { return Op::guarded_load(0b10, {0, 1}); }
Op op_append(core::Word v) { return Op::guarded_store(v, 0b10, {0, 1}); }
Op op_close() { return Op::guarded_load(0b10, {0, 0}); }

bool section_algebra() {
  std::printf("== path expression open (read|append)* close, algebra ==\n");
  DlsCell file{100, 0};  // closed, content 100
  struct Step {
    const char* name;
    Op op;
  };
  const Step session[] = {
      {"read (while closed!)", op_read()},
      {"open", op_open()},
      {"read", op_read()},
      {"append(7)", op_append(7)},
      {"open (already open!)", op_open()},
      {"close", op_close()},
  };
  for (const auto& s : session) {
    const bool ok = s.op.succeeded(file);
    std::printf("  %-22s -> %s", s.name, ok ? "ok " : "NACK");
    file = s.op.apply(file);
    std::printf("   cell=%s\n", to_string(file).c_str());
  }

  // A whole legal session combines into ONE request, and the guard
  // composes with it: succeeded() on the combined op answers for the
  // whole chain.
  Op session_op = Op::identity();
  for (const Op& o : {op_open(), op_read(), op_close()}) {
    session_op = compose(session_op, o);
  }
  std::printf("open;read;close composed: %s (guard mask 0x%x: succeeds "
              "iff the file starts closed)\n",
              session_op.to_string().c_str(), session_op.guard());
  return session_op.succeeded(DlsCell{0, 0}) &&
         !session_op.succeeded(DlsCell{0, 1});
}

bool section_threads() {
  std::printf("\n== real threads through the combining tree ==\n");
  constexpr unsigned kThreads = 4;
  constexpr unsigned kSessions = 64;

  workload::FileSessionPath fs;
  runtime::CombiningBackend backend(kThreads);
  runtime::DlsHost<runtime::CombiningBackend> host(backend);

  std::vector<std::uint64_t> appends(kThreads, 0);
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (unsigned k = 0; k < kSessions; ++k) {
        // Contend for the open, then hold the session; only the holder's
        // read/append/close are admitted, so they cannot nack.
        if (!host.issue_until(fs.open(), 1u << 20)) return;
        host.issue(fs.read());
        if (host.issue(fs.append(t * 1000 + k)).ok) ++appends[t];
        host.issue(fs.close());
      }
    });
  }
  for (auto& th : ts) th.join();

  std::uint64_t appended = 0;
  for (const auto a : appends) appended += a;
  const DlsCell end = host.snapshot();
  const auto stats = host.cell().tree.stats();
  std::printf("%u threads x %u sessions: %llu acks, %llu nacks (lost open "
              "races), %llu appends; cell ends %s\n",
              kThreads, kSessions, static_cast<unsigned long long>(host.acks()),
              static_cast<unsigned long long>(host.nacks()),
              static_cast<unsigned long long>(appended),
              to_string(end).c_str());
  std::printf("tree: combine_rate=%.2f served_at_root=%.2f (automaton "
              "transitions fold like fetch-and-adds)\n",
              stats.combine_rate(), stats.served_at_root_fraction());
  // Every session that opened also closed: the file ends closed, and the
  // acks are exactly 4 per completed session plus nothing else.
  return end.state == 0 &&
         host.acks() == 4ull * kThreads * kSessions &&
         appended == static_cast<std::uint64_t>(kThreads) * kSessions;
}

bool section_declined_at_root() {
  std::printf("\n== the §5.6 size bound: declined fold, served at root ==\n");
  workload::ProducerConsumerPath pc;
  runtime::CombiningBackend backend(4);
  runtime::CombiningBackend::Cell cell(backend, core::dls_pack({0, 0}));

  // Two puts whose wire budget is narrowed to ONE value slot: the §5.6
  // bound for |S|=3 would admit three distinct store values, but this
  // switch's message format cannot carry two — try_compose declines, and
  // §7 partial combining serves the declined request individually at the
  // root. Slots 0 and 1 share a leaf, so the fold is actually attempted.
  const auto budget = pc.put(111).encoded_size_bytes();  // one value slot
  using Wave = std::decay_t<decltype(cell.tree)>::WaveOp;
  const std::vector<Wave> wave = {
      {0, core::AnyRmw(pc.put(111).with_size_budget(budget))},
      {1, core::AnyRmw(pc.put(222).with_size_budget(budget))},
  };
  const auto priors = cell.tree.run_wave(wave);
  const auto stats = cell.tree.stats();
  const DlsCell end = core::dls_unpack(cell.tree.read());

  std::printf("wave {put(111), put(222)} at budget %zu B: declined_folds=%llu "
              "root_applies=%llu; cell ends %s\n",
              budget, static_cast<unsigned long long>(stats.declined_folds),
              static_cast<unsigned long long>(stats.root_applies),
              to_string(end).c_str());
  const bool both_acked =
      priors.size() == 2 &&
      pc.put(111).succeeded(priors[0]) && pc.put(222).succeeded(priors[1]);
  std::printf("both puts acked=%d: the decline cost a root trip, never an "
              "operation\n", both_acked ? 1 : 0);
  // The fold was attempted and declined; both effects landed anyway.
  return stats.declined_folds == 1 && stats.root_applies == 2 &&
         both_acked && end.state == 2 && end.value == 222;
}

bool section_machine() {
  std::printf("\n== simulated combining machine ==\n");
  // Every processor repeatedly issues open/append/close triples against
  // one shared object.
  sim::MachineConfig<Op> cfg;
  cfg.log2_procs = 3;
  cfg.initial_value = DlsCell{0, 0};
  cfg.window = 1;  // protocol steps of one processor must not overlap
  const std::uint32_t n = 1u << cfg.log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<Op>>> sources;
  for (std::uint32_t p = 0; p < n; ++p) {
    std::deque<workload::ScriptedSource<Op>::Item> items;
    for (int round = 0; round < 8; ++round) {
      items.push_back({0, 5, op_open()});
      items.push_back({0, 5, op_append(p * 100 + round)});
      items.push_back({0, 5, op_close()});
    }
    sources.push_back(
        std::make_unique<workload::ScriptedSource<Op>>(std::move(items)));
  }
  sim::Machine<Op> m(cfg, std::move(sources));
  m.run(1'000'000);

  std::uint64_t ok = 0, nack = 0;
  for (const auto& op : m.completed()) {
    (op.f.succeeded(op.reply) ? ok : nack)++;
  }
  const auto check = verify::check_machine(m, DlsCell{0, 0});
  std::printf("%u processors x 8 sessions: %llu accesses ok, %llu nacked "
              "(lost open races), combines=%llu\n",
              n, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(nack),
              static_cast<unsigned long long>(m.stats().combines));
  std::printf("object ends %s; Theorem 4.2 checker: %s\n",
              to_string(m.value_at(5)).c_str(),
              check.ok ? "PASS" : check.error.c_str());
  return check.ok;
}

}  // namespace

int main() {
  bool ok = true;
  ok = section_algebra() && ok;
  ok = section_threads() && ok;
  ok = section_declined_at_root() && ok;
  ok = section_machine() && ok;
  std::printf("\n%s\n", ok ? "ALL SECTIONS PASS" : "FAILURE");
  return ok ? 0 : 1;
}
