// §5.6 — data-level synchronization and path expressions.
//
// A shared object (here: a file-like record) is protected by the path
// expression  open (read | append)* close : the automaton lives in the
// object's memory tag, and every access is a guarded RMW that fails (nack)
// when the protocol would be violated. The demo drives a simulated
// combining machine whose processors speak this protocol, shows nacked
// protocol violations, and verifies the run serializes (Theorem 4.2 holds
// for data-level synchronization operations like any other RMW family).
//
// Build & run:   ./examples/path_expression
#include <cstdio>
#include <memory>

#include "core/dls.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

using namespace krs;
using core::DlsCell;

// States: 0 = closed, 1 = open.
using Op = core::DlsOp<2>;

namespace {

Op op_open() { return Op::guarded_load(0b01, {1, 0}); }
Op op_read() { return Op::guarded_load(0b10, {0, 1}); }
Op op_append(core::Word v) { return Op::guarded_store(v, 0b10, {0, 1}); }
Op op_close() { return Op::guarded_load(0b10, {0, 0}); }

}  // namespace

int main() {
  std::printf("== path expression open (read|append)* close, algebra ==\n");
  DlsCell file{100, 0};  // closed, content 100
  struct Step {
    const char* name;
    Op op;
  };
  const Step session[] = {
      {"read (while closed!)", op_read()},
      {"open", op_open()},
      {"read", op_read()},
      {"append(7)", op_append(7)},
      {"open (already open!)", op_open()},
      {"close", op_close()},
  };
  for (const auto& s : session) {
    const bool ok = s.op.succeeded(file);
    std::printf("  %-22s -> %s", s.name, ok ? "ok " : "NACK");
    file = s.op.apply(file);
    std::printf("   cell=%s\n", to_string(file).c_str());
  }

  std::printf("\n== combined sessions through the network ==\n");
  // A whole legal session combines into ONE request (the automaton
  // transitions compose), so concurrent sessions to one object combine in
  // the network like fetch-and-adds do.
  Op session_op = Op::identity();
  for (const Op& o : {op_open(), op_read(), op_close()}) {
    session_op = compose(session_op, o);
  }
  std::printf("open;read;close composed: %s (carries %u store values, "
              "bound |S| = 2)\n",
              session_op.to_string().c_str(),
              session_op.distinct_store_values());

  // Drive a simulated machine: every processor repeatedly issues
  // open/append/close triples against one shared object.
  sim::MachineConfig<Op> cfg;
  cfg.log2_procs = 3;
  cfg.initial_value = DlsCell{0, 0};
  cfg.window = 1;  // protocol steps of one processor must not overlap
  const std::uint32_t n = 1u << cfg.log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<Op>>> sources;
  for (std::uint32_t p = 0; p < n; ++p) {
    std::deque<workload::ScriptedSource<Op>::Item> items;
    for (int round = 0; round < 8; ++round) {
      items.push_back({0, 5, op_open()});
      items.push_back({0, 5, op_append(p * 100 + round)});
      items.push_back({0, 5, op_close()});
    }
    sources.push_back(
        std::make_unique<workload::ScriptedSource<Op>>(std::move(items)));
  }
  sim::Machine<Op> m(cfg, std::move(sources));
  m.run(1'000'000);

  std::uint64_t ok = 0, nack = 0;
  for (const auto& op : m.completed()) {
    (op.f.succeeded(op.reply) ? ok : nack)++;
  }
  const auto check = verify::check_machine(m, DlsCell{0, 0});
  std::printf("%u processors x 8 sessions: %llu accesses ok, %llu nacked "
              "(lost open races), combines=%llu\n",
              n, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(nack),
              static_cast<unsigned long long>(m.stats().combines));
  std::printf("object ends %s; Theorem 4.2 checker: %s\n",
              to_string(m.value_at(5)).c_str(),
              check.ok ? "PASS" : check.error.c_str());
  return check.ok ? 0 : 1;
}
