// The RmwBackend seam, end to end: the SAME hotspot-counter and barrier
// code instantiated once per backend — hardware fetch-and-θ atomics
// (AtomicBackend), the software combining tree (CombiningBackend), the
// flat combiner (FlatCombiningBackend), and the cycle-accurate simulated
// Omega machine (SimBackend) — with the §2 serializability invariants
// checked after each run. This is the paper's substrate-portability
// claim as an executable: the algorithm text does not change, only the
// template argument. The sim row additionally prints its cost in PAPER
// UNITS (network cycles per op, combine rate).
//
// Build & run:   ./examples/backend_matrix [threads] [ops_per_thread]
// Exits non-zero if any invariant fails on any backend.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "runtime/combining_backend.hpp"
#include "runtime/coordination.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/sim_backend.hpp"

#ifdef KRS_ANALYSIS_ENABLED
// Under -DKRS_ANALYSIS=ON the backends instantiate with GlobalInstrument,
// so installing a ContentionProfiler here makes this example double as
// the profiler's smoke workload: tools/run_analysis.sh greps the summary
// line below and fails when the profiler sees no hot lines.
#include "analysis/contention_profiler.hpp"
#include "analysis/instrument.hpp"
#endif

using namespace krs::runtime;

namespace {

// Hotspot counter: every thread hammers one cell with fetch_add(1). The
// returned priors are tickets; serializability demands they are exactly
// 0..N-1 with per-thread monotonicity, and the final value is N.
template <typename B>
bool hotspot_counter(const char* label, B& backend, unsigned threads,
                     unsigned per) {
  typename B::Cell cell(backend, 0);
  std::vector<std::vector<Word>> got(threads);
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        got[t].reserve(per);
        for (unsigned i = 0; i < per; ++i) {
          got[t].push_back(backend.fetch_add(cell, 1));
        }
      });
    }
  }
  const Word total = static_cast<Word>(threads) * per;
  std::set<Word> all;
  bool ok = backend.load(cell) == total;
  for (const auto& v : got) {
    ok = ok && std::is_sorted(v.begin(), v.end());
    all.insert(v.begin(), v.end());
  }
  ok = ok && all.size() == total && *all.begin() == 0 &&
       *all.rbegin() == total - 1;
  std::printf("  %-10s hotspot: %llu ops, tickets %s\n", label,
              static_cast<unsigned long long>(total),
              ok ? "distinct 0..N-1, per-thread monotone" : "BROKEN");
  return ok;
}

// Barrier: every thread bumps a per-phase count before arriving; after
// the barrier releases, each must see the full party of its phase.
template <typename B>
bool barrier_phases(const char* label, B& backend, unsigned threads,
                    unsigned phases) {
  BasicBarrier<B> barrier(threads, backend);
  std::vector<int> counters(phases, 0);
  bool torn = false;
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < threads; ++t) {
      ts.emplace_back([&] {
        for (unsigned ph = 0; ph < phases; ++ph) {
          __atomic_fetch_add(&counters[ph], 1, __ATOMIC_RELAXED);
          barrier.arrive_and_wait();
          if (counters[ph] != static_cast<int>(threads)) torn = true;
        }
      });
    }
  }
  const bool ok = !torn && barrier.phase() == phases;
  std::printf("  %-10s barrier: %u phases x %u parties %s\n", label, phases,
              threads, ok ? "aligned" : "BROKEN");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  const unsigned per = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2]))
                                : 2000;

  std::printf("same algorithm, four RMW substrates (%u threads)\n\n",
              threads);

#ifdef KRS_ANALYSIS_ENABLED
  krs::analysis::ContentionProfiler profiler;
  krs::analysis::ScopedProfiler profiler_scope(profiler);
#endif

  AtomicBackend atomic_backend;
  CombiningBackend combining_backend(
      static_cast<unsigned>(krs::util::ceil_pow2(std::max(2u, threads))));
  FlatCombiningBackend flat_backend(std::max(2u, threads));
  SimBackend sim_backend(SimBackendConfig{.log2_procs = 2});
  // The sim machine steps once per injected op round trip, so keep its
  // share of the workload small enough for an example binary.
  const unsigned sim_per = std::max(1u, per / 20);

  bool ok = true;
  std::printf("hotspot fetch-and-add counter:\n");
  ok &= hotspot_counter("atomic", atomic_backend, threads, per);
  ok &= hotspot_counter("combining", combining_backend, threads, per);
  ok &= hotspot_counter("flat", flat_backend, threads, per);
  ok &= hotspot_counter("sim", sim_backend, threads, sim_per);

  std::printf("\nticket barrier:\n");
  ok &= barrier_phases("atomic", atomic_backend, threads, 50);
  ok &= barrier_phases("combining", combining_backend, threads, 50);
  ok &= barrier_phases("flat", flat_backend, threads, 50);
  ok &= barrier_phases("sim", sim_backend, threads, 5);

  const SimBackendStats st = sim_backend.stats();
  std::printf(
      "\nsim backend, paper units: %llu network ops in %llu cycles "
      "(%.2f cycles/op, combine rate %.2f, mean latency %.1f cycles)\n",
      static_cast<unsigned long long>(st.network_ops),
      static_cast<unsigned long long>(st.cycles), st.cycles_per_op(),
      st.combine_rate(), st.mean_latency());

#ifdef KRS_ANALYSIS_ENABLED
  const auto report = profiler.report();
  std::printf(
      "\nprofiler: hot lines: %zu (%llu cache lines touched, "
      "%llu shared accesses, %llu conflicts)\n",
      report.hot_lines, static_cast<unsigned long long>(report.lines.size()),
      static_cast<unsigned long long>(report.total_accesses),
      static_cast<unsigned long long>(report.total_conflicts));
  std::printf("%s\n", report.to_string(3).c_str());
#endif

  std::printf("\n%s\n", ok ? "all invariants hold on all four backends"
                           : "INVARIANT FAILURE");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
