// §6 made runnable: the combining network IS an asynchronous parallel
// prefix machine. Run the paper's CSP tree (leaf/node/superoot processes on
// real threads with channels) over RMW mappings, compare with serial
// execution, and check the §6 operation-count formulas.
//
// Build & run:   ./examples/prefix_tree [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/affine.hpp"
#include "prefix/async_tree.hpp"
#include "prefix/circuits.hpp"
#include "prefix/schedule.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

using namespace krs;
using core::Affine;
using core::Word;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::atoll(argv[1]) : 16;

  // n processors each issue one RMW: x := a*x + b (the §5.4 affine family).
  util::Xoshiro256 rng(2026);
  std::vector<Affine> ops;
  for (std::size_t i = 0; i < n; ++i) {
    ops.push_back(rng.chance(0.7) ? Affine::fetch_add(rng.below(10))
                                  : Affine::fetch_mul(1 + rng.below(3)));
  }

  // The asynchronous tree: one thread per leaf/node/superoot, channels
  // only — the paper's CSP program verbatim.
  const auto r = prefix::async_prefix(
      ops, [](const Affine& f, const Affine& g) { return compose(f, g); },
      Affine::identity());

  const Word x0 = 5;
  Word serial = x0;
  std::printf("cell starts at %llu\n", static_cast<unsigned long long>(x0));
  std::printf("%4s  %-12s %10s %10s\n", "req", "op", "reply", "serial");
  bool all_match = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Word reply = r.exclusive_prefix[i].apply(x0);
    const bool match = reply == serial;
    all_match &= match;
    if (n <= 32) {
      std::printf("%4zu  %-12s %10llu %10llu %s\n", i,
                  ops[i].to_string().c_str(),
                  static_cast<unsigned long long>(reply),
                  static_cast<unsigned long long>(serial),
                  match ? "" : "  MISMATCH");
    }
    serial = ops[i].apply(serial);
  }
  std::printf("memory ends at %llu (tree total: %llu)\n",
              static_cast<unsigned long long>(serial),
              static_cast<unsigned long long>(r.total.apply(x0)));

  // §6 accounting.
  const auto rep = prefix::analyze_prefix_tree(n);
  std::printf("\ninternal nodes: %llu, multiplications: %llu "
              "(%llu trivial, %llu nontrivial)\n",
              static_cast<unsigned long long>(rep.internal_nodes),
              static_cast<unsigned long long>(rep.total_multiplications),
              static_cast<unsigned long long>(rep.trivial_multiplications),
              static_cast<unsigned long long>(rep.nontrivial_multiplications));
  if (util::is_pow2(n) && n >= 2) {
    const auto k = util::log2_floor(n);
    std::printf("paper formulas (n=2^%u): 2n-2-lg n = %llu nontrivial, "
                "2 lg n - 2 = %u cycles (measured %llu)\n",
                k, static_cast<unsigned long long>(2 * n - 2 - k), 2 * k - 2,
                static_cast<unsigned long long>(rep.leaf_critical_path));
  }

  // Ladner–Fischer comparison.
  const auto tree = prefix::tree_prefix_circuit(n);
  const auto skl = prefix::sklansky_prefix_circuit(n);
  std::printf("\ncircuit comparison:   combining tree: %zu gates, depth %zu"
              "   |   Sklansky/LF-P0: %zu gates, depth %zu\n",
              tree.size(), tree.output_depth(), skl.size(),
              skl.output_depth());

  return (all_match && r.total.apply(x0) == serial) ? 0 : 1;
}
