// A closed-loop barrier on the simulated combining machine.
//
// Every processor executes `phases` rounds of:
//     t ← fetch-and-add(counter, 1)
//     if t == n·phase − 1:  store(sense, phase)        // last arrival
//     else:                 spin: load(sense) until ≥ phase
//
// This is the classic hot-spot pattern twice over: the fetch-and-adds all
// hit `counter`, and the spin loads all hit `sense`. The paper's machinery
// handles both — fetch-and-adds combine through §5.2 and concurrent LOADS
// combine through §5.1 (load∘load = load), so the barrier costs O(log n)
// network work per round instead of O(n). Run with combining off to watch
// the spin traffic saturate the memory module.
//
// Build & run:   ./examples/spin_barrier [log2_procs] [phases]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/any_rmw.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"

using namespace krs;
using core::AnyRmw;
using core::Addr;
using core::FetchAdd;
using core::LssOp;
using core::Tick;
using core::Word;

namespace {

constexpr Addr kCounter = 0;
constexpr Addr kSense = 1;

/// Closed-loop traffic source implementing the barrier protocol: the next
/// operation depends on the previous reply, delivered via on_complete().
class BarrierWorker final : public proc::TrafficSource<AnyRmw> {
 public:
  BarrierWorker(Word parties, Word phases)
      : parties_(parties), phases_(phases) {}

  std::optional<std::pair<Addr, AnyRmw>> next(Tick, unsigned) override {
    if (!ready_) return std::nullopt;
    ready_ = false;
    switch (state_) {
      case State::kArrive:
        return std::make_pair(kCounter, AnyRmw(FetchAdd(1)));
      case State::kAnnounce:
        return std::make_pair(kSense, AnyRmw(LssOp::store(phase_)));
      case State::kSpin:
        return std::make_pair(kSense, AnyRmw(LssOp::load()));
      case State::kDone:
        return std::nullopt;
    }
    return std::nullopt;
  }

  void on_complete(core::ReqId, const Word& old_value, Tick) override {
    switch (state_) {
      case State::kArrive:
        // Cumulative count: the last arrival of phase p sees n·p − 1.
        state_ = (old_value == parties_ * phase_ - 1) ? State::kAnnounce
                                                      : State::kSpin;
        break;
      case State::kAnnounce:
        next_phase();
        break;
      case State::kSpin:
        if (old_value >= phase_) next_phase();
        break;
      case State::kDone:
        break;
    }
    ready_ = state_ != State::kDone;
  }

  [[nodiscard]] bool finished() const override {
    return state_ == State::kDone;
  }

 private:
  enum class State { kArrive, kAnnounce, kSpin, kDone };

  void next_phase() {
    if (++phase_ > phases_) {
      state_ = State::kDone;
    } else {
      state_ = State::kArrive;
    }
  }

  Word parties_;
  Word phases_;
  Word phase_ = 1;
  State state_ = State::kArrive;
  bool ready_ = true;
};

std::uint64_t run(unsigned log2_procs, Word phases, net::CombinePolicy policy,
                  std::uint64_t* combines) {
  sim::MachineConfig<AnyRmw> cfg;
  cfg.log2_procs = log2_procs;
  cfg.switch_cfg.policy = policy;
  cfg.window = 1;  // the protocol is strictly dependent
  const Word n = 1u << log2_procs;
  std::vector<std::unique_ptr<proc::TrafficSource<AnyRmw>>> src;
  for (Word p = 0; p < n; ++p) {
    src.push_back(std::make_unique<BarrierWorker>(n, phases));
  }
  sim::Machine<AnyRmw> m(cfg, std::move(src));
  if (!m.run(50'000'000)) {
    std::fprintf(stderr, "did not drain\n");
    std::exit(1);
  }
  const auto check = verify::check_machine(m, 0);
  if (!check.ok) {
    std::fprintf(stderr, "CHECKER FAILED: %s\n", check.error.c_str());
    std::exit(1);
  }
  if (m.value_at(kCounter) != n * phases) {
    std::fprintf(stderr, "barrier miscounted!\n");
    std::exit(1);
  }
  if (combines != nullptr) *combines = m.stats().combines;
  return m.stats().cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned log2_procs = argc > 1 ? std::atoi(argv[1]) : 4;
  const Word phases = argc > 2 ? std::atoll(argv[2]) : 16;
  std::printf("sense-reversing barrier, %u processors, %llu phases "
              "(fetch-and-add arrivals + spin loads, both on hot cells)\n\n",
              1u << log2_procs, static_cast<unsigned long long>(phases));
  std::uint64_t comb = 0;
  const auto with = run(log2_procs, phases, net::CombinePolicy::kUnlimited,
                        &comb);
  const auto without = run(log2_procs, phases, net::CombinePolicy::kNone,
                           nullptr);
  std::printf("combining:     %8llu cycles (%.1f/phase), %llu combines\n",
              static_cast<unsigned long long>(with),
              static_cast<double>(with) / static_cast<double>(phases),
              static_cast<unsigned long long>(comb));
  std::printf("no combining:  %8llu cycles (%.1f/phase)\n",
              static_cast<unsigned long long>(without),
              static_cast<double>(without) / static_cast<double>(phases));
  std::printf("\nboth runs verified serializable (Theorem 4.2); the "
              "combining run merges arrivals AND spin reads in the "
              "network.\n");
  return 0;
}
