// Negative-path tests for the Theorem 4.2 checker driven by REAL machine
// runs: record an actual simulation's history, snapshot its logs into a
// corruptible adapter, verify the snapshot passes, then corrupt it one
// surgical mutation at a time and assert the checker names the SPECIFIC
// criterion (M2.1 / M2.2 / M2.3) that the mutation breaks. This pins down
// not just that the checker fails, but that it fails for the right reason
// on histories with the full combine structure a real run produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fetch_theta.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs;
using core::FetchAdd;
using core::Word;
using sim::Machine;
using sim::MachineConfig;

/// A mutable copy of a finished run's observable history, exposing the
/// interface check_machine needs.
struct RecModule {
  std::vector<mem::AccessRecord> log;
  const std::vector<mem::AccessRecord>& access_log() const { return log; }
};

struct RecordedRun {
  using rmw_type = FetchAdd;

  std::vector<proc::CompletedOp<FetchAdd>> ops;
  std::vector<net::CombineEvent> combines;
  std::vector<RecModule> modules;
  std::map<core::Addr, Word> finals;

  const std::vector<proc::CompletedOp<FetchAdd>>& completed() const {
    return ops;
  }
  const std::vector<net::CombineEvent>& combine_log() const {
    return combines;
  }
  std::uint32_t processors() const {
    return static_cast<std::uint32_t>(modules.size());
  }
  const RecModule& module(std::uint32_t i) const { return modules[i]; }
  Word value_at(core::Addr a) const {
    const auto it = finals.find(a);
    return it == finals.end() ? 0 : it->second;
  }
};

RecordedRun snapshot(const Machine<FetchAdd>& m,
                     std::initializer_list<core::Addr> addrs) {
  RecordedRun r;
  r.ops = m.completed();
  r.combines = m.combine_log();
  r.modules.resize(m.processors());
  for (std::uint32_t i = 0; i < m.processors(); ++i) {
    r.modules[i].log = m.module(i).access_log();
  }
  for (const core::Addr a : addrs) r.finals[a] = m.value_at(a);
  return r;
}

/// All 8 processors fire one fetch-and-add at one cell in the same cycle:
/// the requests combine pairwise at every stage (7 combine events), so the
/// recorded history has the nested expansion structure Lemma 4.1 describes.
RecordedRun recorded_burst() {
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 3;
  cfg.window = 1;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    std::deque<workload::ScriptedSource<FetchAdd>::Item> items;
    items.push_back({0, 7, FetchAdd(1)});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchAdd>>(std::move(items)));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  KRS_ASSERT(m.run(10000));
  KRS_ASSERT(m.combine_log().size() == 7);
  return snapshot(m, {7});
}

TEST(CheckerNegative, SnapshotOfRealRunPasses) {
  const RecordedRun r = recorded_burst();
  const auto res = verify::check_machine(r, 0);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.operations_checked, 8u);
  EXPECT_GT(res.combined_messages_expanded, 0u);
}

TEST(CheckerNegative, DuplicatedCombineLogEntryIsM21) {
  // The same absorption recorded twice: the absorbed request would be
  // represented twice in the expansion — the serial stream replays it
  // twice, which is exactly what M2.1 (serializability) forbids.
  RecordedRun r = recorded_burst();
  r.combines.push_back(r.combines.front());
  const auto res = verify::check_machine(r, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("M2.1"), std::string::npos) << res.error;
}

TEST(CheckerNegative, DroppedCombineEventIsM22) {
  // Erase one absorption from the log: the absorbed request still claims
  // completion but is no longer represented by anything memory processed —
  // M2.2 (every request eventually accepted) is violated.
  RecordedRun r = recorded_burst();
  r.combines.pop_back();
  const auto res = verify::check_machine(r, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("M2.2"), std::string::npos) << res.error;
}

TEST(CheckerNegative, DroppedCompletedOpIsCaught) {
  // Drop a completed op entirely: memory now processed more requests than
  // ever completed. (The checker reports the count mismatch rather than an
  // M-number — there is no single criterion for an op the record has
  // forgotten existed.)
  RecordedRun r = recorded_burst();
  r.ops.pop_back();
  const auto res = verify::check_machine(r, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("completed"), std::string::npos) << res.error;
}

TEST(CheckerNegative, ReorderedSameProcessorPairIsM23) {
  // One processor issues two fetch-and-adds to one location, strictly in
  // sequence (window = 1, so they cannot combine with each other). Swap
  // the two records in the module's access log: the replies and final
  // value still replay consistently (both add 0), but the same-processor
  // same-location FIFO order of M2.3 is broken — the checker must catch
  // the reordering even though the values are unimpeachable.
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 2;
  cfg.window = 1;
  std::vector<std::unique_ptr<proc::TrafficSource<FetchAdd>>> src;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::deque<workload::ScriptedSource<FetchAdd>::Item> items;
    if (p == 0) {
      items.push_back({0, 9, FetchAdd(0)});
      items.push_back({0, 9, FetchAdd(0)});
    }
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchAdd>>(std::move(items)));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10000));
  RecordedRun r = snapshot(m, {9});
  ASSERT_TRUE(verify::check_machine(r, 0).ok);

  // Find the module that serviced both requests and swap them.
  bool swapped = false;
  for (auto& mod : r.modules) {
    if (mod.log.size() == 2) {
      std::swap(mod.log[0], mod.log[1]);
      swapped = true;
    }
  }
  ASSERT_TRUE(swapped);
  const auto res = verify::check_machine(r, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("M2.3"), std::string::npos) << res.error;
}

TEST(CheckerNegative, TamperedFinalValueIsCaught) {
  RecordedRun r = recorded_burst();
  r.finals[7] = 99;  // the eight adds really sum to 8
  const auto res = verify::check_machine(r, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("final memory value"), std::string::npos)
      << res.error;
}

}  // namespace
