// One uniform law suite applied to EVERY mapping family through the Rmw
// concept — the semigroup/identity/encoding obligations that make a family
// usable by the combining machinery, checked once, generically:
//
//   L1  compose(f, g).apply(x) == g.apply(f.apply(x))        (soundness)
//   L2  compose is associative                               (semigroup)
//   L3  identity() is a two-sided identity up to behavior    (monoid-ish)
//   L4  try_compose, when it succeeds, agrees with compose
//   L5  encoded_size_bytes is bounded by a constant
//   L6  equality is consistent with behavior on sampled points
#include <gtest/gtest.h>

#include <vector>

#include "core/any_rmw.hpp"
#include "core/dls.hpp"
#include "core/full_empty.hpp"
#include "util/rng.hpp"

namespace {

using namespace krs::core;
using krs::util::Xoshiro256;

/// Per-family generator glue for the typed suite.
template <typename M>
struct Gen;

template <>
struct Gen<LssOp> {
  static LssOp op(Xoshiro256& r) {
    switch (r.below(3)) {
      case 0:
        return LssOp::load();
      case 1:
        return LssOp::store(r.below(1000));
      default:
        return LssOp::swap(r.below(1000));
    }
  }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 9;
};

template <>
struct Gen<FetchAdd> {
  static FetchAdd op(Xoshiro256& r) { return FetchAdd(r.next()); }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 8;
};

template <>
struct Gen<FetchMin> {
  static FetchMin op(Xoshiro256& r) { return FetchMin(r.next()); }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 8;
};

template <>
struct Gen<BoolVec> {
  static BoolVec op(Xoshiro256& r) { return BoolVec(r.next(), r.next()); }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 16;
};

template <>
struct Gen<Affine> {
  static Affine op(Xoshiro256& r) { return Affine(r.next(), r.next()); }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 16;
};

template <>
struct Gen<FEOp> {
  static FEOp op(Xoshiro256& r) {
    switch (r.below(6)) {
      case 0:
        return FEOp::load();
      case 1:
        return FEOp::load_and_clear();
      case 2:
        return FEOp::store_and_set(r.below(100));
      case 3:
        return FEOp::store_if_clear_and_set(r.below(100));
      case 4:
        return FEOp::store_and_clear(r.below(100));
      default:
        return FEOp::store_if_clear_and_clear(r.below(100));
    }
  }
  static FEWord point(Xoshiro256& r) {
    return FEWord{r.below(1000), r.chance(0.5)};
  }
  static constexpr std::size_t kMaxEncoding = 9;
};

template <>
struct Gen<DlsOp<4>> {
  static DlsOp<4> op(Xoshiro256& r) {
    const auto guard = static_cast<std::uint16_t>(r.below(16));
    std::array<std::uint8_t, 4> next{};
    for (auto& s : next) s = static_cast<std::uint8_t>(r.below(4));
    if (r.chance(0.5)) return DlsOp<4>::guarded_store(r.below(100), guard, next);
    return DlsOp<4>::guarded_load(guard, next);
  }
  static DlsCell point(Xoshiro256& r) {
    return DlsCell{r.below(1000), static_cast<std::uint8_t>(r.below(4))};
  }
  static constexpr std::size_t kMaxEncoding = 4 + 4 * 8;
};

template <>
struct Gen<AnyRmw> {
  static AnyRmw op(Xoshiro256& r) {
    switch (r.below(4)) {
      case 0:
        return AnyRmw(Gen<LssOp>::op(r));
      case 1:
        return AnyRmw(Gen<FetchAdd>::op(r));
      case 2:
        return AnyRmw(Gen<BoolVec>::op(r));
      default:
        return AnyRmw(Gen<Affine>::op(r));
    }
  }
  static Word point(Xoshiro256& r) { return r.next(); }
  static constexpr std::size_t kMaxEncoding = 17;
};

template <typename M>
class FamilyLaws : public ::testing::Test {};

using Families = ::testing::Types<LssOp, FetchAdd, FetchMin, BoolVec, Affine,
                                  FEOp, DlsOp<4>, AnyRmw>;
TYPED_TEST_SUITE(FamilyLaws, Families);

TYPED_TEST(FamilyLaws, L1ComposeIsSequentialApplication) {
  Xoshiro256 r(101);
  for (int i = 0; i < 400; ++i) {
    const auto f = Gen<TypeParam>::op(r);
    const auto g = Gen<TypeParam>::op(r);
    const auto fg = try_compose(f, g);
    if (!fg) continue;  // declining is always allowed
    const auto x = Gen<TypeParam>::point(r);
    EXPECT_EQ(fg->apply(x), g.apply(f.apply(x)));
  }
}

TYPED_TEST(FamilyLaws, L2Associativity) {
  Xoshiro256 r(102);
  for (int i = 0; i < 300; ++i) {
    const auto a = Gen<TypeParam>::op(r);
    const auto b = Gen<TypeParam>::op(r);
    const auto c = Gen<TypeParam>::op(r);
    const auto ab = try_compose(a, b);
    const auto bc = try_compose(b, c);
    if (!ab || !bc) continue;
    const auto lhs = try_compose(*ab, c);
    const auto rhs = try_compose(a, *bc);
    if (!lhs || !rhs) continue;
    // Behavioral equality on sampled points (kind upgrades make
    // representational equality too strict for LSS).
    for (int k = 0; k < 8; ++k) {
      const auto x = Gen<TypeParam>::point(r);
      EXPECT_EQ(lhs->apply(x), rhs->apply(x));
    }
  }
}

TYPED_TEST(FamilyLaws, L3IdentityBehaves) {
  Xoshiro256 r(103);
  const auto id = TypeParam::identity();
  for (int i = 0; i < 200; ++i) {
    const auto x = Gen<TypeParam>::point(r);
    EXPECT_EQ(id.apply(x), x);
    const auto f = Gen<TypeParam>::op(r);
    if (const auto idf = try_compose(id, f)) {
      EXPECT_EQ(idf->apply(x), f.apply(x));
    }
    if (const auto fid = try_compose(f, id)) {
      EXPECT_EQ(fid->apply(x), f.apply(x));
    }
  }
}

TYPED_TEST(FamilyLaws, L4TryComposeAgreesWithCompose) {
  Xoshiro256 r(104);
  for (int i = 0; i < 200; ++i) {
    const auto f = Gen<TypeParam>::op(r);
    const auto g = Gen<TypeParam>::op(r);
    const auto t = try_compose(f, g);
    if (!t) continue;
    const auto c = compose(f, g);
    for (int k = 0; k < 4; ++k) {
      const auto x = Gen<TypeParam>::point(r);
      EXPECT_EQ(t->apply(x), c.apply(x));
    }
  }
}

TYPED_TEST(FamilyLaws, L5EncodingBounded) {
  Xoshiro256 r(105);
  for (int i = 0; i < 200; ++i) {
    const auto f = Gen<TypeParam>::op(r);
    EXPECT_LE(f.encoded_size_bytes(), Gen<TypeParam>::kMaxEncoding);
    // Composition must not blow up the encoding (closure of the bound).
    const auto g = Gen<TypeParam>::op(r);
    if (const auto fg = try_compose(f, g)) {
      EXPECT_LE(fg->encoded_size_bytes(), Gen<TypeParam>::kMaxEncoding);
    }
  }
}

TYPED_TEST(FamilyLaws, L6EqualityImpliesBehavioralEquality) {
  Xoshiro256 r(106);
  for (int i = 0; i < 300; ++i) {
    const auto f = Gen<TypeParam>::op(r);
    const auto g = Gen<TypeParam>::op(r);
    if (f == g) {
      for (int k = 0; k < 4; ++k) {
        const auto x = Gen<TypeParam>::point(r);
        EXPECT_EQ(f.apply(x), g.apply(x));
      }
    }
  }
}

}  // namespace
