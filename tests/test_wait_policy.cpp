// The WaitPolicy seam and the local-spin lock tier, pinned from both
// sides:
//
//  * deterministic hook-driven FutexWait tests — futex_hooks() swaps the
//    kernel park/wake pair for scripted functions, so spurious wakeups,
//    the lost-wake ordering (the kernel's atomic re-check of the waited
//    word), and the escalating bounded park timeout are driven exactly,
//    on one thread, with no timing dependence;
//  * real-thread stress — ParkingLock<FutexWait> oversubscribed 8 ways
//    on one counter (actual futex syscalls on Linux), MCS/CLH distinct
//    critical-section tickets at 2/4/8 threads, and deterministic FIFO
//    handoff via the contended_acquires() stagger (spawn thread i+1 only
//    after thread i has provably enqueued behind a held lock);
//  * the telemetry plumbing — per-thread counts drain to the process
//    totals at thread exit, so a joined coordinator reads exact sums;
//  * EpisodeWait — the backoff-reset fix: the schedule re-arms exactly
//    when the observed state word changes, not on the first observation
//    and not on a repeat.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/local_spin_locks.hpp"
#include "runtime/wait_policy.hpp"

namespace {

using namespace krs::runtime;

// ---- hook scripting state (tests install/uninstall around use; gtest
// runs tests sequentially in one process, so plain globals suffice) ------

std::atomic<int> g_park_calls{0};
std::atomic<int> g_park_mismatches{0};  // kernel re-check found w != expected
std::atomic<int> g_wake_calls{0};
int g_release_on_park = 0;  // park call index that flips the word to 1
std::vector<std::chrono::nanoseconds> g_timeouts;  // single-threaded tests

void reset_hook_state() {
  g_park_calls = 0;
  g_park_mismatches = 0;
  g_wake_calls = 0;
  g_release_on_park = 0;
  g_timeouts.clear();
}

/// Installs hooks for one test body and restores the real implementation
/// on the way out — hooks are process-global, so nothing may be parked
/// across the swap (all hook tests are single-threaded).
struct HookGuard {
  explicit HookGuard(FutexHooks h) {
    reset_hook_state();
    futex_hooks() = h;
  }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;
  ~HookGuard() { futex_hooks() = {}; }
};

/// A park that honors the kernel contract (return false without sleeping
/// when the word moved) but otherwise wakes SPURIOUSLY every time; on
/// call #g_release_on_park it performs the real release first, playing
/// the waker that fires mid-sleep.
bool scripted_park(const std::atomic<std::uint32_t>* w, std::uint32_t expected,
                   std::chrono::nanoseconds) {
  const int n = g_park_calls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (w->load(std::memory_order_acquire) != expected) {
    g_park_mismatches.fetch_add(1, std::memory_order_relaxed);
    return false;  // the atomic re-check: never slept
  }
  if (g_release_on_park != 0 && n >= g_release_on_park) {
    const_cast<std::atomic<std::uint32_t>*>(w)->store(
        1, std::memory_order_release);
  }
  return true;  // "woken" — spuriously unless the store above ran
}

bool timeout_recording_park(const std::atomic<std::uint32_t>*, std::uint32_t,
                            std::chrono::nanoseconds timeout) {
  g_timeouts.push_back(timeout);
  return true;  // spurious wake every time; the word never changes
}

void counting_wake(const std::atomic<std::uint32_t>*, bool) {
  g_wake_calls.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint32_t kGraceRounds =
    FutexWait::kSpinRounds + FutexWait::kYieldRounds;

// ---- FutexWait: hook-driven determinism --------------------------------

TEST(FutexWaitHooks, SurvivesSpuriousWakeups) {
  HookGuard guard({&scripted_park, &counting_wake});
  g_release_on_park = 3;  // two pure spurious wakes, then the real one

  std::atomic<std::uint32_t> word{0};
  const WaitStats before = thread_wait_stats();
  {
    FutexWait pol;
    while (word.load(std::memory_order_acquire) == 0) {
      pol.wait_while_equal(word, 0);
    }
  }
  EXPECT_EQ(word.load(), 1u);
  // Rounds 1..kGraceRounds never touched the hook; then exactly three
  // parks: spurious, spurious, woken-for-real.
  EXPECT_EQ(g_park_calls.load(), 3);
  EXPECT_EQ(g_park_mismatches.load(), 0);

  const WaitStats d = thread_wait_stats() - before;
  EXPECT_EQ(d.parks, 3u);
  EXPECT_EQ(d.spins, (1u << FutexWait::kSpinRounds) - 1);  // 1+2+…+64
  EXPECT_EQ(d.yields, FutexWait::kYieldRounds);
}

TEST(FutexWaitHooks, LostWakeOrderingNeverSleeps) {
  HookGuard guard({&scripted_park, &counting_wake});

  std::atomic<std::uint32_t> word{0};
  FutexWait pol;
  // Burn the grace rounds while the word still holds the waited value —
  // no park happens yet.
  for (std::uint32_t i = 0; i < kGraceRounds; ++i) {
    pol.wait_while_equal(word, 0);
  }
  ASSERT_EQ(g_park_calls.load(), 0);

  // The lost-wake window: the waker releases AFTER our last user-space
  // check but BEFORE we park. The park must observe the changed word and
  // return immediately — this re-check is the property that makes
  // parking safe without a waiter count.
  word.store(1, std::memory_order_release);
  pol.wait_while_equal(word, 0);
  EXPECT_EQ(g_park_calls.load(), 1);
  EXPECT_EQ(g_park_mismatches.load(), 1);  // saw w != expected, never slept
}

TEST(FutexWaitHooks, NotifyRoutesThroughWakeHookAndCounts) {
  HookGuard guard({&scripted_park, &counting_wake});

  std::atomic<std::uint32_t> word{0};
  const WaitStats before = thread_wait_stats();
  FutexWait::notify_one(word);
  FutexWait::notify_all(word);
  EXPECT_EQ(g_wake_calls.load(), 2);
  const WaitStats d = thread_wait_stats() - before;
  EXPECT_EQ(d.wakes, 2u);
}

TEST(FutexWaitHooks, ParkTimeoutEscalatesBoundedAndResets) {
  HookGuard guard({&timeout_recording_park, &counting_wake});

  std::atomic<std::uint32_t> word{0};
  FutexWait pol;
  const int kParks = 10;
  for (std::uint32_t i = 0; i < kGraceRounds + kParks; ++i) {
    pol.wait_while_equal(word, 0);
  }
  ASSERT_EQ(g_timeouts.size(), static_cast<std::size_t>(kParks));
  EXPECT_EQ(g_timeouts.front(), FutexWait::kMinParkTimeout);
  for (std::size_t i = 1; i < g_timeouts.size(); ++i) {
    EXPECT_GE(g_timeouts[i], g_timeouts[i - 1]);            // monotone
    EXPECT_LE(g_timeouts[i], g_timeouts[i - 1] * 2);        // ≤ doubling
    EXPECT_LE(g_timeouts[i], FutexWait::kMaxParkTimeout);   // bounded
  }
  EXPECT_EQ(g_timeouts.back(), FutexWait::kMaxParkTimeout);

  // reset() re-arms the whole schedule: grace rounds first, then a park
  // back at the minimum timeout.
  pol.reset();
  g_timeouts.clear();
  for (std::uint32_t i = 0; i < kGraceRounds + 1; ++i) {
    pol.wait_while_equal(word, 0);
  }
  ASSERT_EQ(g_timeouts.size(), 1u);
  EXPECT_EQ(g_timeouts.front(), FutexWait::kMinParkTimeout);
}

// ---- telemetry plumbing ------------------------------------------------

TEST(WaitTelemetry, WorkerCountsDrainAtThreadExit) {
  const WaitStats before = wait_stats_snapshot();
  std::thread t([] {
    SpinWait pol;
    for (int i = 0; i < 8; ++i) pol.pause();
    // No explicit flush: the thread-local block drains on thread exit.
  });
  t.join();
  const WaitStats d = wait_stats_snapshot() - before;
  // 1+2+4+…+64, then capped at 64: 191 pause instructions, all visible
  // after the join.
  EXPECT_EQ(d.spins, 191u);
}

TEST(WaitTelemetry, ResetFlushesIntoThreadStats) {
  const WaitStats before = thread_wait_stats();
  SpinYieldWait pol;
  pol.pause();
  EXPECT_EQ((thread_wait_stats() - before).spins, 0u);  // still policy-local
  pol.reset();
  EXPECT_GE((thread_wait_stats() - before).spins, 1u);  // flushed
}

// ---- EpisodeWait: the backoff-reset fix --------------------------------

struct CountingPolicy {
  static constexpr bool kParks = false;
  int pauses = 0;
  int resets = 0;
  void pause() noexcept { ++pauses; }
  void wait_while_equal(const std::atomic<std::uint32_t>&,
                        std::uint32_t) noexcept {
    ++pauses;
  }
  void reset() noexcept { ++resets; }
  static void notify_one(std::atomic<std::uint32_t>&) noexcept {}
  static void notify_all(std::atomic<std::uint32_t>&) noexcept {}
};
static_assert(WaitPolicy<CountingPolicy>);

TEST(EpisodeWait, RearmsExactlyOnObservedStateChange) {
  CountingPolicy pol;
  EpisodeWait<CountingPolicy> ep(pol);

  ep.observe_and_pause(7);  // first observation: NO reset
  ep.observe_and_pause(7);  // same state: still the same episode
  ep.observe_and_pause(7);
  EXPECT_EQ(pol.resets, 0);
  EXPECT_EQ(pol.pauses, 3);

  ep.observe_and_pause(8);  // state moved: new episode, fresh schedule
  EXPECT_EQ(pol.resets, 1);
  ep.observe_and_pause(8);
  EXPECT_EQ(pol.resets, 1);
  ep.observe_and_pause(7);  // moved again (even back to an old value)
  EXPECT_EQ(pol.resets, 2);
  EXPECT_EQ(pol.pauses, 6);
}

// ---- queue locks: exclusion, distinct tickets, FIFO handoff ------------

/// N threads × M critical sections around one unguarded sequence counter:
/// every section must observe a DISTINCT ticket, and the merged set must
/// be exactly 0..N*M-1 (mutual exclusion, no lost updates). TSan covers
/// the handoff edges when run under -DKRS_SANITIZE=thread.
template <typename Lock>
void distinct_tickets(unsigned nthreads, int per_thread) {
  Lock lk;
  std::uint64_t seq = 0;  // guarded by lk only
  std::vector<std::vector<std::uint64_t>> seen(nthreads);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned w = 0; w < nthreads; ++w) {
    threads.emplace_back([&, w] {
      seen[w].reserve(static_cast<std::size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        typename Lock::Scoped g(lk);
        seen[w].push_back(seq++);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(nthreads) * per_thread);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(McsLock, DistinctTickets) {
  for (unsigned n : {2u, 4u, 8u}) distinct_tickets<McsLock>(n, 2000);
}

TEST(ClhLock, DistinctTickets) {
  for (unsigned n : {2u, 4u, 8u}) distinct_tickets<ClhLock>(n, 2000);
}

TEST(ParkingLockTest, DistinctTicketsFutex) {
  for (unsigned n : {2u, 4u, 8u}) distinct_tickets<ParkingLock>(n, 2000);
}

/// Deterministic FIFO: the main thread HOLDS the lock, and thread i+1 is
/// spawned only after contended_acquires() proves thread i has enqueued
/// behind the held lock — so the queue order is exactly spawn order, and
/// the handoff order must match it.
TEST(McsLock, FifoHandoffUnderStagger) {
  for (unsigned nthreads : {2u, 4u, 8u}) {
    McsLock lk;
    McsLock::Node main_node;
    lk.lock(main_node);

    std::mutex order_mu;
    std::vector<unsigned> order;
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned i = 1; i <= nthreads; ++i) {
      threads.emplace_back([&, i] {
        McsLock::Node n;
        lk.lock(n);
        {
          std::lock_guard<std::mutex> g(order_mu);
          order.push_back(i);
        }
        lk.unlock(n);
      });
      while (lk.contended_acquires() < i) std::this_thread::yield();
    }
    lk.unlock(main_node);
    for (auto& t : threads) t.join();

    ASSERT_EQ(order.size(), nthreads);
    for (unsigned i = 0; i < nthreads; ++i) EXPECT_EQ(order[i], i + 1);
  }
}

TEST(ClhLock, FifoHandoffUnderStagger) {
  for (unsigned nthreads : {2u, 4u, 8u}) {
    ClhLock lk;
    ClhLock::Handle h = lk.make_handle();
    lk.lock(h);

    std::mutex order_mu;
    std::vector<unsigned> order;
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned i = 1; i <= nthreads; ++i) {
      threads.emplace_back([&, i] {
        ClhLock::Scoped g(lk);
        std::lock_guard<std::mutex> og(order_mu);
        order.push_back(i);
      });
      while (lk.contended_acquires() < i) std::this_thread::yield();
    }
    lk.unlock(h);
    for (auto& t : threads) t.join();

    ASSERT_EQ(order.size(), nthreads);
    for (unsigned i = 0; i < nthreads; ++i) EXPECT_EQ(order[i], i + 1);
  }
}

// ---- the parking mutex, oversubscribed (real futex path) ---------------

TEST(ParkingLockTest, OversubscribedConservation) {
  // 8 workers ≫ this host's cores in CI: contended waiters actually park
  // (on Linux: real futex syscalls — no hooks installed here) and every
  // increment must still land.
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 20'000;
  ParkingLock lk;
  std::uint64_t counter = 0;  // guarded by lk only

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ParkingLock::Scoped g(lk);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- the sense-reversing barrier ---------------------------------------

template <typename Policy>
void barrier_rounds(unsigned nthreads, int rounds) {
  BasicSenseBarrier<Policy> bar(nthreads);
  std::vector<std::uint64_t> slot(nthreads, 0);  // one writer each
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned me = 0; me < nthreads; ++me) {
    threads.emplace_back([&, me] {
      bool sense = false;  // callers start false; the barrier flips it
      for (int r = 0; r < rounds; ++r) {
        ++slot[me];
        bar.arrive_and_wait(sense);
        if (me == 0) {
          for (unsigned j = 0; j < nthreads; ++j) {
            if (slot[j] != static_cast<std::uint64_t>(r) + 1) {
              bad.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        bar.arrive_and_wait(sense);  // hold everyone until the check ran
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SenseBarrierTest, PhasesSpinYield) {
  barrier_rounds<SpinYieldWait>(4, 200);
}

TEST(SenseBarrierTest, PhasesFutexParked) {
  barrier_rounds<FutexWait>(4, 200);
}

// ---- LockBackend as an RmwBackend substrate ----------------------------

template <typename Lock>
void lock_backend_ops() {
  LockBackend<Lock> b;
  typename LockBackend<Lock>::Cell c(b, 5);
  EXPECT_EQ(b.fetch_add(c, 3), 5u);
  EXPECT_EQ(b.exchange(c, 100), 8u);
  Word expected = 99;
  EXPECT_FALSE(b.compare_exchange(c, expected, 1));
  EXPECT_EQ(expected, 100u);
  EXPECT_TRUE(b.compare_exchange(c, expected, 1));
  EXPECT_EQ(b.load(c), 1u);
  b.store(c, 42);
  EXPECT_EQ(b.fetch_or(c, 1), 42u);
  EXPECT_EQ(b.load(c), 43u);
}

TEST(LockBackendTest, OpsUnderEveryLock) {
  lock_backend_ops<McsLock>();
  lock_backend_ops<ClhLock>();
  lock_backend_ops<ParkingLock>();
  lock_backend_ops<BasicParkingLock<SpinWait>>();
}

TEST(LockBackendTest, ConcurrentFetchAddConserves) {
  LockBackend<McsLock> b;
  LockBackend<McsLock>::Cell c(b, 0);
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) b.fetch_add(c, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(b.load(c), static_cast<Word>(kThreads) * kPerThread);
}

}  // namespace
