// NEGATIVE compile test — this translation unit must NOT build.
//
// It feeds the §5.1 law checker (core/law_checks.hpp) a combining table
// with one typo'd entry: load followed by load forwarding a *swap* instead
// of a load. lss_table_sound() re-derives the table from the LssOp algebra
// in constexpr context, so the static_assert below has to fire. CTest
// builds this target and expects the build to fail (WILL_FAIL); if it ever
// compiles, the law checker has lost its teeth.
#include "core/law_checks.hpp"

namespace {

using namespace krs::core;
using namespace krs::core::laws;

constexpr LssTable kTypoTable = [] {
  LssTable t = kLssOrderPreservingTable;
  t[0][0] = {LssKind::kSwap};  // the typo: load+load is a load
  return t;
}();

static_assert(lss_table_sound(kTypoTable, /*reversible=*/false),
              "intentional: a corrupted combining table must not pass");

}  // namespace

int main() { return 0; }
