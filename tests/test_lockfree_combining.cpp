// The lock-free combining tree (runtime/lock_free_combining_tree.hpp):
// the same serializability invariants the blocking tree is held to
// (distinct tickets, conserved sums, per-thread monotonicity) at 2/4/8
// threads, the CombiningCounter concept contract shared with the blocking
// tree, the instrumented happens-before edges, and a deterministic
// race_explorer model of the protocol's deposit/distribute handshake.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "analysis/instrument.hpp"
#include "analysis/race_detector.hpp"
#include "runtime/combining_concept.hpp"
#include "runtime/combining_tree.hpp"
#include "runtime/coordination.hpp"
#include "runtime/lock_free_combining_tree.hpp"
#include "verify/race_explorer.hpp"

namespace {

using namespace krs::runtime;

// Both trees satisfy the shared concept; either can serve every templated
// consumer (combining barrier, benches, examples).
static_assert(CombiningCounter<LockFreeCombiningTree<long>>);
static_assert(CombiningCounter<BlockingCombiningTree<long>>);

// The instrumentation policy must add no per-object state.
static_assert(
    sizeof(LockFreeCombiningTree<long, std::plus<long>,
                                 krs::analysis::NoInstrument>) ==
    sizeof(LockFreeCombiningTree<long, std::plus<long>,
                                 krs::analysis::GlobalInstrument>));

TEST(LockFreeCombiningTree, SingleThreadSequence) {
  LockFreeCombiningTree<long> tree(4, 100);
  EXPECT_EQ(tree.fetch_and_op(0, 5), 100);
  EXPECT_EQ(tree.fetch_and_op(1, 7), 105);
  EXPECT_EQ(tree.fetch_and_op(3, 1), 112);
  EXPECT_EQ(tree.read(), 113);
  EXPECT_EQ(tree.read_unsynchronized(), 113);
  EXPECT_EQ(tree.width(), 4u);
}

TEST(LockFreeCombiningTree, ConcurrentIncrementsGiveDistinctTickets) {
  for (const unsigned nt : {2u, 4u, 8u}) {
    LockFreeCombiningTree<long> tree(8, 0);
    constexpr unsigned kPer = 300;
    std::vector<std::vector<long>> got(nt);
    {
      std::vector<std::jthread> ts;
      for (unsigned slot = 0; slot < nt; ++slot) {
        ts.emplace_back([&, slot] {
          for (unsigned i = 0; i < kPer; ++i)
            got[slot].push_back(tree.fetch_and_op(slot, 1));
        });
      }
    }
    std::set<long> all;
    for (const auto& v : got) {
      // Per-thread tickets strictly increase (M2.3 at the tree level).
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
      all.insert(v.begin(), v.end());
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(nt) * kPer);
    EXPECT_EQ(*all.begin(), 0);
    EXPECT_EQ(*all.rbegin(), static_cast<long>(nt * kPer) - 1);
    EXPECT_EQ(tree.read_unsynchronized(), static_cast<long>(nt * kPer));
  }
}

TEST(LockFreeCombiningTree, ArbitraryAddendsConserveSum) {
  for (const unsigned nt : {2u, 4u, 8u}) {
    LockFreeCombiningTree<long> tree(8, 0);
    constexpr unsigned kPer = 200;
    std::atomic<long> expected{0};
    {
      std::vector<std::jthread> ts;
      for (unsigned slot = 0; slot < nt; ++slot) {
        ts.emplace_back([&, slot] {
          long local = 0;
          for (unsigned i = 0; i < kPer; ++i) {
            const long v = static_cast<long>((slot * kPer + i) % 17 + 1);
            tree.fetch_and_op(slot, v);
            local += v;
          }
          expected.fetch_add(local);
        });
      }
    }
    EXPECT_EQ(tree.read(), expected.load());
  }
}

TEST(LockFreeCombiningTree, TwoThreadsPerLeafShareCorrectly) {
  // Slots 0 and 1 share the root leaf — the most combining-prone shape.
  LockFreeCombiningTree<long> tree(2, 0);
  constexpr unsigned kPer = 500;
  {
    std::jthread a([&] {
      for (unsigned i = 0; i < kPer; ++i) tree.fetch_and_op(0, 1);
    });
    std::jthread b([&] {
      for (unsigned i = 0; i < kPer; ++i) tree.fetch_and_op(1, 1);
    });
  }
  EXPECT_EQ(tree.read(), 2 * static_cast<long>(kPer));
}

TEST(LockFreeCombiningTree, ReadSnapshotsWhileContended) {
  // read() must return monotonically non-decreasing snapshots while eight
  // incrementers are in flight (it locks only the root word, never a node).
  LockFreeCombiningTree<long> tree(8, 0);
  constexpr unsigned kPer = 400;
  std::atomic<bool> torn{false};
  {
    std::vector<std::jthread> ts;
    for (unsigned slot = 0; slot < 8; ++slot) {
      ts.emplace_back([&, slot] {
        for (unsigned i = 0; i < kPer; ++i) tree.fetch_and_op(slot, 1);
      });
    }
    ts.emplace_back([&] {
      long last = 0;
      for (unsigned i = 0; i < 500; ++i) {
        const long v = tree.read();
        if (v < last) torn = true;
        last = v;
      }
    });
  }
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(tree.read_unsynchronized(), 8L * kPer);
}

TEST(LockFreeCombiningTree, NonCommutativeOpKeepsSerialOrderPerNode) {
  // f(x) = x·3 + addend is associative over function composition but not
  // commutative in its effects; the tree must still serialize: the final
  // value equals SOME serial order of all ops, and with addend 0 and
  // multiplier 1 encoded per-op we can at least assert conservation of
  // op count via a plus-tree cross-check. Here: max-tree — idempotent,
  // order-insensitive result, exercises a non-plus Op through every phase.
  struct MaxOp {
    long operator()(long a, long b) const { return a > b ? a : b; }
  };
  LockFreeCombiningTree<long, MaxOp> tree(4, 0);
  {
    std::vector<std::jthread> ts;
    for (unsigned slot = 0; slot < 4; ++slot) {
      ts.emplace_back([&, slot] {
        for (unsigned i = 1; i <= 300; ++i) {
          tree.fetch_and_op(slot, static_cast<long>(slot * 1000 + i));
        }
      });
    }
  }
  EXPECT_EQ(tree.read(), 3300);  // max over every deposited operand
}

// --- the combining-counter barrier over either tree --------------------------

template <typename Tree>
void run_barrier_phases(unsigned nt) {
  BasicCombiningBarrier<Tree> barrier(nt);
  constexpr int kPhases = 100;
  std::vector<int> counters(kPhases, 0);
  std::atomic<bool> torn{false};
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < nt; ++t) {
      ts.emplace_back([&, t] {
        for (int ph = 0; ph < kPhases; ++ph) {
          __atomic_fetch_add(&counters[ph], 1, __ATOMIC_RELAXED);
          barrier.arrive_and_wait(t);
          if (counters[ph] != static_cast<int>(nt)) torn = true;
        }
      });
    }
  }
  EXPECT_FALSE(torn.load());
}

TEST(CombiningBarrier, PhasesAlignedOverLockFreeTree) {
  run_barrier_phases<LockFreeCombiningTree<long>>(4);
}

TEST(CombiningBarrier, PhasesAlignedOverBlockingTree) {
  run_barrier_phases<BlockingCombiningTree<long>>(4);
}

// --- instrumented happens-before edges ---------------------------------------

using krs::analysis::ForkHandle;
using krs::analysis::GlobalInstrument;

TEST(LockFreeCombiningTreeAnalysis, TemporallySeparatedOpsAreOrdered) {
  // Both fork edges are snapshotted BEFORE either thread runs, so the only
  // detector-visible ordering between t0's payload write and t1's read is
  // the tree's own entry-acquire/exit-release edge. The atomic flag gives
  // real-time separation without telling the detector anything.
  krs::analysis::RaceDetector det;
  krs::analysis::ScopedDetector guard(det);
  LockFreeCombiningTree<long, std::plus<long>, GlobalInstrument> tree(4, 0);
  std::atomic<int> payload{0};
  std::atomic<bool> done{false};

  ForkHandle f0;
  ForkHandle f1;
  std::thread t0([&] {
    f0.adopt();
    payload.store(7, std::memory_order_relaxed);
    krs::analysis::shadow_write(&payload, KRS_SITE);
    tree.fetch_and_op(0, 1);  // exit releases t0's history into the tree
    done.store(true, std::memory_order_release);
  });
  std::thread t1([&] {
    f1.adopt();
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    tree.fetch_and_op(1, 1);  // entry acquires the tree's history
    krs::analysis::shadow_read(&payload, KRS_SITE);
  });
  t0.join();
  f0.join();
  t1.join();
  f1.join();

  EXPECT_EQ(tree.read_unsynchronized(), 2);
  EXPECT_TRUE(det.clean()) << det.races()[0].to_string();
}

TEST(LockFreeCombiningTreeAnalysis, WithoutTheTreeEdgeTheSameShapeRaces) {
  // Control experiment: identical structure, no tree operations — the
  // detector must flag it, proving the clean verdict above came from the
  // tree's edge and not from some accidental ordering.
  krs::analysis::RaceDetector det;
  krs::analysis::ScopedDetector guard(det);
  std::atomic<int> payload{0};
  std::atomic<bool> done{false};

  ForkHandle f0;
  ForkHandle f1;
  std::thread t0([&] {
    f0.adopt();
    payload.store(7, std::memory_order_relaxed);
    krs::analysis::shadow_write(&payload, KRS_SITE);
    done.store(true, std::memory_order_release);
  });
  std::thread t1([&] {
    f1.adopt();
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    krs::analysis::shadow_read(&payload, KRS_SITE);
  });
  t0.join();
  f0.join();
  t1.join();
  f1.join();

  EXPECT_EQ(det.race_count(), 1u);
}

// --- deterministic race_explorer model of the node handshake -----------------

using krs::verify::EAcquire;
using krs::verify::ERead;
using krs::verify::ERelease;
using krs::verify::EventProgram;
using krs::verify::EWrite;
using krs::verify::explore_races;

TEST(LockFreeCombiningTreeModel, NodeHandshakeIsRaceFreeUnderAllSchedules) {
  // Abstract model of one combine at one node. Var 0 = second_value slot,
  // var 1 = result slot; lock 0 = the node's status word, whose CAS
  // transitions carry the release/acquire edges. The first (thread 0)
  // reads the deposit and writes the reply; the second (thread 1) deposits
  // then picks the reply up. Every edge is mediated by the status word —
  // no schedule may report a race.
  EventProgram prog;
  prog.threads = {
      // first: combine (acquire status, read deposit) → distribute
      // (write result, release status)
      {EAcquire{0}, ERead{0}, EWrite{1}, ERelease{0}},
      // second: deposit (write operand, release status) → await
      // (acquire status, read result)
      {EAcquire{0}, EWrite{0}, ERelease{0}, EAcquire{0}, ERead{1},
       ERelease{0}},
  };
  const auto res = explore_races(prog);
  EXPECT_GT(res.schedules, 0u);
  EXPECT_TRUE(res.never_racy())
      << res.racy_schedules << " of " << res.schedules << " schedules racy";
}

TEST(LockFreeCombiningTreeModel, DepositWithoutStatusEdgeAlwaysRaces) {
  // Drop the status-word edges entirely: the second deposits and reads
  // the reply with no synchronization. With no release/acquire pair there
  // is no cross-thread happens-before edge at all, so the detector must
  // flag EVERY schedule (the defining property over lockset or sampling
  // detectors — the race is visible even in schedules where the accesses
  // did not physically collide). Note the second may not touch lock 0
  // even once: a single trailing release would order a schedule where it
  // runs entirely first, and that schedule would then be clean.
  EventProgram prog;
  prog.threads = {
      {EAcquire{0}, ERead{0}, EWrite{1}, ERelease{0}},
      {EWrite{0}, ERead{1}},  // naked deposit + naked reply pickup
  };
  const auto res = explore_races(prog);
  EXPECT_GT(res.schedules, 0u);
  EXPECT_TRUE(res.always_racy())
      << res.racy_schedules << " of " << res.schedules << " schedules racy";
}

}  // namespace
