// End-to-end machine tests: the full combining multiprocessor (processors,
// Omega network, memory modules) against the paper's correctness criteria,
// for several RMW families and combining policies, verified by the
// Lemma 4.1 / Theorem 4.2 checker after every run.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "core/any_rmw.hpp"
#include "core/moebius.hpp"
#include "core/fetch_theta.hpp"
#include "core/full_empty.hpp"
#include "core/load_store_swap.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs;
using namespace krs::core;
using sim::Machine;
using sim::MachineConfig;

template <Rmw M>
using SourceVec = std::vector<std::unique_ptr<proc::TrafficSource<M>>>;

// --- single-request sanity ------------------------------------------------

TEST(Machine, SingleRequestRoundTrip) {
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 3;
  SourceVec<FetchAdd> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    std::deque<workload::ScriptedSource<FetchAdd>::Item> items;
    if (p == 3) items.push_back({0, 13, FetchAdd(5)});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchAdd>>(std::move(items)));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(1000));
  ASSERT_EQ(m.completed().size(), 1u);
  EXPECT_EQ(m.completed()[0].reply, 0u);
  EXPECT_EQ(m.value_at(13), 5u);
  // Round trip: k hops in, memory latency, k hops back, plus queueing.
  const auto lat = m.completed()[0].completed - m.completed()[0].issued;
  EXPECT_GE(lat, 2u * cfg.log2_procs + cfg.mem_cfg.latency);
  const auto res = verify::check_machine(m, 0);
  EXPECT_TRUE(res.ok) << res.error;
}

// --- the hot-spot fetch-and-add experiment --------------------------------

struct HotSpotCase {
  unsigned log2_procs;
  net::CombinePolicy policy;
  std::uint64_t per_proc;
};

class MachineHotSpot : public ::testing::TestWithParam<HotSpotCase> {};

TEST_P(MachineHotSpot, AllFetchAddsToOneCellAreSerializable) {
  const auto c = GetParam();
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = c.log2_procs;
  cfg.switch_cfg.policy = c.policy;
  const std::uint32_t n = 1u << c.log2_procs;
  SourceVec<FetchAdd> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
        7, c.per_proc, [](util::Xoshiro256&) { return FetchAdd(1); },
        1000 + p));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(200000));
  const std::uint64_t total = static_cast<std::uint64_t>(n) * c.per_proc;
  ASSERT_EQ(m.completed().size(), total);
  // fetch-and-add(1) replies must be a permutation of 0..total-1 — each
  // processor got a distinct ticket (the basis of Ultracomputer
  // coordination).
  std::set<Word> replies;
  for (const auto& op : m.completed()) replies.insert(op.reply);
  EXPECT_EQ(replies.size(), total);
  EXPECT_EQ(*replies.begin(), 0u);
  EXPECT_EQ(*replies.rbegin(), total - 1);
  EXPECT_EQ(m.value_at(7), total);
  const auto res = verify::check_machine(m, 0);
  EXPECT_TRUE(res.ok) << res.error;
  if (c.policy == net::CombinePolicy::kNone) {
    EXPECT_EQ(m.stats().combines, 0u);
  } else {
    EXPECT_GT(m.stats().combines, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MachineHotSpot,
    ::testing::Values(HotSpotCase{2, net::CombinePolicy::kNone, 8},
                      HotSpotCase{2, net::CombinePolicy::kPairwise, 8},
                      HotSpotCase{2, net::CombinePolicy::kUnlimited, 8},
                      HotSpotCase{4, net::CombinePolicy::kNone, 16},
                      HotSpotCase{4, net::CombinePolicy::kPairwise, 16},
                      HotSpotCase{4, net::CombinePolicy::kUnlimited, 16},
                      HotSpotCase{5, net::CombinePolicy::kUnlimited, 32}));

TEST(Machine, CombiningBeatsNoCombiningOnPureHotSpot) {
  auto run_with = [](net::CombinePolicy policy) {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 4;
    cfg.switch_cfg.policy = policy;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 16; ++p) {
      src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
          3, 64, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    EXPECT_TRUE(verify::check_machine(m, 0).ok);
    return m.stats().cycles;
  };
  const auto combining = run_with(net::CombinePolicy::kUnlimited);
  const auto baseline = run_with(net::CombinePolicy::kNone);
  // Without combining, one module serializes all 1024 ops (>= 1024 cycles);
  // combining collapses the tree and finishes far sooner.
  EXPECT_LT(combining * 2, baseline);
}

// --- randomized workloads across families, checker-verified ---------------

template <Rmw M>
void run_random_and_check(MachineConfig<M> cfg,
                          std::function<M(util::Xoshiro256&)> factory,
                          double hot_fraction, std::uint64_t per_proc,
                          std::uint64_t seed,
                          const typename M::value_type& initial = {}) {
  const std::uint32_t n = 1u << cfg.log2_procs;
  cfg.initial_value = initial;
  SourceVec<M> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    typename workload::HotSpotSource<M>::Params params;
    params.total = per_proc;
    params.hot_fraction = hot_fraction;
    params.hot_addr = 5;
    params.addr_space = 256;
    src.push_back(std::make_unique<workload::HotSpotSource<M>>(
        params, factory, seed * 977 + p));
  }
  Machine<M> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(2000000));
  ASSERT_EQ(m.completed().size(), static_cast<std::uint64_t>(n) * per_proc);
  const auto res = verify::check_machine(m, initial);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.locations_checked, 0u);
}

class MachineRandomSeeds : public ::testing::TestWithParam<int> {};

TEST_P(MachineRandomSeeds, FetchAddHotSpotMixVerifies) {
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 3;
  run_random_and_check<FetchAdd>(
      cfg, [](util::Xoshiro256& r) { return FetchAdd(r.below(100)); }, 0.3, 40,
      GetParam());
}

TEST_P(MachineRandomSeeds, LoadStoreSwapMixVerifies) {
  MachineConfig<LssOp> cfg;
  cfg.log2_procs = 3;
  run_random_and_check<LssOp>(
      cfg,
      [](util::Xoshiro256& r) {
        switch (r.below(3)) {
          case 0:
            return LssOp::load();
          case 1:
            return LssOp::store(r.below(1000));
          default:
            return LssOp::swap(r.below(1000));
        }
      },
      0.4, 40, GetParam());
}

TEST_P(MachineRandomSeeds, FullEmptyMixVerifies) {
  MachineConfig<FEOp> cfg;
  cfg.log2_procs = 3;
  run_random_and_check<FEOp>(
      cfg,
      [](util::Xoshiro256& r) {
        switch (r.below(6)) {
          case 0:
            return FEOp::load();
          case 1:
            return FEOp::load_and_clear();
          case 2:
            return FEOp::store_and_set(r.below(100));
          case 3:
            return FEOp::store_if_clear_and_set(r.below(100));
          case 4:
            return FEOp::store_and_clear(r.below(100));
          default:
            return FEOp::store_if_clear_and_clear(r.below(100));
        }
      },
      0.4, 30, GetParam(), FEWord{0, false});
}

TEST_P(MachineRandomSeeds, OrderReversalVerifies) {
  // §5.1 reversal enabled machine-wide: random load/store/swap traffic must
  // still serialize — the checker understands reversed combine events.
  MachineConfig<LssOp> cfg;
  cfg.log2_procs = 3;
  cfg.switch_cfg.allow_order_reversal = true;
  run_random_and_check<LssOp>(
      cfg,
      [](util::Xoshiro256& r) {
        switch (r.below(3)) {
          case 0:
            return LssOp::load();
          case 1:
            return LssOp::store(r.below(1000));
          default:
            return LssOp::swap(r.below(1000));
        }
      },
      0.5, 40, GetParam());
}

TEST_P(MachineRandomSeeds, SmallQueuesStillVerify) {
  // Tiny queues force stalls and back-pressure; correctness must hold.
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 4;
  cfg.switch_cfg.queue_capacity = 1;
  cfg.mem_cfg.queue_capacity = 1;
  run_random_and_check<FetchAdd>(
      cfg, [](util::Xoshiro256& r) { return FetchAdd(r.below(10)); }, 0.5, 25,
      GetParam());
}

TEST_P(MachineRandomSeeds, PairwisePolicyVerifies) {
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 4;
  cfg.switch_cfg.policy = net::CombinePolicy::kPairwise;
  run_random_and_check<FetchAdd>(
      cfg, [](util::Xoshiro256& r) { return FetchAdd(r.below(10)); }, 0.6, 25,
      GetParam());
}

TEST_P(MachineRandomSeeds, TinyWaitBufferVerifies) {
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 4;
  cfg.switch_cfg.wait_buffer_capacity = 2;
  run_random_and_check<FetchAdd>(
      cfg, [](util::Xoshiro256& r) { return FetchAdd(r.below(10)); }, 0.6, 25,
      GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineRandomSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- §5.4 arithmetic through the machine (exact rational cells) --------------

TEST(Machine, MoebiusArithmeticVerifies) {
  // fetch-and-{add,sub,mul} requests (division left out to keep every
  // serial execution well-defined) with exact Rational memory cells:
  // "assignments of the form x ← x θ c will be executed atomically, while
  // still being combined in the network."
  using krs::core::Moebius;
  MachineConfig<Moebius> cfg;
  cfg.log2_procs = 3;
  cfg.initial_value = krs::util::Rational(1);
  SourceVec<Moebius> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    workload::HotSpotSource<Moebius>::Params params;
    params.total = 25;
    params.hot_fraction = 0.5;
    params.hot_addr = 5;
    params.addr_space = 64;
    src.push_back(std::make_unique<workload::HotSpotSource<Moebius>>(
        params,
        [](util::Xoshiro256& r) {
          const auto k = static_cast<std::int64_t>(1 + r.below(5));
          switch (r.below(3)) {
            case 0:
              return Moebius::fetch_add(k);
            case 1:
              return Moebius::fetch_sub(k);
            default:
              return Moebius::fetch_mul(k);
          }
        },
        600 + p));
  }
  Machine<Moebius> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(2000000));
  ASSERT_EQ(m.completed().size(), 200u);
  const auto res = verify::check_machine(m, krs::util::Rational(1));
  EXPECT_TRUE(res.ok) << res.error;
  // Overflow-declined combinations are fine; some combining should still
  // have happened on the hot cell.
  EXPECT_GT(m.stats().combines, 0u);
}

// --- M2.3: same-processor same-location order ------------------------------

TEST(Machine, SameProcessorSameLocationOrderPreserved) {
  MachineConfig<LssOp> cfg;
  cfg.log2_procs = 2;
  cfg.window = 4;  // both requests in flight simultaneously
  SourceVec<LssOp> src;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::deque<workload::ScriptedSource<LssOp>::Item> items;
    if (p == 0) {
      items.push_back({0, 9, LssOp::store(1)});
      items.push_back({0, 9, LssOp::store(2)});
      items.push_back({0, 9, LssOp::load()});
    }
    src.push_back(
        std::make_unique<workload::ScriptedSource<LssOp>>(std::move(items)));
  }
  Machine<LssOp> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10000));
  // The load (issued last) must observe the second store.
  ASSERT_EQ(m.completed().size(), 3u);
  for (const auto& op : m.completed()) {
    if (op.id.seq == 2) {
      EXPECT_EQ(op.reply, 2u);
    }
  }
  EXPECT_EQ(m.value_at(9), 2u);
  EXPECT_TRUE(verify::check_machine(m, 0).ok);
}

// --- traffic accounting ---------------------------------------------------------

TEST(Machine, CombiningReducesLinkTraffic) {
  auto run_with = [](net::CombinePolicy policy) {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 4;
    cfg.switch_cfg.policy = policy;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 16; ++p) {
      src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
          3, 32, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    EXPECT_TRUE(verify::check_machine(m, 0).ok);
    return m.stats();
  };
  const auto base = run_with(net::CombinePolicy::kNone);
  const auto comb = run_with(net::CombinePolicy::kUnlimited);
  // Without combining, every op occupies a queue slot at every stage:
  // 512 ops x 4 stages.
  EXPECT_EQ(base.request_messages, 512u * 4u);
  EXPECT_EQ(base.request_bytes, 512u * 4u * (16 + sizeof(core::Word)));
  // Combining absorbs most hot requests before they traverse all stages.
  EXPECT_LT(comb.request_messages, base.request_messages / 2);
  EXPECT_LT(comb.request_bytes, base.request_bytes / 2);
}

// --- §6: the combining pattern IS the physical tree ---------------------------

TEST(Machine, SimultaneousBurstCombinesAsBinaryTree) {
  // All n processors issue one fetch-and-add to one cell in the same
  // cycle. The requests meet pairwise at every stage: stage s performs
  // 2^(k-1-s) combines, memory sees ONE request, and the combine count is
  // n − 1 — §6's "physical tree which is a subgraph of the network".
  const unsigned k = 4;
  const std::uint32_t n = 1u << k;
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = k;
  cfg.window = 1;
  SourceVec<FetchAdd> src;
  for (std::uint32_t p = 0; p < n; ++p) {
    std::deque<workload::ScriptedSource<FetchAdd>::Item> items;
    items.push_back({0, 7, FetchAdd(1)});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FetchAdd>>(std::move(items)));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10000));
  EXPECT_EQ(m.stats().combines, n - 1);
  std::uint64_t services = 0;
  for (std::uint32_t i = 0; i < n; ++i) services += m.module(i).stats().rmw_ops;
  EXPECT_EQ(services, 1u);
  // Per-stage tree shape: stage s contributes 2^(k-1-s) combines.
  for (unsigned s = 0; s < k; ++s) {
    std::uint64_t stage_combines = 0;
    for (std::uint32_t row = 0; row < n / 2; ++row) {
      stage_combines += m.switch_stats(s, row).combines;
    }
    EXPECT_EQ(stage_combines, 1u << (k - 1 - s)) << "stage " << s;
  }
  EXPECT_EQ(m.value_at(7), n);
  EXPECT_TRUE(verify::check_machine(m, 0).ok);
}

// --- determinism ---------------------------------------------------------------

TEST(Machine, BitIdenticalAcrossRuns) {
  // Same seeds, same config ⇒ identical cycle counts, combine logs, and
  // reply streams (the property every experiment in bench/ relies on).
  auto run_once = [] {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 4;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 16; ++p) {
      workload::HotSpotSource<FetchAdd>::Params params;
      params.total = 60;
      params.hot_fraction = 0.4;
      params.addr_space = 256;
      src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
          params, [](util::Xoshiro256& r) { return FetchAdd(r.below(9)); },
          500 + p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    return m;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.stats().combines, b.stats().combines);
  ASSERT_EQ(a.completed().size(), b.completed().size());
  for (std::size_t i = 0; i < a.completed().size(); ++i) {
    EXPECT_EQ(a.completed()[i].id, b.completed()[i].id);
    EXPECT_EQ(a.completed()[i].reply, b.completed()[i].reply);
    EXPECT_EQ(a.completed()[i].completed, b.completed()[i].completed);
  }
  ASSERT_EQ(a.combine_log().size(), b.combine_log().size());
  for (std::size_t i = 0; i < a.combine_log().size(); ++i) {
    EXPECT_EQ(a.combine_log()[i].representative,
              b.combine_log()[i].representative);
    EXPECT_EQ(a.combine_log()[i].absorbed, b.combine_log()[i].absorbed);
  }
}

// --- conservation law ---------------------------------------------------------

TEST(Machine, RequestsAreCombinedOrServicedExactlyOnce) {
  // Every issued request either gets absorbed by exactly one combine event
  // or is serviced at a module: ops = combines + memory services. This is
  // the counting skeleton behind Lemma 4.1's expansion argument.
  MachineConfig<FetchAdd> cfg;
  cfg.log2_procs = 4;
  SourceVec<FetchAdd> src;
  for (std::uint32_t p = 0; p < 16; ++p) {
    workload::HotSpotSource<FetchAdd>::Params params;
    params.total = 100;
    params.hot_fraction = 0.7;
    params.addr_space = 128;
    src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
        params, [](util::Xoshiro256& r) { return FetchAdd(r.below(5)); },
        40 + p));
  }
  Machine<FetchAdd> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(1000000));
  std::uint64_t services = 0;
  for (std::uint32_t i = 0; i < m.processors(); ++i) {
    services += m.module(i).stats().rmw_ops;
  }
  EXPECT_EQ(m.completed().size(), m.stats().combines + services);
  EXPECT_EQ(m.combine_log().size(), m.stats().combines);
}

// --- §7 bus-FIFO combining at the memory module -------------------------------

TEST(Machine, ModuleQueueCombiningAloneIsCorrectAndFaster) {
  auto run_with = [](bool module_combining) {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 4;
    cfg.switch_cfg.policy = net::CombinePolicy::kNone;
    cfg.mem_cfg.combine_in_queue = module_combining;
    // A slow interleaved bank (4 cycles/service): arrivals pile up in the
    // FIFO, which is where §7's queue combining earns its keep.
    cfg.mem_cfg.service_interval = 4;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 16; ++p) {
      src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
          3, 64, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    EXPECT_EQ(m.value_at(3), 1024u);
    EXPECT_TRUE(verify::check_machine(m, 0).ok);
    return std::pair{m.stats().cycles, m.module(3).stats().rmw_ops};
  };
  const auto [cycles_on, services_on] = run_with(true);
  const auto [cycles_off, services_off] = run_with(false);
  // Queue combining folds hot requests: fewer bank services, fewer cycles.
  EXPECT_EQ(services_off, 1024u);
  EXPECT_LT(services_on, services_off);
  EXPECT_LT(cycles_on, cycles_off);
}

// --- fences (§3.2, the RP3 fence instruction) -------------------------------

TEST(Machine, FenceDrainsBeforeNextIssue) {
  // P0 stores to two DIFFERENT locations with a fence between: the fence
  // guarantees the first store is performed before the second is issued,
  // so any observer reading location B == 1 afterwards must also see A == 1
  // (the repair of the Collier example).
  MachineConfig<LssOp> cfg;
  cfg.log2_procs = 2;
  cfg.window = 8;
  SourceVec<LssOp> src;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::deque<workload::ScriptedSource<LssOp>::Item> items;
    if (p == 0) {
      items.push_back({0, 100, LssOp::store(1)});
      items.push_back({0, 200, LssOp::store(1), /*fence_before=*/true});
    }
    src.push_back(
        std::make_unique<workload::ScriptedSource<LssOp>>(std::move(items)));
  }
  Machine<LssOp> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10000));
  ASSERT_EQ(m.completed().size(), 2u);
  // With the fence, the store to 100 must have completed strictly before
  // the store to 200 was issued.
  const auto& a = m.completed()[0];
  const auto& b = m.completed()[1];
  const auto& first = a.addr == 100 ? a : b;
  const auto& second = a.addr == 100 ? b : a;
  EXPECT_LE(first.completed, second.issued);
  EXPECT_TRUE(verify::check_machine(m, 0).ok);
}

// --- heterogeneous operation streams (AnyRmw) --------------------------------

TEST(Machine, MixedFamiliesVerifyWithPartialCombining) {
  using krs::core::AnyRmw;
  using krs::core::BoolVec;
  MachineConfig<AnyRmw> cfg;
  cfg.log2_procs = 3;
  SourceVec<AnyRmw> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    workload::HotSpotSource<AnyRmw>::Params params;
    params.total = 50;
    params.hot_fraction = 0.5;
    params.hot_addr = 5;
    params.addr_space = 64;
    src.push_back(std::make_unique<workload::HotSpotSource<AnyRmw>>(
        params,
        [](util::Xoshiro256& r) -> AnyRmw {
          switch (r.below(5)) {
            case 0:
              return AnyRmw(FetchAdd(r.below(100)));
            case 1:
              return AnyRmw(LssOp::load());
            case 2:
              return AnyRmw(LssOp::swap(r.below(100)));
            case 3:
              return AnyRmw(BoolVec::masked_store(r.next(), 0xFFu));
            default:
              return AnyRmw(krs::core::FetchOr(r.below(16)));
          }
        },
        300 + p));
  }
  Machine<AnyRmw> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(2000000));
  ASSERT_EQ(m.completed().size(), 400u);
  // Same-family requests may combine; cross-family ones are declined —
  // either way the run must serialize.
  const auto res = verify::check_machine(m, 0);
  EXPECT_TRUE(res.ok) << res.error;
}

// --- processor-side baseline ----------------------------------------------

TEST(Machine, ProcessorSideRmwIsAtomicButSlower) {
  auto run_style = [](bool processor_side) {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 3;
    cfg.processor_side_rmw = processor_side;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 8; ++p) {
      src.push_back(std::make_unique<workload::SingleAddressSource<FetchAdd>>(
          3, 16, [](util::Xoshiro256&) { return FetchAdd(1); }, p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    EXPECT_EQ(m.value_at(3), 128u);  // atomicity: no lost updates
    std::set<Word> replies;
    for (const auto& op : m.completed()) replies.insert(op.reply);
    EXPECT_EQ(replies.size(), 128u);  // distinct tickets
    return m.stats().cycles;
  };
  const auto memory_side = run_style(false);
  const auto processor_side = run_style(true);
  EXPECT_LT(memory_side, processor_side);
}

// --- pipelining ------------------------------------------------------------

TEST(Machine, WindowPipeliningOverlapsRequests) {
  auto run_window = [](unsigned window) {
    MachineConfig<FetchAdd> cfg;
    cfg.log2_procs = 3;
    cfg.window = window;
    SourceVec<FetchAdd> src;
    for (std::uint32_t p = 0; p < 8; ++p) {
      typename workload::HotSpotSource<FetchAdd>::Params params;
      params.total = 64;
      params.hot_fraction = 0.0;
      params.addr_space = 4096;
      src.push_back(std::make_unique<workload::HotSpotSource<FetchAdd>>(
          params, [](util::Xoshiro256&) { return FetchAdd(1); }, 31 + p));
    }
    Machine<FetchAdd> m(cfg, std::move(src));
    EXPECT_TRUE(m.run(1000000));
    EXPECT_TRUE(verify::check_machine(m, 0).ok);
    return m.stats().cycles;
  };
  // Deep pipelining of memory accesses masks latency (§3.2).
  EXPECT_LT(run_window(8), run_window(1));
}

}  // namespace
