// The flat combiner (runtime/flat_combining.hpp) and the topology-aware
// slot layout (runtime/topology.hpp):
//
//  * deterministic single-caller waves pinning the batch semantics: one
//    publication scan serves every pending op with the §3 decombination
//    chain (each reply = the running prior), across mixed mapping
//    families — flat combining needs no compose, so nothing declines;
//  * the combiner-handoff path driven DETERMINISTICALLY: a test
//    Instrument hook publishes into an already-scanned slot mid-pass, so
//    the pass cap fires with work still pending and the handoff counter
//    must tick;
//  * concurrent hotspot-counter invariants (distinct tickets, per-thread
//    monotonicity, exact final sum) at 2/4/8 threads, plus quiesced
//    stats accounting;
//  * instrumented HB edges through FlatCombiningBackend (the same
//    temporally-separated-ops experiment the other backends pass);
//  * a race_explorer model of the publication handshake (claim → publish
//    → serve → pickup), with a control proving the clean verdict comes
//    from the modeled seq-word edges;
//  * SlotMap/CpuTopology: permutation validation, sysfs cluster discovery
//    against a fabricated hierarchy, flat fallback, and an end-to-end
//    proof via the tree's deterministic wave that a topology permutation
//    changes which slots fold at a shared leaf;
//  * the relaxed MappingCombiningTree width precondition: odd widths
//    round up internally and stay correct.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/instrument.hpp"
#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/lock_free_combining_tree.hpp"
#include "runtime/topology.hpp"
#include "verify/race_explorer.hpp"

namespace krs::runtime {

// Test-only peer: drives the private publication protocol piecewise so
// the handoff branch (pass cap hit with work still pending) is reachable
// deterministically — under free-running threads that window depends on a
// publication landing mid-scan.
struct FlatCombinerTestPeer {
  template <typename FC>
  static void publish(FC& fc, unsigned slot, krs::core::AnyRmw op) {
    auto& s = fc.slots_[slot];
    std::uint32_t expect = FC::kIdle;
    ASSERT_TRUE(s.seq.compare_exchange_strong(expect, FC::kClaimed,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed));
    s.op = std::move(op);
    s.seq.store(FC::kPending, std::memory_order_release);
  }
  template <typename FC>
  static bool lock(FC& fc) {
    return fc.try_lock();
  }
  template <typename FC>
  static void unlock(FC& fc) {
    fc.unlock();
  }
  /// One combiner tenure (lock must be held).
  template <typename FC>
  static void combine(FC& fc) {
    fc.combine(nullptr);
  }
  /// The owner's reply pickup.
  template <typename FC>
  static krs::core::Word take(FC& fc, unsigned slot) {
    auto& s = fc.slots_[slot];
    EXPECT_EQ(s.seq.load(std::memory_order_acquire),
              static_cast<std::uint32_t>(FC::kDone));
    const krs::core::Word r = s.result;
    s.seq.store(FC::kIdle, std::memory_order_release);
    return r;
  }
  template <typename FC>
  static bool pending(const FC& fc, unsigned slot) {
    return fc.slots_[slot].seq.load(std::memory_order_acquire) ==
           static_cast<std::uint32_t>(FC::kPending);
  }
};

}  // namespace krs::runtime

namespace {

using namespace krs::runtime;
using krs::analysis::GlobalInstrument;
using krs::analysis::NoInstrument;
using krs::core::AnyRmw;
using krs::core::FetchAdd;
using krs::core::FetchOr;
using krs::core::LssOp;
using krs::core::Word;
using Peer = FlatCombinerTestPeer;

// The instrumentation policy must add no per-object state.
static_assert(sizeof(FlatCombiner<NoInstrument>) ==
              sizeof(FlatCombiner<GlobalInstrument>));

// --- deterministic wave semantics -------------------------------------------

using Fc = FlatCombiner<NoInstrument>;

TEST(FlatCombinerWave, OnePassBatchesAndDecombines) {
  // Four adds in one wave: the combiner reads the value once, serves the
  // slots in index order, writes the value once; each reply is the
  // running prior — the decombination chain ⟨id2, f(val)⟩ computed flat.
  Fc fc(4, 100);
  std::vector<Fc::WaveOp> wave;
  for (unsigned s = 0; s < 4; ++s) {
    wave.push_back({s, AnyRmw(FetchAdd(1))});
  }
  const auto priors = fc.run_wave(wave);
  EXPECT_EQ(priors, (std::vector<Word>{100, 101, 102, 103}));
  EXPECT_EQ(fc.read(), 104u);
  const FlatCombinerStats st = fc.stats();
  EXPECT_EQ(st.ops, 4u);
  EXPECT_EQ(st.takeovers, 1u);  // one election for the whole batch
  EXPECT_EQ(st.passes, 2u);     // serving pass + the empty closing pass
  EXPECT_EQ(st.handoffs, 0u);
  EXPECT_EQ(st.combined, 0u);  // single caller: nobody was served by a peer
}

TEST(FlatCombinerWave, MixedFamiliesEqualSerialFold) {
  // Flat combining never composes mappings, so a mixed-family batch is
  // simply the serial fold in slot order — no decline path exists (§7's
  // cost shows up in the tree, not here).
  Fc fc(4, 10);
  const std::vector<Fc::WaveOp> wave{
      {0, AnyRmw(FetchAdd(5))},      // 10 → 15, prior 10
      {1, AnyRmw(FetchOr(0xF0))},    // 15 → 0xFF, prior 15
      {2, AnyRmw(LssOp::swap(3))},   // 0xFF → 3, prior 0xFF
      {3, AnyRmw(FetchAdd(1))},      // 3 → 4, prior 3
  };
  const auto priors = fc.run_wave(wave);
  EXPECT_EQ(priors, (std::vector<Word>{10, 15, 0xFF, 3}));
  EXPECT_EQ(fc.read(), 4u);
}

TEST(FlatCombinerWave, SparseWaveServesOnlyPublishedSlots) {
  Fc fc(8, 0);
  const std::vector<Fc::WaveOp> wave{
      {2, AnyRmw(FetchAdd(7))},
      {5, AnyRmw(FetchAdd(11))},
  };
  const auto priors = fc.run_wave(wave);
  EXPECT_EQ(priors, (std::vector<Word>{0, 7}));
  EXPECT_EQ(fc.read(), 18u);
  EXPECT_EQ(fc.stats().ops, 2u);
}

// --- the handoff path, deterministically -------------------------------------

// Instrument policy whose shared_load/shared_store hooks run test
// callbacks: the only way to land a publication into an ALREADY-SCANNED
// slot mid-pass from a single thread (the pass cap's handoff branch), or
// to observe the combiner's state at the instant a reply publishes.
struct HookInstrument {
  static constexpr bool enabled = false;
  static inline std::function<void(const void*)> on_shared_load;
  static inline std::function<void(const void*)> on_shared_store;
  static void acquire(const void*) {}
  static void release(const void*) {}
  static void contended_rmw(const void*, krs::analysis::AccessSite = {}) {}
  static void shared_load(const void* addr, krs::analysis::AccessSite = {}) {
    if (on_shared_load) on_shared_load(addr);
  }
  static void shared_store(const void* addr, krs::analysis::AccessSite = {}) {
    if (on_shared_store) on_shared_store(addr);
  }
};

TEST(FlatCombinerHandoff, PassCapWithPendingWorkCountsAHandoff) {
  using HFc = FlatCombiner<HookInstrument>;
  HFc fc(2, 0, /*max_passes=*/1);
  // While the combiner scans slot 1's seq, publish into slot 0 — already
  // passed over, so it stays pending when the single allowed pass ends.
  bool injected = false;
  HookInstrument::on_shared_load = [&](const void* addr) {
    if (!injected && addr == fc.slot_address(1)) {
      injected = true;
      Peer::publish(fc, 0, AnyRmw(FetchAdd(5)));
    }
  };
  Peer::publish(fc, 1, AnyRmw(FetchAdd(3)));
  ASSERT_TRUE(Peer::lock(fc));
  Peer::combine(fc);  // pass 1 serves slot 1; cap forces exit with 0 pending
  Peer::unlock(fc);
  HookInstrument::on_shared_load = nullptr;

  EXPECT_TRUE(injected);
  EXPECT_TRUE(Peer::pending(fc, 0));  // the handed-off op
  FlatCombinerStats st = fc.stats();
  EXPECT_EQ(st.takeovers, 1u);
  EXPECT_EQ(st.passes, 1u);
  EXPECT_EQ(st.handoffs, 1u);
  EXPECT_EQ(Peer::take(fc, 1), 0u);

  // The next tenure (whoever wins the lock) drains the leftover — handoff
  // rotates the combiner, it never strands work.
  ASSERT_TRUE(Peer::lock(fc));
  Peer::combine(fc);
  Peer::unlock(fc);
  EXPECT_EQ(Peer::take(fc, 0), 3u);  // served after slot 1's add
  EXPECT_EQ(fc.read(), 8u);
  st = fc.stats();
  EXPECT_EQ(st.takeovers, 2u);
  EXPECT_EQ(st.handoffs, 1u);
}

// --- reply ordering: the value word is batched before replies publish --------

TEST(FlatCombinerReplyOrder, ValueStoredBeforeAnyReplyPublishes) {
  // Regression: serve_pass once flipped each slot to kDone during the
  // scan and wrote the batched value only afterwards, so a waiter whose
  // reply had landed could read() a value missing its own op (breaking
  // the rw-lock's reader-increment-then-writer-check handshake). The
  // shared_store hook fires immediately before each kDone reply, so the
  // value word must ALREADY hold the full batch there.
  using HFc = FlatCombiner<HookInstrument>;
  HFc fc(2, 0);
  Peer::publish(fc, 0, AnyRmw(FetchAdd(3)));
  Peer::publish(fc, 1, AnyRmw(FetchAdd(5)));
  unsigned replies = 0;
  HookInstrument::on_shared_store = [&](const void*) {
    ++replies;
    EXPECT_EQ(fc.read(), 8u);  // both ops batched in before any reply
  };
  ASSERT_TRUE(Peer::lock(fc));
  Peer::combine(fc);
  Peer::unlock(fc);
  HookInstrument::on_shared_store = nullptr;

  EXPECT_EQ(replies, 2u);  // one reply publication per served slot
  EXPECT_EQ(Peer::take(fc, 0), 0u);
  EXPECT_EQ(Peer::take(fc, 1), 3u);
  EXPECT_EQ(fc.read(), 8u);
}

// --- concurrent hotspot invariants -------------------------------------------

TEST(FlatCombinerConcurrent, HotspotTicketsDistinctMonotoneComplete) {
  for (const unsigned nt : {2u, 4u, 8u}) {
    FlatCombiner<> fc(nt);
    constexpr unsigned kPer = 200;
    std::vector<std::vector<Word>> got(nt);
    {
      std::vector<std::jthread> ts;
      for (unsigned t = 0; t < nt; ++t) {
        ts.emplace_back([&, t] {
          for (unsigned i = 0; i < kPer; ++i) {
            got[t].push_back(fc.fetch_rmw(t, AnyRmw(FetchAdd(1))));
          }
        });
      }
    }
    std::set<Word> all;
    for (const auto& v : got) {
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
      all.insert(v.begin(), v.end());
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(nt) * kPer);
    EXPECT_EQ(*all.begin(), 0u);
    EXPECT_EQ(*all.rbegin(), static_cast<Word>(nt) * kPer - 1);
    EXPECT_EQ(fc.read(), static_cast<Word>(nt) * kPer);
    // Quiesced accounting: every op completed; peers can only ABSORB ops,
    // and each election runs at least one scan pass.
    const FlatCombinerStats st = fc.stats();
    EXPECT_EQ(st.ops, static_cast<std::uint64_t>(nt) * kPer);
    EXPECT_LE(st.combined, st.ops);
    EXPECT_GE(st.takeovers, 1u);
    EXPECT_GE(st.passes, st.takeovers);
    EXPECT_LE(st.handoffs, st.passes);
  }
}

TEST(FlatCombinerConcurrent, ReadAfterCompletedOpSeesOwnOp) {
  // The concurrent face of FlatCombinerReplyOrder: a monotone counter
  // only grows, so a load() issued after a completed fetch_add must
  // return MORE than that op's prior — a stale value_ (reply published
  // before the batch write-back) shows up as read() == prior. This is
  // exactly the window that let coordination.hpp's rw-lock admit a
  // writer alongside an already-admitted reader.
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPer = 300;
  FlatCombiner<> fc(kThreads);
  std::atomic<unsigned> stale{0};
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (unsigned i = 0; i < kPer; ++i) {
          const Word prior = fc.fetch_rmw(t, AnyRmw(FetchAdd(1)));
          if (fc.read() <= prior) stale.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(stale.load(), 0u);
  EXPECT_EQ(fc.read(), static_cast<Word>(kThreads) * kPer);
}

TEST(FlatCombinerConcurrent, TightPassCapStillCompletesEveryOp) {
  // max_passes = 1 forces a handoff whenever work outlives one scan: the
  // anti-starvation path under real contention. Aliased slots (4 threads,
  // 2 slots) exercise the claim CAS arbitration too.
  FlatCombiner<> fc(2, 0, /*max_passes=*/1);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPer = 150;
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (unsigned i = 0; i < kPer; ++i) {
          (void)fc.fetch_rmw(t, AnyRmw(FetchAdd(1)));
        }
      });
    }
  }
  EXPECT_EQ(fc.read(), static_cast<Word>(kThreads) * kPer);
  const FlatCombinerStats st = fc.stats();
  EXPECT_EQ(st.ops, static_cast<std::uint64_t>(kThreads) * kPer);
  // Each tenure runs exactly one pass at this cap, and one pass serves at
  // most slots() ops.
  EXPECT_EQ(st.passes, st.takeovers);
  EXPECT_GE(st.takeovers * fc.slots(), st.ops);
}

TEST(FlatCombinerConcurrent, SerializedUpdatesLinearizeWithBatches) {
  // compare_exchange-style updates take the combiner lock instead of
  // publishing; interleaved with batched adds the final value must still
  // account exactly.
  FlatCombiner<> fc(4, 0);
  constexpr unsigned kPer = 200;
  {
    std::jthread adder([&] {
      for (unsigned i = 0; i < kPer; ++i) {
        (void)fc.fetch_rmw(0, AnyRmw(FetchAdd(1)));
      }
    });
    std::jthread bumper([&] {
      for (unsigned i = 0; i < kPer; ++i) {
        (void)fc.update_at_combiner([](Word v) { return v + 10; });
      }
    });
  }
  EXPECT_EQ(fc.read(), static_cast<Word>(kPer) * 11);
  const FlatCombinerStats st = fc.stats();
  EXPECT_EQ(st.ops, kPer);
  EXPECT_EQ(st.serialized_updates, kPer);
}

// --- instrumented HB edges through the backend seam --------------------------

using krs::analysis::ForkHandle;

TEST(FlatCombinerAnalysis, BackendOrdersTemporallySeparatedOps) {
  // The same experiment the atomic/combining backends pass: the only
  // detector-visible ordering between t0's payload write and t1's read is
  // the combiner's entry-acquire / exit-release edge inside fetch_rmw.
  krs::analysis::RaceDetector det;
  krs::analysis::ScopedDetector guard(det);
  BasicFlatCombiningBackend<GlobalInstrument> backend(4);
  BasicFlatCombiningBackend<GlobalInstrument>::Cell cell(backend, 0);
  std::atomic<int> payload{0};
  std::atomic<bool> done{false};

  ForkHandle f0;
  ForkHandle f1;
  std::thread t0([&] {
    f0.adopt();
    payload.store(7, std::memory_order_relaxed);
    krs::analysis::shadow_write(&payload, KRS_SITE);
    backend.fetch_add(cell, 1);
    done.store(true, std::memory_order_release);
  });
  std::thread t1([&] {
    f1.adopt();
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    backend.fetch_add(cell, 1);
    krs::analysis::shadow_read(&payload, KRS_SITE);
  });
  t0.join();
  f0.join();
  t1.join();
  f1.join();

  EXPECT_EQ(backend.load(cell), 2u);
  EXPECT_TRUE(det.clean()) << det.races()[0].to_string();
}

// --- deterministic model of the publication handshake ------------------------

using krs::verify::EAcquire;
using krs::verify::ERead;
using krs::verify::ERelease;
using krs::verify::EventProgram;
using krs::verify::EWrite;
using krs::verify::explore_races;

TEST(FlatCombineModel, PublicationHandshakeIsRaceFree) {
  // Abstract model of one served publication: var 0 = the slot's op +
  // result payload, var 1 = the value word; lock 0 = the slot's seq word
  // (claim CAS / publish / reply / pickup transitions), lock 1 = the
  // combiner lock. The combiner (thread 0) locks, acquire-reads the
  // pending slot, serves it against the value word, release-replies. The
  // owner (thread 1) claims, writes its op, publishes, then awaits the
  // reply and picks it up. Every cross-thread edge is mediated by the seq
  // word or the combiner lock — no schedule may report a race.
  EventProgram prog;
  prog.threads = {
      // combiner: elect → scan finds kPending → read op → RMW the value →
      // write reply → release kDone → unlock.
      {EAcquire{1}, EAcquire{0}, ERead{0}, ERead{1}, EWrite{1}, EWrite{0},
       ERelease{0}, ERelease{1}},
      // owner: claim (kIdle→kClaimed) → write op → publish kPending;
      // await kDone → read reply → store kIdle.
      {EAcquire{0}, EWrite{0}, ERelease{0}, EAcquire{0}, ERead{0},
       ERelease{0}},
  };
  const auto res = explore_races(prog);
  EXPECT_GT(res.schedules, 0u);
  EXPECT_TRUE(res.never_racy())
      << res.racy_schedules << " of " << res.schedules << " schedules racy";
}

TEST(FlatCombineModel, NakedPublicationAlwaysRaces) {
  // Control: drop the owner's seq-word edges. The naked op write and
  // reply read then race with the combiner on every schedule — proving
  // the clean verdict above comes from the modeled handshake.
  EventProgram prog;
  prog.threads = {
      {EAcquire{1}, EAcquire{0}, ERead{0}, ERead{1}, EWrite{1}, EWrite{0},
       ERelease{0}, ERelease{1}},
      {EWrite{0}, ERead{0}},  // naked publish + naked pickup
  };
  const auto res = explore_races(prog);
  EXPECT_GT(res.schedules, 0u);
  EXPECT_TRUE(res.always_racy())
      << res.racy_schedules << " of " << res.schedules << " schedules racy";
}

// --- SlotMap / topology policies ---------------------------------------------

TEST(TopologyMap, IdentityAndExplicitPermutation) {
  const SlotMap id = SlotMap::identity(4);
  EXPECT_EQ(id.width(), 4u);
  EXPECT_TRUE(id.is_identity());
  for (unsigned s = 0; s < 4; ++s) EXPECT_EQ(id(s), s);

  const SlotMap perm(std::vector<unsigned>{2, 0, 3, 1});
  EXPECT_FALSE(perm.is_identity());
  EXPECT_EQ(perm(0), 2u);
  EXPECT_EQ(perm(1), 0u);
  EXPECT_EQ(perm(2), 3u);
  EXPECT_EQ(perm(3), 1u);
}

TEST(TopologyMap, CpuTopologyFallsBackFlatWithoutSysfs) {
  const CpuTopology topo("/nonexistent/krs-sysfs-root");
  EXPECT_FALSE(topo.discovered());
  EXPECT_EQ(topo.cpus(), 0u);
  EXPECT_TRUE(topo.slot_map(8).is_identity());
}

// Fabricate /sys/devices/system/cpu with 4 CPUs in two INTERLEAVED L2
// clusters {0,2} and {1,3} — the case where the identity layout pairs
// cross-cluster at every leaf and a relayout fixes it.
class FakeSysfs {
 public:
  explicit FakeSysfs(const std::vector<std::string>& shared_lists) {
    namespace fs = std::filesystem;
    root_ = fs::path(testing::TempDir()) /
            ("krs-sysfs-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    for (unsigned cpu = 0; cpu < shared_lists.size(); ++cpu) {
      const fs::path dir =
          root_ / ("cpu" + std::to_string(cpu)) / "cache" / "index2";
      fs::create_directories(dir);
      std::ofstream(dir / "shared_cpu_list") << shared_lists[cpu] << "\n";
    }
  }
  ~FakeSysfs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  static inline unsigned counter_ = 0;
  std::filesystem::path root_;
};

TEST(TopologyMap, CpuTopologyGroupsInterleavedClusters) {
  const FakeSysfs sysfs({"0,2", "1,3", "0,2", "1,3"});
  const CpuTopology topo(sysfs.path());
  ASSERT_TRUE(topo.discovered());
  EXPECT_EQ(topo.cpus(), 4u);
  ASSERT_EQ(topo.clusters().size(), 2u);
  EXPECT_EQ(topo.clusters()[0], (std::vector<unsigned>{0, 2}));
  EXPECT_EQ(topo.clusters()[1], (std::vector<unsigned>{1, 3}));
  // Cluster-major relayout: slots 0 and 2 (cluster one) get internal
  // slots 0 and 1 — a shared leaf; slots 1 and 3 get 2 and 3.
  const SlotMap m = topo.slot_map(4);
  EXPECT_EQ(m(0), 0u);
  EXPECT_EQ(m(2), 1u);
  EXPECT_EQ(m(1), 2u);
  EXPECT_EQ(m(3), 3u);
  // width > ncpus wraps by expected CPU (slot mod ncpus), stably.
  const SlotMap wide = topo.slot_map(8);
  EXPECT_EQ(wide(0), 0u);
  EXPECT_EQ(wide(4), 1u);  // slot 4 → cpu 0 → same cluster, next position
  EXPECT_EQ(wide(2), 2u);
  EXPECT_EQ(wide(6), 3u);
}

TEST(TopologyMap, UniformSysfsFallsBackFlat) {
  // One shared domain (every CPU reports the same sharing set): relayout
  // cannot change any pairing, so the policy degrades to identity.
  const FakeSysfs sysfs({"0-3", "0-3", "0-3", "0-3"});
  const CpuTopology topo(sysfs.path());
  EXPECT_FALSE(topo.discovered());
  // clusters().empty() is the same fallback signal as !discovered(): the
  // degenerate single domain is dropped, while cpus() still sees the host.
  EXPECT_TRUE(topo.clusters().empty());
  EXPECT_EQ(topo.cpus(), 4u);
  EXPECT_TRUE(topo.slot_map(4).is_identity());
}

// --- topology → leaf pairing, proven through the tree ------------------------

TEST(TopologyTree, PermutationChangesWhichSlotsFold) {
  // Identity layout, width 4: slots 0 and 2 sit at DIFFERENT leaves, so a
  // simultaneous wave cannot fold them — two root applications.
  MappingCombiningTree<AnyRmw> flat_tree(SlotMap::identity(4), 0);
  using TreeWave = MappingCombiningTree<AnyRmw>::WaveOp;
  const std::vector<TreeWave> wave{{0, AnyRmw(FetchAdd(1))},
                                   {2, AnyRmw(FetchAdd(1))}};
  (void)flat_tree.run_wave(wave);
  EXPECT_EQ(flat_tree.stats().folds, 0u);
  EXPECT_EQ(flat_tree.stats().root_applies, 2u);

  // The interleaved-cluster permutation maps slots 0 and 2 to adjacent
  // internal slots — one shared leaf, so the same wave folds once and
  // reaches the root once. This is the whole point of the Topology
  // policy: same threads, same ops, one less root transaction.
  MappingCombiningTree<AnyRmw> clustered(
      SlotMap(std::vector<unsigned>{0, 2, 1, 3}), 0);
  (void)clustered.run_wave(wave);
  EXPECT_EQ(clustered.stats().folds, 1u);
  EXPECT_EQ(clustered.stats().root_applies, 1u);
  EXPECT_EQ(clustered.read(), 2u);
}

// --- relaxed width precondition ----------------------------------------------

TEST(TreeWidth, OddWidthsRoundUpAndStayCorrect) {
  MappingCombiningTree<AnyRmw> t3(3, 0);
  EXPECT_EQ(t3.width(), 4u);
  MappingCombiningTree<AnyRmw> t5(5, 0);
  EXPECT_EQ(t5.width(), 8u);
  MappingCombiningTree<AnyRmw> t1(1, 0);
  EXPECT_EQ(t1.width(), 2u);

  for (unsigned s = 0; s < 3; ++s) {
    EXPECT_EQ(t3.fetch_rmw(s, AnyRmw(FetchAdd(1))), s);
  }
  EXPECT_EQ(t3.read(), 3u);
}

TEST(TreeWidth, OddWidthBackendCountsExactly) {
  // CombiningBackend sized to an odd "core count": thread→slot modulo
  // stays at the requested width while the tree rounds internally.
  CombiningBackend backend(3);
  EXPECT_EQ(backend.width(), 3u);
  CombiningBackend::Cell cell(backend, 0);
  constexpr unsigned kThreads = 3;
  constexpr unsigned kPer = 100;
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (unsigned i = 0; i < kPer; ++i) backend.fetch_add(cell, 1);
      });
    }
  }
  EXPECT_EQ(backend.load(cell), static_cast<Word>(kThreads) * kPer);
}

TEST(TreeWidth, TopologyBackendEndToEnd) {
  // The full seam: CpuTopology (fabricated interleaved clusters) → SlotMap
  // → CombiningBackend → counter invariants hold.
  const FakeSysfs sysfs({"0,2", "1,3", "0,2", "1,3"});
  CombiningBackend backend(4, CpuTopology(sysfs.path()));
  CombiningBackend::Cell cell(backend, 0);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPer = 100;
  {
    std::vector<std::jthread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (unsigned i = 0; i < kPer; ++i) backend.fetch_add(cell, 1);
      });
    }
  }
  EXPECT_EQ(backend.load(cell), static_cast<Word>(kThreads) * kPer);
}

}  // namespace
