// §5.4 — Möbius transformations: matrix representation, composition as
// matrix product, all six fetch-and-ψ constructors, overflow-declining
// combination, and division-by-zero handling.
#include <gtest/gtest.h>

#include <vector>

#include "core/moebius.hpp"
#include "util/rng.hpp"

namespace {

using krs::core::Moebius;
using krs::util::Rational;

Rational R(std::int64_t n, std::int64_t d = 1) { return Rational(n, d); }

TEST(Moebius, ConstructorsEvaluate) {
  EXPECT_EQ(Moebius::identity().apply(R(7)), R(7));
  EXPECT_EQ(Moebius::fetch_add(5).apply(R(7)), R(12));
  EXPECT_EQ(Moebius::fetch_sub(5).apply(R(7)), R(2));
  EXPECT_EQ(Moebius::fetch_mul(5).apply(R(7)), R(35));
  EXPECT_EQ(Moebius::fetch_div(5).apply(R(7)), R(7, 5));
  EXPECT_EQ(Moebius::fetch_rsub(5).apply(R(7)), R(-2));
  EXPECT_EQ(Moebius::fetch_rdiv(5).apply(R(7)), R(5, 7));
  EXPECT_EQ(Moebius::store(5).apply(R(7)), R(5));
}

TEST(Moebius, ComposeMatchesSequentialApplication) {
  krs::util::Xoshiro256 rng(47);
  auto rnd_small = [&]() {
    return static_cast<std::int64_t>(rng.below(41)) - 20;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = rnd_small(), b = rnd_small();
    std::int64_t c = rnd_small(), d = rnd_small();
    if (c == 0 && d == 0) d = 1;
    const std::int64_t e = rnd_small(), f2 = rnd_small();
    std::int64_t g2 = rnd_small(), h = rnd_small();
    if (g2 == 0 && h == 0) h = 1;
    const Moebius f(a, b, c, d), g(e, f2, g2, h);
    const Rational x = R(rnd_small(), 1 + static_cast<std::int64_t>(rng.below(5)));
    const auto fg = try_compose(f, g);
    if (!fg) continue;  // degenerate product: switch declines — always legal
    const Rational lhs = fg->apply(x);
    const Rational rhs = g.apply(f.apply(x));
    // Wherever the serial execution is defined, the combined execution is
    // defined and agrees. (The converse fails by design: the composed map
    // analytically continues through intermediate poles — the numerical
    // caveat §5.4 warns about for division.)
    if (rhs.ok()) {
      EXPECT_TRUE(lhs.ok());
      EXPECT_EQ(lhs, rhs) << f.to_string() << " ∘ " << g.to_string() << " at "
                          << x.to_string();
    }
  }
}

TEST(Moebius, Associativity) {
  krs::util::Xoshiro256 rng(53);
  auto rnd = [&]() { return static_cast<std::int64_t>(rng.below(21)) - 10; };
  for (int i = 0; i < 1000; ++i) {
    auto mk = [&]() {
      std::int64_t a = rnd(), b = rnd(), c = rnd(), d = rnd();
      if (c == 0 && d == 0) d = 1;
      return Moebius(a, b, c, d);
    };
    const Moebius a = mk(), b = mk(), c = mk();
    const auto ab = try_compose(a, b);
    const auto bc = try_compose(b, c);
    if (!ab || !bc) continue;  // degenerate product: decline is legal
    const auto lhs = try_compose(*ab, c);
    const auto rhs = try_compose(a, *bc);
    if (!lhs || !rhs) continue;
    EXPECT_EQ(*lhs, *rhs);
  }
}

TEST(Moebius, MatrixProductOrientation) {
  // compose(f, g) ("f then g") must have matrix M(g)·M(f).
  const Moebius f(1, 2, 3, 4), g(5, 6, 7, 8);
  const Moebius fg = compose(f, g);
  // M(g)·M(f) = |5 6| |1 2| = |5+18 10+24| = |23 34|
  //             |7 8| |3 4|   |7+24 14+32|   |31 46|
  EXPECT_EQ(fg, Moebius(23, 34, 31, 46));
}

TEST(Moebius, ProjectiveNormalization) {
  // Scalar multiples denote the same function and compare equal.
  EXPECT_EQ(Moebius(2, 4, 6, 8), Moebius(1, 2, 3, 4));
  EXPECT_EQ(Moebius(-1, -2, -3, -4), Moebius(1, 2, 3, 4));
}

TEST(Moebius, DivisionByZeroYieldsInvalid) {
  // x → 1/x at x = 0.
  EXPECT_FALSE(Moebius::fetch_rdiv(1).apply(R(0)).ok());
  // Singularity at x = -d/c.
  const Moebius m(1, 0, 1, 2);  // x/(x+2)
  EXPECT_FALSE(m.apply(R(-2)).ok());
  EXPECT_TRUE(m.apply(R(-1)).ok());
}

TEST(Moebius, OverflowDeclinesCombination) {
  const std::int64_t big = std::int64_t{1} << 40;
  const Moebius f = Moebius::fetch_mul(big);
  const Moebius g = Moebius::fetch_mul(big);
  // big * big overflows after normalization cannot save it.
  EXPECT_FALSE(try_compose(f, g).has_value());
  // Small compositions still succeed.
  EXPECT_TRUE(try_compose(Moebius::fetch_mul(2), Moebius::fetch_mul(3))
                  .has_value());
}

TEST(Moebius, GcdNormalizationExtendsRange) {
  // mul(2^40) then div(2^40) normalizes back to the identity instead of
  // overflowing.
  const std::int64_t big = std::int64_t{1} << 40;
  const auto r = try_compose(Moebius::fetch_mul(big), Moebius::fetch_div(big));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Moebius::identity());
}

TEST(Moebius, ChainEqualsSerialArithmetic) {
  // Mixed fetch-and-ψ chains: the combined Möbius map equals the serial
  // execution of x := x ψ c assignments (§5.4's headline claim).
  krs::util::Xoshiro256 rng(59);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(8));
    Rational x = R(1 + static_cast<std::int64_t>(rng.below(50)));
    const Rational x0 = x;
    Moebius combined = Moebius::identity();
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      const auto k = 1 + static_cast<std::int64_t>(rng.below(9));
      Moebius f = Moebius::identity();
      switch (rng.below(6)) {
        case 0: f = Moebius::fetch_add(k); break;
        case 1: f = Moebius::fetch_sub(k); break;
        case 2: f = Moebius::fetch_mul(k); break;
        case 3: f = Moebius::fetch_div(k); break;
        case 4: f = Moebius::fetch_rsub(k); break;
        default: f = Moebius::fetch_rdiv(k); break;
      }
      const auto c = try_compose(combined, f);
      if (!c) {
        ok = false;  // switch would decline; nothing to check
        break;
      }
      combined = *c;
      x = f.apply(x);
      if (!x.ok()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      EXPECT_EQ(combined.apply(x0), x);
    }
  }
}

TEST(Moebius, EncodedSizeIsFourWords) {
  EXPECT_EQ(Moebius::identity().encoded_size_bytes(), 4 * sizeof(std::int64_t));
}

}  // namespace
