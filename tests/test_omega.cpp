// Omega topology: routing correctness (§4.1's unique-path assumptions),
// shuffle/unshuffle inverses, and path reconstruction.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/omega.hpp"

namespace {

using krs::net::OmegaTopology;

TEST(Omega, ShuffleUnshuffleAreInverse) {
  for (unsigned k = 1; k <= 6; ++k) {
    const OmegaTopology t(k);
    for (std::uint32_t w = 0; w < t.ports(); ++w) {
      EXPECT_EQ(t.unshuffle(t.shuffle(w)), w);
      EXPECT_EQ(t.shuffle(t.unshuffle(w)), w);
    }
  }
}

TEST(Omega, EveryPairRoutesToDestination) {
  // route() KRS_ENSURES the final wire equals dst; this sweep exercises it
  // for every (src, dst) pair at several sizes.
  for (unsigned k = 1; k <= 6; ++k) {
    const OmegaTopology t(k);
    for (std::uint32_t s = 0; s < t.ports(); ++s) {
      for (std::uint32_t d = 0; d < t.ports(); ++d) {
        std::vector<OmegaTopology::Hop> hops;
        t.route(s, d, std::back_inserter(hops));
        EXPECT_EQ(hops.size(), t.stages());
      }
    }
  }
}

TEST(Omega, UniquePathProperty) {
  // Requests from distinct sources to one destination converge: the set of
  // (stage, row) pairs touched forms a tree rooted at the destination —
  // at the last stage everyone is at the same switch.
  const OmegaTopology t(4);
  const std::uint32_t dst = 11;
  std::set<std::uint32_t> last_rows;
  for (std::uint32_t s = 0; s < t.ports(); ++s) {
    std::vector<OmegaTopology::Hop> hops;
    t.route(s, dst, std::back_inserter(hops));
    last_rows.insert(hops.back().row);
    EXPECT_EQ(hops.back().out_port, dst & 1u);
  }
  EXPECT_EQ(last_rows.size(), 1u);
  EXPECT_EQ(*last_rows.begin(), dst >> 1);
}

TEST(Omega, ConvergenceIsBinaryTree) {
  // Counting distinct switches per stage on the way to one destination:
  // stage s is reached by 2^(k-1-s) distinct switches (a complete binary
  // tree of combining opportunities, the virtual tree of §6).
  const unsigned k = 5;
  const OmegaTopology t(k);
  const std::uint32_t dst = 19;
  std::vector<std::set<std::uint32_t>> rows(k);
  for (std::uint32_t s = 0; s < t.ports(); ++s) {
    std::vector<OmegaTopology::Hop> hops;
    t.route(s, dst, std::back_inserter(hops));
    for (unsigned st = 0; st < k; ++st) rows[st].insert(hops[st].row);
  }
  for (unsigned st = 0; st < k; ++st) {
    EXPECT_EQ(rows[st].size(), 1u << (k - 1 - st)) << "stage " << st;
  }
}

TEST(Omega, UpstreamWireInvertsStageInput) {
  const OmegaTopology t(4);
  for (std::uint32_t wire = 0; wire < t.ports(); ++wire) {
    const auto in = t.stage_input(wire);
    EXPECT_EQ(t.upstream_wire(in.row, in.port), wire);
  }
}

TEST(Omega, StagesAndCounts) {
  const OmegaTopology t(3);
  EXPECT_EQ(t.stages(), 3u);
  EXPECT_EQ(t.ports(), 8u);
  EXPECT_EQ(t.switches_per_stage(), 4u);
}

}  // namespace
