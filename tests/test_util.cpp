// Unit tests for the utility layer: RNG determinism and distribution
// sanity, exact rational arithmetic with overflow detection, bit helpers,
// streaming statistics, and the CSP channel.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/channel.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using krs::util::Channel;
using krs::util::LogHistogram;
using krs::util::Rational;
using krs::util::RunningStats;
using krs::util::SplitMix64;
using krs::util::Xoshiro256;

TEST(Rng, SplitMixKnownValues) {
  // Reference values for seed 0 from the published splitmix64 algorithm.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 g(7);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto x = g.below(kBound);
    ASSERT_LT(x, kBound);
    ++counts[x];
  }
  for (auto c : counts) {
    EXPECT_GT(c, kDraws / static_cast<int>(kBound) * 8 / 10);
    EXPECT_LT(c, kDraws / static_cast<int>(kBound) * 12 / 10);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 g(1);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Bits, Log2AndPow2) {
  using krs::util::ceil_pow2;
  using krs::util::is_pow2;
  using krs::util::log2_ceil;
  using krs::util::log2_floor;
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(63), 5u);
  EXPECT_EQ(log2_floor(64), 6u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(63), 6u);
  EXPECT_EQ(log2_ceil(64), 6u);
  EXPECT_EQ(log2_ceil(65), 7u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(65), 128u);
}

TEST(Rational, NormalizationAndEquality) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 5), Rational(0));
  EXPECT_FALSE(Rational(1, 0).ok());
  // Invalid compares unequal to everything, like NaN.
  EXPECT_FALSE(Rational::invalid() == Rational::invalid());
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
  EXPECT_EQ((half / Rational(0)).ok(), false);
}

TEST(Rational, IntegerInterface) {
  EXPECT_TRUE(Rational(6, 3).is_integer());
  EXPECT_EQ(Rational(6, 3).as_integer(), 2);
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ(Rational(4).to_string(), "4");
}

TEST(Rational, OverflowDetected) {
  const Rational big(INT64_MAX);
  EXPECT_FALSE((big * big).ok());
  EXPECT_FALSE((big + Rational(1)).ok());
  // Once invalid, everything stays invalid.
  EXPECT_FALSE(((big * big) + Rational(1)).ok());
}

TEST(Rational, GcdReductionDelaysOverflow) {
  // (2^40/3) * (3/2^40) must not overflow despite large cross products.
  const Rational a(std::int64_t{1} << 40, 3);
  const Rational b(3, std::int64_t{1} << 40);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Stats, RunningStatsBasic) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Xoshiro256 g(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, LogHistogramQuantiles) {
  LogHistogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 499.5, 1e-9);
  // The 50% quantile of 0..999 lies in the bucket covering 512.
  EXPECT_GE(h.quantile_bound(0.5), 500u);
}

TEST(Stats, LogHistogramMergeIsBucketExact) {
  // Splitting a sample stream across accumulators and merging must equal
  // one accumulator that saw everything — the property the parallel
  // engine's per-worker stats reduction relies on.
  LogHistogram all;
  LogHistogram even;
  LogHistogram odd;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    all.add(i * 3);
    (i % 2 == 0 ? even : odd).add(i * 3);
  }
  even.merge(odd);
  EXPECT_EQ(even.count(), all.count());
  EXPECT_NEAR(even.mean(), all.mean(), 1e-9);
  for (unsigned b = 0; b < LogHistogram::kBuckets; ++b) {
    EXPECT_EQ(even.bucket(b), all.bucket(b)) << "bucket " << b;
  }
  EXPECT_EQ(even.quantile_bound(0.9), all.quantile_bound(0.9));

  // Merging an empty histogram is the identity.
  LogHistogram empty;
  all.merge(empty);
  EXPECT_EQ(all.count(), 1000u);
}

TEST(Stats, LogHistogramPercentileInterpolates) {
  LogHistogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  // One sample: every quantile is that sample's bucket, mid-positioned.
  LogHistogram one;
  one.add(100);  // bucket [64, 127]
  EXPECT_GE(one.percentile(0.0), 64.0);
  EXPECT_LE(one.percentile(1.0), 127.0);

  // 1..100: nearest-rank + mid-sample interpolation is exactly
  // computable by hand. Rank 50 is the 19th of 32 samples in [32, 63]
  // → 32 + (18.5/32)·31; rank 99 is the 36th of 37 in [64, 127]
  // → 64 + (35.5/37)·63.
  LogHistogram h;
  for (std::uint64_t i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.percentile(0.50), 32.0 + (18.5 / 32.0) * 31.0, 1e-9);
  EXPECT_NEAR(h.percentile(0.99), 64.0 + (35.5 / 37.0) * 63.0, 1e-9);
  // Monotone in q; out-of-range q clamps to the extremes.
  double prev = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q " << q;
    prev = v;
  }
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Stats, LogHistogramMergePreservesQuantiles) {
  // The property the traffic harness's per-worker latency reservoirs rely
  // on: because merge() is bucket-exact and percentile() reads only
  // bucket counts, merging N per-worker histograms yields EXACTLY the
  // percentiles of one histogram that saw every sample — no quantile
  // drift from sharding the stream, regardless of how it was split.
  LogHistogram all;
  LogHistogram workers[4];
  krs::util::Xoshiro256 rng(77);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const std::uint64_t sample = rng.below(1 << 20);
    all.add(sample);
    workers[rng.below(4)].add(sample);  // uneven split on purpose
  }
  LogHistogram merged;
  for (auto& w : workers) merged.merge(w);
  EXPECT_EQ(merged.count(), all.count());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.percentile(q), all.percentile(q)) << "q " << q;
  }
}

TEST(Channel, SendReceiveOrder) {
  Channel<int> ch(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.send(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ch.receive(), i);
}

TEST(Channel, BlocksUntilCapacityFrees) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(1));
  std::thread t([&] {
    EXPECT_EQ(ch.receive(), 1);
    EXPECT_EQ(ch.receive(), 2);
  });
  EXPECT_TRUE(ch.send(2));  // blocks until the thread drains the first
  t.join();
}

TEST(Channel, CloseWakesReceiversAndFailsSenders) {
  Channel<int> ch(1);
  std::thread t([&] { EXPECT_EQ(ch.receive(), std::nullopt); });
  ch.close();
  t.join();
  EXPECT_FALSE(ch.send(5));
}

TEST(Channel, TryReceive) {
  Channel<int> ch(2);
  EXPECT_EQ(ch.try_receive(), std::nullopt);
  ch.send(9);
  EXPECT_EQ(ch.try_receive(), 9);
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(ch.send(1));
    });
  }
  long sum = 0;
  for (int i = 0; i < kPerProducer * kProducers; ++i) sum += *ch.receive();
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, kPerProducer * kProducers);
}

}  // namespace
