// The sim backend proper: cells as addresses in the cycle-accurate Omega
// machine, RMWs as combinable packets, costs in paper units.
//
//  * run_wave determinism — the same wave sequence produces identical
//    priors AND identical cycle counts at every engine worker count (the
//    parallel engine is bit-identical to the sequential one), which is
//    what makes bench_coordination's sim numbers host-independent;
//  * the §4.2 claim in miniature: a full wave of same-cell fetch-adds
//    combines in the switches (combines > 0) and hands out exactly the
//    tickets 0..N-1;
//  * per-cell and per-backend accounting (ops, latency, stage stalls);
//  * compare_exchange serialization at the module: counted separately,
//    linearized against network traffic, expected-reload semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <set>
#include <vector>

#include "core/any_rmw.hpp"
#include "core/fetch_theta.hpp"
#include "core/load_store_swap.hpp"
#include "runtime/sim_backend.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs::runtime;
using krs::core::AnyRmw;
using krs::core::FetchAdd;
using krs::core::FetchOr;
using krs::core::LssOp;

// Drive kWaves full waves of fetch-add-1 against one cell and return
// (priors in injection order, final machine cycle count).
std::pair<std::vector<Word>, std::uint64_t> add_waves(unsigned engine_workers,
                                                      unsigned kWaves) {
  SimBackend b(
      SimBackendConfig{.log2_procs = 3, .engine_workers = engine_workers});
  SimBackend::Cell cell(b, 0);
  std::vector<Word> priors;
  for (unsigned w = 0; w < kWaves; ++w) {
    std::vector<SimBackend::WaveOp> wave;
    for (std::uint32_t p = 0; p < b.processors(); ++p) {
      wave.push_back({&cell, AnyRmw(FetchAdd(1))});
    }
    const auto replies = b.run_wave(wave);
    priors.insert(priors.end(), replies.begin(), replies.end());
  }
  return {priors, b.stats().cycles};
}

TEST(SimBackend, WaveTicketsAndCombining) {
  SimBackend b(SimBackendConfig{.log2_procs = 3});
  SimBackend::Cell cell(b, 0);
  std::vector<Word> priors;
  for (unsigned w = 0; w < 5; ++w) {
    std::vector<SimBackend::WaveOp> wave(
        8, SimBackend::WaveOp{&cell, AnyRmw(FetchAdd(1))});
    const auto replies = b.run_wave(wave);
    // Each wave's 8 simultaneous adds hand out the next 8 tickets, in
    // some decombination order.
    const std::set<Word> got(replies.begin(), replies.end());
    EXPECT_EQ(got.size(), 8u);
    EXPECT_EQ(*got.begin(), static_cast<Word>(8 * w));
    EXPECT_EQ(*got.rbegin(), static_cast<Word>(8 * w + 7));
    priors.insert(priors.end(), replies.begin(), replies.end());
  }
  EXPECT_EQ(b.load(cell), 40u);

  const SimBackendStats st = b.stats();
  EXPECT_EQ(st.network_ops, 41u);  // 40 adds + the final load
  EXPECT_EQ(st.root_serialized_ops, 0u);
  // Simultaneous same-address packets MUST meet in the switches: this is
  // the §4.2 mechanism the backend exists to measure.
  EXPECT_GT(st.combines, 0u);
  EXPECT_GT(st.cycles_per_op(), 0.0);
  EXPECT_GT(st.mean_latency(), 0.0);
  ASSERT_EQ(st.stage_stalls.size(), 3u);  // one bucket per network stage

  const SimCellStats cs = b.cell_stats(cell);
  EXPECT_EQ(cs.ops, 41u);
  EXPECT_GT(cs.mean_latency(), 0.0);
}

TEST(SimBackend, WaveCostsIdenticalAcrossEngineWorkers) {
  // The acceptance bar: cycles_per_op deterministic across --workers.
  // Identical priors AND identical final cycle counts at 1/2/3/4 engine
  // workers — not statistically close, bit-equal.
  const auto [p1, c1] = add_waves(1, 5);
  for (const unsigned w : {2u, 3u, 4u}) {
    const auto [pw, cw] = add_waves(w, 5);
    EXPECT_EQ(pw, p1) << "priors diverged at engine_workers=" << w;
    EXPECT_EQ(cw, c1) << "cycle count diverged at engine_workers=" << w;
  }
}

TEST(SimBackend, DistinctCellsLandOnDistinctModules) {
  // Sequential allocation interleaves addresses across the n memory
  // banks, so a two-cell wave is conflict-free traffic.
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell a(b, 5);
  SimBackend::Cell c(b, 50);
  EXPECT_NE(a.addr % 4, c.addr % 4);
  std::vector<SimBackend::WaveOp> wave{
      {&a, AnyRmw(FetchAdd(1))},
      {&c, AnyRmw(FetchAdd(1))},
      {&a, AnyRmw(FetchAdd(1))},
      {&c, AnyRmw(FetchAdd(1))},
  };
  const auto replies = b.run_wave(wave);
  EXPECT_EQ(std::set<Word>(replies.begin(), replies.end()),
            (std::set<Word>{5, 6, 50, 51}));
  EXPECT_EQ(b.load(a), 7u);
  EXPECT_EQ(b.load(c), 52u);
}

TEST(SimBackend, MixedFamilyWaveDeclinesButStaysCorrect) {
  // Adds and ors in one wave: cross-family pairs decline in the switches
  // (§7 partial combining) yet the final value decomposes exactly.
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell cell(b, 0);
  std::vector<SimBackend::WaveOp> wave{
      {&cell, AnyRmw(FetchAdd(1))},
      {&cell, AnyRmw(FetchOr(Word{1} << 48))},
      {&cell, AnyRmw(FetchAdd(1))},
      {&cell, AnyRmw(FetchOr(Word{1} << 49))},
  };
  (void)b.run_wave(wave);
  const Word fin = b.load(cell);
  EXPECT_EQ(fin & ((Word{1} << 48) - 1), 2u);
  EXPECT_EQ(fin >> 48, 3u);
}

TEST(SimBackend, CompareExchangeSerializesAtModule) {
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell cell(b, 10);
  Word expect = 11;
  EXPECT_FALSE(b.compare_exchange(cell, expect, 99));
  EXPECT_EQ(expect, 10u);  // reloaded from the module's serial state
  EXPECT_TRUE(b.compare_exchange(cell, expect, 99));
  EXPECT_EQ(b.load(cell), 99u);

  const SimBackendStats st = b.stats();
  EXPECT_EQ(st.root_serialized_ops, 2u);
  EXPECT_EQ(st.network_ops, 1u);  // only the load traveled
  // The serialized path is charged simulated time too — a CAS-heavy
  // phase advances the clock instead of freezing it.
  EXPECT_GE(st.cycles, 2 * (2 * 2 + 1));
}

// --- generator-driven traffic (run_traffic) ----------------------------------

TEST(SimBackend, RunTrafficDrivesGeneratorsDeterministically) {
  // One hot cell, one HotSpotSource per simulated processor: every
  // issued add must land (conservation), every completion must be
  // timed (latency reservoir count == ops), and the whole run — cycle
  // count included — must be bit-identical on a replay with the same
  // seeds, because the machine and the generators are both deterministic.
  const auto run = [] {
    SimBackend b(SimBackendConfig{.log2_procs = 2});
    SimBackend::Cell cell(b, 0);
    std::vector<std::unique_ptr<krs::workload::HotSpotSource<AnyRmw>>> srcs;
    std::vector<krs::proc::TrafficSource<AnyRmw>*> gens;
    for (std::uint32_t p = 0; p < b.processors(); ++p) {
      krs::workload::HotSpotSource<AnyRmw>::Params wp;
      wp.total = 32;
      wp.hot_fraction = 1.0;  // all traffic to the one cell
      wp.addr_space = 1;
      srcs.push_back(std::make_unique<krs::workload::HotSpotSource<AnyRmw>>(
          wp, [](krs::util::Xoshiro256&) { return AnyRmw(FetchAdd(1)); },
          0x5eed + p));
      gens.push_back(srcs.back().get());
    }
    auto result = b.run_traffic(gens);
    return std::make_tuple(result.cycles, result.ops,
                           result.latency.count(),
                           result.latency.percentile(0.5),
                           result.latency.percentile(0.99), b.load(cell));
  };
  const auto first = run();
  EXPECT_EQ(std::get<1>(first), 4u * 32u);       // every op completed
  EXPECT_EQ(std::get<2>(first), 4u * 32u);       // every op timed
  EXPECT_EQ(std::get<5>(first), Word{4} * 32u);  // conservation
  EXPECT_GT(std::get<0>(first), krs::core::Tick{0});
  EXPECT_GT(std::get<3>(first), 0.0);  // through the network: latency ≥ 1
  EXPECT_EQ(run(), first);             // bit-identical replay
}

TEST(SimBackend, RunTrafficClosedLoopSelfLimitsAndFinishes) {
  // Closed-loop sources couple their issue rate to the machine's service
  // time (window 1 per processor + think): the run still terminates with
  // every op issued, completed, and accounted.
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell cell(b, 0);
  std::vector<std::unique_ptr<krs::workload::ClosedLoopSource<AnyRmw>>> srcs;
  std::vector<krs::proc::TrafficSource<AnyRmw>*> gens;
  for (std::uint32_t p = 0; p < b.processors(); ++p) {
    krs::workload::ClosedLoopSource<AnyRmw>::Params wp;
    wp.total = 24;
    wp.clients = 3;
    wp.think_mean = 8.0;
    srcs.push_back(std::make_unique<krs::workload::ClosedLoopSource<AnyRmw>>(
        wp, [](krs::util::Xoshiro256&) { return AnyRmw(FetchAdd(1)); },
        0xc105ed + p));
    gens.push_back(srcs.back().get());
  }
  const auto result = b.run_traffic(gens);
  EXPECT_EQ(result.ops, 4u * 24u);
  EXPECT_EQ(b.load(cell), Word{4} * 24u);
  for (const auto& s : srcs) {
    EXPECT_TRUE(s->finished());
    EXPECT_EQ(s->stats().completed, 24u);
  }
}

TEST(SimBackend, RunTrafficHorizonDrainsInFlightOps) {
  // A cycle budget far below what the offered load needs: the run stops
  // near the horizon, drains whatever was in flight (no lost replies —
  // ops equals the cell's delta), and reports fewer ops than offered.
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell cell(b, 0);
  std::vector<std::unique_ptr<krs::workload::BurstySource<AnyRmw>>> srcs;
  std::vector<krs::proc::TrafficSource<AnyRmw>*> gens;
  for (std::uint32_t p = 0; p < b.processors(); ++p) {
    krs::workload::BurstySource<AnyRmw>::Params wp;
    wp.total = 1u << 20;  // effectively unbounded
    wp.hot_fraction = 1.0;
    wp.addr_space = 1;
    wp.rate = 0.5;
    srcs.push_back(std::make_unique<krs::workload::BurstySource<AnyRmw>>(
        wp, [](krs::util::Xoshiro256&) { return AnyRmw(FetchAdd(1)); },
        0xb0b0 + p));
    gens.push_back(srcs.back().get());
  }
  const auto result = b.run_traffic(gens, /*max_cycles=*/512);
  EXPECT_GT(result.ops, 0u);
  EXPECT_LT(result.ops, std::uint64_t{4} << 20);
  EXPECT_GE(result.cycles, krs::core::Tick{512});
  EXPECT_EQ(b.load(cell), result.ops);  // drained: nothing lost in flight
  EXPECT_EQ(result.latency.count(), result.ops);
}

TEST(SimBackend, ThreadedInjectionMatchesWaveSemantics) {
  // The mailbox path used by live threads (tested at scale in
  // test_backends.cpp): a single-threaded caller still goes through
  // inject(), and the swap chain conserves values end to end.
  SimBackend b(SimBackendConfig{.log2_procs = 2});
  SimBackend::Cell cell(b, 7);
  EXPECT_EQ(b.exchange(cell, 21), 7u);
  EXPECT_EQ(b.fetch_rmw(cell, AnyRmw(LssOp::swap(9))), 21u);
  b.store(cell, 123);
  EXPECT_EQ(b.load(cell), 123u);
  const SimBackendStats st = b.stats();
  EXPECT_EQ(st.network_ops, 4u);
}

}  // namespace
