// §5.6 — data-level synchronization: guarded operations over a tagged-cell
// automaton, closure of per-state tables under composition, the |S| bound on
// distinct store values, and the isomorphism with the full/empty family.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/dls.hpp"
#include "core/full_empty.hpp"
#include "util/rng.hpp"

namespace {

using namespace krs::core;

using Op2 = DlsOp<2>;
using Op4 = DlsOp<4>;

TEST(Dls, IdentitySemantics) {
  const Op4 id = Op4::identity();
  for (unsigned s = 0; s < 4; ++s) {
    const DlsCell c{99, static_cast<std::uint8_t>(s)};
    EXPECT_EQ(id.apply(c), c);
  }
}

TEST(Dls, GuardedStoreAppliesOnlyInGuard) {
  // Store 7 allowed only in state 0, moving to state 1.
  const Op2 put = Op2::guarded_store(7, 0b01, {1, 0});
  EXPECT_EQ(put.apply({0, 0}), (DlsCell{7, 1}));
  EXPECT_EQ(put.apply({5, 1}), (DlsCell{5, 1}));  // fails: unchanged
  EXPECT_TRUE(put.succeeded({0, 0}));
  EXPECT_FALSE(put.succeeded({5, 1}));
}

TEST(Dls, GuardedLoadMovesState) {
  const Op2 get = Op2::guarded_load(0b10, {0, 0});
  EXPECT_EQ(get.apply({7, 1}), (DlsCell{7, 0}));
  EXPECT_EQ(get.apply({7, 0}), (DlsCell{7, 0}));  // fails: unchanged
  EXPECT_TRUE(get.succeeded({7, 1}));
  EXPECT_FALSE(get.succeeded({7, 0}));
}

Op4 random_op(krs::util::Xoshiro256& rng) {
  const auto guard = static_cast<std::uint16_t>(rng.below(16));
  std::array<std::uint8_t, 4> next{};
  for (auto& n : next) n = static_cast<std::uint8_t>(rng.below(4));
  if (rng.chance(0.5)) return Op4::guarded_store(rng.below(100), guard, next);
  return Op4::guarded_load(guard, next);
}

TEST(Dls, ComposeMatchesSequentialApplication) {
  krs::util::Xoshiro256 rng(71);
  for (int i = 0; i < 2000; ++i) {
    const Op4 f = random_op(rng), g = random_op(rng);
    const DlsCell c{rng.below(100), static_cast<std::uint8_t>(rng.below(4))};
    EXPECT_EQ(compose(f, g).apply(c), g.apply(f.apply(c)));
  }
}

TEST(Dls, Associativity) {
  krs::util::Xoshiro256 rng(73);
  for (int i = 0; i < 1000; ++i) {
    const Op4 a = random_op(rng), b = random_op(rng), c = random_op(rng);
    EXPECT_EQ(compose(compose(a, b), c), compose(a, compose(b, c)));
  }
}

TEST(Dls, IdentityLaws) {
  krs::util::Xoshiro256 rng(79);
  for (int i = 0; i < 200; ++i) {
    const Op4 f = random_op(rng);
    EXPECT_EQ(compose(Op4::identity(), f), f);
    EXPECT_EQ(compose(f, Op4::identity()), f);
  }
}

// §5.6's bound: a combined operation never carries more than |S| distinct
// store values, and the bound is attained by the store-if-state=s family.
TEST(Dls, StoreValueBoundHolds) {
  krs::util::Xoshiro256 rng(83);
  for (int trial = 0; trial < 500; ++trial) {
    Op4 combined = Op4::identity();
    const int n = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i) combined = compose(combined, random_op(rng));
    EXPECT_LE(combined.distinct_store_values(), 4u);
  }
}

TEST(Dls, StoreValueBoundAttained) {
  // store-if-state=s of a distinct value, for each s, composed together:
  // the combined table stores a different value per state.
  Op4 combined = Op4::identity();
  for (unsigned s = 0; s < 4; ++s) {
    combined = compose(
        combined, Op4::guarded_store(100 + s, static_cast<std::uint16_t>(1u << s),
                                     {0, 1, 2, 3}));
  }
  EXPECT_EQ(combined.distinct_store_values(), 4u);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(combined.apply({0, static_cast<std::uint8_t>(s)}).value,
              100 + s);
  }
}

// The full/empty family is the 2-state special case: map each FEOp to a
// DlsOp<2> (state 0 = empty, 1 = full) and check the embedding is a
// semigroup homomorphism.
Op2 embed(const FEOp& f) {
  // Build the per-state table directly from FEOp::apply on both branches.
  const FEWord e0 = f.apply({0xABCD, false});
  const FEWord e1 = f.apply({0xABCD, true});
  Op2 out = Op2::identity();
  // Reconstruct via guarded ops is awkward; instead compose from primitive
  // guarded forms equivalent to the branch behavior.
  const bool store0 = e0.value != 0xABCD;
  const bool store1 = e1.value != 0xABCD;
  // Use two single-state guarded ops: one for state 0, one for state 1.
  const Op2 on0 = store0
                      ? Op2::guarded_store(e0.value, 0b01,
                                           {static_cast<std::uint8_t>(e0.full),
                                            0})
                      : Op2::guarded_load(0b01,
                                          {static_cast<std::uint8_t>(e0.full),
                                           0});
  const Op2 on1 = store1
                      ? Op2::guarded_store(e1.value, 0b10,
                                           {0,
                                            static_cast<std::uint8_t>(e1.full)})
                      : Op2::guarded_load(0b10,
                                          {0,
                                           static_cast<std::uint8_t>(e1.full)});
  out = compose(on0, on1);
  return out;
}

DlsCell to_cell(const FEWord& w) {
  return DlsCell{w.value, static_cast<std::uint8_t>(w.full ? 1 : 0)};
}

TEST(Dls, FullEmptyEmbedding) {
  const std::vector<FEOp> ops = {FEOp::load(),
                                 FEOp::load_and_clear(),
                                 FEOp::store_and_set(3),
                                 FEOp::store_if_clear_and_set(5),
                                 FEOp::store_and_clear(7),
                                 FEOp::store_if_clear_and_clear(9)};
  const std::vector<FEWord> cells = {{1, false}, {1, true}, {9, false}};
  for (const auto& f : ops) {
    const Op2 df = embed(f);
    for (const auto& c : cells) {
      EXPECT_EQ(df.apply(to_cell(c)), to_cell(f.apply(c))) << f.to_string();
    }
    // Homomorphism: embed(f∘g) behaves like embed(f)∘embed(g).
    for (const auto& g : ops) {
      const Op2 lhs = embed(compose(f, g));
      const Op2 rhs = compose(embed(f), embed(g));
      for (const auto& c : cells) {
        EXPECT_EQ(lhs.apply(to_cell(c)), rhs.apply(to_cell(c)));
      }
    }
  }
}

// A 3-state path expression: open → (read)* → close, i.e. the regular
// protocol open (read)* close on a shared object (§5.6's path-expression
// application). State 0 = closed, 1 = open.
TEST(Dls, PathExpressionProtocol) {
  using Op = DlsOp<2>;
  const Op open = Op::guarded_load(0b01, {1, 0});   // allowed when closed
  const Op read = Op::guarded_load(0b10, {0, 1});   // allowed when open
  const Op close = Op::guarded_load(0b10, {0, 0});  // allowed when open
  DlsCell obj{0, 0};
  // Legal sequence: open read read close.
  for (const auto* op : {&open, &read, &read, &close}) {
    EXPECT_TRUE(op->succeeded(obj));
    obj = op->apply(obj);
  }
  EXPECT_EQ(obj.state, 0);
  // Illegal: read while closed fails and leaves the object unchanged.
  EXPECT_FALSE(read.succeeded(obj));
  EXPECT_EQ(read.apply(obj), obj);
  // Combining a full legal session into one request leaves state 0 and
  // succeeds from closed.
  Op session = Op::identity();
  for (const auto* op : {&open, &read, &close}) session = compose(session, *op);
  EXPECT_EQ(session.apply({5, 0}), (DlsCell{5, 0}));
}

TEST(Dls, ChainEqualsSerial) {
  krs::util::Xoshiro256 rng(89);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(12));
    Op4 combined = Op4::identity();
    DlsCell cell{rng.below(100), static_cast<std::uint8_t>(rng.below(4))};
    const DlsCell c0 = cell;
    for (int i = 0; i < n; ++i) {
      const Op4 f = random_op(rng);
      combined = compose(combined, f);
      cell = f.apply(cell);
    }
    EXPECT_EQ(combined.apply(c0), cell);
  }
}

}  // namespace
