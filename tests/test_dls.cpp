// §5.6 — data-level synchronization: guarded operations over a tagged-cell
// automaton, closure of per-state tables under composition, the |S| bound on
// distinct store values, the isomorphism with the full/empty family, the
// composed success predicate, the wire-budget decline (try_compose →
// nullopt past the §5.6 size budget), the word-packed runtime family
// (DlsWordOp through AnyRmw), and multi-thread guarded-op conservation
// over the atomic / combining / flat / sharded substrates.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <thread>
#include <vector>

#include "core/any_rmw.hpp"
#include "core/dls.hpp"
#include "core/full_empty.hpp"
#include "runtime/combining_backend.hpp"
#include "runtime/dls_service.hpp"
#include "runtime/flat_combining.hpp"
#include "runtime/rmw_backend.hpp"
#include "runtime/sharded_backend.hpp"
#include "util/rng.hpp"
#include "workload/path_scenarios.hpp"

namespace {

using namespace krs::core;

using Op2 = DlsOp<2>;
using Op4 = DlsOp<4>;

TEST(Dls, IdentitySemantics) {
  const Op4 id = Op4::identity();
  for (unsigned s = 0; s < 4; ++s) {
    const DlsCell c{99, static_cast<std::uint8_t>(s)};
    EXPECT_EQ(id.apply(c), c);
  }
}

TEST(Dls, GuardedStoreAppliesOnlyInGuard) {
  // Store 7 allowed only in state 0, moving to state 1.
  const Op2 put = Op2::guarded_store(7, 0b01, {1, 0});
  EXPECT_EQ(put.apply({0, 0}), (DlsCell{7, 1}));
  EXPECT_EQ(put.apply({5, 1}), (DlsCell{5, 1}));  // fails: unchanged
  EXPECT_TRUE(put.succeeded({0, 0}));
  EXPECT_FALSE(put.succeeded({5, 1}));
}

TEST(Dls, GuardedLoadMovesState) {
  const Op2 get = Op2::guarded_load(0b10, {0, 0});
  EXPECT_EQ(get.apply({7, 1}), (DlsCell{7, 0}));
  EXPECT_EQ(get.apply({7, 0}), (DlsCell{7, 0}));  // fails: unchanged
  EXPECT_TRUE(get.succeeded({7, 1}));
  EXPECT_FALSE(get.succeeded({7, 0}));
}

Op4 random_op(krs::util::Xoshiro256& rng) {
  const auto guard = static_cast<std::uint16_t>(rng.below(16));
  std::array<std::uint8_t, 4> next{};
  for (auto& n : next) n = static_cast<std::uint8_t>(rng.below(4));
  if (rng.chance(0.5)) return Op4::guarded_store(rng.below(100), guard, next);
  return Op4::guarded_load(guard, next);
}

TEST(Dls, ComposeMatchesSequentialApplication) {
  krs::util::Xoshiro256 rng(71);
  for (int i = 0; i < 2000; ++i) {
    const Op4 f = random_op(rng), g = random_op(rng);
    const DlsCell c{rng.below(100), static_cast<std::uint8_t>(rng.below(4))};
    EXPECT_EQ(compose(f, g).apply(c), g.apply(f.apply(c)));
  }
}

TEST(Dls, Associativity) {
  krs::util::Xoshiro256 rng(73);
  for (int i = 0; i < 1000; ++i) {
    const Op4 a = random_op(rng), b = random_op(rng), c = random_op(rng);
    EXPECT_EQ(compose(compose(a, b), c), compose(a, compose(b, c)));
  }
}

TEST(Dls, IdentityLaws) {
  krs::util::Xoshiro256 rng(79);
  for (int i = 0; i < 200; ++i) {
    const Op4 f = random_op(rng);
    EXPECT_EQ(compose(Op4::identity(), f), f);
    EXPECT_EQ(compose(f, Op4::identity()), f);
  }
}

// §5.6's bound: a combined operation never carries more than |S| distinct
// store values, and the bound is attained by the store-if-state=s family.
TEST(Dls, StoreValueBoundHolds) {
  krs::util::Xoshiro256 rng(83);
  for (int trial = 0; trial < 500; ++trial) {
    Op4 combined = Op4::identity();
    const int n = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i) combined = compose(combined, random_op(rng));
    EXPECT_LE(combined.distinct_store_values(), 4u);
  }
}

TEST(Dls, StoreValueBoundAttained) {
  // store-if-state=s of a distinct value, for each s, composed together:
  // the combined table stores a different value per state.
  Op4 combined = Op4::identity();
  for (unsigned s = 0; s < 4; ++s) {
    combined = compose(
        combined, Op4::guarded_store(100 + s, static_cast<std::uint16_t>(1u << s),
                                     {0, 1, 2, 3}));
  }
  EXPECT_EQ(combined.distinct_store_values(), 4u);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(combined.apply({0, static_cast<std::uint8_t>(s)}).value,
              100 + s);
  }
}

// The full/empty family is the 2-state special case: map each FEOp to a
// DlsOp<2> (state 0 = empty, 1 = full) and check the embedding is a
// semigroup homomorphism.
Op2 embed(const FEOp& f) {
  // Build the per-state table directly from FEOp::apply on both branches.
  const FEWord e0 = f.apply({0xABCD, false});
  const FEWord e1 = f.apply({0xABCD, true});
  Op2 out = Op2::identity();
  // Reconstruct via guarded ops is awkward; instead compose from primitive
  // guarded forms equivalent to the branch behavior.
  const bool store0 = e0.value != 0xABCD;
  const bool store1 = e1.value != 0xABCD;
  // Use two single-state guarded ops: one for state 0, one for state 1.
  const Op2 on0 = store0
                      ? Op2::guarded_store(e0.value, 0b01,
                                           {static_cast<std::uint8_t>(e0.full),
                                            0})
                      : Op2::guarded_load(0b01,
                                          {static_cast<std::uint8_t>(e0.full),
                                           0});
  const Op2 on1 = store1
                      ? Op2::guarded_store(e1.value, 0b10,
                                           {0,
                                            static_cast<std::uint8_t>(e1.full)})
                      : Op2::guarded_load(0b10,
                                          {0,
                                           static_cast<std::uint8_t>(e1.full)});
  out = compose(on0, on1);
  return out;
}

DlsCell to_cell(const FEWord& w) {
  return DlsCell{w.value, static_cast<std::uint8_t>(w.full ? 1 : 0)};
}

TEST(Dls, FullEmptyEmbedding) {
  const std::vector<FEOp> ops = {FEOp::load(),
                                 FEOp::load_and_clear(),
                                 FEOp::store_and_set(3),
                                 FEOp::store_if_clear_and_set(5),
                                 FEOp::store_and_clear(7),
                                 FEOp::store_if_clear_and_clear(9)};
  const std::vector<FEWord> cells = {{1, false}, {1, true}, {9, false}};
  for (const auto& f : ops) {
    const Op2 df = embed(f);
    for (const auto& c : cells) {
      EXPECT_EQ(df.apply(to_cell(c)), to_cell(f.apply(c))) << f.to_string();
    }
    // Homomorphism: embed(f∘g) behaves like embed(f)∘embed(g).
    for (const auto& g : ops) {
      const Op2 lhs = embed(compose(f, g));
      const Op2 rhs = compose(embed(f), embed(g));
      for (const auto& c : cells) {
        EXPECT_EQ(lhs.apply(to_cell(c)), rhs.apply(to_cell(c)));
      }
    }
  }
}

// A 3-state path expression: open → (read)* → close, i.e. the regular
// protocol open (read)* close on a shared object (§5.6's path-expression
// application). State 0 = closed, 1 = open.
TEST(Dls, PathExpressionProtocol) {
  using Op = DlsOp<2>;
  const Op open = Op::guarded_load(0b01, {1, 0});   // allowed when closed
  const Op read = Op::guarded_load(0b10, {0, 1});   // allowed when open
  const Op close = Op::guarded_load(0b10, {0, 0});  // allowed when open
  DlsCell obj{0, 0};
  // Legal sequence: open read read close.
  for (const auto* op : {&open, &read, &read, &close}) {
    EXPECT_TRUE(op->succeeded(obj));
    obj = op->apply(obj);
  }
  EXPECT_EQ(obj.state, 0);
  // Illegal: read while closed fails and leaves the object unchanged.
  EXPECT_FALSE(read.succeeded(obj));
  EXPECT_EQ(read.apply(obj), obj);
  // Combining a full legal session into one request leaves state 0 and
  // succeeds from closed.
  Op session = Op::identity();
  for (const auto* op : {&open, &read, &close}) session = compose(session, *op);
  EXPECT_EQ(session.apply({5, 0}), (DlsCell{5, 0}));
}

TEST(Dls, ChainEqualsSerial) {
  krs::util::Xoshiro256 rng(89);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(12));
    Op4 combined = Op4::identity();
    DlsCell cell{rng.below(100), static_cast<std::uint8_t>(rng.below(4))};
    const DlsCell c0 = cell;
    for (int i = 0; i < n; ++i) {
      const Op4 f = random_op(rng);
      combined = compose(combined, f);
      cell = f.apply(cell);
    }
    EXPECT_EQ(combined.apply(c0), cell);
  }
}

// --- the composed success predicate ------------------------------------------

// Pin of the guard-composition fix: a LEGAL composed session must report
// succeeded() == true (compose used to zero the guard, so every combined
// request read as a NACK regardless of outcome).
TEST(Dls, ComposedSessionGuardReportsSuccess) {
  using Op = DlsOp<2>;
  const Op open = Op::guarded_load(0b01, {1, 0});
  const Op read = Op::guarded_load(0b10, {0, 1});
  const Op close = Op::guarded_load(0b10, {0, 0});
  const Op session = compose(compose(open, read), close);
  EXPECT_TRUE(session.succeeded({5, 0}));   // from closed: every step legal
  EXPECT_FALSE(session.succeeded({5, 1}));  // from open: the open nacks
  // The identity is unguarded, so folding it in changes no predicate.
  EXPECT_EQ(compose(Op::identity(), session).guard(), session.guard());
  EXPECT_EQ(compose(session, Op::identity()).guard(), session.guard());
}

// compose()'s guard must equal the chained predicate at every state:
// the chain succeeds from c iff f admits c AND g admits f's successor.
TEST(Dls, ComposedGuardMatchesChainedPredicate) {
  krs::util::Xoshiro256 rng(97);
  for (int i = 0; i < 2000; ++i) {
    const Op4 f = random_op(rng), g = random_op(rng);
    const Op4 fg = compose(f, g);
    for (unsigned s = 0; s < 4; ++s) {
      const DlsCell c{rng.below(100), static_cast<std::uint8_t>(s)};
      EXPECT_EQ(fg.succeeded(c), f.succeeded(c) && g.succeeded(f.apply(c)));
    }
  }
}

// --- the §5.6 size bound and the try_compose decline -------------------------

// The documented wire format, spelled out: per state one store-flag bit
// plus next-state and store-slot indices (⌈lg |S|⌉ bits each) plus one
// guard bit, rounded up to bytes, plus one word per distinct store value.
TEST(Dls, EncodedSizeMatchesDocumentedFormula) {
  // |S| = 4: 4·(1 + 2·2) + 4 = 24 bits → 3 bytes of table.
  EXPECT_EQ(Op4::identity().encoded_size_bytes(), 3u);
  EXPECT_EQ(Op4::guarded_store(7, 0b1111, {0, 1, 2, 3}).encoded_size_bytes(),
            3u + sizeof(Word));
  // |S| = 2: 2·(1 + 2·1) + 2 = 8 bits → 1 byte of table.
  EXPECT_EQ(Op2::identity().encoded_size_bytes(), 1u);
  EXPECT_EQ(Op2::guarded_store(7, 0b01, {1, 0}).encoded_size_bytes(),
            1u + sizeof(Word));
  // The §5.6 bound: a table can carry at most |S| distinct store values.
  EXPECT_EQ(Op4::kSizeBound, 3u + 4 * sizeof(Word));
  EXPECT_EQ(Op2::kSizeBound, 1u + 2 * sizeof(Word));
}

// §5.6's closure: at the DEFAULT budget (the |S| bound) composition is
// total — the composed table has one row per state, so it can never carry
// more than |S| distinct values, and try_compose never declines.
TEST(Dls, TryComposeTotalAtDefaultBudget) {
  krs::util::Xoshiro256 rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Op4 acc = Op4::identity();
    const int n = 1 + static_cast<int>(rng.below(8));
    for (int i = 0; i < n; ++i) {
      const auto r = try_compose(acc, random_op(rng));
      ASSERT_TRUE(r.has_value());
      acc = *r;
      EXPECT_LE(acc.encoded_size_bytes(), Op4::kSizeBound);
    }
  }
}

// A switch whose wire format is NARROWER than the bound declines the
// fold once the composed table would overflow it — the negative half of
// the §7 partial-combining contract (the declined second is then served
// individually at the root; test_backends.cpp drives that end).
TEST(Dls, TryComposeDeclinesPastNarrowedBudget) {
  // Stores on DISJOINT chased paths, so the composed table really carries
  // two distinct values: a stores from state 0 (landing where b keeps),
  // b stores from state 2 (where a keeps).
  const Op4 a = Op4::guarded_store(11, 0b0001, {1, 0, 0, 0});
  const Op4 b = Op4::guarded_store(22, 0b0100, {0, 0, 3, 0});
  ASSERT_EQ(compose(a, b).distinct_store_values(), 2u);
  const std::size_t one_value = a.encoded_size_bytes();
  // Composing two distinct-value stores needs two value slots: decline.
  EXPECT_FALSE(try_compose(a.with_size_budget(one_value),
                           b.with_size_budget(one_value))
                   .has_value());
  // The SAME pair at the default budget combines (and matches compose).
  const auto full = try_compose(a, b);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, compose(a, b));
  // The budget is the MEET of the operands: one narrow side declines.
  EXPECT_FALSE(try_compose(a, b.with_size_budget(one_value)).has_value());
  // Same-value stores still fit one slot even at the narrow budget.
  const Op4 b_same = Op4::guarded_store(11, 0b0100, {0, 0, 3, 0});
  EXPECT_TRUE(try_compose(a.with_size_budget(one_value),
                          b_same.with_size_budget(one_value))
                  .has_value());
}

// --- the word-packed runtime family ------------------------------------------

TEST(DlsWord, PackUnpackRoundTrip) {
  krs::util::Xoshiro256 rng(103);
  for (int i = 0; i < 1000; ++i) {
    const DlsCell c{rng.below(kDlsValueLimit),
                    static_cast<std::uint8_t>(rng.below(16))};
    EXPECT_EQ(dls_unpack(dls_pack(c)), c);
  }
}

// DlsWordOp::from(f) must mirror f on packed words: same transitions,
// same success predicate, same composition, same encoded size.
TEST(DlsWord, WordOpMirrorsTypedOp) {
  krs::util::Xoshiro256 rng(107);
  for (int i = 0; i < 1000; ++i) {
    const Op4 f = random_op(rng), g = random_op(rng);
    const DlsWordOp wf = DlsWordOp::from(f), wg = DlsWordOp::from(g);
    for (unsigned s = 0; s < 4; ++s) {
      const DlsCell c{rng.below(100), static_cast<std::uint8_t>(s)};
      EXPECT_EQ(wf.apply(dls_pack(c)), dls_pack(f.apply(c)));
      EXPECT_EQ(wf.succeeded(dls_pack(c)), f.succeeded(c));
    }
    EXPECT_EQ(compose(wf, wg), DlsWordOp::from(compose(f, g)));
    EXPECT_EQ(compose(wf, wg).guard(), compose(f, g).guard());
    EXPECT_EQ(wf.encoded_size_bytes(), f.encoded_size_bytes());
  }
}

TEST(DlsWord, UniversalIdentityAbsorbs) {
  const DlsWordOp id = DlsWordOp::identity();
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.apply(12345), 12345u);
  EXPECT_TRUE(id.succeeded(0xFFu));
  const DlsWordOp f = DlsWordOp::guarded_store(3, 7, 0b001, {1, 0, 2});
  EXPECT_EQ(compose(id, f), f);
  EXPECT_EQ(compose(f, id), f);
  ASSERT_TRUE(try_compose(id, f).has_value());
  EXPECT_EQ(*try_compose(id, f), f);
}

TEST(DlsWord, DeclinesAcrossDistinctAutomataAndBudgets) {
  const DlsWordOp two = DlsWordOp::guarded_load(2, 0b01, {1, 0});
  const DlsWordOp three = DlsWordOp::guarded_load(3, 0b001, {1, 0, 2});
  // Different state counts = different automata: tables don't compose.
  EXPECT_FALSE(try_compose(two, three).has_value());
  // Budget decline, mirroring the typed family: disjoint-path stores so
  // the composed table carries two distinct values.
  const DlsWordOp a = DlsWordOp::guarded_store(3, 11, 0b001, {1, 0, 0});
  const DlsWordOp b = DlsWordOp::guarded_store(3, 22, 0b100, {0, 0, 2});
  ASSERT_EQ(compose(a, b).distinct_store_values(), 2u);
  const auto narrow = a.encoded_size_bytes();
  EXPECT_FALSE(try_compose(a.with_size_budget(narrow),
                           b.with_size_budget(narrow))
                   .has_value());
  EXPECT_TRUE(try_compose(a, b).has_value());
}

// Through AnyRmw: the family combines with itself, declines cross-family,
// and the §7 switch sees exactly the family's decline rule.
TEST(DlsWord, AnyRmwCarriesTheFamily) {
  const DlsWordOp put = DlsWordOp::guarded_store(3, 7, 0b011, {1, 2, 2});
  const AnyRmw any(put);
  EXPECT_TRUE(any.holds<DlsWordOp>());
  EXPECT_EQ(any.apply(dls_pack({0, 0})), put.apply(dls_pack({0, 0})));
  EXPECT_EQ(any.encoded_size_bytes(), 1 + put.encoded_size_bytes());
  EXPECT_TRUE(try_compose(any, AnyRmw(put)).has_value());
  EXPECT_FALSE(try_compose(any, AnyRmw(FetchAdd(1))).has_value());
}

// --- multi-thread guarded-op conservation over the substrates ----------------

// The producer/consumer path `put (put get)* get` hammered from 2/4/8
// threads: acked puts minus acked gets equals the final occupancy (the
// automaton state), every got value was some acked put's value, and the
// host's ack/nack ledger accounts for every issue. Mirrors the
// hotspot-ticket pattern: same workload, every substrate, same invariants.
template <typename B>
void guarded_conservation(B backend) {
  const krs::workload::ProducerConsumerPath pc;
  for (const unsigned nt : {2u, 4u, 8u}) {
    B b = backend;
    krs::runtime::DlsHost<B> host(b);
    constexpr unsigned kPer = 300;
    std::vector<std::vector<Word>> put_acked(nt), got(nt);
    {
      std::vector<std::thread> ts;
      ts.reserve(nt);
      for (unsigned t = 0; t < nt; ++t) {
        ts.emplace_back([&, t] {
          for (unsigned i = 0; i < kPer; ++i) {
            if ((i + t) % 2 == 0) {
              const Word v = t * 100000 + i + 1;
              if (host.issue(pc.put(v)).ok) put_acked[t].push_back(v);
            } else {
              const auto r = host.issue(pc.get());
              if (r.ok) got[t].push_back(r.prior.value);
            }
          }
        });
      }
      for (auto& th : ts) th.join();
    }
    std::uint64_t puts = 0, gets = 0;
    std::set<Word> put_values;
    for (const auto& v : put_acked) {
      puts += v.size();
      put_values.insert(v.begin(), v.end());
    }
    for (const auto& v : got) gets += v.size();
    const DlsCell end = host.snapshot();
    ASSERT_LE(end.state, 2u);
    EXPECT_EQ(puts - gets, end.state) << "occupancy is acked puts - gets";
    for (const auto& v : got) {
      for (const Word w : v) {
        EXPECT_TRUE(put_values.count(w)) << "got a value nobody put: " << w;
      }
    }
    EXPECT_EQ(host.acks(), puts + gets);
    EXPECT_EQ(host.acks() + host.nacks(),
              static_cast<std::uint64_t>(nt) * kPer);
  }
}

TEST(DlsMt, GuardedConservationAtomic) {
  guarded_conservation(krs::runtime::AtomicBackend{});
}

TEST(DlsMt, GuardedConservationCombining) {
  guarded_conservation(krs::runtime::CombiningBackend{8});
}

TEST(DlsMt, GuardedConservationFlat) {
  guarded_conservation(krs::runtime::FlatCombiningBackend{8});
}

TEST(DlsMt, GuardedConservationShardedPinnedRoute) {
  // A DLS cell is ONE automaton — its state tag cannot stripe across
  // shards. Pinning every thread's route key sends all guarded ops to the
  // same inner cell; the other shards stay at packed 0, so the sum-
  // aggregated load still reads the automaton's word exactly.
  using Sharded = krs::runtime::ShardedBackend<krs::runtime::AtomicBackend>;
  const krs::workload::ProducerConsumerPath pc;
  Sharded b{krs::runtime::AtomicBackend{}, 4};
  krs::runtime::DlsHost<Sharded> host(b);
  constexpr unsigned kThreads = 4, kPer = 300;
  std::vector<std::vector<Word>> put_acked(kThreads), got(kThreads);
  {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        const krs::runtime::ScopedRouteKey pin(7);  // same shard for all
        for (unsigned i = 0; i < kPer; ++i) {
          if ((i + t) % 2 == 0) {
            const Word v = t * 100000 + i + 1;
            if (host.issue(pc.put(v)).ok) put_acked[t].push_back(v);
          } else {
            const auto r = host.issue(pc.get());
            if (r.ok) got[t].push_back(r.prior.value);
          }
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  std::uint64_t puts = 0, gets = 0;
  for (const auto& v : put_acked) puts += v.size();
  for (const auto& v : got) gets += v.size();
  const krs::runtime::ScopedRouteKey pin(7);
  const DlsCell end = host.snapshot();
  EXPECT_EQ(puts - gets, end.state);
  EXPECT_EQ(host.acks() + host.nacks(),
            static_cast<std::uint64_t>(kThreads) * kPer);
}

// Whole sessions of the 2-state file path at 2/4/8 threads: only the
// open is contended (retry on nack), the held session's steps cannot
// nack, and every opened session closes — the file ends closed and the
// ack ledger is exactly four per session.
template <typename B>
void session_conservation(B backend) {
  const krs::workload::FileSessionPath fs;
  for (const unsigned nt : {2u, 4u, 8u}) {
    B b = backend;
    krs::runtime::DlsHost<B> host(b);
    constexpr unsigned kSessions = 40;
    {
      std::vector<std::thread> ts;
      ts.reserve(nt);
      for (unsigned t = 0; t < nt; ++t) {
        ts.emplace_back([&, t] {
          for (unsigned k = 0; k < kSessions; ++k) {
            ASSERT_TRUE(host.issue_until(fs.open(), 1u << 22).has_value());
            EXPECT_TRUE(host.issue(fs.read()).ok);
            EXPECT_TRUE(host.issue(fs.append(t * 1000 + k)).ok);
            EXPECT_TRUE(host.issue(fs.close()).ok);
          }
        });
      }
      for (auto& th : ts) th.join();
    }
    EXPECT_EQ(host.snapshot().state, 0u) << "every open must have closed";
    EXPECT_EQ(host.acks(), 4ull * nt * kSessions);
  }
}

TEST(DlsMt, FileSessionsAtomic) {
  session_conservation(krs::runtime::AtomicBackend{});
}

TEST(DlsMt, FileSessionsCombining) {
  session_conservation(krs::runtime::CombiningBackend{8});
}

}  // namespace
