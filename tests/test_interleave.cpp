// §3.2 and §5.1 litmus programs, explored exhaustively under the three
// memory models: the Collier example separating M1 from M2, the effect of
// RP3 fences, and the incorrectness of early load satisfaction.
#include <gtest/gtest.h>

#include "verify/interleave.hpp"

namespace {

using namespace krs::verify;

// --- Collier's example (§3.2) ----------------------------------------------
//   P1: (1) a ← A; (2) b ← B        P2: (3) B ← 1; (4) A ← 1
LitmusProgram collier(bool with_fences) {
  LitmusProgram p;
  if (with_fences) {
    p.procs = {
        {ILoad{"A", "a"}, IFence{}, ILoad{"B", "b"}},
        {IStoreConst{"B", 1}, IFence{}, IStoreConst{"A", 1}},
    };
  } else {
    p.procs = {
        {ILoad{"A", "a"}, ILoad{"B", "b"}},
        {IStoreConst{"B", 1}, IStoreConst{"A", 1}},
    };
  }
  p.initial = {{"A", 0}, {"B", 0}};
  return p;
}

TEST(Collier, SequentialConsistencyOutcomes) {
  const auto out = explore(collier(false), MemModel::kSequentialConsistency);
  // The six legal orders give (a,b) ∈ {(0,0), (0,1), (1,1)}.
  EXPECT_TRUE(reachable(out, {{"P0.a", 0}, {"P0.b", 0}}));
  EXPECT_TRUE(reachable(out, {{"P0.a", 0}, {"P0.b", 1}}));
  EXPECT_TRUE(reachable(out, {{"P0.a", 1}, {"P0.b", 1}}));
  // a=1 ∧ b=0 would mean the store to A performed before the store to B yet
  // the loads saw the opposite — not sequentially consistent.
  EXPECT_FALSE(reachable(out, {{"P0.a", 1}, {"P0.b", 0}}));
}

TEST(Collier, PerLocationFifoAdmitsNonScOutcome) {
  // The paper: "If accesses occur in the order 4123, the loads will return
  // a value of 1 for A and a value of 0 for B, an outcome that is not
  // sequentially consistent. Thus condition (M2) is not sufficient."
  const auto out = explore(collier(false), MemModel::kPerLocationFifo);
  EXPECT_TRUE(reachable(out, {{"P0.a", 1}, {"P0.b", 0}}));
  // M2 is weaker than M1: every SC outcome is still reachable.
  for (const auto& o :
       explore(collier(false), MemModel::kSequentialConsistency)) {
    EXPECT_TRUE(out.count(o));
  }
}

TEST(Collier, FencesRestoreSequentialConsistency) {
  // "An incorrect execution can be prevented by adding a fence between the
  // two memory accesses in each of the serial streams."
  const auto fenced = explore(collier(true), MemModel::kPerLocationFifo);
  EXPECT_FALSE(reachable(fenced, {{"P0.a", 1}, {"P0.b", 0}}));
  EXPECT_TRUE(reachable(fenced, {{"P0.a", 0}, {"P0.b", 0}}));
  EXPECT_TRUE(reachable(fenced, {{"P0.a", 0}, {"P0.b", 1}}));
  EXPECT_TRUE(reachable(fenced, {{"P0.a", 1}, {"P0.b", 1}}));
}

// --- the §5.1 early-load counterexample -------------------------------------
//   P1: (1) A ← 1
//   P2: (2) a ← A; (3) B ← a
//   P3: (4) b ← B + 1 (load B, add 1); (5) A ← b
LitmusProgram early_load_example() {
  LitmusProgram p;
  p.procs = {
      {IStoreConst{"A", 1}},
      {ILoad{"A", "a"}, IStoreLocal{"B", "a", 0}},
      {ILoad{"B", "b"}, IStoreLocal{"A", "b", 1}},
  };
  p.initial = {{"A", 0}, {"B", 0}};
  return p;
}

TEST(EarlyLoad, CorrectModelsForbidB2A1) {
  // "the execution of this code cannot end with b = 2 and A = 1"
  // (b is stored as local P2.b; final A is the shared value; note the
  // paper's b is the post-increment value, here P2.b + 1 stored to A, so
  // the paper's 'b = 2' is our P2.b = 1 with A = 1.)
  for (auto model :
       {MemModel::kSequentialConsistency, MemModel::kPerLocationFifo}) {
    const auto out = explore(early_load_example(), model);
    EXPECT_FALSE(reachable(out, {{"P2.b", 1}, {"A", 1}}));
    // Sanity: the normal serial outcome 12345 exists: a=1, B=1, b=1, A=2.
    EXPECT_TRUE(reachable(out, {{"P1.a", 1}, {"B", 1}, {"P2.b", 1}, {"A", 2}}));
  }
}

TEST(EarlyLoad, OptimizationAdmitsForbiddenOutcome) {
  // With loads satisfied from in-flight stores, the order 23451 becomes
  // observable with the load in (2) returning the value stored by (1):
  // ends with P2.b = 1 (paper's b = 2) and A = 1. "However this
  // optimization is incorrect."
  const auto out =
      explore(early_load_example(), MemModel::kPerLocationFifoEarlyLoad);
  EXPECT_TRUE(reachable(out, {{"P2.b", 1}, {"A", 1}}));
}

TEST(EarlyLoad, OptimizedModelIsStrictlyWeaker) {
  // Every M2 outcome remains reachable under the optimized model (the bug
  // only ADDS behaviors).
  const auto m2 = explore(early_load_example(), MemModel::kPerLocationFifo);
  const auto opt =
      explore(early_load_example(), MemModel::kPerLocationFifoEarlyLoad);
  for (const auto& o : m2) EXPECT_TRUE(opt.count(o));
  EXPECT_GT(opt.size(), m2.size());
}

// --- basic explorer sanity ---------------------------------------------------

TEST(Explorer, SingleProcessorIsSerial) {
  LitmusProgram p;
  p.procs = {{IStoreConst{"X", 1}, ILoad{"X", "r"}, IStoreConst{"X", 2}}};
  p.initial = {{"X", 0}};
  for (auto model : {MemModel::kSequentialConsistency,
                     MemModel::kPerLocationFifo,
                     MemModel::kPerLocationFifoEarlyLoad}) {
    const auto out = explore(p, model);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(reachable(out, {{"P0.r", 1}, {"X", 2}}));
  }
}

TEST(Explorer, IndependentLocationsCommute) {
  LitmusProgram p;
  p.procs = {{IStoreConst{"X", 1}}, {IStoreConst{"Y", 1}}};
  p.initial = {{"X", 0}, {"Y", 0}};
  const auto out = explore(p, MemModel::kSequentialConsistency);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(reachable(out, {{"X", 1}, {"Y", 1}}));
}

TEST(Explorer, RacyStoresProduceBothFinals) {
  LitmusProgram p;
  p.procs = {{IStoreConst{"X", 1}}, {IStoreConst{"X", 2}}};
  p.initial = {{"X", 0}};
  const auto out = explore(p, MemModel::kSequentialConsistency);
  EXPECT_TRUE(reachable(out, {{"X", 1}}));
  EXPECT_TRUE(reachable(out, {{"X", 2}}));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
