// §6 — parallel prefix: the asynchronous CSP tree computes exclusive
// prefixes; the tree circuit's gate count and cycle count match the paper's
// formulas (checked, not restated); Sklansky/Ladner–Fischer comparison;
// equivalence with composing RMW mappings.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/affine.hpp"
#include "prefix/async_tree.hpp"
#include "prefix/circuits.hpp"
#include "prefix/schedule.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace krs::prefix;
using krs::core::Affine;
using krs::core::Word;

// --- asynchronous tree -------------------------------------------------------

TEST(AsyncTree, ComputesExclusivePrefixSums) {
  const std::vector<long> vals = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto r = async_prefix(vals, std::plus<long>{}, 0L);
  long acc = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(r.exclusive_prefix[i], acc) << i;
    acc += vals[i];
  }
  EXPECT_EQ(r.total, acc);
}

class AsyncTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(AsyncTreeSizes, MatchesSerialForAnyN) {
  const int n = GetParam();
  krs::util::Xoshiro256 rng(n);
  std::vector<long> vals;
  for (int i = 0; i < n; ++i) vals.push_back(static_cast<long>(rng.below(100)));
  const auto r = async_prefix(vals, std::plus<long>{}, 0L);
  long acc = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(r.exclusive_prefix[i], acc);
    acc += vals[i];
  }
  EXPECT_EQ(r.total, acc);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AsyncTreeSizes,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 31, 32,
                                           64));

TEST(AsyncTree, NonCommutativeOperationKeepsOrder) {
  // String concatenation is associative but not commutative: any ordering
  // bug in the tree shows up immediately.
  std::vector<std::string> vals;
  for (int i = 0; i < 16; ++i) vals.push_back(std::string(1, 'a' + i));
  const auto r = async_prefix(
      vals, [](const std::string& a, const std::string& b) { return a + b; },
      std::string{});
  std::string acc;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(r.exclusive_prefix[i], acc);
    acc += vals[i];
  }
  EXPECT_EQ(r.total, "abcdefghijklmnop");
}

TEST(AsyncTree, RmwMappingCompositionIsThePayload) {
  // The tree combines RMW mappings exactly as the network would: leaf i's
  // exclusive prefix applied to X0 is the reply request i receives.
  krs::util::Xoshiro256 rng(7);
  std::vector<Affine> ops;
  for (int i = 0; i < 16; ++i) {
    ops.push_back(rng.chance(0.5) ? Affine::fetch_add(rng.below(50))
                                  : Affine::fetch_mul(1 + rng.below(3)));
  }
  const auto r = async_prefix(
      ops, [](const Affine& f, const Affine& g) { return compose(f, g); },
      Affine::identity());
  const Word x0 = 17;
  Word serial = x0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(r.exclusive_prefix[i].apply(x0), serial);
    serial = ops[i].apply(serial);
  }
  EXPECT_EQ(r.total.apply(x0), serial);
}

TEST(AsyncTree, ApplicationCountMatchesAnalyzer) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<long> vals(n, 1);
    const auto r = async_prefix(vals, std::plus<long>{}, 0L);
    // The threaded tree performs ALL 2(n-1) multiplications (it does not
    // elide the trivial ones — dataflow nodes don't inspect values).
    EXPECT_EQ(r.applications, 2 * (n - 1));
  }
}

TEST(AsyncTree, RobustToTimingSkew) {
  // "The global clock synchronization ... is replaced by local dataflow
  // synchronization": correctness must not depend on node timing. Inject
  // random delays into the combining operation itself.
  krs::util::Xoshiro256 rng(99);
  std::vector<long> vals;
  for (int i = 0; i < 24; ++i) vals.push_back(static_cast<long>(rng.below(50)));
  const auto slow_plus = [](const long& a, const long& b) {
    // Deterministic per-value jitter: spin proportional to the operand.
    volatile long sink = 0;
    for (long i = 0; i < (a * 7 + b * 13) % 2000; ++i) sink += i;
    return a + b;
  };
  const auto r = async_prefix(vals, slow_plus, 0L);
  long acc = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(r.exclusive_prefix[i], acc);
    acc += vals[i];
  }
  EXPECT_EQ(r.total, acc);
}

// --- the paper's §6 formulas -------------------------------------------------

class PrefixFormulas : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixFormulas, NontrivialMultiplicationsAre2nMinus2MinusLgN) {
  const unsigned k = GetParam();
  const std::size_t n = std::size_t{1} << k;
  const auto rep = analyze_prefix_tree(n);
  EXPECT_EQ(rep.internal_nodes, n - 1);
  EXPECT_EQ(rep.total_multiplications, 2 * (n - 1));
  EXPECT_EQ(rep.trivial_multiplications, k);  // the ⌈lg n⌉ of the paper
  EXPECT_EQ(rep.nontrivial_multiplications, 2 * n - 2 - k);
}

TEST_P(PrefixFormulas, CycleCountIs2LgNMinus2) {
  const unsigned k = GetParam();
  const std::size_t n = std::size_t{1} << k;
  const auto rep = analyze_prefix_tree(n);
  EXPECT_EQ(rep.leaf_critical_path, 2 * k - 2);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, PrefixFormulas,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u));

TEST(PrefixFormulas, GeneralNIsConsistent) {
  // For non-powers of two there is no closed form in the paper; invariants:
  // n-1 internal nodes, 2(n-1) multiplications, trivial count equals the
  // left-spine length, critical path within [lg n, 2 lg n].
  for (std::size_t n : {3u, 5u, 6u, 7u, 9u, 12u, 100u, 1000u}) {
    const auto rep = analyze_prefix_tree(n);
    EXPECT_EQ(rep.internal_nodes, n - 1);
    EXPECT_EQ(rep.total_multiplications, 2 * (n - 1));
    const auto lg = krs::util::log2_ceil(n);
    EXPECT_GE(rep.leaf_critical_path + 2, lg);
    EXPECT_LE(rep.leaf_critical_path, 2 * lg);
  }
}

// --- circuits ----------------------------------------------------------------

class CircuitSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CircuitSizes, TreeCircuitEvaluatesExclusivePrefixes) {
  const std::size_t n = GetParam();
  const auto c = tree_prefix_circuit(n);
  krs::util::Xoshiro256 rng(n);
  std::vector<long> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(static_cast<long>(rng.below(50)));
  long total = 0;
  const auto out =
      c.evaluate_with_total(xs, std::plus<long>{}, 0L, total);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], acc);
    acc += xs[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(CircuitSizes, SklanskyCircuitEvaluatesExclusivePrefixes) {
  const std::size_t n = GetParam();
  const auto c = sklansky_prefix_circuit(n);
  krs::util::Xoshiro256 rng(n + 1);
  std::vector<long> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(static_cast<long>(rng.below(50)));
  long total = 0;
  const auto out = c.evaluate_with_total(xs, std::plus<long>{}, 0L, total);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], acc);
    acc += xs[i];
  }
  EXPECT_EQ(total, acc);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CircuitSizes,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u, 16u, 17u,
                                           32u, 100u, 256u));

TEST(Circuits, TreeGateCountEqualsPaperFormula) {
  // "the operations performed by this tree are exactly the same operations
  // performed by the Ladner-Fisher parallel prefix network": for n = 2^k
  // the circuit has exactly 2n − 2 − lg n gates.
  for (unsigned k = 1; k <= 10; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const auto c = tree_prefix_circuit(n);
    EXPECT_EQ(c.size(), 2 * n - 2 - k) << "n=" << n;
    EXPECT_EQ(c.size(), analyze_prefix_tree(n).nontrivial_multiplications);
  }
}

TEST(Circuits, SklanskyHasMinimalDepthButMoreGates) {
  // At n = 4 both constructions coincide (4 gates); the trade-off appears
  // from n = 8 on.
  for (unsigned k = 3; k <= 10; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const auto tree = tree_prefix_circuit(n);
    const auto skl = sklansky_prefix_circuit(n);
    // Sklansky reaches depth lg n (inclusive prefixes at depth k; our
    // exclusive outputs are a shift, so ≤ k), the tree needs ~2 lg n...
    EXPECT_LE(skl.output_depth(), k);
    EXPECT_GE(tree.output_depth(), skl.output_depth());
    // ...but the tree uses fewer gates (linear vs n/2 · lg n).
    EXPECT_LT(tree.size(), skl.size());
  }
}

TEST(Circuits, TreeDepthMatchesScheduleCriticalPath) {
  for (unsigned k = 1; k <= 8; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const auto c = tree_prefix_circuit(n);
    const auto rep = analyze_prefix_tree(n);
    EXPECT_EQ(c.output_depth(), rep.leaf_critical_path) << "n=" << n;
  }
}

TEST(Circuits, NonCommutativeEvaluation) {
  const std::size_t n = 16;
  std::vector<std::string> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(std::string(1, 'a' + static_cast<char>(i)));
  const auto cat = [](const std::string& a, const std::string& b) {
    return a + b;
  };
  for (const auto& c : {tree_prefix_circuit(n), sklansky_prefix_circuit(n)}) {
    std::string total;
    const auto out = c.evaluate_with_total(xs, cat, std::string{}, total);
    std::string acc;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], acc);
      acc += xs[i];
    }
    EXPECT_EQ(total, "abcdefghijklmnop");
  }
}

}  // namespace
