// §2: "the usual use of swap operations is to exchange values between a
// shared variable (the lock) and a private variable (the key)."
//
// A closed-loop source implements a spin lock with swap(1) / store(0) and
// a NON-atomic critical section (load counter, then store counter+1 as two
// separate memory operations). If mutual exclusion holds, no increment is
// lost; run with a broken lock (skipping acquisition) and increments ARE
// lost — demonstrating both the primitive and the test's sensitivity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/load_store_swap.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"

namespace {

using namespace krs;
using core::Addr;
using core::LssOp;
using core::Tick;
using core::Word;

constexpr Addr kLock = 0;
constexpr Addr kCounter = 1;

/// swap-lock / load / store-increment / unlock, `rounds` times.
class SwapLockWorker final : public proc::TrafficSource<LssOp> {
 public:
  explicit SwapLockWorker(Word rounds) : rounds_(rounds) {}

  std::optional<std::pair<Addr, LssOp>> next(Tick, unsigned) override {
    if (!ready_) return std::nullopt;
    ready_ = false;
    switch (state_) {
      case State::kAcquire:
        return std::make_pair(kLock, LssOp::swap(1));
      case State::kRead:
        return std::make_pair(kCounter, LssOp::load());
      case State::kWrite:
        return std::make_pair(kCounter, LssOp::store(seen_ + 1));
      case State::kRelease:
        return std::make_pair(kLock, LssOp::store(0));
      case State::kDone:
        return std::nullopt;
    }
    return std::nullopt;
  }

  void on_complete(core::ReqId, const Word& old, Tick) override {
    switch (state_) {
      case State::kAcquire:
        // swap returned the old lock value: 0 = acquired, 1 = spin again.
        state_ = old == 0 ? State::kRead : State::kAcquire;
        break;
      case State::kRead:
        seen_ = old;
        state_ = State::kWrite;
        break;
      case State::kWrite:
        state_ = State::kRelease;
        break;
      case State::kRelease:
        state_ = ++done_ >= rounds_ ? State::kDone : State::kAcquire;
        break;
      case State::kDone:
        break;
    }
    ready_ = state_ != State::kDone;
  }

  [[nodiscard]] bool finished() const override {
    return state_ == State::kDone;
  }

 private:
  enum class State { kAcquire, kRead, kWrite, kRelease, kDone };

  Word rounds_;
  Word seen_ = 0;
  Word done_ = 0;
  State state_ = State::kAcquire;
  bool ready_ = true;
};

/// Variant that skips the lock entirely (racy read-modify-write).
class RacyWorker final : public proc::TrafficSource<LssOp> {
 public:
  explicit RacyWorker(Word rounds) : rounds_(rounds) {}

  std::optional<std::pair<Addr, LssOp>> next(Tick, unsigned) override {
    if (!ready_) return std::nullopt;
    ready_ = false;
    return reading_ ? std::make_pair(kCounter, LssOp::load())
                    : std::make_pair(kCounter, LssOp::store(seen_ + 1));
  }

  void on_complete(core::ReqId, const Word& old, Tick) override {
    if (reading_) {
      seen_ = old;
      reading_ = false;
    } else {
      reading_ = true;
      ++done_;
    }
    ready_ = done_ < rounds_;
  }

  [[nodiscard]] bool finished() const override { return done_ >= rounds_; }

 private:
  Word rounds_;
  Word seen_ = 0;
  Word done_ = 0;
  bool reading_ = true;
  bool ready_ = true;
};

TEST(SwapLock, MutualExclusionPreservesEveryIncrement) {
  sim::MachineConfig<LssOp> cfg;
  cfg.log2_procs = 3;
  cfg.window = 1;
  constexpr Word kRounds = 16;
  std::vector<std::unique_ptr<proc::TrafficSource<LssOp>>> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    src.push_back(std::make_unique<SwapLockWorker>(kRounds));
  }
  sim::Machine<LssOp> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10'000'000));
  // Every increment inside the lock survived: the swap lock is a lock.
  EXPECT_EQ(m.value_at(kCounter), 8 * kRounds);
  EXPECT_EQ(m.value_at(kLock), 0u);
  const auto res = verify::check_machine(m, 0);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SwapLock, UnlockedRmwLosesUpdates) {
  // Control experiment: the same read/modify/write WITHOUT the lock loses
  // increments under concurrency (the §2 motivation for ATOMIC RMW) —
  // while the memory system itself remains perfectly serializable.
  sim::MachineConfig<LssOp> cfg;
  cfg.log2_procs = 3;
  cfg.window = 1;
  constexpr Word kRounds = 16;
  std::vector<std::unique_ptr<proc::TrafficSource<LssOp>>> src;
  for (std::uint32_t p = 0; p < 8; ++p) {
    src.push_back(std::make_unique<RacyWorker>(kRounds));
  }
  sim::Machine<LssOp> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10'000'000));
  EXPECT_LT(m.value_at(kCounter), 8 * kRounds);  // lost updates
  EXPECT_TRUE(verify::check_machine(m, 0).ok);   // memory still correct
}

TEST(SwapLock, SpinTrafficCombines) {
  // While the lock is held, the spinners' swap(1) requests all target one
  // cell — and swap∘swap combines (§5.1), so the spin storm collapses in
  // the network instead of hammering the memory module.
  sim::MachineConfig<LssOp> cfg;
  cfg.log2_procs = 4;
  cfg.window = 1;
  std::vector<std::unique_ptr<proc::TrafficSource<LssOp>>> src;
  for (std::uint32_t p = 0; p < 16; ++p) {
    src.push_back(std::make_unique<SwapLockWorker>(8));
  }
  sim::Machine<LssOp> m(cfg, std::move(src));
  ASSERT_TRUE(m.run(10'000'000));
  EXPECT_EQ(m.value_at(kCounter), 16u * 8u);
  EXPECT_GT(m.stats().combines, 0u);
  EXPECT_TRUE(verify::check_machine(m, 0).ok);
}

}  // namespace
