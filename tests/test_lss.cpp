// §5.1 — loads, stores, swaps: combining tables, semigroup laws, and the
// semantics of the order-reversal optimization.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/load_store_swap.hpp"
#include "util/rng.hpp"

namespace {

using krs::core::compose_reversible;
using krs::core::LssKind;
using krs::core::LssOp;
using krs::core::Word;

std::vector<LssOp> sample_ops() {
  return {LssOp::load(), LssOp::store(3), LssOp::store(7), LssOp::swap(11),
          LssOp::swap(13)};
}

// compose(f, g) must satisfy the defining equation of "f then g".
TEST(Lss, ComposeMatchesSequentialApplication) {
  for (const auto& f : sample_ops()) {
    for (const auto& g : sample_ops()) {
      const LssOp fg = compose(f, g);
      for (Word x : {Word{0}, Word{1}, Word{42}, ~Word{0}}) {
        EXPECT_EQ(fg.apply(x), g.apply(f.apply(x)))
            << f.to_string() << " ∘ " << g.to_string();
      }
    }
  }
}

TEST(Lss, ComposeIsAssociative) {
  const auto ops = sample_ops();
  for (const auto& a : ops)
    for (const auto& b : ops)
      for (const auto& c : ops)
        EXPECT_EQ(compose(compose(a, b), c), compose(a, compose(b, c)));
}

TEST(Lss, IdentityLaws) {
  // Composition with the identity (a load) preserves the *mapping*. The
  // kind may legitimately change: a load followed by a store is forwarded
  // as a swap (the old value must still be fetched to answer the load), and
  // a store followed by a load stays a store (the load is answered locally).
  for (const auto& f : sample_ops()) {
    const LssOp idf = compose(LssOp::identity(), f);
    const LssOp fid = compose(f, LssOp::identity());
    for (Word x : {Word{0}, Word{5}, Word{77}}) {
      EXPECT_EQ(idf.apply(x), f.apply(x));
      EXPECT_EQ(fid.apply(x), f.apply(x));
    }
  }
  // Pure loads compose to a load exactly.
  EXPECT_EQ(compose(LssOp::identity(), LssOp::identity()), LssOp::load());
}

// The exact 3×3 table printed in §5.1 (order-preserving).
TEST(Lss, PaperTableOrderPreserving) {
  const Word v1 = 3, v2 = 7;
  // Row: first request; column: second request.
  // load/load = load
  EXPECT_EQ(compose(LssOp::load(), LssOp::load()).kind(), LssKind::kLoad);
  // load/store = swap (of the stored value)
  EXPECT_EQ(compose(LssOp::load(), LssOp::store(v2)),
            LssOp::swap(v2));
  // load/swap = swap
  EXPECT_EQ(compose(LssOp::load(), LssOp::swap(v2)), LssOp::swap(v2));
  // store/load = store
  EXPECT_EQ(compose(LssOp::store(v1), LssOp::load()), LssOp::store(v1));
  // store/store = store (second value)
  EXPECT_EQ(compose(LssOp::store(v1), LssOp::store(v2)), LssOp::store(v2));
  // store/swap = store (second value; swap's reply is v1, known locally)
  EXPECT_EQ(compose(LssOp::store(v1), LssOp::swap(v2)), LssOp::store(v2));
  // swap/load = swap
  EXPECT_EQ(compose(LssOp::swap(v1), LssOp::load()), LssOp::swap(v1));
  // swap/store = swap (second value)
  EXPECT_EQ(compose(LssOp::swap(v1), LssOp::store(v2)), LssOp::swap(v2));
  // swap/swap = swap (second value)
  EXPECT_EQ(compose(LssOp::swap(v1), LssOp::swap(v2)), LssOp::swap(v2));
}

// The reversed-order table: whenever the second request is a store, reverse
// so the forwarded request is a plain store (no reply data).
TEST(Lss, PaperTableReversed) {
  const Word v1 = 3, v2 = 7;
  // load/store = store* (forwarded store of the SECOND value: the store
  // happens first, then the load reads it — memory ends with v2).
  auto r = compose_reversible(LssOp::load(), LssOp::store(v2));
  EXPECT_TRUE(r.reversed);
  EXPECT_EQ(r.forwarded, LssOp::store(v2));
  // swap/store = store* (store v2 first, swap overwrites with v1 — memory
  // ends with the swap's value).
  r = compose_reversible(LssOp::swap(v1), LssOp::store(v2));
  EXPECT_TRUE(r.reversed);
  EXPECT_EQ(r.forwarded, LssOp::store(v1));
  // store/store stays a store without reversal.
  r = compose_reversible(LssOp::store(v1), LssOp::store(v2));
  EXPECT_FALSE(r.reversed);
  EXPECT_EQ(r.forwarded, LssOp::store(v2));
  // Entries without a second store match the order-preserving table.
  for (const auto& f : {LssOp::load(), LssOp::store(v1), LssOp::swap(v1)}) {
    for (const auto& g : {LssOp::load(), LssOp::swap(v2)}) {
      r = compose_reversible(f, g);
      EXPECT_FALSE(r.reversed);
      EXPECT_EQ(r.forwarded, compose(f, g));
    }
  }
}

// Reversed combination is semantically the serial execution g-then-f:
// the final memory value must equal f.apply(g.apply(x)).
TEST(Lss, ReversedCombinationMatchesSwappedSerialOrder) {
  const Word x0 = 100;
  for (const auto& f : {LssOp::load(), LssOp::swap(Word{5})}) {
    const LssOp g = LssOp::store(9);
    const auto r = compose_reversible(f, g);
    ASSERT_TRUE(r.reversed);
    EXPECT_EQ(r.forwarded.apply(x0), f.apply(g.apply(x0)));
  }
}

// Traffic properties: a combined request's reply needs data only when a
// load or swap is embedded; with reversal, a second store never forces a
// data-carrying reply.
TEST(Lss, ReplyDataAccounting) {
  EXPECT_FALSE(LssOp::store(1).reply_needs_data());
  EXPECT_TRUE(LssOp::load().reply_needs_data());
  EXPECT_TRUE(LssOp::swap(2).reply_needs_data());
  // Order-preserving: load+store must fetch (forwarded as swap)...
  EXPECT_TRUE(compose(LssOp::load(), LssOp::store(1)).reply_needs_data());
  // ...but with reversal it does not.
  EXPECT_FALSE(compose_reversible(LssOp::load(), LssOp::store(1))
                   .forwarded.reply_needs_data());
}

TEST(Lss, EncodedSizes) {
  EXPECT_EQ(LssOp::load().encoded_size_bytes(), 1u);
  EXPECT_EQ(LssOp::store(1).encoded_size_bytes(), 1u + sizeof(Word));
  EXPECT_EQ(LssOp::swap(1).encoded_size_bytes(), 1u + sizeof(Word));
}

// Property sweep: random chains of k ops composed left-to-right behave like
// serial application (the unit-level core of Lemma 4.1(3)).
class LssChain : public ::testing::TestWithParam<int> {};

TEST_P(LssChain, ComposedChainEqualsSerialExecution) {
  krs::util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(8));
    std::vector<LssOp> ops;
    ops.reserve(n);
    for (int i = 0; i < n; ++i) {
      switch (rng.below(3)) {
        case 0:
          ops.push_back(LssOp::load());
          break;
        case 1:
          ops.push_back(LssOp::store(rng.below(1000)));
          break;
        default:
          ops.push_back(LssOp::swap(rng.below(1000)));
          break;
      }
    }
    LssOp combined = ops[0];
    Word serial = rng.below(1000);
    const Word x0 = serial;
    for (int i = 1; i < n; ++i) combined = compose(combined, ops[i]);
    for (const auto& op : ops) serial = op.apply(serial);
    EXPECT_EQ(combined.apply(x0), serial);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LssChain, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
