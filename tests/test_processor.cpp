// The processor model in isolation: issue windows, completion accounting,
// the processor-side read-lock/compute/write-unlock state machine, and
// nack-driven retries — driven by hand, no network.
#include <gtest/gtest.h>

#include <deque>

#include "core/fetch_theta.hpp"
#include "proc/processor.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs;
using core::FetchAdd;
using core::ReqId;
using core::Tick;

using Src = workload::ScriptedSource<FetchAdd>;
using Proc = proc::Processor<FetchAdd>;
using Done = std::vector<proc::CompletedOp<FetchAdd>>;

std::deque<Src::Item> three_ops() {
  return {{0, 10, FetchAdd(1)}, {0, 11, FetchAdd(2)}, {0, 12, FetchAdd(3)}};
}

net::RevPacket<FetchAdd> reply(ReqId id, core::Word v, bool nack = false) {
  net::RevPacket<FetchAdd> r;
  r.reply = core::Reply<FetchAdd>{id, v, 0};
  r.nack = nack;
  return r;
}

TEST(Processor, WindowLimitsOutstanding) {
  Src src(three_ops());
  Proc p(0, /*window=*/2, false, &src);
  p.tick(0);
  p.tick(0);
  p.tick(0);  // third blocked by window
  EXPECT_EQ(p.outstanding(), 2u);
  ASSERT_NE(p.peek_outgoing(), nullptr);
  EXPECT_EQ(p.peek_outgoing()->req.id, (ReqId{0, 0}));
  p.pop_outgoing();
  p.pop_outgoing();
  EXPECT_EQ(p.peek_outgoing(), nullptr);  // both in flight, none staged

  Done done;
  p.deliver(reply({0, 0}, 100), 5, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].reply, 100u);
  EXPECT_EQ(done[0].completed, 5u);
  EXPECT_EQ(p.outstanding(), 1u);
  p.tick(6);  // window slot free: third op issues
  EXPECT_EQ(p.outstanding(), 2u);
  ASSERT_NE(p.peek_outgoing(), nullptr);
  EXPECT_EQ(p.peek_outgoing()->req.addr, 12u);
}

TEST(Processor, QuiescentOnlyWhenFullyDrained) {
  Src src({{0, 10, FetchAdd(1)}});
  Proc p(3, 4, false, &src);
  EXPECT_FALSE(p.quiescent());  // source not finished
  p.tick(0);
  p.pop_outgoing();
  EXPECT_FALSE(p.quiescent());  // outstanding
  Done done;
  p.deliver(reply({3, 0}, 0), 1, &done);
  EXPECT_TRUE(p.quiescent());
}

TEST(Processor, ProcessorSideTwoPhase) {
  Src src({{0, 10, FetchAdd(5)}});
  Proc p(1, 1, /*processor_side=*/true, &src);
  p.tick(0);
  ASSERT_NE(p.peek_outgoing(), nullptr);
  EXPECT_EQ(p.peek_outgoing()->kind, net::TxnKind::kReadLock);
  p.pop_outgoing();

  // Lock granted with old value 100: the processor computes 105 locally
  // and issues the write-unlock.
  Done done;
  p.deliver(reply({1, 0}, 100), 2, &done);
  EXPECT_TRUE(done.empty());  // not complete yet
  ASSERT_NE(p.peek_outgoing(), nullptr);
  EXPECT_EQ(p.peek_outgoing()->kind, net::TxnKind::kWriteUnlock);
  EXPECT_EQ(p.peek_outgoing()->store_value, 105u);
  p.pop_outgoing();

  // Unlock acknowledged: the logical RMW completes with the OLD value.
  p.deliver(reply({1, 0}, 100), 4, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].reply, 100u);
  EXPECT_TRUE(p.quiescent());
}

TEST(Processor, NackRetriesReadLockAfterBackoff) {
  Src src({{0, 10, FetchAdd(5)}});
  Proc p(2, 1, true, &src);
  p.tick(0);
  p.pop_outgoing();

  Done done;
  p.deliver(reply({2, 0}, 0, /*nack=*/true), 3, &done);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(p.peek_outgoing(), nullptr);  // backing off
  p.tick(4);
  EXPECT_EQ(p.peek_outgoing(), nullptr);  // still backing off
  for (Tick t = 5; t <= 20 && p.peek_outgoing() == nullptr; ++t) p.tick(t);
  ASSERT_NE(p.peek_outgoing(), nullptr);  // retried
  EXPECT_EQ(p.peek_outgoing()->kind, net::TxnKind::kReadLock);
  p.pop_outgoing();
  // This time the lock is granted; finish the protocol.
  p.deliver(reply({2, 0}, 7), 21, &done);
  p.pop_outgoing();
  p.deliver(reply({2, 0}, 7), 23, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].reply, 7u);
}

TEST(Processor, SequenceNumbersAreMonotone) {
  Src src(three_ops());
  Proc p(0, 3, false, &src);
  for (Tick t = 0; t < 3; ++t) p.tick(t);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_NE(p.peek_outgoing(), nullptr);
    EXPECT_EQ(p.peek_outgoing()->req.id, (ReqId{0, i}));
    p.pop_outgoing();
  }
}

TEST(Processor, CompletedOpCarriesIssueMetadata) {
  Src src({{0, 42, FetchAdd(9)}});
  Proc p(5, 1, false, &src);
  p.tick(17);
  p.pop_outgoing();
  Done done;
  p.deliver(reply({5, 0}, 3), 40, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].addr, 42u);
  EXPECT_EQ(done[0].f, FetchAdd(9));
  EXPECT_EQ(done[0].issued, 17u);
  EXPECT_EQ(done[0].completed, 40u);
}

}  // namespace
