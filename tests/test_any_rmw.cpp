// The heterogeneous AnyRmw wrapper: same-family composition delegates to
// the family, cross-family composition declines (partial combining, §7),
// and the wrapper satisfies the Rmw concept laws.
#include <gtest/gtest.h>

#include <vector>

#include "core/any_rmw.hpp"
#include "util/rng.hpp"

namespace {

using namespace krs::core;

std::vector<AnyRmw> sample_ops() {
  return {
      AnyRmw(LssOp::load()),       AnyRmw(LssOp::store(3)),
      AnyRmw(LssOp::swap(7)),      AnyRmw(FetchAdd(11)),
      AnyRmw(FetchOr(0x10)),       AnyRmw(FetchMin(5)),
      AnyRmw(BoolVec::broadcast(BoolFn::kComp)),
      AnyRmw(BoolVec::masked_store(0xAB, 0xFF)),
      AnyRmw(Affine(3, 4)),
  };
}

TEST(AnyRmw, ApplyDelegates) {
  EXPECT_EQ(AnyRmw(FetchAdd(5)).apply(10), 15u);
  EXPECT_EQ(AnyRmw(LssOp::store(3)).apply(10), 3u);
  EXPECT_EQ(AnyRmw(Affine(2, 1)).apply(10), 21u);
}

TEST(AnyRmw, SameFamilyComposes) {
  const auto r = try_compose(AnyRmw(FetchAdd(5)), AnyRmw(FetchAdd(7)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, AnyRmw(FetchAdd(12)));
  const auto lss =
      try_compose(AnyRmw(LssOp::load()), AnyRmw(LssOp::store(3)));
  ASSERT_TRUE(lss.has_value());
  EXPECT_EQ(*lss, AnyRmw(LssOp::swap(3)));
}

TEST(AnyRmw, CrossFamilyDeclines) {
  const auto ops = sample_ops();
  for (const auto& f : ops) {
    for (const auto& g : ops) {
      const auto r = try_compose(f, g);
      // Composition succeeds iff the alternatives match; when it does, it
      // must equal sequential application.
      if (r.has_value()) {
        for (Word x : {Word{0}, Word{17}, Word{255}}) {
          EXPECT_EQ(r->apply(x), g.apply(f.apply(x)))
              << f.to_string() << " then " << g.to_string();
        }
      }
    }
  }
  EXPECT_FALSE(
      try_compose(AnyRmw(FetchAdd(1)), AnyRmw(LssOp::load())).has_value());
  EXPECT_FALSE(
      try_compose(AnyRmw(FetchOr(1)), AnyRmw(FetchAdd(1))).has_value());
}

TEST(AnyRmw, IdentityIsLoad) {
  EXPECT_TRUE(AnyRmw::identity().holds<LssOp>());
  for (Word x : {Word{0}, Word{42}}) {
    EXPECT_EQ(AnyRmw::identity().apply(x), x);
  }
}

TEST(AnyRmw, EncodedSizeAddsTagByte) {
  EXPECT_EQ(AnyRmw(FetchAdd(1)).encoded_size_bytes(),
            1 + FetchAdd(1).encoded_size_bytes());
  EXPECT_EQ(AnyRmw(LssOp::load()).encoded_size_bytes(),
            1 + LssOp::load().encoded_size_bytes());
}

TEST(AnyRmw, GetAndHolds) {
  const AnyRmw op(FetchAdd(9));
  ASSERT_TRUE(op.holds<FetchAdd>());
  EXPECT_FALSE(op.holds<LssOp>());
  EXPECT_EQ(op.get<FetchAdd>().operand(), 9u);
}

TEST(AnyRmw, ChainEqualsSerialWhenCombinable) {
  krs::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    // A chain of same-family ops interleaved with declined cross-family
    // combos: simulate a switch that combines maximal same-family runs.
    std::vector<AnyRmw> ops;
    const int n = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i) {
      ops.push_back(rng.chance(0.5) ? AnyRmw(FetchAdd(rng.below(50)))
                                    : AnyRmw(Affine(rng.below(4), rng.below(50))));
    }
    // Greedy run-combining, then serial application of the combined runs.
    std::vector<AnyRmw> runs;
    for (const auto& op : ops) {
      if (!runs.empty()) {
        if (auto c = try_compose(runs.back(), op)) {
          runs.back() = *c;
          continue;
        }
      }
      runs.push_back(op);
    }
    Word via_runs = 5, serial = 5;
    for (const auto& r : runs) via_runs = r.apply(via_runs);
    for (const auto& op : ops) serial = op.apply(serial);
    EXPECT_EQ(via_runs, serial);
  }
}

}  // namespace
