// §5.5's two synchronization disciplines, module- and machine-level:
// busy-waiting (failed conditionals are NACKed and retried — traffic) vs
// queueing at memory (failed conditionals park until executable — no
// retry traffic, but possible deadlock, which run() detects).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/full_empty.hpp"
#include "mem/module.hpp"
#include "sim/machine.hpp"
#include "verify/memory_checker.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace krs;
using core::FEOp;
using core::FEWord;
using mem::MemoryModule;
using mem::ModuleConfig;

net::FwdPacket<FEOp> fe_req(std::uint32_t proc, std::uint32_t seq,
                            core::Addr addr, FEOp op) {
  net::FwdPacket<FEOp> p;
  p.req = core::Request<FEOp>{{proc, seq}, addr, op, 0};
  return p;
}

ModuleConfig queueing_cfg() {
  ModuleConfig cfg;
  cfg.latency = 0;
  cfg.queue_failed_conditionals = true;
  return cfg;
}

TEST(Queueing, ParkedGetWakesOnPut) {
  MemoryModule<FEOp> m(queueing_cfg(), FEWord{0, false});
  // Consumer's get arrives first: cell empty → parked, no reply.
  m.accept(fe_req(0, 0, 5, FEOp::load_and_clear()));
  std::vector<net::RevPacket<FEOp>> out;
  m.tick(0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(m.parked_count(), 1u);
  EXPECT_FALSE(m.idle());
  // Producer's put arrives: executes, wakes the get.
  m.accept(fe_req(1, 0, 5, FEOp::store_if_clear_and_set(42)));
  m.tick(1, out);
  ASSERT_EQ(out.size(), 1u);  // the put's reply
  m.tick(2, out);
  ASSERT_EQ(out.size(), 2u);  // the woken get's reply
  EXPECT_EQ(out[1].reply.id, (core::ReqId{0, 0}));
  EXPECT_EQ(out[1].reply.value.value, 42u);
  EXPECT_TRUE(out[1].reply.value.full);  // guard held when it executed
  EXPECT_FALSE(m.value_at(5).full);      // get emptied the cell again
  EXPECT_EQ(m.parked_count(), 0u);
  EXPECT_EQ(m.stats().woken_ops, 1u);
}

TEST(Queueing, ParkedPutWakesOnGet) {
  MemoryModule<FEOp> m(queueing_cfg(), FEWord{7, true});
  // Cell full: a second put parks.
  m.accept(fe_req(0, 0, 5, FEOp::store_if_clear_and_set(42)));
  std::vector<net::RevPacket<FEOp>> out;
  m.tick(0, out);
  EXPECT_EQ(m.parked_count(), 1u);
  m.accept(fe_req(1, 0, 5, FEOp::load_and_clear()));
  m.tick(1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reply.value.value, 7u);  // get took the old value
  m.tick(2, out);
  ASSERT_EQ(out.size(), 2u);  // woken put
  EXPECT_EQ(m.value_at(5), (FEWord{42, true}));
}

TEST(Queueing, ChainOfAlternatingWakes) {
  // Several parked gets and puts resolve one per update, §5.5's
  // "alternating loads and stores" schedule.
  MemoryModule<FEOp> m(queueing_cfg(), FEWord{0, false});
  std::vector<net::RevPacket<FEOp>> out;
  // Three gets park.
  for (std::uint32_t c = 0; c < 3; ++c) {
    m.accept(fe_req(c, 0, 5, FEOp::load_and_clear()));
    m.tick(c, out);
  }
  EXPECT_EQ(m.parked_count(), 3u);
  // Three puts: each executes and wakes exactly one get.
  core::Tick t = 3;
  for (std::uint32_t p = 0; p < 3; ++p) {
    m.accept(fe_req(10 + p, 0, 5, FEOp::store_if_clear_and_set(100 + p)));
  }
  while (!m.idle() && t < 50) m.tick(t++, out);
  EXPECT_TRUE(m.idle());
  ASSERT_EQ(out.size(), 6u);
  // Every consumer got a distinct produced value.
  std::set<core::Word> got;
  for (const auto& r : out) {
    if (r.reply.id.proc < 3) got.insert(r.reply.value.value);
  }
  EXPECT_EQ(got.size(), 3u);
  EXPECT_FALSE(m.value_at(5).full);
}

TEST(Queueing, DeadlockIsDetectedNotSilent) {
  // A get with no matching put parks forever: the paper's deadlock caveat.
  MemoryModule<FEOp> m(queueing_cfg(), FEWord{0, false});
  m.accept(fe_req(0, 0, 5, FEOp::load_and_clear()));
  std::vector<net::RevPacket<FEOp>> out;
  for (core::Tick t = 0; t < 20; ++t) m.tick(t, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(m.idle());
  EXPECT_EQ(m.parked_count(), 1u);
}

// --- machine level: queueing vs busy-waiting --------------------------------

struct Discipline {
  std::uint64_t cycles;
  std::uint64_t attempts;     // ops issued incl. retries
  std::uint64_t handoffs;
};

Discipline producer_consumer(bool queueing, std::uint64_t rounds) {
  sim::MachineConfig<FEOp> cfg;
  cfg.log2_procs = 3;
  cfg.initial_value = FEWord{0, false};
  cfg.window = 1;
  // Combining tables do not preserve blocking semantics; §5.5's queueing
  // analysis assumes uncombined alternating operations.
  cfg.switch_cfg.policy = net::CombinePolicy::kNone;
  cfg.mem_cfg.queue_failed_conditionals = queueing;
  const std::uint32_t n = 1u << cfg.log2_procs;

  std::vector<std::unique_ptr<proc::TrafficSource<FEOp>>> src;
  std::vector<workload::RetryingSource<FEOp>*> handles;
  for (std::uint32_t p = 0; p < n; ++p) {
    std::deque<workload::RetryingSource<FEOp>::Item> items;
    const bool producer = p % 2 == 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      if (producer) {
        items.push_back({9, FEOp::store_if_clear_and_set(p * 1000 + r)});
      } else {
        items.push_back({9, FEOp::load_and_clear()});
      }
    }
    auto s = std::make_unique<workload::RetryingSource<FEOp>>(
        std::move(items), 6);
    handles.push_back(s.get());
    src.push_back(std::move(s));
  }
  sim::Machine<FEOp> m(cfg, std::move(src));
  const bool ok = m.run(5'000'000);
  EXPECT_TRUE(ok);
  const auto check = verify::check_machine(m, FEWord{0, false});
  EXPECT_TRUE(check.ok) << check.error;
  Discipline d{};
  d.cycles = m.stats().cycles;
  for (auto* h : handles) d.attempts += h->attempts();
  for (const auto& op : m.completed()) {
    if (op.f.kind() == core::FEKind::kLoadClear && op.f.succeeded(op.reply)) {
      ++d.handoffs;
    }
  }
  return d;
}

TEST(Queueing, ReducesTrafficVersusBusyWaiting) {
  constexpr std::uint64_t kRounds = 24;
  const auto busy = producer_consumer(false, kRounds);
  const auto queued = producer_consumer(true, kRounds);
  const std::uint64_t logical = 8 * kRounds;  // 4 producers + 4 consumers
  // Busy-waiting retries inflate issued operations well beyond the
  // logical count; queueing issues each exactly once.
  EXPECT_GT(busy.attempts, logical);
  EXPECT_EQ(queued.attempts, logical);
  // Both disciplines hand every produced value to exactly one consumer.
  EXPECT_EQ(busy.handoffs, 4 * kRounds);
  EXPECT_EQ(queued.handoffs, 4 * kRounds);
}

TEST(Queueing, MachineDeadlockDetected) {
  // One consumer, no producers: the machine never drains, and run()
  // reports it (rather than spinning forever or asserting).
  sim::MachineConfig<FEOp> cfg;
  cfg.log2_procs = 2;
  cfg.initial_value = FEWord{0, false};
  cfg.mem_cfg.queue_failed_conditionals = true;
  cfg.switch_cfg.policy = net::CombinePolicy::kNone;
  std::vector<std::unique_ptr<proc::TrafficSource<FEOp>>> src;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::deque<workload::ScriptedSource<FEOp>::Item> items;
    if (p == 0) items.push_back({0, 9, FEOp::load_and_clear()});
    src.push_back(
        std::make_unique<workload::ScriptedSource<FEOp>>(std::move(items)));
  }
  sim::Machine<FEOp> m(cfg, std::move(src));
  EXPECT_FALSE(m.run(5000));
  EXPECT_EQ(m.module(m.module_of(9)).parked_count(), 1u);
}

}  // namespace
